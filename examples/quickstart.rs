//! Quickstart: one declarative query, end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small simulated city crowd, registers the paper's `temp`
//! attribute, submits one acquisitional query at a fixed spatio-temporal
//! rate, runs the acquisition loop for an hour of simulated time, and
//! reports how close the fabricated stream came to the requested rate.

use craqr::prelude::*;

fn main() {
    // A 4×4 km region R observed by 800 mobile sensors clustered downtown.
    let region = Rect::with_size(4.0, 4.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 800,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.08, 5.0),
            human_fraction: 0.3,
        },
        seed: 42,
    });

    let mut server = CraqrServer::new(crowd, ServerConfig::default());
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    // The simplest acquisitional query of Section III: attribute, region, rate.
    let query_text = "ACQUIRE temp FROM RECT(0, 0, 2, 2) RATE 0.5 PER KM2 PER MIN";
    let qid = server.submit(query_text).expect("query parses and plans");
    println!("submitted: {query_text}");
    println!(
        "planned as {qid} over {} grid cell(s)\n",
        server.fabricator().query_plan(qid).unwrap().cells.len()
    );

    // Run 12 five-minute epochs (one simulated hour).
    println!(
        "{:>5} {:>8} {:>10} {:>10} {:>10}",
        "epoch", "t (min)", "requests", "responses", "delivered"
    );
    for _ in 0..12 {
        let report = server.run_epoch();
        let delivered: usize = report.delivered.iter().map(|(_, n)| n).sum();
        println!(
            "{:>5} {:>8.0} {:>10} {:>10} {:>10}",
            report.epoch, report.now, report.dispatch.sent, report.responses, delivered
        );
    }

    let stream = server.take_output(qid);
    let area = 4.0; // km² of the query region
    let minutes = server.now();
    let achieved = stream.len() as f64 / (area * minutes);
    println!("\nfabricated {} tuples over {minutes:.0} min and {area:.0} km²", stream.len());
    println!("achieved rate : {achieved:.3} /km²/min (requested 0.5)");
    println!("\nper-cell execution topologies (Fig. 2b analogue):");
    print!("{}", server.fabricator().explain());
}
