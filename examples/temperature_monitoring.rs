//! Ambient temperature monitoring — the paper's second running example,
//! with several simultaneous queries sharing one set of topologies.
//!
//! ```text
//! cargo run --release --example temperature_monitoring
//! ```
//!
//! Three `temp` queries with different regions and rates (λ1 > λ2 > λ3, as
//! in Section V) run concurrently. Where their footprints overlap, the
//! planner shares `F` and `T` operators; the example prints the execution
//! topologies so the sharing is visible, then reports per-query achieved
//! rates and the measured temperature statistics per region.

use craqr::prelude::*;

fn main() {
    let region = Rect::with_size(8.0, 8.0);
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 2_500,
            placement: Placement::city(&region),
            mobility: Mobility::gauss_markov(0.8, 0.3, 0.05),
            human_fraction: 0.0, // vehicle-mounted sensors
        },
        seed: 99,
    });

    let mut server = CraqrServer::new(crowd, ServerConfig::default());
    server.register_attribute("temp", false, Box::new(TemperatureField::city_default()));

    // λ1 > λ2 > λ3, with overlapping footprints to force sharing.
    let queries = [
        ("downtown fine-grained", "ACQUIRE temp FROM RECT(2, 2, 6, 6) RATE 1.0"),
        ("downtown coarse", "ACQUIRE temp FROM RECT(2, 2, 6, 6) RATE 0.4"),
        ("city-wide sparse", "ACQUIRE temp FROM RECT(0, 0, 8, 8) RATE 0.1"),
    ];
    let mut ids = Vec::new();
    for (name, text) in &queries {
        let qid = server.submit(text).expect("query plans");
        println!("{qid}: {name}: {text}");
        ids.push((qid, *name, text));
    }

    println!("\nshared per-cell topologies after insertion:");
    print!("{}", server.fabricator().explain());

    // One simulated hour.
    for _ in 0..12 {
        server.run_epoch();
    }

    println!(
        "\n{:>24} {:>10} {:>12} {:>12} {:>10} {:>9}",
        "query", "tuples", "requested λ", "achieved λ", "mean °C", "min..max"
    );
    for (qid, name, _) in &ids {
        let plan_rate = server.fabricator().query_plan(*qid).unwrap().query.rate;
        let area = server.fabricator().query_plan(*qid).unwrap().footprint.area();
        let out = server.take_output(*qid);
        let minutes = server.now();
        let achieved = out.len() as f64 / (area * minutes);
        let temps: Vec<f64> = out.iter().filter_map(|t| t.value.as_float()).collect();
        let mean = temps.iter().sum::<f64>() / temps.len().max(1) as f64;
        let min = temps.iter().copied().fold(f64::INFINITY, f64::min);
        let max = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        println!(
            "{:>24} {:>10} {:>12.2} {:>12.3} {:>10.2} {:>4.1}..{:<4.1}",
            name,
            out.len(),
            plan_rate,
            achieved,
            mean,
            min,
            max
        );
    }

    // Demonstrate dynamic deletion: drop the top-rate query and show the
    // chains re-merging (rule 3 of Section V).
    let (top, name, _) = ids[0];
    println!("\ndeleting {top} ({name}); topologies after the consecutive-T merge:");
    server.delete_query(top).expect("standing query");
    print!("{}", server.fabricator().explain());
}
