//! Rain monitoring — the paper's first running example.
//!
//! ```text
//! cargo run --release --example rain_monitoring
//! ```
//!
//! `rain` is a *human-sensed* boolean attribute: humans answer "is it
//! raining around you?" with unpredictable participation and latency. A
//! rain front sweeps the region; the query acquires rain reports at a fixed
//! rate, and this example tracks how well the fabricated stream follows the
//! true front position while the budget tuner fights response starvation.

use craqr::prelude::*;

fn main() {
    let region = Rect::with_size(6.0, 6.0);
    // A mostly-human crowd: response probability 0.3 at zero incentive,
    // mean latency 2 minutes — the paper's "unpredictably delayed" replies.
    let crowd = Crowd::new(CrowdConfig {
        region,
        population: PopulationConfig {
            size: 1_500,
            placement: Placement::city(&region),
            mobility: Mobility::random_waypoint(0.06, 8.0),
            human_fraction: 0.9,
        },
        seed: 2015,
    });

    // The front enters from the west at t=0 and crosses at 0.05 km/min.
    let front = RainFront::new(0.0, 0.05, 2.0);
    let mut server = CraqrServer::new(crowd, ServerConfig::default());
    server.register_attribute("rain", true, Box::new(front));

    let qid = server
        .submit("ACQUIRE rain FROM RECT(0, 0, 6, 6) RATE 0.2 PER KM2 PER MIN")
        .expect("query plans");

    println!("rain front: x(t) = 0.05·t, width 2 km; query rate 0.2 /km²/min\n");
    println!(
        "{:>5} {:>8} {:>9} {:>10} {:>12} {:>12}",
        "epoch", "t (min)", "tuples", "%raining", "true front", "est. front"
    );

    for _ in 0..24 {
        let report = server.run_epoch();
        let tuples = server.take_output(qid);
        if tuples.is_empty() {
            println!(
                "{:>5} {:>8.0} {:>9} {:>10} {:>12} {:>12}",
                report.epoch, report.now, 0, "-", "-", "-"
            );
            continue;
        }
        let raining: Vec<&CrowdTuple> =
            tuples.iter().filter(|t| t.value == AttrValue::Bool(true)).collect();
        let pct = 100.0 * raining.len() as f64 / tuples.len() as f64;
        // Estimate the front's leading edge from the data: the easternmost
        // raining report this epoch.
        let est_front = raining.iter().map(|t| t.point.x).fold(f64::NEG_INFINITY, f64::max);
        let true_front = 0.05 * report.now;
        let est = if raining.is_empty() { "-".to_string() } else { format!("{est_front:>10.2}") };
        println!(
            "{:>5} {:>8.0} {:>9} {:>9.1}% {:>12.2} {:>12}",
            report.epoch,
            report.now,
            tuples.len(),
            pct,
            true_front,
            est
        );
    }

    let (requested, sent) = server.handler().totals();
    println!("\nrequests attempted: {requested}, sent: {sent}");
    println!("crowd response rate: {:.2}", server.crowd().response_rate());
    println!("budget-exhaustion events: {}", server.handler().exhausted_events());
}
