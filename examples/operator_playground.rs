//! Operator playground: the PMAT algebra without the server.
//!
//! ```text
//! cargo run --release --example operator_playground
//! ```
//!
//! Drives the four published PMAT operators (`F`, `T`, `P`, `U`) directly
//! on synthetic point processes and prints the before/after statistics that
//! make their "provable expected behaviour" visible:
//!
//! - `F` turns a spatially skewed stream into an approximately homogeneous
//!   one (χ² p-value jumps, count CV collapses);
//! - `T` scales the rate by exactly `λ2/λ1`;
//! - `P` splits a stream by region without changing local rates;
//! - `U` reassembles adjacent pieces.

use craqr::core::ops::{EstimatorMode, FlattenConfig};
use craqr::engine::{Emitter, InputPort, Operator};
use craqr::prelude::*;
use craqr::sensing::{AttrValue, AttributeId, SensorId};

fn tuples_from(points: &[SpaceTimePoint]) -> Vec<CrowdTuple> {
    points
        .iter()
        .enumerate()
        .map(|(i, p)| CrowdTuple {
            id: i as u64,
            attr: AttributeId(0),
            point: *p,
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        })
        .collect()
}

fn run<O: Operator<CrowdTuple>>(op: &mut O, batch: &[CrowdTuple]) -> Vec<Vec<CrowdTuple>> {
    let mut em = Emitter::new(op.output_ports());
    op.process(InputPort(0), batch, &mut em);
    em.into_buffers()
}

fn main() {
    let mut rng = seeded_rng(7);
    let cell = Rect::with_size(10.0, 10.0);
    let window = SpaceTimeWindow::new(cell, 0.0, 10.0);

    // ---- F: flatten a skewed stream -------------------------------------
    println!("== F (flatten) ==");
    let skewed = InhomogeneousMdpp::new(LinearIntensity::new([0.3, 0.0, 0.7, 0.0]), cell);
    let raw = skewed.sample(&window, &mut rng);
    let in_rep = homogeneity_report(&raw, &window, 4, 2);
    let (mut flatten, report) = FlattenOp::new(FlattenConfig {
        cell,
        batch_duration: 10.0,
        target_rate: 0.6,
        mode: EstimatorMode::BatchMle,
        seed: 1,
    });
    let flat = run(&mut flatten, &tuples_from(&raw)).remove(0);
    let flat_points: Vec<SpaceTimePoint> = flat.iter().map(|t| t.point).collect();
    let out_rep = homogeneity_report(&flat_points, &window, 4, 2);
    println!(
        "input : n={:<6} χ² p={:<10.3e} count CV={:.3}",
        in_rep.n, in_rep.chi_square.p_value, in_rep.count_cv
    );
    println!(
        "output: n={:<6} χ² p={:<10.3e} count CV={:.3}",
        out_rep.n, out_rep.chi_square.p_value, out_rep.count_cv
    );
    println!("rate violations N_v = {:.1}%\n", report.last_nv());

    // ---- T: thin a homogeneous stream -----------------------------------
    println!("== T (thin) ==");
    let homog = HomogeneousMdpp::new(2.0, cell);
    let stream = tuples_from(&homog.sample(&window, &mut rng));
    let mut thin = ThinOp::new(2.0, 0.5, 11);
    let thinned = run(&mut thin, &stream).remove(0);
    println!(
        "{} tuples at λ=2.0 → {} tuples (expected ≈ {:.0} at λ=0.5, p={})",
        stream.len(),
        thinned.len(),
        0.5 * window.volume(),
        thin.probability()
    );
    println!();

    // ---- P: partition by region ------------------------------------------
    println!("== P (partition) ==");
    let west = Rect::new(0.0, 0.0, 5.0, 10.0);
    let east = Rect::new(5.0, 0.0, 10.0, 10.0);
    let mut partition = PartitionOp::binary(west, east);
    let halves = run(&mut partition, &thinned);
    println!(
        "west: {} tuples ({:.2} /km²/min), east: {} tuples ({:.2} /km²/min)",
        halves[0].len(),
        halves[0].len() as f64 / (west.area() * 10.0),
        halves[1].len(),
        halves[1].len() as f64 / (east.area() * 10.0),
    );
    println!();

    // ---- U: union adjacent pieces ----------------------------------------
    println!("== U (union) ==");
    let mut union = UnionOp::binary(west, east);
    let mut em = Emitter::new(union.output_ports());
    union.process(InputPort(0), &halves[0], &mut em);
    union.process(InputPort(1), &halves[1], &mut em);
    let rejoined = em.into_buffers().remove(0);
    println!(
        "rejoined {} tuples on {} (rectangular: {})",
        rejoined.len(),
        union.output_region(),
        union.is_rectangular()
    );
    assert_eq!(rejoined.len(), thinned.len(), "U must lose nothing");
}
