//! `craqr-lint` — run the determinism-taint rules over the workspace.
//!
//! ```text
//! craqr-lint [--root DIR] [--manifest PATH] [--deny] [--format text|json]
//! craqr-lint --explain <rule>
//! ```
//!
//! Exit codes: 0 clean, 1 findings (errors; warnings too under `--deny`),
//! 2 usage/config error. Diagnostics go to stdout as
//! `file:line:col: level[rule]: message`; the summary line goes to stderr
//! so `--format=json` output stays parseable.

use craqr_analyzer::rules::{rule_info, Level, RULES};
use craqr_analyzer::{lint_workspace, manifest, render_json};
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

/// Writes a line to stdout, swallowing `EPIPE` so `craqr-lint ... | head`
/// exits cleanly instead of panicking when the reader closes early.
fn out(text: std::fmt::Arguments) {
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = writeln!(stdout, "{text}") {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("craqr-lint: error: cannot write to stdout: {e}");
        std::process::exit(2);
    }
}

struct Args {
    root: PathBuf,
    manifest: Option<PathBuf>,
    deny: bool,
    json: bool,
    explain: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { root: PathBuf::from("."), manifest: None, deny: false, json: false, explain: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?);
            }
            "--manifest" => {
                args.manifest = Some(PathBuf::from(it.next().ok_or("--manifest needs a path")?));
            }
            "--deny" => args.deny = true,
            "--format" => match it.next().as_deref() {
                Some("text") => args.json = false,
                Some("json") => args.json = true,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            other if other.starts_with("--format=") => match &other["--format=".len()..] {
                "text" => args.json = false,
                "json" => args.json = true,
                bad => return Err(format!("--format expects text|json, got '{bad}'")),
            },
            "--explain" => {
                args.explain = Some(it.next().ok_or("--explain needs a rule id (e.g. R2)")?);
            }
            "--help" | "-h" => {
                out(format_args!(
                    "craqr-lint [--root DIR] [--manifest PATH] [--deny] [--format text|json]\n\
                     craqr-lint --explain <rule>\n\nRules:"
                ));
                for r in RULES {
                    out(format_args!("  {:3} {}", r.id, r.title));
                }
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn run() -> Result<u8, String> {
    let args = parse_args()?;
    if let Some(id) = &args.explain {
        let Some(rule) = rule_info(id) else {
            return Err(format!(
                "unknown rule '{id}'; known: {}",
                RULES.iter().map(|r| r.id).collect::<Vec<_>>().join(", ")
            ));
        };
        out(format_args!("{}: {}\n\n{}", rule.id, rule.title, rule.explain));
        return Ok(0);
    }
    let manifest_path = args.manifest.clone().unwrap_or_else(|| args.root.join("lint.toml"));
    let text = std::fs::read_to_string(&manifest_path)
        .map_err(|e| format!("{}: cannot read manifest: {e}", manifest_path.display()))?;
    let manifest =
        manifest::parse(&text).map_err(|e| format!("{}: {e}", manifest_path.display()))?;
    let findings = lint_workspace(&args.root, &manifest)?;

    let errors = findings.iter().filter(|f| f.level == Level::Error).count();
    let warnings = findings.len() - errors;
    if args.json {
        out(format_args!("{}", render_json(&findings)));
    } else {
        for f in &findings {
            out(format_args!("{f}"));
        }
    }
    eprintln!(
        "craqr-lint: {errors} error(s), {warnings} warning(s){}",
        if args.deny && warnings > 0 { " [--deny: warnings are fatal]" } else { "" }
    );
    let fatal = errors > 0 || (args.deny && warnings > 0);
    Ok(u8::from(fatal))
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => ExitCode::from(code),
        Err(message) => {
            eprintln!("craqr-lint: error: {message}");
            ExitCode::from(2)
        }
    }
}
