//! Module-graph walker: resolves `mod name;` declarations to files,
//! breadth-first from each crate root, producing the module path
//! (`craqr-core::plan::fabricator`) that the manifest's tier prefixes
//! match against.
//!
//! Resolution follows rustc's non-`#[path]` rules:
//!
//! - a root file (`lib.rs`, `main.rs`, any `src/bin/*.rs`) or a `mod.rs`
//!   looks for children in its own directory;
//! - any other file `foo.rs` looks for children in `foo/`;
//! - `mod name;` resolves to `<dir>/name.rs` or `<dir>/name/mod.rs`
//!   (ambiguity — both present — is an error, as in rustc).
//!
//! Inline `mod name { ... }` bodies are already part of the parent file
//! and need no resolution. `#[cfg(test)] mod name;` out-of-line test
//! modules are walked too but tagged, so the rule engine can exempt them
//! the same way it exempts inline `#[cfg(test)]` spans.

use crate::lexer::{lex, Lexed, TokKind};
use std::path::{Path, PathBuf};

/// One source file reachable from a crate root.
#[derive(Debug, Clone)]
pub struct ModuleFile {
    /// Module path, e.g. `craqr-core::plan::fabricator`.
    pub module: String,
    /// Path on disk, relative to the analysis root.
    pub path: PathBuf,
    /// True when the file was reached through a `#[cfg(test)] mod`.
    pub test_only: bool,
}

/// Walks the module tree of one crate. `root_rel` is the crate root file
/// relative to `root_dir`; returned paths are relative to `root_dir` too.
pub fn walk_crate(
    crate_name: &str,
    root_dir: &Path,
    root_rel: &Path,
) -> Result<Vec<ModuleFile>, String> {
    let mut out = Vec::new();
    let mut queue = vec![ModuleFile {
        module: crate_name.to_string(),
        path: root_rel.to_path_buf(),
        test_only: false,
    }];
    while let Some(file) = queue.pop() {
        let abs = root_dir.join(&file.path);
        let src = std::fs::read_to_string(&abs)
            .map_err(|e| format!("{}: cannot read: {e}", file.path.display()))?;
        let lexed = lex(&src);
        for decl in mod_decls(&lexed) {
            let base = child_base_dir(&file.path);
            let as_file = base.join(format!("{}.rs", decl.name));
            let as_dir = base.join(&decl.name).join("mod.rs");
            let file_exists = root_dir.join(&as_file).is_file();
            let dir_exists = root_dir.join(&as_dir).is_file();
            let child_path = match (file_exists, dir_exists) {
                (true, true) => {
                    return Err(format!(
                        "{}: mod {} is ambiguous: both {} and {} exist",
                        file.path.display(),
                        decl.name,
                        as_file.display(),
                        as_dir.display()
                    ))
                }
                (true, false) => as_file,
                (false, true) => as_dir,
                (false, false) => {
                    return Err(format!(
                        "{}: mod {} does not resolve: neither {} nor {} exists",
                        file.path.display(),
                        decl.name,
                        as_file.display(),
                        as_dir.display()
                    ))
                }
            };
            queue.push(ModuleFile {
                module: format!("{}::{}", file.module, decl.name),
                path: child_path,
                test_only: file.test_only || decl.cfg_test,
            });
        }
        out.push(file);
    }
    out.sort_by(|a, b| a.module.cmp(&b.module));
    Ok(out)
}

/// The directory a file's `mod` children resolve in.
fn child_base_dir(path: &Path) -> PathBuf {
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
    let dir = path.parent().map(Path::to_path_buf).unwrap_or_default();
    let is_root = name == "lib.rs"
        || name == "main.rs"
        || name == "mod.rs"
        || dir.file_name().and_then(|n| n.to_str()) == Some("bin");
    if is_root {
        dir
    } else {
        dir.join(name.trim_end_matches(".rs"))
    }
}

struct ModDecl {
    name: String,
    cfg_test: bool,
}

/// Finds out-of-line `mod name;` declarations in a token stream, noting
/// whether a `#[cfg(test)]` attribute directly precedes one.
fn mod_decls(lexed: &Lexed) -> Vec<ModDecl> {
    let toks = &lexed.tokens;
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("mod")
            && i + 2 <= toks.len().saturating_sub(1)
            && toks[i + 1].kind == TokKind::Ident
            && toks[i + 2].is_punct(';')
        {
            // Walk back over attributes and visibility to see whether any
            // attribute is `#[cfg(test)]`.
            out.push(ModDecl {
                name: toks[i + 1].text.clone(),
                cfg_test: cfg_test_before(toks, i),
            });
            i += 3;
            continue;
        }
        i += 1;
    }
    out
}

/// True when the item starting at token `at` is preceded by a
/// `#[cfg(test)]` attribute (scanning back over visibility modifiers and
/// other attributes).
pub(crate) fn cfg_test_before(toks: &[crate::lexer::Token], at: usize) -> bool {
    let mut j = at;
    loop {
        // Skip visibility: `pub` or `pub(...)` directly before.
        if j >= 1 && toks[j - 1].is_punct(')') {
            // Possible `pub(crate)`: find matching '(' then check `pub`.
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].is_ident("pub") {
                j = k - 1;
                continue;
            }
            return false;
        }
        if j >= 1 && toks[j - 1].is_ident("pub") {
            j -= 1;
            continue;
        }
        // An attribute ends with ']' directly before the item.
        if j >= 1 && toks[j - 1].is_punct(']') {
            let mut depth = 0i32;
            let mut k = j - 1;
            loop {
                if toks[k].is_punct(']') {
                    depth += 1;
                } else if toks[k].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    return false;
                }
                k -= 1;
            }
            if k >= 1 && toks[k - 1].is_punct('#') {
                // Attribute tokens are toks[k+1 .. j-1].
                let body: Vec<&str> = toks[k + 1..j - 1]
                    .iter()
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                if body.len() >= 2 && body[0] == "cfg" && body.contains(&"test") {
                    return true;
                }
                j = k - 1;
                continue;
            }
            return false;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_plain_and_test_mods() {
        let l =
            lex("mod alpha;\npub mod beta;\n#[cfg(test)]\nmod tests;\nmod inline { fn f() {} }\n");
        let decls = mod_decls(&l);
        let names: Vec<&str> = decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, ["alpha", "beta", "tests"]);
        assert!(!decls[0].cfg_test);
        assert!(!decls[1].cfg_test);
        assert!(decls[2].cfg_test);
    }

    #[test]
    fn pub_crate_mod_with_attrs() {
        let l = lex("#[allow(dead_code)]\n#[cfg(test)]\npub(crate) mod helpers;\n");
        let decls = mod_decls(&l);
        assert_eq!(decls.len(), 1);
        assert!(decls[0].cfg_test);
    }

    #[test]
    fn base_dirs() {
        assert_eq!(child_base_dir(Path::new("src/lib.rs")), Path::new("src"));
        assert_eq!(child_base_dir(Path::new("src/bin/tool.rs")), Path::new("src/bin"));
        assert_eq!(child_base_dir(Path::new("src/plan/mod.rs")), Path::new("src/plan"));
        assert_eq!(child_base_dir(Path::new("src/plan.rs")), Path::new("src/plan"));
    }
}
