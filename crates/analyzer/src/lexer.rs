//! A token-level lexer for Rust source, tuned for taint scanning.
//!
//! This is not a parser: it produces a flat token stream plus a separate
//! comment list, which is exactly what the rule engine needs — rules match
//! ident/punct shapes (`Instant :: now`, `name . iter (`) and comments
//! carry the `// SAFETY:` and `// craqr-lint: allow(...)` annotations.
//!
//! What it must get right (and what the proptests in `tests/lexer_props.rs`
//! hammer on) is *masking*: an identifier inside a string literal, char
//! literal, or comment must never surface as a token, and a `//` inside a
//! string must not eat the rest of the line. Handled forms:
//!
//! - line comments and *nested* block comments (`/* /* */ */`);
//! - cooked strings with escapes (`"a \" b"`), byte strings (`b"..."`);
//! - raw strings with arbitrary hash fences (`r#"..."#`, `br##"..."##`);
//! - char literals vs lifetimes (`'a'` vs `&'a str`) and byte chars
//!   (`b'x'`);
//! - raw identifiers (`r#mod`), lexed to their unprefixed name.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are stripped to their name).
    Ident,
    /// Numeric literal.
    Num,
    /// String literal of any flavour; `text` holds the *unquoted* content.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`), without the quote.
    Lifetime,
    /// Any single non-alphanumeric character outside literals/comments.
    Punct(char),
}

/// One lexeme with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    /// Ident name, number text, or string content; empty for most puncts.
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// True when this token is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A comment (line or block) with the lines it spans.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Raw comment body, without the `//` / `/*` fences.
    pub text: String,
    pub line: u32,
    pub end_line: u32,
}

/// Lexer output: the token stream plus all comments encountered.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor { chars: src.chars().peekable(), line: 1, col: 1 }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into tokens and comments. Invalid input never panics: the
/// lexer is total and simply keeps going (an unterminated literal swallows
/// the rest of the file, which is the conservative behaviour for a linter —
/// nothing inside it can produce findings).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor::new(src);
    let mut out = Lexed::default();

    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            cur.bump();
            match cur.peek() {
                Some('/') => {
                    cur.bump();
                    let mut text = String::new();
                    while let Some(n) = cur.peek() {
                        if n == '\n' {
                            break;
                        }
                        text.push(n);
                        cur.bump();
                    }
                    out.comments.push(Comment { text, line, end_line: line });
                }
                Some('*') => {
                    cur.bump();
                    let mut depth = 1u32;
                    let mut text = String::new();
                    while depth > 0 {
                        match cur.bump() {
                            Some('*') if cur.peek() == Some('/') => {
                                cur.bump();
                                depth -= 1;
                                if depth > 0 {
                                    text.push_str("*/");
                                }
                            }
                            Some('/') if cur.peek() == Some('*') => {
                                cur.bump();
                                depth += 1;
                                text.push_str("/*");
                            }
                            Some(n) => text.push(n),
                            None => break,
                        }
                    }
                    out.comments.push(Comment { text, line, end_line: cur.line });
                }
                _ => out.tokens.push(Token {
                    kind: TokKind::Punct('/'),
                    text: String::new(),
                    line,
                    col,
                }),
            }
            continue;
        }
        if c == '"' {
            cur.bump();
            let text = cooked_string(&mut cur);
            out.tokens.push(Token { kind: TokKind::Str, text, line, col });
            continue;
        }
        if c == '\'' {
            cur.bump();
            lex_quote(&mut cur, &mut out, line, col);
            continue;
        }
        if is_ident_start(c) {
            let mut name = String::new();
            while let Some(n) = cur.peek() {
                if is_ident_continue(n) {
                    name.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            // String prefixes and raw identifiers.
            match (name.as_str(), cur.peek()) {
                ("r" | "b" | "br" | "rb", Some('"')) => {
                    cur.bump();
                    let text = if name.contains('r') && name != "b" {
                        raw_string(&mut cur, 0)
                    } else {
                        cooked_string(&mut cur)
                    };
                    out.tokens.push(Token { kind: TokKind::Str, text, line, col });
                    continue;
                }
                ("r" | "br" | "rb", Some('#')) => {
                    // Either a raw string fence (r#"..."#) or a raw
                    // identifier (r#match). Count hashes, then decide.
                    let mut hashes = 0u32;
                    while cur.peek() == Some('#') {
                        hashes += 1;
                        cur.bump();
                    }
                    if cur.peek() == Some('"') {
                        cur.bump();
                        let text = raw_string(&mut cur, hashes);
                        out.tokens.push(Token { kind: TokKind::Str, text, line, col });
                    } else if hashes == 1 && name == "r" {
                        let mut raw = String::new();
                        while let Some(n) = cur.peek() {
                            if is_ident_continue(n) {
                                raw.push(n);
                                cur.bump();
                            } else {
                                break;
                            }
                        }
                        out.tokens.push(Token { kind: TokKind::Ident, text: raw, line, col });
                    } else {
                        // Degenerate (`r##x`): emit what we have.
                        out.tokens.push(Token { kind: TokKind::Ident, text: name, line, col });
                    }
                    continue;
                }
                ("b", Some('\'')) => {
                    cur.bump();
                    lex_quote(&mut cur, &mut out, line, col);
                    continue;
                }
                _ => {}
            }
            out.tokens.push(Token { kind: TokKind::Ident, text: name, line, col });
            continue;
        }
        if c.is_ascii_digit() {
            let text = number(&mut cur);
            out.tokens.push(Token { kind: TokKind::Num, text, line, col });
            continue;
        }
        cur.bump();
        out.tokens.push(Token { kind: TokKind::Punct(c), text: String::new(), line, col });
    }
    out
}

/// Consumes a cooked string body after the opening quote; returns content.
fn cooked_string(cur: &mut Cursor) -> String {
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    text
}

/// Consumes a raw string body after the opening quote; the closer is a
/// quote followed by `hashes` hash characters.
fn raw_string(cur: &mut Cursor, hashes: u32) -> String {
    let mut text = String::new();
    'outer: while let Some(c) = cur.bump() {
        if c == '"' {
            // Tentatively match the hash fence.
            let mut seen = 0u32;
            while seen < hashes {
                if cur.peek() == Some('#') {
                    cur.bump();
                    seen += 1;
                } else {
                    // Not the closer: the quote and hashes are content.
                    text.push('"');
                    for _ in 0..seen {
                        text.push('#');
                    }
                    continue 'outer;
                }
            }
            break;
        }
        text.push(c);
    }
    text
}

/// Disambiguates `'` into a char literal or a lifetime. Called with the
/// quote already consumed.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: '\n', '\'', '\u{1F4A9}'.
            cur.bump();
            let mut text = String::from("\\");
            if let Some(e) = cur.bump() {
                text.push(e);
                if e == 'u' && cur.peek() == Some('{') {
                    while let Some(n) = cur.bump() {
                        text.push(n);
                        if n == '}' {
                            break;
                        }
                    }
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Token { kind: TokKind::Char, text, line, col });
        }
        Some(c) if is_ident_start(c) => {
            // 'a' is a char; 'a (no closing quote) is a lifetime.
            let mut name = String::new();
            while let Some(n) = cur.peek() {
                if is_ident_continue(n) {
                    name.push(n);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                out.tokens.push(Token { kind: TokKind::Char, text: name, line, col });
            } else {
                out.tokens.push(Token { kind: TokKind::Lifetime, text: name, line, col });
            }
        }
        Some(_) => {
            // Plain single char: '+', '☃'.
            let mut text = String::new();
            if let Some(n) = cur.bump() {
                text.push(n);
            }
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            out.tokens.push(Token { kind: TokKind::Char, text, line, col });
        }
        None => {
            out.tokens.push(Token { kind: TokKind::Punct('\''), text: String::new(), line, col })
        }
    }
}

/// Consumes a numeric literal: integers, floats (`1.5`, `1e-3`, `1.5e+2`),
/// radix prefixes, `_` separators, and type suffixes. `1..2` and `1.f()`
/// must leave the dot untouched.
fn number(cur: &mut Cursor) -> String {
    let mut text = String::new();
    let mut last = '\0';
    while let Some(c) = cur.peek() {
        let exp_sign =
            (c == '+' || c == '-') && (last == 'e' || last == 'E') && !text.starts_with("0x");
        if c.is_ascii_alphanumeric() || c == '_' || exp_sign {
            text.push(c);
            last = c;
            cur.bump();
        } else if c == '.' && !text.contains('.') && !text.starts_with("0x") {
            // Peek past the dot without consuming: clone the iterator.
            let mut ahead = cur.chars.clone();
            ahead.next();
            match ahead.next() {
                Some(d) if d.is_ascii_digit() => {
                    text.push('.');
                    last = '.';
                    cur.bump();
                }
                _ => break,
            }
        } else {
            break;
        }
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_mask_idents() {
        assert_eq!(idents(r#"let x = "Instant::now() // not a comment";"#), ["let", "x"]);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = r###"let s = r#"quote " and hash # inside"#; done"###;
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("a /* x /* y */ z */ b");
        assert_eq!(l.tokens.iter().map(|t| t.text.as_str()).collect::<Vec<_>>(), ["a", "b"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("&'a str; let c = 'x'; let e = '\\n';");
        let lifetimes: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Lifetime).collect();
        let chars: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 1);
        assert_eq!(lifetimes[0].text, "a");
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn byte_char_and_byte_string() {
        assert_eq!(
            idents(r#"let b = b'x'; let s = b"bytes"; end"#),
            ["let", "b", "let", "s", "end"]
        );
    }

    #[test]
    fn raw_identifier() {
        let l = lex("fn r#match() {}");
        assert!(l.tokens.iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let l = lex("0..10; 1.max(2); 1.5e-3;");
        let nums: Vec<_> =
            l.tokens.iter().filter(|t| t.kind == TokKind::Num).map(|t| t.text.as_str()).collect();
        assert_eq!(nums, ["0", "10", "1", "2", "1.5e-3"]);
        assert!(l.tokens.iter().any(|t| t.is_ident("max")));
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.tokens[0].line, l.tokens[0].col), (1, 1));
        assert_eq!((l.tokens[1].line, l.tokens[1].col), (2, 3));
    }

    #[test]
    fn line_comment_inside_string_is_content() {
        let l = lex("let url = \"https://example\"; after");
        assert!(l.comments.is_empty());
        assert!(l.tokens.iter().any(|t| t.is_ident("after")));
    }
}
