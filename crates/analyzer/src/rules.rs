//! The determinism-taint rules, run per file over the token stream.
//!
//! Every rule is a shape match on tokens — deliberately not type-aware.
//! The trade-off is documented per rule: a token-level scan can be fooled
//! by aliasing (`type Shares = HashMap<...>`) and by shadowed names, so
//! the rules err on the side of flagging, and the `// craqr-lint:
//! allow(<rule>): <justification>` escape hatch (which *requires* a
//! justification) handles the verified-safe sites. Inline `#[cfg(test)]
//! mod` bodies are exempt: tests may time, hash and panic freely.

use crate::lexer::{lex, Comment, Lexed, TokKind, Token};
use crate::manifest::module_matches;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Determinism tier of a module, assigned by the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Derived purely from run inputs; may feed checksummed artifacts.
    /// The default — and strictest — classification.
    Event,
    /// Reads clocks; may never feed a checksummed artifact.
    Timing,
    /// Tooling that neither feeds artifacts nor runs during acquisition.
    Neutral,
}

/// Per-file classification derived from the manifest.
#[derive(Debug, Clone)]
pub struct FileClass {
    pub tier: Tier,
    /// Module feeds checksummed artifacts (enables R5/R6).
    pub contributor: bool,
    /// Module is a sanctioned seeded-RNG helper (disables R3).
    pub rng_helper: bool,
    /// File path is under a `[warn] unwrap` prefix (enables W1).
    pub warn_unwrap: bool,
}

/// Cross-file context a single-file scan needs: who am I, and which
/// module prefixes are timing-tier (for R6 import resolution).
#[derive(Debug, Clone)]
pub struct ModuleCtx<'a> {
    /// Crate name with dashes, e.g. `craqr-core`.
    pub crate_name: &'a str,
    /// Full module path, e.g. `craqr-core::plan::fabricator`.
    pub module: &'a str,
    /// Timing-tier module prefixes from the manifest.
    pub timing: &'a [String],
    /// All workspace crate names (dashed), for `craqr_core::` resolution.
    pub known_crates: &'a [String],
}

/// Severity of a finding. `Error` fails the lint; `Warn` fails only
/// under `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    Error,
    Warn,
}

/// One diagnostic, addressable as `file:line:col`.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub level: Level,
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let level = match self.level {
            Level::Error => "error",
            Level::Warn => "warning",
        };
        write!(
            f,
            "{}:{}:{}: {level}[{}]: {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// Static description of one rule, backing `--explain`.
pub struct RuleInfo {
    pub id: &'static str,
    pub title: &'static str,
    pub explain: &'static str,
}

/// The launch ruleset. R1–R6 are deny-by-default; W1 is advisory; A0
/// polices the escape hatch itself.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "R1",
        title: "clock taint: wall/monotonic clocks only in timing-tier modules",
        explain: "\
Clock reads (`fast_monotonic_ns`, `thread_busy_ns`, `Instant::now`,
`SystemTime`) are callable only from modules the manifest lists under
[tiers] timing. Event-tier modules produce values that join checksummed
artifacts, and a clock read anywhere in that dataflow breaks Serial ==
Sharded(n) byte-identity.

    // event-tier module
    let t0 = Instant::now();          // error[R1]
    let ns = fast_monotonic_ns();     // error[R1]

Fix: move the measurement into a timing-tier module and hand the value
to the event tier as data (the engine takes its clock as an injected
`fn() -> u64` for exactly this reason), or — for a site that provably
never reaches a canonical rendering — annotate:

    // craqr-lint: allow(R1): busy_ns is excluded from report bodies
    let started = thread_busy_ns();",
    },
    RuleInfo {
        id: "R2",
        title: "hash-order taint: no HashMap/HashSet iteration in event-tier modules",
        explain: "\
std's HashMap/HashSet iterate in RandomState order, which differs per
process. In an event-tier module, any `.iter()`, `.keys()`, `.values()`,
`.drain()`, `into_iter`, or `for _ in &map` over a hash container is
flagged — even when the *result* looks order-independent, because float
accumulation (`+=` over values) is not associative and silently bakes
hash order into a checksummed number.

    let mut rates = HashMap::new();
    for plan in rates.values() {      // error[R2]
        total += plan.rate;           //   float sum order = hash order
    }

Fix: iterate a sorted key Vec (`let mut ks: Vec<_> = map.keys()...;
ks.sort()`), use a BTreeMap, or annotate a verified-order-independent
site:

    // craqr-lint: allow(R2): counts usize lengths; integer sum is
    // order-independent
    let n: usize = self.cells.values().map(HashMap::len).sum();

Lookups (`get`, `entry`, `contains_key`, `remove`, `retain`) are not
iteration-ordered outputs and are not flagged.",
    },
    RuleInfo {
        id: "R3",
        title: "RNG hygiene: no unseeded RNG construction outside the seeded helpers",
        explain: "\
`thread_rng()`, `from_entropy()`, and `OsRng` pull operating-system
entropy, which no seed can replay. All randomness must flow from the run
seed through the helpers in `craqr-stats::rng` (`seeded_rng`,
`sub_rng`), which derive disjoint SplitMix64 sub-streams per component.

    let mut rng = thread_rng();                 // error[R3]

Fix:

    let mut rng = craqr_stats::sub_rng(master_seed, \"fabricator\");",
    },
    RuleInfo {
        id: "R4",
        title: "unsafe hygiene: every `unsafe` carries a `// SAFETY:` comment",
        explain: "\
Each `unsafe` must be directly preceded (or trailed on the same line) by
a comment containing `SAFETY:` stating the invariant that makes it
sound. The live cases are the vDSO clock readers in
`crates/core/src/exec.rs`.

    unsafe { syscall() }              // error[R4]

Fix:

    // SAFETY: clock_gettime with a valid clock id and an out-pointer to
    // a properly sized, writable timespec cannot fault.
    unsafe { syscall() }",
    },
    RuleInfo {
        id: "R5",
        title: "float-format taint: canonical renders route floats through format_float",
        explain: "\
In checksum-contributor modules ([checksum] contributors), formatting a
float with `{}`/`{:?}` or an explicit precision (`{:.3}`, `{:e}`) is
flagged. Canonical artifacts must use
`craqr_stats::text::format_float`, the shortest-roundtrip renderer whose
output is byte-stable and re-parses exactly.

    writeln!(out, \"rate = {rate}\")?;          // error[R5] (rate: f64)
    writeln!(out, \"p95 = {:.3}\", p95)?;       // error[R5]

Fix:

    writeln!(out, \"rate = {}\", format_float(rate))?;

Integer and hex formatting (`{:#018x}` checksums) is untouched. The scan
is heuristic: it knows local `: f64` ascriptions, not inferred types, so
it can miss a float behind an alias — the fixture corpus and golden
byte-inertness tests backstop it.",
    },
    RuleInfo {
        id: "R6",
        title: "checksum-input audit: contributors may not import timing-tier modules",
        explain: "\
A module listed under [checksum] contributors may not `use` (or name via
a qualified path) any module classified timing-tier. This makes the
tier boundary structural: even a lazily-used import is rejected, so a
clock value cannot reach a canonical renderer without a diff in
lint.toml.

    // in craqr-runlog::codec (a contributor)
    use craqr_core::exec::thread_busy_ns;       // error[R6]

Fix: take the value as a parameter from the caller, or move the render
out of the contributor set (which makes it ineligible for checksums).",
    },
    RuleInfo {
        id: "W1",
        title: "advisory: `.unwrap()`/`.expect()` in CLI binaries",
        explain: "\
Warn-only count of `.unwrap()`/`.expect()` under [warn] unwrap paths
(the `src/bin/` CLIs). User-reachable failures (bad paths, malformed
specs) must flow through the distinguished-exit-code error path
(`Failure { code, message }` in craqr-scenario); `.expect()` is reserved
for internal invariants whose message says why it cannot fire. W1 keeps
the count visible in review so new panics do not creep in.",
    },
    RuleInfo {
        id: "A0",
        title: "allow hygiene: escape hatches must parse and carry a justification",
        explain: "\
`// craqr-lint: allow(<rule>): <justification>` suppresses exactly one
rule on the next (or same) source line. A0 rejects malformed directives:
unknown rule IDs, missing `:` separator, or an empty justification. An
allow that matches no finding is reported as a warning so stale
annotations are cleaned up rather than accumulating.",
    },
];

/// Looks up a rule by ID.
pub fn rule_info(id: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.id == id)
}

const CLOCK_FNS: &[&str] = &["fast_monotonic_ns", "thread_busy_ns"];
const RNG_IDENTS: &[&str] = &["thread_rng", "from_entropy", "OsRng"];
const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "into_keys",
    "values",
    "values_mut",
    "into_values",
    "drain",
];
const FMT_MACROS: &[&str] =
    &["format", "format_args", "write", "writeln", "print", "println", "eprint", "eprintln"];

/// Lints one file. `display_path` is used verbatim in diagnostics.
pub fn lint_file(
    display_path: &str,
    source: &str,
    class: &FileClass,
    ctx: &ModuleCtx<'_>,
) -> Vec<Finding> {
    let lexed = lex(source);
    let toks = &lexed.tokens;

    let test_spans = test_mod_spans(&lexed);
    let in_test = |line: u32| test_spans.iter().any(|&(a, b)| line >= a && line <= b);
    let use_spans = use_decl_spans(toks);
    let in_use = |i: usize| use_spans.iter().any(|&(a, b)| i >= a && i <= b);

    let token_lines: BTreeSet<u32> = toks.iter().map(|t| t.line).collect();
    let (allows, mut findings) = parse_allows(display_path, &lexed.comments, &token_lines);

    let mut push = |line: u32, col: u32, rule: &'static str, level: Level, message: String| {
        findings.push(Finding { file: display_path.to_string(), line, col, rule, level, message });
    };

    // ---- R1: clock taint ------------------------------------------------
    if class.tier != Tier::Timing {
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            if CLOCK_FNS.contains(&t.text.as_str()) && !in_use(i) {
                push(
                    t.line,
                    t.col,
                    "R1",
                    Level::Error,
                    format!(
                        "clock `{}` referenced outside a timing-tier module; move the \
                         measurement behind the tier boundary or justify with an allow",
                        t.text
                    ),
                );
            } else if t.text == "Instant"
                && path_sep(toks, i + 1)
                && toks.get(i + 3).is_some_and(|n| n.is_ident("now"))
            {
                push(
                    t.line,
                    t.col,
                    "R1",
                    Level::Error,
                    "`Instant::now()` outside a timing-tier module".to_string(),
                );
            } else if t.text == "SystemTime" && !in_use(i) {
                push(
                    t.line,
                    t.col,
                    "R1",
                    Level::Error,
                    "`SystemTime` outside a timing-tier module".to_string(),
                );
            }
        }
    }

    // ---- R2: hash-order taint -------------------------------------------
    if class.tier == Tier::Event {
        let hash_names = hash_container_names(toks);
        for (i, t) in toks.iter().enumerate() {
            // `name.iter()` / `self.name.keys()` — the receiver token. A
            // dotted receiver must be a `self` field: `other.name` is a
            // different struct's field that happens to share the name.
            let own_receiver = i < 2 || !toks[i - 1].is_punct('.') || toks[i - 2].is_ident("self");
            if t.kind == TokKind::Ident
                && hash_names.contains(&t.text)
                && own_receiver
                && toks.get(i + 1).is_some_and(|n| n.is_punct('.'))
                && toks.get(i + 2).is_some_and(|n| {
                    n.kind == TokKind::Ident && ITER_METHODS.contains(&n.text.as_str())
                })
                && toks.get(i + 3).is_some_and(|n| n.is_punct('('))
            {
                push(
                    t.line,
                    t.col,
                    "R2",
                    Level::Error,
                    format!(
                        "`{}.{}()` iterates a hash container in an event-tier module; \
                         hash order is nondeterministic — sort keys or use a BTreeMap",
                        t.text,
                        toks[i + 2].text
                    ),
                );
            }
            // `for pat in [&[mut]] [self.]name {`
            if t.is_ident("for") {
                if let Some((name_tok, _)) = for_loop_hash_source(toks, i, &hash_names) {
                    push(
                        name_tok.line,
                        name_tok.col,
                        "R2",
                        Level::Error,
                        format!(
                            "`for _ in {}` iterates a hash container in an event-tier \
                             module; hash order is nondeterministic — sort keys or use a \
                             BTreeMap",
                            name_tok.text
                        ),
                    );
                }
            }
        }
    }

    // ---- R3: RNG hygiene ------------------------------------------------
    if !class.rng_helper && class.tier != Tier::Neutral {
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident && RNG_IDENTS.contains(&t.text.as_str()) && !in_use(i) {
                push(
                    t.line,
                    t.col,
                    "R3",
                    Level::Error,
                    format!(
                        "unseeded RNG `{}`; all randomness must derive from the run seed \
                         via craqr_stats::rng (seeded_rng / sub_rng)",
                        t.text
                    ),
                );
            }
        }
    }

    // ---- R4: unsafe hygiene ---------------------------------------------
    // A SAFETY comment may wrap across several `//` lines; coverage is
    // judged on contiguous comment runs.
    let comment_runs = merge_comment_runs(&lexed.comments);
    for t in toks.iter() {
        if t.is_ident("unsafe") {
            let covered = comment_runs.iter().any(|c| {
                c.text.contains("SAFETY:") && c.line <= t.line && c.end_line + 1 >= t.line
            });
            if !covered {
                push(
                    t.line,
                    t.col,
                    "R4",
                    Level::Error,
                    "`unsafe` without a directly preceding `// SAFETY:` comment".to_string(),
                );
            }
        }
    }

    // ---- R5: float-format taint -----------------------------------------
    if class.contributor {
        let f64_names = f64_ascribed_names(toks);
        scan_format_macros(toks, &f64_names, &mut push);
    }

    // ---- R6: checksum-input audit ---------------------------------------
    if class.contributor {
        scan_timing_imports(toks, &use_spans, ctx, &mut push);
    }

    // ---- W1: advisory unwrap count in CLIs ------------------------------
    if class.warn_unwrap {
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && (t.text == "unwrap" || t.text == "expect")
                && i >= 1
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                push(
                    t.line,
                    t.col,
                    "W1",
                    Level::Warn,
                    format!(
                        "`.{}()` in a CLI binary; user-reachable failures must use the \
                         distinguished-exit-code error path",
                        t.text
                    ),
                );
            }
        }
    }

    apply_allows(display_path, findings, allows, &in_test)
}

/// True when `toks[i]` and `toks[i+1]` form `::`.
fn path_sep(toks: &[Token], i: usize) -> bool {
    toks.get(i).is_some_and(|t| t.is_punct(':')) && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
}

/// Line spans (inclusive) of inline `#[cfg(test)] mod name { ... }` items.
fn test_mod_spans(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("mod")
            && toks.get(i + 1).map(|t| t.kind) == Some(TokKind::Ident)
            && toks.get(i + 2).is_some_and(|t| t.is_punct('{'))
            && crate::modgraph::cfg_test_before(toks, i)
        {
            let start = toks[i].line;
            let mut depth = 0i32;
            let mut j = i + 2;
            let mut end = start;
            while j < toks.len() {
                if toks[j].is_punct('{') {
                    depth += 1;
                } else if toks[j].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end = toks[j].line;
                        break;
                    }
                }
                j += 1;
            }
            if depth != 0 {
                end = toks.last().map(|t| t.line).unwrap_or(start);
            }
            spans.push((start, end));
            i = j;
        }
        i += 1;
    }
    spans
}

/// Token index spans (inclusive) of `use ...;` declarations.
fn use_decl_spans(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_ident("use") {
            let start = i;
            while i < toks.len() && !toks[i].is_punct(';') {
                i += 1;
            }
            spans.push((start, i));
        }
        i += 1;
    }
    spans
}

/// Names bound to HashMap/HashSet in this file: `name: [&mut] HashMap<..>`
/// ascriptions (params, fields) and `name = HashMap::new()/with_capacity/
/// default/from` bindings, with qualified paths (`std::collections::
/// HashMap`) handled. File-local by design; `type` aliases that launder a
/// hash container through another name defeat the scan and are documented
/// as a known limitation.
fn hash_container_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !HASH_TYPES.contains(&t.text.as_str()) {
            continue;
        }
        // Walk back over `seg::` path prefixes to the head of the path.
        let mut j = i;
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        if j == 0 {
            continue;
        }
        // Ascription: `name : [& [mut]] <path>`.
        let mut k = j - 1;
        while k > 0 && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
            k -= 1;
        }
        if toks[k].is_punct(':')
            && k >= 1
            && !toks[k - 1].is_punct(':')
            && toks[k - 1].kind == TokKind::Ident
        {
            names.insert(toks[k - 1].text.clone());
            continue;
        }
        // Binding: `name = <path>::ctor(`.
        let is_ctor = path_sep(toks, i + 1)
            && toks.get(i + 3).is_some_and(|n| {
                matches!(n.text.as_str(), "new" | "with_capacity" | "default" | "from")
            });
        if is_ctor && toks[j - 1].is_punct('=') && j >= 2 && toks[j - 2].kind == TokKind::Ident {
            names.insert(toks[j - 2].text.clone());
        }
    }
    names
}

/// For a `for` keyword at index `i`, returns the source token when the
/// loop iterates `[&[mut]] [self.]name` and `name` is a hash container.
fn for_loop_hash_source<'a>(
    toks: &'a [Token],
    i: usize,
    hash_names: &BTreeSet<String>,
) -> Option<(&'a Token, usize)> {
    // Find the `in` at pattern depth 0.
    let mut depth = 0i32;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].kind {
            TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
            TokKind::Punct('{') => return None, // loop body before `in`: not a for-in
            TokKind::Ident if depth == 0 && toks[j].text == "in" => break,
            _ => {}
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    // Iterated expression: strip `&`, `mut`, `self.`.
    let mut k = j + 1;
    while k < toks.len() && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
        k += 1;
    }
    if toks.get(k).is_some_and(|t| t.is_ident("self"))
        && toks.get(k + 1).is_some_and(|t| t.is_punct('.'))
    {
        k += 2;
    }
    let name = toks.get(k)?;
    if name.kind == TokKind::Ident
        && hash_names.contains(&name.text)
        && toks.get(k + 1).is_some_and(|t| t.is_punct('{'))
    {
        return Some((name, k));
    }
    None
}

/// Names ascribed `: f64` (params, fields, lets) in this file.
fn f64_ascribed_names(toks: &[Token]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("f64") || i < 2 {
            continue;
        }
        let mut k = i - 1;
        while k > 0 && (toks[k].is_punct('&') || toks[k].is_ident("mut")) {
            k -= 1;
        }
        if toks[k].is_punct(':') && !toks[k - 1].is_punct(':') && toks[k - 1].kind == TokKind::Ident
        {
            names.insert(toks[k - 1].text.clone());
        }
    }
    names
}

/// One `{...}` placeholder in a format string.
struct Placeholder {
    /// Named arg (`{rate}`), positional index (`{0}`), or auto (`{}`).
    arg: String,
    /// Format spec after `:` (empty when absent).
    spec: String,
}

fn parse_placeholders(s: &str) -> Vec<Placeholder> {
    let mut out = Vec::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '{' if chars.peek() == Some(&'{') => {
                chars.next();
            }
            '}' if chars.peek() == Some(&'}') => {
                chars.next();
            }
            '{' => {
                let mut inner = String::new();
                for n in chars.by_ref() {
                    if n == '}' {
                        break;
                    }
                    inner.push(n);
                }
                let (arg, spec) = match inner.split_once(':') {
                    Some((a, s)) => (a.to_string(), s.to_string()),
                    None => (inner, String::new()),
                };
                out.push(Placeholder { arg, spec });
            }
            _ => {}
        }
    }
    out
}

/// Scans `format!`-family macro calls for R5 violations.
fn scan_format_macros(
    toks: &[Token],
    f64_names: &BTreeSet<String>,
    push: &mut impl FnMut(u32, u32, &'static str, Level, String),
) {
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident
            || !FMT_MACROS.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            i += 1;
            continue;
        }
        let Some((open, close)) = macro_delims(toks, i + 2) else {
            i += 1;
            continue;
        };
        let args = split_args(toks, open + 1, close);
        let fmt_index = usize::from(matches!(t.text.as_str(), "write" | "writeln"));
        let fmt_tok = args
            .get(fmt_index)
            .and_then(|&(a, b)| (b == a + 1 && toks[a].kind == TokKind::Str).then(|| &toks[a]));
        if let Some(fmt_tok) = fmt_tok {
            let value_args = &args[fmt_index + 1..];
            let mut auto = 0usize;
            for p in parse_placeholders(&fmt_tok.text) {
                let lossy = p.spec.contains('.') || p.spec.ends_with('e') || p.spec.ends_with('E');
                if lossy {
                    push(
                        fmt_tok.line,
                        fmt_tok.col,
                        "R5",
                        Level::Error,
                        format!(
                            "format spec `{{{}:{}}}` applies explicit precision/exponent in \
                             a checksum contributor; use craqr_stats::text::format_float",
                            p.arg, p.spec
                        ),
                    );
                    continue;
                }
                if !(p.spec.is_empty() || p.spec == "?") {
                    continue;
                }
                // Bare `{}`/`{:?}`: flag when the resolved argument is a
                // known f64.
                let flagged_name = if p.arg.is_empty() || p.arg.chars().all(|c| c.is_ascii_digit())
                {
                    let idx = if p.arg.is_empty() {
                        let v = auto;
                        auto += 1;
                        v
                    } else {
                        p.arg.parse::<usize>().unwrap_or(usize::MAX)
                    };
                    value_args
                        .get(idx)
                        .and_then(|&(a, b)| plain_path_tail(toks, a, b))
                        .filter(|n| f64_names.contains(*n))
                        .map(str::to_string)
                } else if f64_names.contains(&p.arg) {
                    Some(p.arg.clone())
                } else {
                    None
                };
                if let Some(name) = flagged_name {
                    push(
                        fmt_tok.line,
                        fmt_tok.col,
                        "R5",
                        Level::Error,
                        format!(
                            "float `{name}` formatted with `{{{}}}` in a checksum \
                             contributor; use craqr_stats::text::format_float",
                            if p.spec.is_empty() { "" } else { ":?" }
                        ),
                    );
                }
            }
        }
        i = close + 1;
    }
}

/// For a macro at `toks[at]`, returns (open delim index, matching close).
fn macro_delims(toks: &[Token], at: usize) -> Option<(usize, usize)> {
    let (open, close) = match toks.get(at)?.kind {
        TokKind::Punct('(') => ('(', ')'),
        TokKind::Punct('[') => ('[', ']'),
        TokKind::Punct('{') => ('{', '}'),
        _ => return None,
    };
    let mut depth = 0i32;
    for (j, t) in toks.iter().enumerate().skip(at) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some((at, j));
            }
        }
    }
    None
}

/// Splits token range (open, close) on top-level commas; returns
/// half-open (start, end) index pairs.
fn split_args(toks: &[Token], start: usize, end: usize) -> Vec<(usize, usize)> {
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut a = start;
    for (j, tok) in toks.iter().enumerate().take(end).skip(start) {
        match tok.kind {
            TokKind::Punct('(') | TokKind::Punct('[') | TokKind::Punct('{') => depth += 1,
            TokKind::Punct(')') | TokKind::Punct(']') | TokKind::Punct('}') => depth -= 1,
            TokKind::Punct(',') if depth == 0 => {
                args.push((a, j));
                a = j + 1;
            }
            _ => {}
        }
    }
    if a < end {
        args.push((a, end));
    }
    args
}

/// When tokens [a, b) form a plain path (`x`, `x.y`, `self.x.y`), returns
/// the final segment name.
fn plain_path_tail(toks: &[Token], a: usize, b: usize) -> Option<&str> {
    if a >= b {
        return None;
    }
    let mut expect_ident = true;
    let mut last = None;
    for t in &toks[a..b] {
        match (expect_ident, t.kind) {
            (true, TokKind::Ident) => {
                last = Some(t.text.as_str());
                expect_ident = false;
            }
            (false, TokKind::Punct('.')) => expect_ident = true,
            _ => return None,
        }
    }
    if expect_ident {
        None
    } else {
        last
    }
}

/// Scans `use` declarations and inline qualified paths for references to
/// timing-tier modules (R6).
fn scan_timing_imports(
    toks: &[Token],
    use_spans: &[(usize, usize)],
    ctx: &ModuleCtx<'_>,
    push: &mut impl FnMut(u32, u32, &'static str, Level, String),
) {
    // `use` declarations, with `{...}` group expansion.
    for &(start, end) in use_spans {
        let end = end.min(toks.len());
        if start + 1 >= end {
            continue;
        }
        for (path, line, col) in use_tree_paths(&toks[start + 1..end]) {
            check_timing_path(&path, line, col, ctx, push);
        }
    }
    // Inline qualified paths outside use declarations.
    let in_use = |i: usize| use_spans.iter().any(|&(a, b)| i >= a && i <= b);
    let mut i = 0;
    while i < toks.len() {
        if in_use(i) || toks[i].kind != TokKind::Ident || !path_sep(toks, i + 1) {
            i += 1;
            continue;
        }
        // Head of a path only: previous tokens must not be `::`.
        if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
            i += 1;
            continue;
        }
        let mut segs = vec![toks[i].text.clone()];
        let (line, col) = (toks[i].line, toks[i].col);
        let mut j = i;
        while path_sep(toks, j + 1) && toks.get(j + 3).map(|t| t.kind) == Some(TokKind::Ident) {
            segs.push(toks[j + 3].text.clone());
            j += 3;
        }
        check_timing_path(&segs, line, col, ctx, push);
        i = j + 1;
    }
}

/// Expands a use-tree token slice into full segment paths. Handles
/// nesting (`use a::{b, c::{d, e}}`), `as` aliases, and globs.
fn use_tree_paths(toks: &[Token]) -> Vec<(Vec<String>, u32, u32)> {
    fn walk(
        toks: &[Token],
        mut i: usize,
        prefix: &[String],
        out: &mut Vec<(Vec<String>, u32, u32)>,
    ) -> usize {
        let mut segs = prefix.to_vec();
        let mut pos: Option<(u32, u32)> = None;
        while i < toks.len() {
            let t = &toks[i];
            match t.kind {
                TokKind::Ident if t.text == "as" => {
                    i += 2; // skip alias name
                }
                TokKind::Ident => {
                    if pos.is_none() {
                        pos = Some((t.line, t.col));
                    }
                    segs.push(t.text.clone());
                    i += 1;
                }
                TokKind::Punct(':') => i += 1,
                TokKind::Punct('*') => i += 1,
                TokKind::Punct('{') => {
                    i += 1;
                    loop {
                        i = walk(toks, i, &segs, out);
                        if toks.get(i).is_some_and(|t| t.is_punct(',')) {
                            i += 1;
                            continue;
                        }
                        break;
                    }
                    if toks.get(i).is_some_and(|t| t.is_punct('}')) {
                        i += 1;
                    }
                    // The group consumed the leaf role of this branch.
                    segs.truncate(prefix.len());
                    pos = None;
                }
                TokKind::Punct(',') | TokKind::Punct('}') | TokKind::Punct(';') => break,
                _ => i += 1,
            }
        }
        if segs.len() > prefix.len() {
            let (line, col) = pos.unwrap_or((0, 0));
            out.push((segs, line, col));
        }
        i
    }
    let mut out = Vec::new();
    walk(toks, 0, &[], &mut out);
    out
}

/// Resolves a path's head (crate/self/super/known crate) to a module path
/// and flags it when it falls under a timing-tier prefix.
fn check_timing_path(
    segs: &[String],
    line: u32,
    col: u32,
    ctx: &ModuleCtx<'_>,
    push: &mut impl FnMut(u32, u32, &'static str, Level, String),
) {
    if segs.is_empty() {
        return;
    }
    let mut module_segs: Vec<String>;
    let rest: &[String];
    match segs[0].as_str() {
        "crate" => {
            module_segs = vec![ctx.crate_name.to_string()];
            rest = &segs[1..];
        }
        "self" => {
            module_segs = ctx.module.split("::").map(str::to_string).collect();
            rest = &segs[1..];
        }
        "super" => {
            module_segs = ctx.module.split("::").map(str::to_string).collect();
            let mut k = 0;
            while k < segs.len() && segs[k] == "super" {
                module_segs.pop();
                k += 1;
            }
            rest = &segs[k..];
        }
        head => {
            let dashed = head.replace('_', "-");
            if ctx.known_crates.iter().any(|c| c == &dashed) {
                module_segs = vec![dashed];
                rest = &segs[1..];
            } else {
                return; // std / external: out of scope
            }
        }
    }
    module_segs.extend(rest.iter().cloned());
    let candidate = module_segs.join("::");
    for prefix in ctx.timing {
        // Flag when the referenced path is, or reaches into, a timing
        // module (candidate under prefix), or names a parent of one only
        // if it is the module itself (candidate == prefix covered above).
        if module_matches(&candidate, prefix) {
            push(
                line,
                col,
                "R6",
                Level::Error,
                format!(
                    "checksum contributor references timing-tier module `{prefix}` \
                     (via `{candidate}`); take the value as a parameter instead"
                ),
            );
            return;
        }
    }
}

/// Coalesces comments on consecutive lines into single blocks, so a
/// wrapped `// SAFETY:` run covers the line after its last member.
fn merge_comment_runs(comments: &[Comment]) -> Vec<Comment> {
    let mut runs: Vec<Comment> = Vec::new();
    for c in comments {
        match runs.last_mut() {
            Some(prev) if c.line == prev.end_line + 1 || c.line == prev.end_line => {
                prev.text.push('\n');
                prev.text.push_str(&c.text);
                prev.end_line = prev.end_line.max(c.end_line);
            }
            _ => runs.push(c.clone()),
        }
    }
    runs
}

/// True for rustdoc comments (`///`, `//!`, `/** */`, `/*! */`), whose
/// bodies are documentation — the allow parser ignores them so prose
/// *about* the directive syntax is not parsed as a directive.
fn is_doc_comment(c: &Comment) -> bool {
    matches!(c.text.chars().next(), Some('/' | '!' | '*'))
}

/// A parsed allow directive.
struct Allow {
    rule: String,
    /// Source line the allow applies to.
    target: u32,
    /// Line of the directive itself (for unused-allow reporting).
    at: u32,
}

/// Parses `// craqr-lint: allow(<rule>): <justification>` directives.
/// Returns the allows plus A0 findings for malformed ones.
fn parse_allows(
    display_path: &str,
    comments: &[Comment],
    token_lines: &BTreeSet<u32>,
) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in comments {
        if is_doc_comment(c) {
            continue;
        }
        let Some(at) = c.text.find("craqr-lint:") else {
            continue;
        };
        let rest = c.text[at + "craqr-lint:".len()..].trim_start();
        let mut a0 = |message: String| {
            findings.push(Finding {
                file: display_path.to_string(),
                line: c.line,
                col: 1,
                rule: "A0",
                level: Level::Error,
                message,
            });
        };
        let Some(inner) = rest.strip_prefix("allow(") else {
            a0(format!("malformed directive `{}`; expected `allow(<rule>): <why>`", rest.trim()));
            continue;
        };
        let Some((ids, after)) = inner.split_once(')') else {
            a0("unclosed `allow(`".to_string());
            continue;
        };
        let justification = after.trim_start_matches([':', ' ']).trim();
        if justification.is_empty() {
            a0("allow without a justification; say why the site is deterministic".to_string());
            continue;
        }
        for id in ids.split(',') {
            let id = id.trim();
            if rule_info(id).is_none() {
                a0(format!("unknown rule `{id}` in allow"));
                continue;
            }
            // Applies to the directive's own line when code shares it,
            // else to the next line that has tokens.
            let target = if token_lines.contains(&c.line) {
                c.line
            } else {
                token_lines.range(c.end_line + 1..).next().copied().unwrap_or(c.end_line + 1)
            };
            allows.push(Allow { rule: id.to_string(), target, at: c.line });
        }
    }
    (allows, findings)
}

/// Drops findings inside test spans, consumes matching allows, and
/// reports unused allows as warnings.
fn apply_allows(
    display_path: &str,
    findings: Vec<Finding>,
    allows: Vec<Allow>,
    in_test: &impl Fn(u32) -> bool,
) -> Vec<Finding> {
    let mut used: BTreeMap<(String, u32), bool> =
        allows.iter().map(|a| ((a.rule.clone(), a.target), false)).collect();
    let mut out = Vec::new();
    for f in findings {
        if in_test(f.line) {
            continue;
        }
        if let Some(hit) = used.get_mut(&(f.rule.to_string(), f.line)) {
            *hit = true;
            continue;
        }
        out.push(f);
    }
    for a in allows {
        if !used.get(&(a.rule.clone(), a.target)).copied().unwrap_or(true) && !in_test(a.at) {
            out.push(Finding {
                file: display_path.to_string(),
                line: a.at,
                col: 1,
                rule: "A0",
                level: Level::Warn,
                message: format!("allow({}) matched no finding on line {}", a.rule, a.target),
            });
        }
    }
    out.sort_by(|x, y| (x.line, x.col, x.rule).cmp(&(y.line, y.col, y.rule)));
    out
}
