//! The tier manifest: `lint.toml` at the repository root.
//!
//! Parsed with a hand-rolled TOML subset (tables, `key = "string"`,
//! `key = ["array", "of", "strings"]` possibly spanning lines, `#`
//! comments) — the same in-crate discipline as the scenario config
//! parser. Unknown tables and keys are hard errors: a typoed tier entry
//! must not silently lint nothing.
//!
//! Schema:
//!
//! ```toml
//! [crates]          # lib crate name -> root source file (repo-relative)
//! craqr-core = "crates/core/src/lib.rs"
//!
//! [bins]            # binary target name -> root source file
//! craqr-run = "src/bin/craqr-run.rs"
//!
//! [tiers]           # module-path prefixes; everything else is event tier
//! timing  = ["craqr-core::exec"]
//! neutral = ["craqr-analyzer"]
//!
//! [checksum]        # modules whose output feeds checksummed artifacts
//! contributors = ["craqr-runlog::codec"]
//!
//! [rng]             # the only modules allowed to construct RNGs
//! helpers = ["craqr-stats::rng"]
//!
//! [warn]            # file-path prefixes where W1 counts unwraps
//! unwrap = ["src/bin"]
//! ```

/// Parsed `lint.toml`.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// Library crates: (crate name, repo-relative root file).
    pub crates: Vec<(String, String)>,
    /// Binary targets: (target name, repo-relative root file).
    pub bins: Vec<(String, String)>,
    /// Module-path prefixes classified as timing tier.
    pub timing: Vec<String>,
    /// Module-path prefixes classified as neutral tier.
    pub neutral: Vec<String>,
    /// Module-path prefixes that feed checksummed artifacts (R5/R6).
    pub contributors: Vec<String>,
    /// Module-path prefixes allowed to construct RNGs (R3).
    pub rng_helpers: Vec<String>,
    /// File-path prefixes where W1 counts `.unwrap()`/`.expect()`.
    pub warn_unwrap: Vec<String>,
}

/// Parses manifest text; errors carry the 1-based line.
pub fn parse(text: &str) -> Result<Manifest, String> {
    let mut m = Manifest::default();
    let mut section = String::new();
    let mut lines = text.lines().enumerate().peekable();

    while let Some((idx, raw)) = lines.next() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            if !matches!(
                section.as_str(),
                "crates" | "bins" | "tiers" | "checksum" | "rng" | "warn"
            ) {
                return Err(format!("line {line_no}: unknown table [{section}]"));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {line_no}: expected `key = value`, got '{line}'"));
        };
        let key = key.trim().to_string();
        let mut value = value.trim().to_string();
        // Multi-line arrays: accumulate until brackets balance.
        while value.starts_with('[') && !array_closed(&value) {
            let Some((_, next)) = lines.next() else {
                return Err(format!("line {line_no}: unterminated array for '{key}'"));
            };
            value.push(' ');
            value.push_str(strip_comment(next).trim());
        }
        match section.as_str() {
            "crates" => m.crates.push((key, parse_string(&value, line_no)?)),
            "bins" => m.bins.push((key, parse_string(&value, line_no)?)),
            "tiers" => match key.as_str() {
                "timing" => m.timing = parse_array(&value, line_no)?,
                "neutral" => m.neutral = parse_array(&value, line_no)?,
                _ => return Err(format!("line {line_no}: unknown key '{key}' in [tiers]")),
            },
            "checksum" => match key.as_str() {
                "contributors" => m.contributors = parse_array(&value, line_no)?,
                _ => return Err(format!("line {line_no}: unknown key '{key}' in [checksum]")),
            },
            "rng" => match key.as_str() {
                "helpers" => m.rng_helpers = parse_array(&value, line_no)?,
                _ => return Err(format!("line {line_no}: unknown key '{key}' in [rng]")),
            },
            "warn" => match key.as_str() {
                "unwrap" => m.warn_unwrap = parse_array(&value, line_no)?,
                _ => return Err(format!("line {line_no}: unknown key '{key}' in [warn]")),
            },
            _ => return Err(format!("line {line_no}: key '{key}' outside any table")),
        }
    }
    if m.crates.is_empty() {
        return Err("manifest declares no [crates]".into());
    }
    Ok(m)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// True when the bracket/quote structure of a partial array is complete.
fn array_closed(value: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in value.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_string(value: &str, line_no: usize) -> Result<String, String> {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or_else(|| format!("line {line_no}: expected a quoted string, got '{value}'"))
}

fn parse_array(value: &str, line_no: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let Some(inner) = v.strip_prefix('[').and_then(|v| v.strip_suffix(']')) else {
        return Err(format!("line {line_no}: expected an array, got '{value}'"));
    };
    let mut out = Vec::new();
    for part in split_top_level(inner) {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, line_no)?);
    }
    Ok(out)
}

/// Splits on commas outside strings (arrays never nest in this schema).
fn split_top_level(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut start = 0;
    let mut in_str = false;
    for (i, c) in s.char_indices() {
        match c {
            '"' => in_str = !in_str,
            ',' if !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

/// True when module path `module` falls under `prefix`: equal, or extends
/// it at a `::` boundary (`craqr-core::exec` matches `craqr-core::exec`
/// and `craqr-core::exec::inner`, not `craqr-core::executor`).
pub fn module_matches(module: &str, prefix: &str) -> bool {
    module == prefix || (module.starts_with(prefix) && module[prefix.len()..].starts_with("::"))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# tier manifest
[crates]
craqr-core = "crates/core/src/lib.rs"

[bins]
craqr-run = "src/bin/craqr-run.rs"

[tiers]
timing = [
    "craqr-core::exec",   # vDSO clock readers
]
neutral = ["craqr-analyzer"]

[checksum]
contributors = ["craqr-runlog::codec", "craqr-scenario::report"]

[rng]
helpers = ["craqr-stats::rng"]

[warn]
unwrap = ["src/bin"]
"#;

    #[test]
    fn parses_sample() {
        let m = parse(SAMPLE).expect("sample parses");
        assert_eq!(m.crates, vec![("craqr-core".into(), "crates/core/src/lib.rs".into())]);
        assert_eq!(m.timing, vec!["craqr-core::exec"]);
        assert_eq!(m.contributors.len(), 2);
        assert_eq!(m.warn_unwrap, vec!["src/bin"]);
    }

    #[test]
    fn unknown_table_rejected() {
        let err = parse("[nope]\nx = \"y\"\n").unwrap_err();
        assert!(err.contains("unknown table"), "{err}");
    }

    #[test]
    fn unknown_tier_key_rejected() {
        let err = parse("[crates]\nc = \"x\"\n[tiers]\ntimming = []\n").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let m = parse("[crates]\nc = \"a#b\"\n").expect("parses");
        assert_eq!(m.crates[0].1, "a#b");
    }

    #[test]
    fn module_prefix_boundaries() {
        assert!(module_matches("craqr-core::exec", "craqr-core::exec"));
        assert!(module_matches("craqr-core::exec::inner", "craqr-core::exec"));
        assert!(module_matches("craqr-core::exec", "craqr-core"));
        assert!(!module_matches("craqr-core::executor", "craqr-core::exec"));
    }
}
