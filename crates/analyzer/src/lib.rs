//! `craqr-lint`: a determinism-taint static analyzer that proves the
//! event/timing tier boundary at the source level.
//!
//! CrAQR's reproducibility contract — Serial == Sharded(n), byte-identical
//! goldens, replayable run logs — holds only if every checksummed artifact
//! is derived from run inputs alone. PR 8 split telemetry into
//! [`Event` and `Timing` tiers](../craqr_telemetry/index.html), but that
//! boundary was enforced by runtime tests, which catch a violation only
//! after a nondeterministic value happens to land in a golden. This crate
//! moves the boundary to the source level: a dependency-free static pass
//! that runs on every PR, before any test.
//!
//! # Architecture
//!
//! - [`lexer`] — a token-level Rust lexer (string/char/comment-aware,
//!   nested block comments, raw strings) in the same hand-rolled, in-crate
//!   discipline as the scenario TOML parser and the Prometheus lint;
//! - [`modgraph`] — resolves `mod` trees to files from each crate root,
//!   yielding manifest-matchable module paths;
//! - [`manifest`] — `lint.toml`: maps module prefixes to tiers
//!   (`event` / `timing` / `neutral`), names checksum contributors, RNG
//!   helpers, and W1 paths;
//! - [`rules`] — the rule engine: R1–R6 deny-by-default, W1 advisory, A0
//!   policing the escape hatch. `// craqr-lint: allow(<rule>): <why>`
//!   suppresses one rule on one line and must carry a justification.
//!
//! # Rules
//!
//! | Rule | Tier scope | What it rejects |
//! |------|-----------|------------------|
//! | R1 | non-timing | `fast_monotonic_ns` / `thread_busy_ns` / `Instant::now` / `SystemTime` |
//! | R2 | event | `HashMap`/`HashSet` iteration (hash order taint) |
//! | R3 | all but RNG helpers | `thread_rng` / `from_entropy` / `OsRng` |
//! | R4 | all | `unsafe` without a `// SAFETY:` comment |
//! | R5 | checksum contributors | `{}`/`{:?}`/`{:.N}` float formatting off the shortest-roundtrip helper |
//! | R6 | checksum contributors | imports of timing-tier modules |
//! | W1 | `src/bin/` (warn) | `.unwrap()` / `.expect()` in CLIs |
//! | A0 | all | malformed or stale `allow` directives |
//!
//! Run `craqr-lint --explain <rule>` for the worked example behind each
//! row; the same text lives on [`rules::RULES`].

pub mod lexer;
pub mod manifest;
pub mod modgraph;
pub mod rules;

use manifest::{module_matches, Manifest};
use rules::{FileClass, Finding, Level, ModuleCtx, Tier};
use std::path::Path;

/// Classifies one module file against the manifest.
pub fn classify(manifest: &Manifest, module: &str, file_path: &str) -> FileClass {
    let tier = if manifest.timing.iter().any(|p| module_matches(module, p)) {
        Tier::Timing
    } else if manifest.neutral.iter().any(|p| module_matches(module, p)) {
        Tier::Neutral
    } else {
        Tier::Event
    };
    FileClass {
        tier,
        contributor: manifest.contributors.iter().any(|p| module_matches(module, p)),
        rng_helper: manifest.rng_helpers.iter().any(|p| module_matches(module, p)),
        warn_unwrap: manifest.warn_unwrap.iter().any(|p| file_path.starts_with(p.as_str())),
    }
}

/// Lints every module file reachable from the manifest's crate and bin
/// roots. Returned findings are sorted by (file, line, col, rule).
/// Out-of-line `#[cfg(test)] mod` files are exempt, matching the inline
/// exemption.
pub fn lint_workspace(root: &Path, manifest: &Manifest) -> Result<Vec<Finding>, String> {
    let known_crates: Vec<String> = manifest.crates.iter().map(|(n, _)| n.clone()).collect();
    let mut findings = Vec::new();
    let roots = manifest.crates.iter().chain(manifest.bins.iter());
    for (crate_name, root_rel) in roots {
        let files = modgraph::walk_crate(crate_name, root, Path::new(root_rel))?;
        for file in &files {
            if file.test_only {
                continue;
            }
            let rel = file.path.to_string_lossy().replace('\\', "/");
            let class = classify(manifest, &file.module, &rel);
            let src = std::fs::read_to_string(root.join(&file.path))
                .map_err(|e| format!("{rel}: cannot read: {e}"))?;
            let ctx = ModuleCtx {
                crate_name,
                module: &file.module,
                timing: &manifest.timing,
                known_crates: &known_crates,
            };
            findings.extend(rules::lint_file(&rel, &src, &class, &ctx));
        }
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    Ok(findings)
}

/// Renders findings as a JSON array (machine-readable `--format=json`).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"level\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.col,
            f.rule,
            match f.level {
                Level::Error => "error",
                Level::Warn => "warning",
            },
            json_escape(&f.message)
        ));
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Manifest {
        manifest::parse(
            r#"
[crates]
craqr-core = "crates/core/src/lib.rs"
[tiers]
timing = ["craqr-core::exec"]
neutral = ["craqr-analyzer"]
[checksum]
contributors = ["craqr-runlog::codec"]
[rng]
helpers = ["craqr-stats::rng"]
[warn]
unwrap = ["src/bin"]
"#,
        )
        .expect("manifest parses")
    }

    #[test]
    fn classify_tiers() {
        let m = manifest();
        assert_eq!(classify(&m, "craqr-core::exec", "crates/core/src/exec.rs").tier, Tier::Timing);
        assert_eq!(
            classify(&m, "craqr-core::server", "crates/core/src/server.rs").tier,
            Tier::Event
        );
        assert!(classify(&m, "craqr-runlog::codec", "crates/runlog/src/codec.rs").contributor);
        assert!(classify(&m, "craqr-stats::rng", "crates/stats/src/rng.rs").rng_helper);
        assert!(classify(&m, "craqr-x", "src/bin/craqr-run.rs").warn_unwrap);
    }

    #[test]
    fn json_render_escapes() {
        let f = Finding {
            file: "a \"b\".rs".into(),
            line: 3,
            col: 7,
            rule: "R1",
            level: Level::Error,
            message: "line1\nline2".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains(r#""file":"a \"b\".rs""#), "{json}");
        assert!(json.contains(r#"line1\nline2"#), "{json}");
    }
}
