//! Fixture corpus: every rule has a violating fixture and a clean twin.
//! Expected findings are declared *in* the fixtures as trailing
//! `// expect: R1 R2` markers, so the assertions can never drift from
//! the line numbers they describe.

use craqr_analyzer::rules::{lint_file, FileClass, Level, ModuleCtx, Tier};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Parses `// expect: R1 R2` markers into a sorted (line, rule) list.
fn expected(src: &str) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        if let Some(rules) = line.split("// expect:").nth(1) {
            for rule in rules.split_whitespace() {
                out.push((idx as u32 + 1, rule.to_string()));
            }
        }
    }
    out.sort();
    out
}

fn event_class() -> FileClass {
    FileClass { tier: Tier::Event, contributor: false, rng_helper: false, warn_unwrap: false }
}

const TIMING: &[&str] = &["craqr-core::exec", "craqr-runlog::clockmod"];
const KNOWN: &[&str] = &["craqr-core", "craqr-runlog", "craqr-stats"];

fn ctx_with<'a>(
    crate_name: &'a str,
    module: &'a str,
    timing: &'a [String],
    known: &'a [String],
) -> ModuleCtx<'a> {
    ModuleCtx { crate_name, module, timing, known_crates: known }
}

/// Runs one fixture under `class` and asserts findings == its markers.
fn check(name: &str, class: FileClass) {
    let src = fixture(name);
    let timing: Vec<String> = TIMING.iter().map(|s| s.to_string()).collect();
    let known: Vec<String> = KNOWN.iter().map(|s| s.to_string()).collect();
    let ctx = ctx_with("craqr-runlog", "craqr-runlog::codec", &timing, &known);
    let findings = lint_file(name, &src, &class, &ctx);
    let got: Vec<(u32, String)> = {
        let mut v: Vec<(u32, String)> =
            findings.iter().map(|f| (f.line, f.rule.to_string())).collect();
        v.sort();
        v
    };
    assert_eq!(got, expected(&src), "findings mismatch for {name}:\n{findings:#?}");
    for f in &findings {
        assert_eq!(f.file, name);
        assert!(f.col >= 1, "columns are 1-based: {f}");
    }
}

#[test]
fn r1_violation_and_twin() {
    check("r1_violation.rs", event_class());
    check("r1_clean.rs", FileClass { tier: Tier::Timing, ..event_class() });
}

#[test]
fn r2_violation_and_twin() {
    check("r2_violation.rs", event_class());
    check("r2_clean.rs", event_class());
}

#[test]
fn r3_violation_and_twin() {
    check("r3_violation.rs", event_class());
    check("r3_clean.rs", event_class());
    // The same entropy constructions are sanctioned inside the helpers.
    let src = fixture("r3_violation.rs");
    let timing: Vec<String> = TIMING.iter().map(|s| s.to_string()).collect();
    let known: Vec<String> = KNOWN.iter().map(|s| s.to_string()).collect();
    let ctx = ctx_with("craqr-stats", "craqr-stats::rng", &timing, &known);
    let class = FileClass { rng_helper: true, ..event_class() };
    let findings = lint_file("r3_violation.rs", &src, &class, &ctx);
    assert!(findings.is_empty(), "rng helpers may construct RNGs:\n{findings:#?}");
}

#[test]
fn r4_violation_and_twin() {
    check("r4_violation.rs", event_class());
    check("r4_clean.rs", event_class());
}

#[test]
fn r5_violation_and_twin() {
    check("r5_violation.rs", FileClass { contributor: true, ..event_class() });
    check("r5_clean.rs", FileClass { contributor: true, ..event_class() });
    // Outside the contributor set the same file is not R5's business.
    check("r5_clean.rs", event_class());
}

#[test]
fn r6_violation_and_twin() {
    check("r6_violation.rs", FileClass { contributor: true, ..event_class() });
    check("r6_clean.rs", FileClass { contributor: true, ..event_class() });
}

#[test]
fn w1_is_warn_level() {
    let src = fixture("w1_unwraps.rs");
    let timing: Vec<String> = TIMING.iter().map(|s| s.to_string()).collect();
    let known: Vec<String> = KNOWN.iter().map(|s| s.to_string()).collect();
    let ctx = ctx_with("craqr-run-cli", "craqr-run-cli", &timing, &known);
    let class = FileClass { warn_unwrap: true, ..event_class() };
    let findings = lint_file("w1_unwraps.rs", &src, &class, &ctx);
    let got: Vec<(u32, String)> = {
        let mut v: Vec<(u32, String)> =
            findings.iter().map(|f| (f.line, f.rule.to_string())).collect();
        v.sort();
        v
    };
    assert_eq!(got, expected(&src), "{findings:#?}");
    assert!(findings.iter().all(|f| f.level == Level::Warn), "W1 is advisory:\n{findings:#?}");
}

#[test]
fn a0_polices_the_escape_hatch() {
    let src = fixture("allow_bad.rs");
    let timing: Vec<String> = TIMING.iter().map(|s| s.to_string()).collect();
    let known: Vec<String> = KNOWN.iter().map(|s| s.to_string()).collect();
    let ctx = ctx_with("craqr-core", "craqr-core::x", &timing, &known);
    let findings = lint_file("allow_bad.rs", &src, &event_class(), &ctx);
    let got: Vec<(u32, &str, Level)> = findings.iter().map(|f| (f.line, f.rule, f.level)).collect();
    assert_eq!(
        got,
        vec![
            (3, "A0", Level::Error), // empty justification
            (4, "R1", Level::Error), // ...so the clock read still fires
            (8, "A0", Level::Error), // unknown rule id
            (9, "R1", Level::Error),
            (13, "A0", Level::Warn), // stale allow matched nothing
        ],
        "{findings:#?}"
    );
}

#[test]
fn cfg_test_modules_are_exempt() {
    check("cfg_test_exempt.rs", event_class());
}
