//! Property tests for the token-level lexer. The analyzer's soundness
//! rests on the lexer never confusing code with string/comment payload,
//! so we generate adversarial interleavings of identifiers with the
//! trickiest literal and comment forms and assert the recovered
//! identifier sequence is exactly the planted one.

use craqr_analyzer::lexer::{lex, TokKind};
use proptest::prelude::*;

/// A string drawn character-by-character from `set`, with length in `len`.
fn chars_from(set: &'static [char], len: std::ops::Range<usize>) -> impl Strategy<Value = String> {
    prop::collection::vec(0usize..set.len(), len)
        .prop_map(move |idxs| idxs.into_iter().map(|i| set[i]).collect())
}

/// Payload text for cooked string literals: mentions comment fences and
/// ident-like words, but no quote/backslash so the literal stays simple.
const COOKED: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '/', '*', '!', '.', ':', ';', '(', ')', '{', '}',
    '-',
];

/// Safe inside a nested block comment: no `/` or `*` (nesting depth is
/// controlled by the wrapper), but quotes are fair game.
const BLOCK: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '"', '\'', '.', ':', ';', '(', ')', '{', '}', '-',
];

/// Raw-string payload: no `"` (keeps any fence valid), everything else
/// including backslashes and newlines.
const RAW: &[char] = &[
    'a', 'b', 'z', 'A', 'Z', '0', '9', '_', ' ', '/', '*', '!', '\\', '\n', '.', ':', ';', '(',
    ')', '{', '}', '-',
];

const IDENT_START: &[char] = &['a', 'm', 'z', 'A', 'Z', '_'];
const IDENT_CONT: &[char] = &['a', 'm', 'z', 'A', 'Z', '_', '0', '5', '9'];
const LOWER: &[char] = &['a', 'k', 'z'];

fn cooked_payload() -> impl Strategy<Value = String> {
    chars_from(COOKED, 0..24)
}

fn ident() -> impl Strategy<Value = String> {
    (chars_from(IDENT_START, 1..2), chars_from(IDENT_CONT, 0..10))
        .prop_map(|(head, tail)| format!("{head}{tail}"))
}

/// One opaque "distractor" atom: its payload mentions identifiers and
/// comment fences that must NOT surface as tokens.
#[derive(Debug, Clone)]
enum Atom {
    Line(String),
    Block(String, u8),
    Cooked(String),
    Raw(String, u8),
    Byte(String),
    CharLit(char),
    Lifetime(String),
}

impl Atom {
    /// Renders the atom as source text.
    fn render(&self) -> String {
        match self {
            Atom::Line(s) => format!("// {s}\n"),
            Atom::Block(s, depth) => {
                let mut out = String::new();
                for _ in 0..*depth {
                    out.push_str("/* ");
                }
                out.push_str(s);
                for _ in 0..*depth {
                    out.push_str(" */");
                }
                out
            }
            Atom::Cooked(s) => format!("\"{s}\""),
            Atom::Raw(s, hashes) => {
                let fence = "#".repeat(*hashes as usize);
                format!("r{fence}\"{s}\"{fence}")
            }
            Atom::Byte(s) => format!("b\"{s}\""),
            Atom::CharLit(c) => format!("'{c}'"),
            Atom::Lifetime(l) => format!("&'{l} "),
        }
    }
}

fn atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        cooked_payload().prop_map(Atom::Line),
        (chars_from(BLOCK, 0..24), 1u8..4).prop_map(|(s, d)| Atom::Block(s, d)),
        cooked_payload().prop_map(Atom::Cooked),
        (chars_from(RAW, 0..24), 0u8..4).prop_map(|(s, h)| Atom::Raw(s, h)),
        cooked_payload().prop_map(Atom::Byte),
        (0usize..26).prop_map(|i| Atom::CharLit((b'a' + i as u8) as char)),
        (chars_from(LOWER, 1..2), chars_from(IDENT_CONT, 0..6))
            .prop_map(|(h, t)| Atom::Lifetime(format!("{h}{t}"))),
    ]
}

proptest! {
    /// Identifiers interleaved with distractor atoms survive lexing in
    /// order; nothing inside the atoms leaks out as an identifier.
    #[test]
    fn idents_survive_distractors(
        pairs in prop::collection::vec((ident(), atom()), 0..12)
    ) {
        let mut src = String::new();
        let mut planted = Vec::new();
        for (id, distractor) in &pairs {
            src.push_str(id);
            src.push(' ');
            planted.push(id.clone());
            src.push_str(&distractor.render());
            src.push(' ');
        }
        let lexed = lex(&src);
        let got: Vec<String> = lexed
            .tokens
            .iter()
            // Lifetime atoms contribute a `&` punct + Lifetime token, char
            // literals a Char token — neither is an Ident. Raw strings and
            // byte strings must absorb their `r`/`b` prefix.
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect();
        prop_assert_eq!(got, planted, "source was:\n{}", src);
    }

    /// Totality: the lexer never panics and positions stay sane (lines
    /// nondecreasing, columns 1-based), whatever bytes it is fed.
    #[test]
    fn lexer_is_total(codes in prop::collection::vec(any::<u32>(), 0..200)) {
        let src: String = codes
            .into_iter()
            .map(|x| char::from_u32(x % 0x11_0000).unwrap_or('\u{FFFD}'))
            .collect();
        let lexed = lex(&src);
        let mut last = 1;
        for t in &lexed.tokens {
            prop_assert!(t.line >= last, "line went backwards at {:?}", t);
            prop_assert!(t.col >= 1);
            last = t.line;
        }
    }

    /// A `//` inside any string form never starts a comment: a sentinel
    /// identifier planted after such a string stays visible, and no
    /// phantom comment is recorded.
    #[test]
    fn slashes_in_strings_do_not_comment(
        pre in chars_from(LOWER, 0..8),
        post in chars_from(LOWER, 0..8),
        hashes in 0u8..3,
    ) {
        let payload = format!("{pre}//{post}");
        let fence = "#".repeat(hashes as usize);
        for src in [
            format!("let a = \"{payload}\"; sentinel"),
            format!("let a = r{fence}\"{payload}\"{fence}; sentinel"),
            format!("let a = b\"{payload}\"; sentinel"),
        ] {
            let lexed = lex(&src);
            prop_assert!(
                lexed.tokens.iter().any(|t| t.is_ident("sentinel")),
                "sentinel swallowed in: {src}"
            );
            prop_assert!(lexed.comments.is_empty(), "phantom comment in: {src}");
        }
    }

    /// Comment payloads never produce tokens even when they quote string
    /// fences: a line comment consumes everything to end-of-line.
    #[test]
    fn fences_do_not_cross(s in chars_from(BLOCK, 0..20)) {
        let lexed = lex(&format!("// {s}\nafter"));
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(idents, vec!["after"]);
        prop_assert_eq!(lexed.comments.len(), 1);
    }
}
