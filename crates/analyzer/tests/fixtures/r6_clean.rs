// Fixture twin of r6_violation.rs: a contributor may import event-tier
// modules and take timing values as plain data parameters.
use craqr_core::tuple::CrowdTuple;
use craqr_stats::fnv1a64;

pub fn render_row(t: &CrowdTuple, busy_ns: u64) -> u64 {
    // `busy_ns` arrived as data; the contributor never reads a clock.
    fnv1a64(format!("{t:?} {busy_ns}").as_bytes())
}
