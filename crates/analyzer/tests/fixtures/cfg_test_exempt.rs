// Fixture: inline `#[cfg(test)] mod` bodies are exempt from every rule
// — tests may time, hash-iterate, and panic freely.
pub fn shippable() -> u64 {
    7
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    use std::time::Instant;

    #[test]
    fn tests_may_do_anything() {
        let t0 = Instant::now();
        let mut m: HashMap<u32, u32> = HashMap::new();
        m.insert(1, 2);
        for (k, v) in m.iter() {
            assert!(k < v);
        }
        let _ = fast_monotonic_ns();
        let _rng = thread_rng();
        let p = &7u64 as *const u64;
        let _ = unsafe { *p };
        assert!(t0.elapsed().as_nanos() > 0);
    }
}
