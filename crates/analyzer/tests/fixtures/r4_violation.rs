// Fixture: `unsafe` without the required `// SAFETY:` comment. Twin:
// r4_clean.rs.
pub fn bare_unsafe(p: *const u64) -> u64 {
    unsafe { *p } // expect: R4
}

// SAFETY: this comment is too far from the block it describes —
// two blank code lines below break the run.
pub fn stale_safety_comment(p: *const u64) -> u64 {
    let _unrelated = 1u64;
    unsafe { *p } // expect: R4
}
