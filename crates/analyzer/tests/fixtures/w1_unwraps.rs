// Fixture: advisory W1 — unwraps in a CLI binary (a [warn] unwrap
// path). Warnings, not errors; fatal only under --deny.
pub fn main_like(arg: Option<&str>) {
    let spec = arg.unwrap(); // expect: W1
    let parsed: u32 = spec.parse().unwrap(); // expect: W1
    let detail = spec.split(':').next().expect("split yields one piece"); // expect: W1
    println!("{parsed} {detail}");

    // craqr-lint: allow(W1): internal invariant — the vec is non-empty by construction
    let first = vec![1].pop().unwrap();
    println!("{first}");
}
