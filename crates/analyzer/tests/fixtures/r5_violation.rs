// Fixture: float formatting off the shortest-roundtrip helper, in a
// checksum-contributor module. Twin: r5_clean.rs.
use std::fmt::Write;

pub fn render(rate: f64, p95: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("rate = {rate}\n")); // expect: R5
    out.push_str(&format!("p95 = {:.3}\n", p95)); // expect: R5
    out.push_str(&format!("debug = {:?}\n", rate)); // expect: R5
    out.push_str(&format!("sci = {:e}\n", 10)); // expect: R5
    let _ = writeln!(out, "w = {}", p95); // expect: R5
    out
}
