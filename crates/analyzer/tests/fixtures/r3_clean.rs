// Fixture twin of r3_violation.rs: all randomness derives from the run
// seed through the craqr-stats helpers — legal in any tier.
use craqr_stats::{seeded_rng, sub_rng};

pub fn seeded_streams(master_seed: u64) -> u64 {
    let mut root = seeded_rng(master_seed);
    let mut mine = sub_rng(master_seed, "fixture-component");
    root.gen::<u64>() ^ mine.gen::<u64>()
}
