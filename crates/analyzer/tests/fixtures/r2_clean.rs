// Fixture twin of r2_violation.rs: deterministic access patterns that
// must produce zero findings in an event-tier module.
use std::collections::{BTreeMap, HashMap, HashSet};

pub struct Acc {
    counts: HashMap<u32, f64>,
    ordered: BTreeMap<u32, f64>,
}

impl Acc {
    /// BTree iteration is key-ordered and always legal.
    pub fn btree_total(&self) -> f64 {
        self.ordered.values().sum()
    }

    /// Lookups, entry, and removal never observe hash order.
    pub fn lookups(&mut self, key: u32) -> f64 {
        let _ = self.counts.contains_key(&key);
        let _ = self.counts.get(&key);
        *self.counts.entry(key).or_insert(0.0)
    }

    /// The sanctioned escape hatch: collect, sort, then use.
    pub fn sorted_keys(&self) -> Vec<u32> {
        // craqr-lint: allow(R2): keys are collected and sorted on the next line
        let mut ks: Vec<u32> = self.counts.keys().copied().collect();
        ks.sort_unstable();
        ks
    }
}

/// A *different* struct's `counts` field is not this file's hash map.
pub struct Other {
    pub counts: Vec<f64>,
}

pub fn other_iteration(o: &Other) -> f64 {
    o.counts.iter().sum()
}

pub fn membership(members: &HashSet<u32>, probe: u32) -> bool {
    members.contains(&probe)
}
