// Fixture: clock reads in an event-tier module. Twin: r1_clean.rs
// (identical reads, timing-tier classification, zero findings).
use std::time::Instant;
use std::time::SystemTime;

pub fn naive_epoch_timer() -> u64 {
    let t0 = Instant::now(); // expect: R1
    let ns = fast_monotonic_ns(); // expect: R1
    let busy = crate::exec::thread_busy_ns(); // expect: R1
    let _wall = SystemTime::now(); // expect: R1
    t0.elapsed().as_nanos() as u64 + ns + busy
}

pub fn masked_mentions_are_not_findings() -> &'static str {
    // Instant::now() inside a comment is never a finding, and neither is
    // a string: the lexer masks both.
    "fast_monotonic_ns() and SystemTime::now() are just text here"
}
