// Fixture twin of r1_violation.rs: the same reads are sanctioned in a
// module the manifest lists under [tiers] timing.
use std::time::Instant;
use std::time::SystemTime;

pub fn sanctioned_timer() -> u64 {
    let t0 = Instant::now();
    let ns = fast_monotonic_ns();
    let busy = crate::exec::thread_busy_ns();
    let _wall = SystemTime::now();
    t0.elapsed().as_nanos() as u64 + ns + busy
}
