// Fixture twin of r5_violation.rs: canonical rendering done right —
// floats go through the shortest-roundtrip helper, checksums stay hex.
use craqr_stats::text::format_float;
use std::fmt::Write;

pub fn render(rate: f64, p95: f64, checksum: u64, name: &str, n: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("rate = {}\n", format_float(rate)));
    out.push_str(&format!("p95 = {}\n", format_float(p95)));
    out.push_str(&format!("checksum: {checksum:#018x}\n"));
    out.push_str(&format!("name = {name}, n = {n}\n"));
    let _ = writeln!(out, "rows = {}", n);
    out
}
