// Fixture twin of r4_violation.rs: every `unsafe` is annotated.
pub fn annotated(p: *const u64) -> u64 {
    // SAFETY: the caller guarantees `p` is valid and aligned.
    unsafe { *p }
}

pub fn wrapped_annotation(p: *const u64) -> u64 {
    // SAFETY: a justification can wrap across several comment lines;
    // the contiguous run ends on the line directly above the block.
    unsafe { *p }
}

pub fn block_comment_annotation(p: *const u64) -> u64 {
    /* SAFETY: block comments count too,
    even multi-line ones. */
    unsafe { *p }
}

pub fn trailing_annotation(p: *const u64) -> u64 {
    unsafe { *p } // SAFETY: same-line trailing comments also cover the block
}
