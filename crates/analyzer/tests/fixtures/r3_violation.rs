// Fixture: unseeded RNG construction in an event-tier module. Twin:
// r3_clean.rs. Also linted under an rng-helper classification, where
// the same tokens are sanctioned (zero findings).
pub fn entropy_everywhere() -> u64 {
    let mut rng = thread_rng(); // expect: R3
    let seeded_from_os = StdRng::from_entropy(); // expect: R3
    let direct = OsRng; // expect: R3
    rng.gen::<u64>() ^ seeded_from_os.gen::<u64>() ^ direct.gen::<u64>()
}
