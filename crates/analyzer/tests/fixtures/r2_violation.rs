// Fixture: hash-order iteration in an event-tier module. Twin:
// r2_clean.rs (sorted/BTree iteration and lookup-only access).
use std::collections::{HashMap, HashSet};

pub struct Acc {
    counts: HashMap<u32, f64>,
}

impl Acc {
    pub fn float_total(&self) -> f64 {
        let mut t = 0.0;
        for v in self.counts.values() { // expect: R2
            t += v;
        }
        t
    }

    pub fn drain_all(&mut self) -> usize {
        self.counts.drain().count() // expect: R2
    }
}

pub fn keys_of(m: &HashMap<u32, u32>) -> Vec<u32> {
    m.keys().copied().collect() // expect: R2
}

pub fn visit(members: HashSet<u32>) {
    for s in members { // expect: R2
        let _ = s;
    }
}

pub fn fresh() -> Vec<(u32, u32)> {
    let pairs = HashMap::new();
    pairs.into_iter().collect() // expect: R2
}
