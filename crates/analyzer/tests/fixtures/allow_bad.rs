// Fixture: A0 — the escape hatch itself is policed.
pub fn unjustified() -> u64 {
    // craqr-lint: allow(R1):
    fast_monotonic_ns()
}

pub fn unknown_rule() -> u64 {
    // craqr-lint: allow(R9): no such rule
    fast_monotonic_ns()
}

pub fn stale() -> u64 {
    // craqr-lint: allow(R2): nothing on the next line iterates a hash map
    7
}
