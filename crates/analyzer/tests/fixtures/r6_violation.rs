// Fixture: a checksum contributor importing timing-tier modules. Twin:
// r6_clean.rs. Linted as module `craqr-runlog::codec` with timing =
// ["craqr-core::exec", "craqr-runlog::clockmod"].
use craqr_core::exec::thread_busy_ns; // expect: R6
use craqr_core::{tuple::CrowdTuple, exec::fast_monotonic_ns}; // expect: R6

pub fn stamp() -> u64 {
    crate::clockmod::read_ns() // expect: R6
}

pub fn qualified() -> u64 {
    craqr_core::exec::fast_monotonic_ns() // expect: R1 R6
}
