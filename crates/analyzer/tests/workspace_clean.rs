//! Meta-test: the workspace itself must be lint-clean under the
//! checked-in `lint.toml`. This is the same check CI's
//! `lint-determinism` job runs via the `craqr-lint` binary; keeping it
//! as a cargo test means `cargo test` alone catches a regression (a new
//! clock read in the event tier, a stale allow, ...) without the CI
//! round-trip.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let manifest_path = root.join("lint.toml");
    let text = std::fs::read_to_string(&manifest_path)
        .unwrap_or_else(|e| panic!("{}: {e}", manifest_path.display()));
    let manifest = craqr_analyzer::manifest::parse(&text).expect("lint.toml parses");
    let findings = craqr_analyzer::lint_workspace(&root, &manifest).expect("workspace walk");
    if !findings.is_empty() {
        for f in &findings {
            eprintln!("{f}");
        }
        panic!(
            "workspace has {} lint finding(s); run `cargo run -p craqr-analyzer --bin \
             craqr-lint -- --root .` for details, and see `craqr-lint --explain <rule>`",
            findings.len()
        );
    }
}
