//! The operator abstraction.

/// An input port index on an operator (0 for single-input operators; the
/// `U`nion operator takes its operands on ports 0 and 1, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputPort(pub u16);

/// An output port index (the `P`artition operator emits on one port per
/// sub-region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutputPort(pub u16);

/// A recycling pool of batch buffers.
///
/// The executor's hot path moves every batch through buffers drawn from a
/// pool instead of allocating fresh `Vec`s per hop: once the pool has
/// warmed up (a few batches through the widest fan-out), pushes are
/// allocation-free. Buffers returned through [`BatchPool::put`] keep their
/// capacity, bounded on both axes so a single burst cannot pin memory
/// forever: at most `max_retained` buffers are held, and a buffer whose
/// capacity exceeds `max_capacity` elements is dropped instead of
/// retained (steady-state batches re-warm the pool at their own size).
#[derive(Debug)]
pub struct BatchPool<T> {
    free: Vec<Vec<T>>,
    max_retained: usize,
    max_capacity: usize,
}

impl<T> Default for BatchPool<T> {
    fn default() -> Self {
        Self::with_limits(16, 1 << 16)
    }
}

impl<T> BatchPool<T> {
    /// A pool retaining at most `max_retained` free buffers, none with
    /// capacity above `max_capacity` elements.
    pub fn with_limits(max_retained: usize, max_capacity: usize) -> Self {
        Self { free: Vec::new(), max_retained, max_capacity }
    }

    /// Takes an empty buffer (pooled capacity when available).
    #[inline]
    pub fn take(&mut self) -> Vec<T> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool, clearing it but keeping its capacity.
    /// Oversized buffers (capacity above the pool's element cap) are
    /// dropped so burst allocations don't stay pinned.
    #[inline]
    pub fn put(&mut self, mut buf: Vec<T>) {
        buf.clear();
        if self.free.len() < self.max_retained && buf.capacity() <= self.max_capacity {
            self.free.push(buf);
        }
    }

    /// Number of free buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.len()
    }
}

/// Collects an operator's emissions, one buffer per output port.
///
/// Emitters are reusable: the executor keeps one per topology and recycles
/// its port buffers through a [`BatchPool`] ([`Emitter::reset_with`] /
/// [`Emitter::take_buffer`]), so steady-state pushes allocate nothing.
/// [`Emitter::new`] + [`Emitter::into_buffers`] remain for one-shot use
/// (driving a single operator outside a topology, e.g. a final merge
/// stage over already-collected buffers).
#[derive(Debug)]
pub struct Emitter<T> {
    buffers: Vec<Vec<T>>,
    /// Number of currently active ports; emissions beyond it panic.
    live: usize,
}

impl<T> Emitter<T> {
    /// Creates an emitter with one fresh buffer per output port.
    pub fn new(ports: usize) -> Self {
        let live = ports.max(1);
        Self { buffers: (0..live).map(|_| Vec::new()).collect(), live }
    }

    /// An empty emitter with no active ports; activate with
    /// [`Emitter::reset_with`] before use.
    pub fn idle() -> Self {
        Self { buffers: Vec::new(), live: 0 }
    }

    /// Re-activates the emitter for an operator with `ports` output ports,
    /// drawing any missing buffers from `pool`. All active buffers are
    /// guaranteed empty afterwards.
    pub fn reset_with(&mut self, ports: usize, pool: &mut BatchPool<T>) {
        let need = ports.max(1);
        while self.buffers.len() < need {
            self.buffers.push(pool.take());
        }
        self.live = need;
        debug_assert!(self.buffers[..need].iter().all(Vec::is_empty), "dirty emitter reset");
    }

    /// Number of active output ports.
    #[inline]
    pub fn ports(&self) -> usize {
        self.live
    }

    /// Number of tuples currently buffered on a port.
    ///
    /// # Panics
    /// Panics when the port is not active.
    #[inline]
    #[track_caller]
    pub fn port_len(&self, port: usize) -> usize {
        assert!(port < self.live, "port {port} beyond the {} active ports", self.live);
        self.buffers[port].len()
    }

    /// Moves a port's buffer out, replacing it with an empty pooled one.
    ///
    /// # Panics
    /// Panics when the port is not active.
    #[track_caller]
    pub fn take_buffer(&mut self, port: usize, pool: &mut BatchPool<T>) -> Vec<T> {
        assert!(port < self.live, "port {port} beyond the {} active ports", self.live);
        std::mem::replace(&mut self.buffers[port], pool.take())
    }

    /// Emits one tuple on a port.
    ///
    /// # Panics
    /// Panics when the port exceeds the operator's declared
    /// [`Operator::output_ports`].
    #[inline]
    #[track_caller]
    pub fn emit(&mut self, port: OutputPort, tuple: T) {
        let p = port.0 as usize;
        assert!(p < self.live, "emit on undeclared port {p} (have {})", self.live);
        self.buffers[p].push(tuple);
    }

    /// Emits a whole batch on a port.
    #[track_caller]
    pub fn emit_batch(&mut self, port: OutputPort, batch: impl IntoIterator<Item = T>) {
        let p = port.0 as usize;
        assert!(p < self.live, "emit on undeclared port {p} (have {})", self.live);
        self.buffers[p].extend(batch);
    }

    /// Consumes the emitter, returning the active per-port buffers.
    pub fn into_buffers(mut self) -> Vec<Vec<T>> {
        self.buffers.truncate(self.live.max(1));
        self.buffers
    }
}

/// A streaming operator over tuples of type `T`.
///
/// Operators are push-driven: the executor hands them an input batch and an
/// [`Emitter`]; they synchronously emit any number of tuples on any of
/// their output ports. State (rate trackers, estimators, pending windows)
/// lives inside the operator — hence `&mut self`.
pub trait Operator<T>: Send {
    /// Human-readable name used in plans, metrics, and diagnostics.
    fn name(&self) -> &str;

    /// Number of output ports (default 1).
    fn output_ports(&self) -> usize {
        1
    }

    /// Processes one input batch arriving on `port`.
    fn process(&mut self, port: InputPort, batch: &[T], out: &mut Emitter<T>);

    /// Checked downcast hook for reconfigurable operators.
    ///
    /// Planners that re-parameterize operators in place (CrAQR re-rates its
    /// thinning operators when a chain is spliced) override this to expose
    /// the concrete type; the default hides it.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Wraps a closure as a single-output operator — handy for tests and for
/// one-off glue steps in examples.
pub struct FnOperator<T, F>
where
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, F> FnOperator<T, F>
where
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    /// Creates a named closure operator.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self { name: name.into(), f, _marker: std::marker::PhantomData }
    }
}

impl<T, F> Operator<T> for FnOperator<T, F>
where
    T: Send,
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: InputPort, batch: &[T], out: &mut Emitter<T>) {
        (self.f)(batch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_pool_drops_oversized_buffers() {
        let mut pool: BatchPool<u32> = BatchPool::with_limits(4, 8);
        pool.put(Vec::with_capacity(8));
        assert_eq!(pool.retained(), 1, "at-cap buffer is retained");
        pool.put(Vec::with_capacity(1_000));
        assert_eq!(pool.retained(), 1, "burst buffer must not be pinned");
        assert!(pool.take().capacity() <= 8);
    }

    #[test]
    fn emitter_routes_to_ports() {
        let mut e: Emitter<u32> = Emitter::new(2);
        e.emit(OutputPort(0), 1);
        e.emit(OutputPort(1), 2);
        e.emit_batch(OutputPort(1), [3, 4]);
        let bufs = e.into_buffers();
        assert_eq!(bufs[0], vec![1]);
        assert_eq!(bufs[1], vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn emitting_on_undeclared_port_panics() {
        let mut e: Emitter<u32> = Emitter::new(1);
        e.emit(OutputPort(3), 1);
    }

    #[test]
    fn fn_operator_processes_batches() {
        let mut op = FnOperator::new("double", |batch: &[u32], out: &mut Emitter<u32>| {
            for &x in batch {
                out.emit(OutputPort(0), x * 2);
            }
        });
        assert_eq!(op.name(), "double");
        let mut e = Emitter::new(op.output_ports());
        op.process(InputPort(0), &[1, 2, 3], &mut e);
        assert_eq!(e.into_buffers()[0], vec![2, 4, 6]);
    }
}
