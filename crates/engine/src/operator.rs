//! The operator abstraction.

/// An input port index on an operator (0 for single-input operators; the
/// `U`nion operator takes its operands on ports 0 and 1, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InputPort(pub u16);

/// An output port index (the `P`artition operator emits on one port per
/// sub-region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OutputPort(pub u16);

/// Collects an operator's emissions, one buffer per output port.
#[derive(Debug)]
pub struct Emitter<T> {
    buffers: Vec<Vec<T>>,
}

impl<T> Emitter<T> {
    /// Creates an emitter with one buffer per output port.
    ///
    /// Normally the executor builds emitters; constructing one directly is
    /// useful when driving a single operator outside a topology (e.g. a
    /// final merge stage over already-collected buffers).
    pub fn new(ports: usize) -> Self {
        Self { buffers: (0..ports.max(1)).map(|_| Vec::new()).collect() }
    }

    /// Emits one tuple on a port.
    ///
    /// # Panics
    /// Panics when the port exceeds the operator's declared
    /// [`Operator::output_ports`].
    #[inline]
    #[track_caller]
    pub fn emit(&mut self, port: OutputPort, tuple: T) {
        self.buffers[port.0 as usize].push(tuple);
    }

    /// Emits a whole batch on a port.
    #[track_caller]
    pub fn emit_batch(&mut self, port: OutputPort, batch: impl IntoIterator<Item = T>) {
        self.buffers[port.0 as usize].extend(batch);
    }

    /// Consumes the emitter, returning the per-port buffers.
    pub fn into_buffers(self) -> Vec<Vec<T>> {
        self.buffers
    }
}

/// A streaming operator over tuples of type `T`.
///
/// Operators are push-driven: the executor hands them an input batch and an
/// [`Emitter`]; they synchronously emit any number of tuples on any of
/// their output ports. State (rate trackers, estimators, pending windows)
/// lives inside the operator — hence `&mut self`.
pub trait Operator<T>: Send {
    /// Human-readable name used in plans, metrics, and diagnostics.
    fn name(&self) -> &str;

    /// Number of output ports (default 1).
    fn output_ports(&self) -> usize {
        1
    }

    /// Processes one input batch arriving on `port`.
    fn process(&mut self, port: InputPort, batch: &[T], out: &mut Emitter<T>);

    /// Checked downcast hook for reconfigurable operators.
    ///
    /// Planners that re-parameterize operators in place (CrAQR re-rates its
    /// thinning operators when a chain is spliced) override this to expose
    /// the concrete type; the default hides it.
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        None
    }
}

/// Wraps a closure as a single-output operator — handy for tests and for
/// one-off glue steps in examples.
pub struct FnOperator<T, F>
where
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    name: String,
    f: F,
    _marker: std::marker::PhantomData<fn(T)>,
}

impl<T, F> FnOperator<T, F>
where
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    /// Creates a named closure operator.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self { name: name.into(), f, _marker: std::marker::PhantomData }
    }
}

impl<T, F> Operator<T> for FnOperator<T, F>
where
    T: Send,
    F: FnMut(&[T], &mut Emitter<T>) + Send,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: InputPort, batch: &[T], out: &mut Emitter<T>) {
        (self.f)(batch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emitter_routes_to_ports() {
        let mut e: Emitter<u32> = Emitter::new(2);
        e.emit(OutputPort(0), 1);
        e.emit(OutputPort(1), 2);
        e.emit_batch(OutputPort(1), [3, 4]);
        let bufs = e.into_buffers();
        assert_eq!(bufs[0], vec![1]);
        assert_eq!(bufs[1], vec![2, 3, 4]);
    }

    #[test]
    #[should_panic]
    fn emitting_on_undeclared_port_panics() {
        let mut e: Emitter<u32> = Emitter::new(1);
        e.emit(OutputPort(3), 1);
    }

    #[test]
    fn fn_operator_processes_batches() {
        let mut op = FnOperator::new("double", |batch: &[u32], out: &mut Emitter<u32>| {
            for &x in batch {
                out.emit(OutputPort(0), x * 2);
            }
        });
        assert_eq!(op.name(), "double");
        let mut e = Emitter::new(op.output_ports());
        op.process(InputPort(0), &[1, 2, 3], &mut e);
        assert_eq!(e.into_buffers()[0], vec![2, 4, 6]);
    }
}
