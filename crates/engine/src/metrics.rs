//! Per-node execution counters.

use serde::{Deserialize, Serialize};

/// Counters for one operator node.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Tuples received across all input ports.
    pub tuples_in: u64,
    /// Tuples emitted across all output ports.
    pub tuples_out: u64,
    /// Input batches processed.
    pub batches: u64,
}

impl NodeMetrics {
    /// Fraction of input tuples that survived this operator (1 when no
    /// input has arrived yet). For `T`hin this converges to `λ2/λ1`.
    pub fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            1.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }
}

/// A whole-topology metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// `(node name, metrics)` for every live node, in node-id order.
    pub nodes: Vec<(String, NodeMetrics)>,
}

impl TopologyMetrics {
    /// Sum of tuples processed (received) by all nodes — the "work" measure
    /// used to compare shared topologies against per-query processing.
    pub fn total_tuples_processed(&self) -> u64 {
        self.nodes.iter().map(|(_, m)| m.tuples_in).sum()
    }

    /// Looks up a node's metrics by name (first match).
    pub fn by_name(&self, name: &str) -> Option<NodeMetrics> {
        self.nodes.iter().find(|(n, _)| n == name).map(|(_, m)| *m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_of_fresh_node_is_one() {
        assert_eq!(NodeMetrics::default().selectivity(), 1.0);
    }

    #[test]
    fn selectivity_ratio() {
        let m = NodeMetrics { tuples_in: 100, tuples_out: 25, batches: 4 };
        assert!((m.selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn totals_and_lookup() {
        let tm = TopologyMetrics {
            nodes: vec![
                ("F".into(), NodeMetrics { tuples_in: 10, tuples_out: 8, batches: 1 }),
                ("T".into(), NodeMetrics { tuples_in: 8, tuples_out: 4, batches: 1 }),
            ],
        };
        assert_eq!(tm.total_tuples_processed(), 18);
        assert_eq!(tm.by_name("T").unwrap().tuples_out, 4);
        assert!(tm.by_name("missing").is_none());
    }
}
