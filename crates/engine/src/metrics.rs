//! Per-node execution counters.

use serde::{Deserialize, Serialize};

/// Counters for one operator node.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct NodeMetrics {
    /// Tuples received across all input ports.
    pub tuples_in: u64,
    /// Tuples emitted across all output ports.
    pub tuples_out: u64,
    /// Input batches processed.
    pub batches: u64,
    /// Cumulative processing time (nanoseconds) spent inside this
    /// operator's `process` calls. Only accumulated when the owning
    /// topology has a clock installed ([`crate::Topology::set_clock`]);
    /// zero otherwise. Host- and schedule-dependent, so it is **excluded
    /// from equality** (and therefore from every checksummed comparison)
    /// exactly like shard `busy_ns`.
    pub busy_ns: u64,
}

/// Equality ignores `busy_ns`: two runs that processed the same tuples
/// compare equal regardless of how long the host took.
impl PartialEq for NodeMetrics {
    fn eq(&self, other: &Self) -> bool {
        self.tuples_in == other.tuples_in
            && self.tuples_out == other.tuples_out
            && self.batches == other.batches
    }
}

impl Eq for NodeMetrics {}

impl NodeMetrics {
    /// Fraction of input tuples that survived this operator (1 when no
    /// input has arrived yet). For `T`hin this converges to `λ2/λ1`.
    pub fn selectivity(&self) -> f64 {
        if self.tuples_in == 0 {
            1.0
        } else {
            self.tuples_out as f64 / self.tuples_in as f64
        }
    }

    /// Accumulates another node's counters into this one (used when
    /// aggregating many per-cell topologies into a fleet-wide report).
    pub fn absorb(&mut self, other: &NodeMetrics) {
        self.tuples_in += other.tuples_in;
        self.tuples_out += other.tuples_out;
        self.batches += other.batches;
        self.busy_ns += other.busy_ns;
    }
}

/// A whole-topology metrics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TopologyMetrics {
    /// `(node name, metrics)` for every live node, in node-id order.
    pub nodes: Vec<(String, NodeMetrics)>,
}

impl TopologyMetrics {
    /// Sum of tuples processed (received) by all nodes — the "work" measure
    /// used to compare shared topologies against per-query processing.
    pub fn total_tuples_processed(&self) -> u64 {
        self.nodes.iter().map(|(_, m)| m.tuples_in).sum()
    }

    /// Looks up a node's metrics by name (first match).
    pub fn by_name(&self, name: &str) -> Option<NodeMetrics> {
        self.nodes.iter().find(|(n, _)| n == name).map(|(_, m)| *m)
    }

    /// Folds another snapshot into this one **by node name**: nodes present
    /// in both accumulate counter-wise, nodes only in `other` append in
    /// `other`'s order. The reporting hook used to combine per-chain
    /// topologies into one fleet-wide view.
    pub fn absorb(&mut self, other: &TopologyMetrics) {
        for (name, m) in &other.nodes {
            match self.nodes.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.absorb(m),
                None => self.nodes.push((name.clone(), *m)),
            }
        }
    }

    /// Aggregates node counters by operator *kind* — the name prefix before
    /// the first `(` (so `T(1.000→0.500)` and `T(2.000→0.250)` both land
    /// under `T`). Returns `(kind, metrics)` sorted by kind, which gives
    /// scenario reports a stable, parameter-independent acceptance/thinning
    /// summary.
    pub fn by_kind(&self) -> Vec<(String, NodeMetrics)> {
        let mut kinds: Vec<(String, NodeMetrics)> = Vec::new();
        for (name, m) in &self.nodes {
            let kind = name.split('(').next().unwrap_or(name).trim().to_string();
            match kinds.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, agg)) => agg.absorb(m),
                None => kinds.push((kind, *m)),
            }
        }
        kinds.sort_by(|(a, _), (b, _)| a.cmp(b));
        kinds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectivity_of_fresh_node_is_one() {
        assert_eq!(NodeMetrics::default().selectivity(), 1.0);
    }

    #[test]
    fn selectivity_ratio() {
        let m = NodeMetrics { tuples_in: 100, tuples_out: 25, batches: 4, busy_ns: 0 };
        assert!((m.selectivity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn absorb_accumulates_by_name_and_appends_new_nodes() {
        let mut a = TopologyMetrics {
            nodes: vec![(
                "F(λ̄=1.000)".into(),
                NodeMetrics { tuples_in: 5, tuples_out: 4, batches: 1, busy_ns: 0 },
            )],
        };
        let b = TopologyMetrics {
            nodes: vec![
                (
                    "F(λ̄=1.000)".into(),
                    NodeMetrics { tuples_in: 3, tuples_out: 3, batches: 1, busy_ns: 0 },
                ),
                (
                    "T(1.000→0.500)".into(),
                    NodeMetrics { tuples_in: 7, tuples_out: 3, batches: 2, busy_ns: 0 },
                ),
            ],
        };
        a.absorb(&b);
        assert_eq!(a.by_name("F(λ̄=1.000)").unwrap().tuples_in, 8);
        assert_eq!(a.by_name("T(1.000→0.500)").unwrap().tuples_out, 3);
        assert_eq!(a.nodes.len(), 2);
    }

    #[test]
    fn by_kind_groups_parameterized_names() {
        let tm = TopologyMetrics {
            nodes: vec![
                (
                    "T(1.000→0.500)".into(),
                    NodeMetrics { tuples_in: 10, tuples_out: 5, batches: 1, busy_ns: 0 },
                ),
                (
                    "F(λ̄=2.000)".into(),
                    NodeMetrics { tuples_in: 20, tuples_out: 16, batches: 1, busy_ns: 0 },
                ),
                (
                    "T(2.000→0.250)".into(),
                    NodeMetrics { tuples_in: 8, tuples_out: 1, batches: 1, busy_ns: 0 },
                ),
            ],
        };
        let kinds = tm.by_kind();
        assert_eq!(kinds.len(), 2);
        assert_eq!(kinds[0].0, "F");
        assert_eq!(kinds[1].0, "T");
        assert_eq!(kinds[1].1.tuples_in, 18);
        assert_eq!(kinds[1].1.tuples_out, 6);
        assert_eq!(kinds[1].1.batches, 2);
    }

    #[test]
    fn busy_ns_accumulates_but_never_affects_equality() {
        let mut a = NodeMetrics { tuples_in: 5, tuples_out: 5, batches: 1, busy_ns: 100 };
        let b = NodeMetrics { tuples_in: 5, tuples_out: 5, batches: 1, busy_ns: 999 };
        assert_eq!(a, b, "processing time is host-dependent and excluded from equality");
        a.absorb(&b);
        assert_eq!(a.busy_ns, 1099, "absorb still sums the timing");
        assert_eq!(a.tuples_in, 10);
    }

    #[test]
    fn totals_and_lookup() {
        let tm = TopologyMetrics {
            nodes: vec![
                ("F".into(), NodeMetrics { tuples_in: 10, tuples_out: 8, batches: 1, busy_ns: 0 }),
                ("T".into(), NodeMetrics { tuples_in: 8, tuples_out: 4, batches: 1, busy_ns: 0 }),
            ],
        };
        assert_eq!(tm.total_tuples_processed(), 18);
        assert_eq!(tm.by_name("T").unwrap().tuples_out, 4);
        assert!(tm.by_name("missing").is_none());
    }
}
