//! A small push-based streaming dataflow engine.
//!
//! The paper assumes an execution substrate "similar to existing stream
//! processing operators \[5\]–\[7\]" into which PMAT operators are plugged and
//! "connected to form an execution topology" (Sections I, IV). This crate is
//! that substrate, deliberately minimal and fully generic over the tuple
//! type:
//!
//! - [`Operator`]: a named processing step consuming input batches on
//!   numbered input ports and emitting batches on numbered output ports
//!   (the `P`artition operator is the reason ports exist).
//! - [`Topology`]: a DAG of operators plus *sinks* (named collection
//!   points); supports dynamic insertion **and removal** of operators and
//!   edges, because CrAQR inserts and deletes standing queries at runtime
//!   (Section V "Query Insertions" / "Query Deletions").
//! - The executor ([`Topology::push`]): breadth-first batch propagation
//!   with per-node [`NodeMetrics`] — the tuple counts behind the
//!   multi-query-sharing experiments.
//! - [`SharedSink`]: a thread-safe sink handle for collecting fabricated
//!   streams across topologies.
//!
//! # Execution model
//!
//! The engine is intentionally synchronous: CrAQR's topologies are small
//! per-cell chains, and the simulation clock (not wall time) drives
//! everything. Parallelism, when wanted, happens *across* per-cell
//! topologies, which share nothing — the sharded epoch executor in
//! `craqr-core` (`ExecMode::Sharded`) runs whole topologies on worker
//! threads and merges their results deterministically.
//!
//! ## The allocation-free hot path
//!
//! [`Topology::push`] moves every in-flight batch through buffers drawn
//! from a per-topology [`BatchPool`]:
//!
//! - the BFS queue, the [`Emitter`] and its per-port buffers persist
//!   across pushes ([`Emitter::reset_with`] re-activates them without
//!   reallocating);
//! - a batch delivered along an edge *moves* (the `Vec` itself travels,
//!   no copy); fan-out clones go into pooled buffers; sink deliveries
//!   `append` and recycle;
//! - the caller's entry batch is absorbed into the pool after its hop,
//!   and [`BatchPool`] retention caps total buffers held.
//!
//! After warm-up (a few batches through the widest fan-out) a push
//! performs **zero heap allocation** in the executor itself; only
//! operators that build per-batch state (estimator fits, histograms)
//! still allocate. [`Topology::pooled_buffers`] exposes the pool level
//! for observability.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod graph;
mod metrics;
mod operator;

pub use graph::{NodeId, SinkId, Target, Topology};
pub use metrics::{NodeMetrics, TopologyMetrics};
pub use operator::{BatchPool, Emitter, FnOperator, InputPort, Operator, OutputPort};

use parking_lot::Mutex;
use std::sync::Arc;

/// A thread-safe, shareable sink buffer.
///
/// Per-cell topologies can run on different threads while the fabricator
/// merges their outputs through one `SharedSink`.
#[derive(Debug, Default)]
pub struct SharedSink<T> {
    buf: Mutex<Vec<T>>,
}

impl<T> SharedSink<T> {
    /// Creates an empty shared sink.
    pub fn new() -> Arc<Self> {
        Arc::new(Self { buf: Mutex::new(Vec::new()) })
    }

    /// Appends a batch.
    pub fn push_batch(&self, batch: impl IntoIterator<Item = T>) {
        self.buf.lock().extend(batch);
    }

    /// Takes everything collected so far.
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut self.buf.lock())
    }

    /// Number of buffered items.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_sink_collects_across_clones() {
        let sink = SharedSink::new();
        let s2 = Arc::clone(&sink);
        sink.push_batch([1, 2]);
        s2.push_batch([3]);
        assert_eq!(sink.len(), 3);
        let mut got = sink.drain();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert!(sink.is_empty());
    }
}
