//! The execution topology: a dynamic DAG of operators and sinks.

use crate::metrics::{NodeMetrics, TopologyMetrics};
use crate::operator::{BatchPool, Emitter, InputPort, Operator, OutputPort};
use std::collections::VecDeque;

/// Identifier of an operator node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifier of a sink (a named stream collection point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SinkId(pub(crate) usize);

/// Where an edge delivers tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Another operator's input port.
    Node(NodeId, InputPort),
    /// A sink buffer.
    Sink(SinkId),
}

struct NodeSlot<T> {
    operator: Box<dyn Operator<T>>,
    /// Outgoing edges, indexed by output port.
    edges: Vec<Vec<Target>>,
    metrics: NodeMetrics,
}

/// Routes one batch to a target: node deliveries enqueue the buffer
/// (ownership moves along the edge); sink deliveries append the tuples and
/// recycle the buffer. A free function so the executor can split-borrow
/// the scratch queue/pool against `sinks`.
fn deliver<T>(
    target: Target,
    mut buf: Vec<T>,
    queue: &mut VecDeque<(NodeId, InputPort, Vec<T>)>,
    sinks: &mut [Option<Vec<T>>],
    pool: &mut BatchPool<T>,
) {
    match target {
        Target::Node(nid, port) => queue.push_back((nid, port, buf)),
        Target::Sink(sid) => {
            if let Some(Some(sink)) = sinks.get_mut(sid.0) {
                sink.append(&mut buf);
            }
            pool.put(buf);
        }
    }
}

/// A dynamic dataflow DAG.
///
/// CrAQR materializes one topology per *grid cell* (the hashmap value of
/// Section V) and rewires it as queries come and go, so the graph supports
/// node removal and edge re-targeting, not just construction.
///
/// The executor ([`Topology::push`]) is breadth-first and synchronous. The
/// graph must stay acyclic; a hop budget proportional to the node count
/// catches accidental cycles and panics instead of spinning.
pub struct Topology<T> {
    nodes: Vec<Option<NodeSlot<T>>>,
    sinks: Vec<Option<Vec<T>>>,
    live_nodes: usize,
    scratch: PushScratch<T>,
    /// Optional nanosecond clock for per-node processing time. `None`
    /// (the default) means `push` never reads a clock and
    /// [`NodeMetrics::busy_ns`] stays zero — instrumentation is byte- and
    /// cycle-inert unless a caller opts in via [`Topology::set_clock`].
    clock: Option<fn() -> u64>,
}

/// Reusable executor state: the BFS queue, the buffer pool every in-flight
/// batch is drawn from, the persistent emitter, and a target scratch list.
/// Kept on the topology so repeated [`Topology::push`] calls are
/// allocation-free once warmed up.
struct PushScratch<T> {
    queue: VecDeque<(NodeId, InputPort, Vec<T>)>,
    pool: BatchPool<T>,
    emitter: Emitter<T>,
    targets: Vec<Target>,
}

impl<T> Default for PushScratch<T> {
    fn default() -> Self {
        Self {
            queue: VecDeque::new(),
            pool: BatchPool::default(),
            emitter: Emitter::idle(),
            targets: Vec::new(),
        }
    }
}

impl<T: Clone> Default for Topology<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Topology<T> {
    /// An empty topology.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            sinks: Vec::new(),
            live_nodes: 0,
            scratch: PushScratch::default(),
            clock: None,
        }
    }

    /// Installs (or removes) the nanosecond clock used to accumulate
    /// [`NodeMetrics::busy_ns`] around every operator `process` call.
    /// With no clock installed, `push` performs zero clock reads and
    /// `busy_ns` stays zero. The measured value is whatever the supplied
    /// clock measures — callers should pass a *cheap* reader (the clock
    /// fires twice per batch; a vDSO monotonic read keeps instrumented
    /// runs within a couple percent of uninstrumented ones, where a
    /// thread-CPU syscall would dwarf small operators).
    pub fn set_clock(&mut self, clock: Option<fn() -> u64>) {
        self.clock = clock;
    }

    /// Adds an operator, returning its node id.
    pub fn add_operator(&mut self, operator: Box<dyn Operator<T>>) -> NodeId {
        let ports = operator.output_ports();
        let slot = NodeSlot {
            operator,
            edges: (0..ports.max(1)).map(|_| Vec::new()).collect(),
            metrics: NodeMetrics::default(),
        };
        self.live_nodes += 1;
        // Reuse a free slot if any (keeps ids dense under churn).
        if let Some(idx) = self.nodes.iter().position(Option::is_none) {
            self.nodes[idx] = Some(slot);
            NodeId(idx)
        } else {
            self.nodes.push(Some(slot));
            NodeId(self.nodes.len() - 1)
        }
    }

    /// Adds a sink, returning its id.
    pub fn add_sink(&mut self) -> SinkId {
        if let Some(idx) = self.sinks.iter().position(Option::is_none) {
            self.sinks[idx] = Some(Vec::new());
            SinkId(idx)
        } else {
            self.sinks.push(Some(Vec::new()));
            SinkId(self.sinks.len() - 1)
        }
    }

    /// Connects `from`'s output port to a target.
    ///
    /// # Panics
    /// Panics when the node, port, or target does not exist, or when the
    /// edge already exists (double-delivery bug).
    #[track_caller]
    pub fn connect(&mut self, from: NodeId, port: OutputPort, target: Target) {
        match target {
            Target::Node(nid, _) => assert!(self.node_exists(nid), "target node {nid:?} missing"),
            Target::Sink(sid) => {
                assert!(self.sinks.get(sid.0).is_some_and(Option::is_some), "sink {sid:?} missing")
            }
        }
        let slot = self.slot_mut(from);
        let edges = slot
            .edges
            .get_mut(port.0 as usize)
            .unwrap_or_else(|| panic!("node has no output port {port:?}"));
        assert!(!edges.contains(&target), "edge already exists");
        edges.push(target);
    }

    /// Removes an edge; returns `true` when it existed.
    pub fn disconnect(&mut self, from: NodeId, port: OutputPort, target: Target) -> bool {
        let slot = self.slot_mut(from);
        let Some(edges) = slot.edges.get_mut(port.0 as usize) else {
            return false;
        };
        let before = edges.len();
        edges.retain(|t| *t != target);
        edges.len() != before
    }

    /// Removes a node, detaching every edge that references it.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn remove_node(&mut self, node: NodeId) {
        assert!(self.node_exists(node), "node {node:?} missing");
        self.nodes[node.0] = None;
        self.live_nodes -= 1;
        for slot in self.nodes.iter_mut().flatten() {
            for edges in &mut slot.edges {
                edges.retain(|t| !matches!(t, Target::Node(nid, _) if *nid == node));
            }
        }
    }

    /// Removes a sink and its incoming edges, returning its final contents.
    ///
    /// # Panics
    /// Panics when the sink does not exist.
    #[track_caller]
    pub fn remove_sink(&mut self, sink: SinkId) -> Vec<T> {
        let buf = self.sinks[sink.0].take().unwrap_or_else(|| panic!("sink {sink:?} missing"));
        for slot in self.nodes.iter_mut().flatten() {
            for edges in &mut slot.edges {
                edges.retain(|t| !matches!(t, Target::Sink(sid) if *sid == sink));
            }
        }
        buf
    }

    /// Number of live operator nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of free batch buffers retained by the executor's pool —
    /// observability for the allocation-free hot path (a warmed-up
    /// topology holds a small, stable number here).
    pub fn pooled_buffers(&self) -> usize {
        self.scratch.pool.retained()
    }

    /// `true` when the node id refers to a live node.
    pub fn node_exists(&self, node: NodeId) -> bool {
        self.nodes.get(node.0).is_some_and(Option::is_some)
    }

    /// The operator name of a node.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn node_name(&self, node: NodeId) -> &str {
        self.slot(node).operator.name()
    }

    /// Outgoing targets of `(node, port)` (empty when the port is unwired).
    pub fn targets(&self, node: NodeId, port: OutputPort) -> &[Target] {
        self.slot(node).edges.get(port.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// All downstream targets of a node across its ports.
    pub fn all_targets(&self, node: NodeId) -> Vec<Target> {
        self.slot(node).edges.iter().flatten().copied().collect()
    }

    /// Nodes (with port) feeding into `node`.
    pub fn upstream_of(&self, node: NodeId) -> Vec<(NodeId, OutputPort)> {
        let mut ups = Vec::new();
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            for (p, edges) in slot.edges.iter().enumerate() {
                if edges.iter().any(|t| matches!(t, Target::Node(nid, _) if *nid == node)) {
                    ups.push((NodeId(idx), OutputPort(p as u16)));
                }
            }
        }
        ups
    }

    /// Number of distinct downstream consumers of a node — `> 1` marks the
    /// *branching points* of the paper's deletion rule.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.all_targets(node).len()
    }

    /// Pushes a batch into `entry`'s input port 0 and runs the dataflow to
    /// quiescence.
    ///
    /// The hot path is allocation-free in steady state: in-flight batches,
    /// fan-out copies, and emitter port buffers are all recycled through
    /// the topology's [`BatchPool`], and the BFS queue and emitter persist
    /// across pushes. Only pool warm-up (the first few batches through the
    /// widest fan-out) allocates.
    ///
    /// # Panics
    /// Panics when `entry` is missing or a cycle keeps batches circulating
    /// beyond the hop budget.
    #[track_caller]
    pub fn push(&mut self, entry: NodeId, batch: Vec<T>) {
        assert!(self.node_exists(entry), "entry node {entry:?} missing");
        // Scratch is moved out so the executor can split-borrow it against
        // `self.nodes` / `self.sinks`; it is restored on every exit path
        // except a panic (which poisons the whole topology anyway).
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.queue.push_back((entry, InputPort(0), batch));
        // Hop budget: every delivered batch traverses ≥1 edge of a DAG with
        // `live_nodes` nodes; fanout ≤ total edges. A generous multiplier
        // catches cycles without bounding legitimate fan-out.
        let mut budget = 64 * (self.live_nodes + 1) * (self.live_nodes + 1);
        while let Some((nid, port, buf)) = scratch.queue.pop_front() {
            assert!(
                budget > 0,
                "hop budget exhausted at node {nid:?} ({}): is the topology cyclic?",
                self.nodes
                    .get(nid.0)
                    .and_then(Option::as_ref)
                    .map_or("removed", |s| s.operator.name()),
            );
            budget -= 1;
            if buf.is_empty() {
                scratch.pool.put(buf);
                continue;
            }
            let Some(slot) = self.nodes.get_mut(nid.0).and_then(Option::as_mut) else {
                // Node removed while batches were in flight: drop silently,
                // matching a DSMS tearing down a query mid-stream.
                scratch.pool.put(buf);
                continue;
            };
            slot.metrics.tuples_in += buf.len() as u64;
            slot.metrics.batches += 1;
            let ports = slot.operator.output_ports().max(1);
            scratch.emitter.reset_with(ports, &mut scratch.pool);
            match self.clock {
                Some(clock) => {
                    let started = clock();
                    slot.operator.process(port, &buf, &mut scratch.emitter);
                    slot.metrics.busy_ns += clock().saturating_sub(started);
                }
                None => slot.operator.process(port, &buf, &mut scratch.emitter),
            }
            scratch.pool.put(buf);
            // Route each port's emissions. `slot` borrows `self.nodes`
            // while sink delivery borrows `self.sinks`: disjoint fields.
            for p in 0..ports {
                if scratch.emitter.port_len(p) == 0 {
                    continue;
                }
                let out = scratch.emitter.take_buffer(p, &mut scratch.pool);
                slot.metrics.tuples_out += out.len() as u64;
                scratch.targets.clear();
                scratch.targets.extend_from_slice(slot.edges.get(p).map_or(&[], Vec::as_slice));
                if scratch.targets.is_empty() {
                    // Unwired port: tuples fall on the floor by design.
                    scratch.pool.put(out);
                    continue;
                }
                // Fan-out: pooled copies for every target but the last,
                // which takes the buffer itself.
                let last = scratch.targets.len() - 1;
                for i in 0..last {
                    let mut copy = scratch.pool.take();
                    copy.extend_from_slice(&out);
                    deliver(
                        scratch.targets[i],
                        copy,
                        &mut scratch.queue,
                        &mut self.sinks,
                        &mut scratch.pool,
                    );
                }
                deliver(
                    scratch.targets[last],
                    out,
                    &mut scratch.queue,
                    &mut self.sinks,
                    &mut scratch.pool,
                );
            }
        }
        self.scratch = scratch;
    }

    /// Drains a sink's collected tuples.
    ///
    /// # Panics
    /// Panics when the sink does not exist.
    #[track_caller]
    pub fn drain_sink(&mut self, sink: SinkId) -> Vec<T> {
        std::mem::take(
            self.sinks
                .get_mut(sink.0)
                .and_then(Option::as_mut)
                .unwrap_or_else(|| panic!("sink {sink:?} missing")),
        )
    }

    /// Mutable access to a node's operator, for in-place reconfiguration
    /// through [`Operator::as_any_mut`].
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn operator_mut(&mut self, node: NodeId) -> &mut dyn Operator<T> {
        self.slot_mut(node).operator.as_mut()
    }

    /// Renders the topology as a Graphviz `digraph` — operator nodes as
    /// boxes (labelled with their name and tuple counters), sinks as
    /// ellipses, edges annotated with output ports.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut dot = String::new();
        let _ = writeln!(dot, "digraph \"{name}\" {{");
        let _ = writeln!(dot, "  rankdir=LR;");
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let _ = writeln!(
                dot,
                "  n{idx} [shape=box, label=\"{}\\nin={} out={}\"];",
                slot.operator.name().replace('"', "'"),
                slot.metrics.tuples_in,
                slot.metrics.tuples_out
            );
        }
        for (idx, sink) in self.sinks.iter().enumerate() {
            if sink.is_some() {
                let _ = writeln!(dot, "  s{idx} [shape=ellipse, label=\"sink {idx}\"];");
            }
        }
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            for (port, edges) in slot.edges.iter().enumerate() {
                for target in edges {
                    match target {
                        Target::Node(nid, in_port) => {
                            let _ = writeln!(
                                dot,
                                "  n{idx} -> n{} [label=\"{port}→{}\"];",
                                nid.0, in_port.0
                            );
                        }
                        Target::Sink(sid) => {
                            let _ = writeln!(dot, "  n{idx} -> s{} [label=\"{port}\"];", sid.0);
                        }
                    }
                }
            }
        }
        dot.push_str("}\n");
        dot
    }

    /// Metrics snapshot over live nodes.
    pub fn metrics(&self) -> TopologyMetrics {
        TopologyMetrics {
            nodes: self
                .nodes
                .iter()
                .flatten()
                .map(|s| (s.operator.name().to_string(), s.metrics))
                .collect(),
        }
    }

    /// Metrics of one node.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn node_metrics(&self, node: NodeId) -> NodeMetrics {
        self.slot(node).metrics
    }

    #[track_caller]
    fn slot(&self, node: NodeId) -> &NodeSlot<T> {
        self.nodes
            .get(node.0)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("node {node:?} missing"))
    }

    #[track_caller]
    fn slot_mut(&mut self, node: NodeId) -> &mut NodeSlot<T> {
        self.nodes
            .get_mut(node.0)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("node {node:?} missing"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::FnOperator;

    fn passthrough(name: &str) -> Box<dyn Operator<u32>> {
        Box::new(FnOperator::new(name, |batch: &[u32], out: &mut Emitter<u32>| {
            out.emit_batch(OutputPort(0), batch.to_vec());
        }))
    }

    /// An operator that keeps even numbers on port 0 and odds on port 1.
    struct EvenOddSplit;

    impl Operator<u32> for EvenOddSplit {
        fn name(&self) -> &str {
            "split"
        }
        fn output_ports(&self) -> usize {
            2
        }
        fn process(&mut self, _port: InputPort, batch: &[u32], out: &mut Emitter<u32>) {
            for &x in batch {
                out.emit(OutputPort(x as u16 % 2), x);
            }
        }
    }

    #[test]
    fn linear_chain_delivers_to_sink() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2, 3]);
        assert_eq!(t.drain_sink(sink), vec![1, 2, 3]);
        assert_eq!(t.node_metrics(a).tuples_in, 3);
        assert_eq!(t.node_metrics(b).tuples_out, 3);
    }

    #[test]
    fn clock_gated_busy_time_accumulates_only_when_installed() {
        // A monotone fake clock: each read advances by 10ns, so every
        // process call books exactly 10ns of busy time deterministically.
        fn fake_clock() -> u64 {
            use std::sync::atomic::{AtomicU64, Ordering};
            static TICKS: AtomicU64 = AtomicU64::new(0);
            TICKS.fetch_add(10, Ordering::Relaxed)
        }
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1]);
        assert_eq!(t.node_metrics(a).busy_ns, 0, "no clock, no busy time");
        t.set_clock(Some(fake_clock));
        t.push(a, vec![2]);
        t.push(a, vec![3]);
        assert_eq!(t.node_metrics(a).busy_ns, 20, "one 10ns lap per batch");
        t.set_clock(None);
        t.push(a, vec![4]);
        assert_eq!(t.node_metrics(a).busy_ns, 20, "removing the clock stops accumulation");
        assert_eq!(t.node_metrics(a).tuples_in, 4, "counting is unaffected by the clock");
    }

    #[test]
    fn multi_port_routing() {
        let mut t: Topology<u32> = Topology::new();
        let s = t.add_operator(Box::new(EvenOddSplit));
        let evens = t.add_sink();
        let odds = t.add_sink();
        t.connect(s, OutputPort(0), Target::Sink(evens));
        t.connect(s, OutputPort(1), Target::Sink(odds));
        t.push(s, vec![1, 2, 3, 4, 5]);
        assert_eq!(t.drain_sink(evens), vec![2, 4]);
        assert_eq!(t.drain_sink(odds), vec![1, 3, 5]);
    }

    #[test]
    fn fanout_clones_batches() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let s1 = t.add_sink();
        let s2 = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(s1));
        t.connect(a, OutputPort(0), Target::Sink(s2));
        t.push(a, vec![7]);
        assert_eq!(t.drain_sink(s1), vec![7]);
        assert_eq!(t.drain_sink(s2), vec![7]);
        assert_eq!(t.fanout(a), 2);
    }

    #[test]
    fn unwired_port_drops_tuples() {
        let mut t: Topology<u32> = Topology::new();
        let s = t.add_operator(Box::new(EvenOddSplit));
        let evens = t.add_sink();
        t.connect(s, OutputPort(0), Target::Sink(evens));
        // Port 1 (odds) left unwired.
        t.push(s, vec![1, 2, 3]);
        assert_eq!(t.drain_sink(evens), vec![2]);
    }

    #[test]
    fn remove_node_detaches_edges() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.remove_node(b);
        assert!(!t.node_exists(b));
        assert_eq!(t.node_count(), 1);
        assert!(t.targets(a, OutputPort(0)).is_empty());
        // Pushing still works; tuples just stop at a.
        t.push(a, vec![1]);
        assert_eq!(t.drain_sink(sink), Vec::<u32>::new());
    }

    #[test]
    fn node_slot_reuse_keeps_ids_dense() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        t.remove_node(a);
        let c = t.add_operator(passthrough("c"));
        assert_eq!(c, a, "slot should be reused");
        assert!(t.node_exists(b));
        assert_eq!(t.node_name(c), "c");
    }

    /// Regression: ids must stay dense under sustained churn, reused slots
    /// must not inherit the removed node's edges or metrics, and edges
    /// pointing *at* the removed node must not resurrect against the new
    /// tenant of the slot.
    #[test]
    fn node_slot_reuse_under_churn_starts_clean() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2]);
        assert_eq!(t.node_metrics(b).tuples_in, 2);

        // Churn the downstream node several times; the freed slot must be
        // handed out again every time (dense ids).
        for round in 0..3u32 {
            t.remove_node(b);
            let b2 = t.add_operator(passthrough("b2"));
            assert_eq!(b2, b, "round {round}: freed slot must be reused");
            // The reused slot starts clean: no outgoing edges, no metrics,
            // and nothing upstream feeds it until reconnected.
            assert!(t.all_targets(b2).is_empty(), "stale outgoing edges survived");
            assert_eq!(t.node_metrics(b2).tuples_in, 0, "stale metrics survived");
            assert!(t.upstream_of(b2).is_empty(), "edge at old tenant resurrected");
        }

        // Ids stay dense: two live nodes occupy slots 0 and 1.
        assert_eq!(t.node_count(), 2);
        assert!(t.node_exists(NodeId(0)) && t.node_exists(NodeId(1)));

        // Rewire and verify the dataflow is intact end to end.
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.drain_sink(sink);
        t.push(a, vec![7]);
        assert_eq!(t.drain_sink(sink), vec![7]);
    }

    #[test]
    fn cycle_panic_names_offending_node() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("alpha"));
        let b = t.add_operator(passthrough("beta"));
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Node(a, InputPort(0)));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            t.push(a, vec![1]);
        }))
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("panic carries a message");
        assert!(msg.contains("NodeId("), "panic must name the node id: {msg}");
        assert!(msg.contains("cyclic"), "panic must mention the cycle: {msg}");
    }

    /// The push hot path recycles batch buffers: every buffer taken from
    /// the pool during a push returns to it, each push additionally
    /// donates the caller's entry batch, and retention caps the total —
    /// so the pool warms up to the cap and then stays exactly there.
    #[test]
    fn push_recycles_buffers_across_epochs() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let s = t.add_operator(Box::new(EvenOddSplit));
        let evens = t.add_sink();
        let odds = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(s, InputPort(0)));
        t.connect(a, OutputPort(0), Target::Sink(evens)); // fan-out copy path
        t.connect(s, OutputPort(0), Target::Sink(evens));
        t.connect(s, OutputPort(1), Target::Sink(odds));
        let epochs = 40;
        for e in 0..epochs {
            t.push(a, (0..100).collect());
            assert!(t.pooled_buffers() <= 16, "retention cap breached at epoch {e}");
        }
        assert_eq!(t.pooled_buffers(), 16, "pool should sit exactly at its cap");
        // Dataflow correctness is unaffected by recycling.
        assert_eq!(t.drain_sink(odds).len(), epochs * 50);
        assert_eq!(t.drain_sink(evens).len(), epochs * 150);
    }

    #[test]
    fn remove_sink_returns_contents_and_detaches() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2]);
        let contents = t.remove_sink(sink);
        assert_eq!(contents, vec![1, 2]);
        assert!(t.targets(a, OutputPort(0)).is_empty());
    }

    #[test]
    fn upstream_lookup() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let c = t.add_operator(passthrough("c"));
        t.connect(a, OutputPort(0), Target::Node(c, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Node(c, InputPort(1)));
        let mut ups = t.upstream_of(c);
        ups.sort();
        assert_eq!(ups, vec![(a, OutputPort(0)), (b, OutputPort(0))]);
    }

    #[test]
    #[should_panic(expected = "edge already exists")]
    fn duplicate_edge_rejected() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.connect(a, OutputPort(0), Target::Sink(sink));
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cycle_is_detected() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Node(a, InputPort(0)));
        t.push(a, vec![1]);
    }

    #[test]
    fn disconnect_removes_edge() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        assert!(t.disconnect(a, OutputPort(0), Target::Sink(sink)));
        assert!(!t.disconnect(a, OutputPort(0), Target::Sink(sink)));
        t.push(a, vec![1]);
        assert!(t.drain_sink(sink).is_empty());
    }

    #[test]
    fn metrics_snapshot_covers_live_nodes() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("alpha"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2, 3, 4]);
        let m = t.metrics();
        assert_eq!(m.by_name("alpha").unwrap().tuples_in, 4);
        assert_eq!(m.total_tuples_processed(), 4);
    }

    #[test]
    fn dot_export_lists_nodes_edges_and_sinks() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("alpha"));
        let s = t.add_operator(Box::new(EvenOddSplit));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(s, InputPort(0)));
        t.connect(s, OutputPort(1), Target::Sink(sink));
        t.push(a, vec![1, 2, 3]);
        let dot = t.to_dot("demo");
        assert!(dot.starts_with("digraph \"demo\""), "{dot}");
        assert!(dot.contains("label=\"alpha\\nin=3 out=3\""), "{dot}");
        assert!(dot.contains("n0 -> n1"), "{dot}");
        assert!(dot.contains("-> s0 [label=\"1\"]"), "{dot}");
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_export_skips_removed_nodes() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("keep"));
        let b = t.add_operator(passthrough("gone"));
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.remove_node(b);
        let dot = t.to_dot("x");
        assert!(dot.contains("keep"));
        assert!(!dot.contains("gone"));
        assert!(!dot.contains("->"), "dangling edge exported: {dot}");
    }

    #[test]
    fn empty_batches_are_skipped() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        t.push(a, vec![]);
        assert_eq!(t.node_metrics(a).batches, 0);
    }
}
