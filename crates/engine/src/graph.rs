//! The execution topology: a dynamic DAG of operators and sinks.

use crate::metrics::{NodeMetrics, TopologyMetrics};
use crate::operator::{Emitter, InputPort, Operator, OutputPort};
use std::collections::VecDeque;

/// Identifier of an operator node in a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

/// Identifier of a sink (a named stream collection point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SinkId(pub(crate) usize);

/// Where an edge delivers tuples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Another operator's input port.
    Node(NodeId, InputPort),
    /// A sink buffer.
    Sink(SinkId),
}

struct NodeSlot<T> {
    operator: Box<dyn Operator<T>>,
    /// Outgoing edges, indexed by output port.
    edges: Vec<Vec<Target>>,
    metrics: NodeMetrics,
}

/// A dynamic dataflow DAG.
///
/// CrAQR materializes one topology per *grid cell* (the hashmap value of
/// Section V) and rewires it as queries come and go, so the graph supports
/// node removal and edge re-targeting, not just construction.
///
/// The executor ([`Topology::push`]) is breadth-first and synchronous. The
/// graph must stay acyclic; a hop budget proportional to the node count
/// catches accidental cycles and panics instead of spinning.
pub struct Topology<T> {
    nodes: Vec<Option<NodeSlot<T>>>,
    sinks: Vec<Option<Vec<T>>>,
    live_nodes: usize,
}

impl<T: Clone> Default for Topology<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone> Topology<T> {
    /// An empty topology.
    pub fn new() -> Self {
        Self { nodes: Vec::new(), sinks: Vec::new(), live_nodes: 0 }
    }

    /// Adds an operator, returning its node id.
    pub fn add_operator(&mut self, operator: Box<dyn Operator<T>>) -> NodeId {
        let ports = operator.output_ports();
        let slot = NodeSlot {
            operator,
            edges: (0..ports.max(1)).map(|_| Vec::new()).collect(),
            metrics: NodeMetrics::default(),
        };
        self.live_nodes += 1;
        // Reuse a free slot if any (keeps ids dense under churn).
        if let Some(idx) = self.nodes.iter().position(Option::is_none) {
            self.nodes[idx] = Some(slot);
            NodeId(idx)
        } else {
            self.nodes.push(Some(slot));
            NodeId(self.nodes.len() - 1)
        }
    }

    /// Adds a sink, returning its id.
    pub fn add_sink(&mut self) -> SinkId {
        if let Some(idx) = self.sinks.iter().position(Option::is_none) {
            self.sinks[idx] = Some(Vec::new());
            SinkId(idx)
        } else {
            self.sinks.push(Some(Vec::new()));
            SinkId(self.sinks.len() - 1)
        }
    }

    /// Connects `from`'s output port to a target.
    ///
    /// # Panics
    /// Panics when the node, port, or target does not exist, or when the
    /// edge already exists (double-delivery bug).
    #[track_caller]
    pub fn connect(&mut self, from: NodeId, port: OutputPort, target: Target) {
        match target {
            Target::Node(nid, _) => assert!(self.node_exists(nid), "target node {nid:?} missing"),
            Target::Sink(sid) => {
                assert!(self.sinks.get(sid.0).is_some_and(Option::is_some), "sink {sid:?} missing")
            }
        }
        let slot = self.slot_mut(from);
        let edges = slot
            .edges
            .get_mut(port.0 as usize)
            .unwrap_or_else(|| panic!("node has no output port {port:?}"));
        assert!(!edges.contains(&target), "edge already exists");
        edges.push(target);
    }

    /// Removes an edge; returns `true` when it existed.
    pub fn disconnect(&mut self, from: NodeId, port: OutputPort, target: Target) -> bool {
        let slot = self.slot_mut(from);
        let Some(edges) = slot.edges.get_mut(port.0 as usize) else {
            return false;
        };
        let before = edges.len();
        edges.retain(|t| *t != target);
        edges.len() != before
    }

    /// Removes a node, detaching every edge that references it.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn remove_node(&mut self, node: NodeId) {
        assert!(self.node_exists(node), "node {node:?} missing");
        self.nodes[node.0] = None;
        self.live_nodes -= 1;
        for slot in self.nodes.iter_mut().flatten() {
            for edges in &mut slot.edges {
                edges.retain(|t| !matches!(t, Target::Node(nid, _) if *nid == node));
            }
        }
    }

    /// Removes a sink and its incoming edges, returning its final contents.
    ///
    /// # Panics
    /// Panics when the sink does not exist.
    #[track_caller]
    pub fn remove_sink(&mut self, sink: SinkId) -> Vec<T> {
        let buf = self.sinks[sink.0].take().unwrap_or_else(|| panic!("sink {sink:?} missing"));
        for slot in self.nodes.iter_mut().flatten() {
            for edges in &mut slot.edges {
                edges.retain(|t| !matches!(t, Target::Sink(sid) if *sid == sink));
            }
        }
        buf
    }

    /// Number of live operator nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// `true` when the node id refers to a live node.
    pub fn node_exists(&self, node: NodeId) -> bool {
        self.nodes.get(node.0).is_some_and(Option::is_some)
    }

    /// The operator name of a node.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn node_name(&self, node: NodeId) -> &str {
        self.slot(node).operator.name()
    }

    /// Outgoing targets of `(node, port)` (empty when the port is unwired).
    pub fn targets(&self, node: NodeId, port: OutputPort) -> &[Target] {
        self.slot(node).edges.get(port.0 as usize).map_or(&[], Vec::as_slice)
    }

    /// All downstream targets of a node across its ports.
    pub fn all_targets(&self, node: NodeId) -> Vec<Target> {
        self.slot(node).edges.iter().flatten().copied().collect()
    }

    /// Nodes (with port) feeding into `node`.
    pub fn upstream_of(&self, node: NodeId) -> Vec<(NodeId, OutputPort)> {
        let mut ups = Vec::new();
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            for (p, edges) in slot.edges.iter().enumerate() {
                if edges.iter().any(|t| matches!(t, Target::Node(nid, _) if *nid == node)) {
                    ups.push((NodeId(idx), OutputPort(p as u16)));
                }
            }
        }
        ups
    }

    /// Number of distinct downstream consumers of a node — `> 1` marks the
    /// *branching points* of the paper's deletion rule.
    pub fn fanout(&self, node: NodeId) -> usize {
        self.all_targets(node).len()
    }

    /// Pushes a batch into `entry`'s input port 0 and runs the dataflow to
    /// quiescence.
    ///
    /// # Panics
    /// Panics when `entry` is missing or a cycle keeps batches circulating
    /// beyond the hop budget.
    #[track_caller]
    pub fn push(&mut self, entry: NodeId, batch: Vec<T>) {
        assert!(self.node_exists(entry), "entry node {entry:?} missing");
        let mut queue: VecDeque<(NodeId, InputPort, Vec<T>)> = VecDeque::new();
        queue.push_back((entry, InputPort(0), batch));
        // Hop budget: every delivered batch traverses ≥1 edge of a DAG with
        // `live_nodes` nodes; fanout ≤ total edges. A generous multiplier
        // catches cycles without bounding legitimate fan-out.
        let mut budget = 64 * (self.live_nodes + 1) * (self.live_nodes + 1);
        while let Some((nid, port, batch)) = queue.pop_front() {
            assert!(budget > 0, "hop budget exhausted: is the topology cyclic?");
            budget -= 1;
            if batch.is_empty() {
                continue;
            }
            let Some(slot) = self.nodes.get_mut(nid.0).and_then(Option::as_mut) else {
                // Node removed while batches were in flight: drop silently,
                // matching a DSMS tearing down a query mid-stream.
                continue;
            };
            slot.metrics.tuples_in += batch.len() as u64;
            slot.metrics.batches += 1;
            let mut emitter = Emitter::new(slot.operator.output_ports());
            slot.operator.process(port, &batch, &mut emitter);
            let buffers = emitter.into_buffers();
            // Record emissions, then route.
            let routes: Vec<(Vec<Target>, Vec<T>)> = buffers
                .into_iter()
                .enumerate()
                .map(|(p, buf)| {
                    let targets = slot.edges.get(p).cloned().unwrap_or_default();
                    (targets, buf)
                })
                .collect();
            for (targets, buf) in routes {
                if buf.is_empty() {
                    continue;
                }
                self.nodes[nid.0].as_mut().expect("just used").metrics.tuples_out +=
                    buf.len() as u64;
                match targets.len() {
                    0 => {} // unwired port: tuples fall on the floor by design
                    1 => self.deliver(targets[0], buf, &mut queue),
                    _ => {
                        for t in &targets[..targets.len() - 1] {
                            self.deliver(*t, buf.clone(), &mut queue);
                        }
                        self.deliver(targets[targets.len() - 1], buf, &mut queue);
                    }
                }
            }
        }
    }

    fn deliver(&mut self, target: Target, buf: Vec<T>, queue: &mut VecDeque<(NodeId, InputPort, Vec<T>)>) {
        match target {
            Target::Node(nid, port) => queue.push_back((nid, port, buf)),
            Target::Sink(sid) => {
                if let Some(Some(sink)) = self.sinks.get_mut(sid.0) {
                    sink.extend(buf);
                }
            }
        }
    }

    /// Drains a sink's collected tuples.
    ///
    /// # Panics
    /// Panics when the sink does not exist.
    #[track_caller]
    pub fn drain_sink(&mut self, sink: SinkId) -> Vec<T> {
        std::mem::take(
            self.sinks
                .get_mut(sink.0)
                .and_then(Option::as_mut)
                .unwrap_or_else(|| panic!("sink {sink:?} missing")),
        )
    }

    /// Mutable access to a node's operator, for in-place reconfiguration
    /// through [`Operator::as_any_mut`].
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn operator_mut(&mut self, node: NodeId) -> &mut dyn Operator<T> {
        self.slot_mut(node).operator.as_mut()
    }

    /// Renders the topology as a Graphviz `digraph` — operator nodes as
    /// boxes (labelled with their name and tuple counters), sinks as
    /// ellipses, edges annotated with output ports.
    pub fn to_dot(&self, name: &str) -> String {
        use std::fmt::Write;
        let mut dot = String::new();
        let _ = writeln!(dot, "digraph \"{name}\" {{");
        let _ = writeln!(dot, "  rankdir=LR;");
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let _ = writeln!(
                dot,
                "  n{idx} [shape=box, label=\"{}\\nin={} out={}\"];",
                slot.operator.name().replace('"', "'"),
                slot.metrics.tuples_in,
                slot.metrics.tuples_out
            );
        }
        for (idx, sink) in self.sinks.iter().enumerate() {
            if sink.is_some() {
                let _ = writeln!(dot, "  s{idx} [shape=ellipse, label=\"sink {idx}\"];");
            }
        }
        for (idx, slot) in self.nodes.iter().enumerate() {
            let Some(slot) = slot else { continue };
            for (port, edges) in slot.edges.iter().enumerate() {
                for target in edges {
                    match target {
                        Target::Node(nid, in_port) => {
                            let _ = writeln!(
                                dot,
                                "  n{idx} -> n{} [label=\"{port}→{}\"];",
                                nid.0, in_port.0
                            );
                        }
                        Target::Sink(sid) => {
                            let _ = writeln!(dot, "  n{idx} -> s{} [label=\"{port}\"];", sid.0);
                        }
                    }
                }
            }
        }
        dot.push_str("}\n");
        dot
    }

    /// Metrics snapshot over live nodes.
    pub fn metrics(&self) -> TopologyMetrics {
        TopologyMetrics {
            nodes: self
                .nodes
                .iter()
                .flatten()
                .map(|s| (s.operator.name().to_string(), s.metrics))
                .collect(),
        }
    }

    /// Metrics of one node.
    ///
    /// # Panics
    /// Panics when the node does not exist.
    #[track_caller]
    pub fn node_metrics(&self, node: NodeId) -> NodeMetrics {
        self.slot(node).metrics
    }

    #[track_caller]
    fn slot(&self, node: NodeId) -> &NodeSlot<T> {
        self.nodes
            .get(node.0)
            .and_then(Option::as_ref)
            .unwrap_or_else(|| panic!("node {node:?} missing"))
    }

    #[track_caller]
    fn slot_mut(&mut self, node: NodeId) -> &mut NodeSlot<T> {
        self.nodes
            .get_mut(node.0)
            .and_then(Option::as_mut)
            .unwrap_or_else(|| panic!("node {node:?} missing"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::FnOperator;

    fn passthrough(name: &str) -> Box<dyn Operator<u32>> {
        Box::new(FnOperator::new(name, |batch: &[u32], out: &mut Emitter<u32>| {
            out.emit_batch(OutputPort(0), batch.to_vec());
        }))
    }

    /// An operator that keeps even numbers on port 0 and odds on port 1.
    struct EvenOddSplit;

    impl Operator<u32> for EvenOddSplit {
        fn name(&self) -> &str {
            "split"
        }
        fn output_ports(&self) -> usize {
            2
        }
        fn process(&mut self, _port: InputPort, batch: &[u32], out: &mut Emitter<u32>) {
            for &x in batch {
                out.emit(OutputPort(x as u16 % 2), x);
            }
        }
    }

    #[test]
    fn linear_chain_delivers_to_sink() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2, 3]);
        assert_eq!(t.drain_sink(sink), vec![1, 2, 3]);
        assert_eq!(t.node_metrics(a).tuples_in, 3);
        assert_eq!(t.node_metrics(b).tuples_out, 3);
    }

    #[test]
    fn multi_port_routing() {
        let mut t: Topology<u32> = Topology::new();
        let s = t.add_operator(Box::new(EvenOddSplit));
        let evens = t.add_sink();
        let odds = t.add_sink();
        t.connect(s, OutputPort(0), Target::Sink(evens));
        t.connect(s, OutputPort(1), Target::Sink(odds));
        t.push(s, vec![1, 2, 3, 4, 5]);
        assert_eq!(t.drain_sink(evens), vec![2, 4]);
        assert_eq!(t.drain_sink(odds), vec![1, 3, 5]);
    }

    #[test]
    fn fanout_clones_batches() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let s1 = t.add_sink();
        let s2 = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(s1));
        t.connect(a, OutputPort(0), Target::Sink(s2));
        t.push(a, vec![7]);
        assert_eq!(t.drain_sink(s1), vec![7]);
        assert_eq!(t.drain_sink(s2), vec![7]);
        assert_eq!(t.fanout(a), 2);
    }

    #[test]
    fn unwired_port_drops_tuples() {
        let mut t: Topology<u32> = Topology::new();
        let s = t.add_operator(Box::new(EvenOddSplit));
        let evens = t.add_sink();
        t.connect(s, OutputPort(0), Target::Sink(evens));
        // Port 1 (odds) left unwired.
        t.push(s, vec![1, 2, 3]);
        assert_eq!(t.drain_sink(evens), vec![2]);
    }

    #[test]
    fn remove_node_detaches_edges() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Sink(sink));
        t.remove_node(b);
        assert!(!t.node_exists(b));
        assert_eq!(t.node_count(), 1);
        assert!(t.targets(a, OutputPort(0)).is_empty());
        // Pushing still works; tuples just stop at a.
        t.push(a, vec![1]);
        assert_eq!(t.drain_sink(sink), Vec::<u32>::new());
    }

    #[test]
    fn node_slot_reuse_keeps_ids_dense() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        t.remove_node(a);
        let c = t.add_operator(passthrough("c"));
        assert_eq!(c, a, "slot should be reused");
        assert!(t.node_exists(b));
        assert_eq!(t.node_name(c), "c");
    }

    #[test]
    fn remove_sink_returns_contents_and_detaches() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2]);
        let contents = t.remove_sink(sink);
        assert_eq!(contents, vec![1, 2]);
        assert!(t.targets(a, OutputPort(0)).is_empty());
    }

    #[test]
    fn upstream_lookup() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        let c = t.add_operator(passthrough("c"));
        t.connect(a, OutputPort(0), Target::Node(c, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Node(c, InputPort(1)));
        let mut ups = t.upstream_of(c);
        ups.sort();
        assert_eq!(ups, vec![(a, OutputPort(0)), (b, OutputPort(0))]);
    }

    #[test]
    #[should_panic(expected = "edge already exists")]
    fn duplicate_edge_rejected() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.connect(a, OutputPort(0), Target::Sink(sink));
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cycle_is_detected() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let b = t.add_operator(passthrough("b"));
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.connect(b, OutputPort(0), Target::Node(a, InputPort(0)));
        t.push(a, vec![1]);
    }

    #[test]
    fn disconnect_removes_edge() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        assert!(t.disconnect(a, OutputPort(0), Target::Sink(sink)));
        assert!(!t.disconnect(a, OutputPort(0), Target::Sink(sink)));
        t.push(a, vec![1]);
        assert!(t.drain_sink(sink).is_empty());
    }

    #[test]
    fn metrics_snapshot_covers_live_nodes() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("alpha"));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Sink(sink));
        t.push(a, vec![1, 2, 3, 4]);
        let m = t.metrics();
        assert_eq!(m.by_name("alpha").unwrap().tuples_in, 4);
        assert_eq!(m.total_tuples_processed(), 4);
    }

    #[test]
    fn dot_export_lists_nodes_edges_and_sinks() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("alpha"));
        let s = t.add_operator(Box::new(EvenOddSplit));
        let sink = t.add_sink();
        t.connect(a, OutputPort(0), Target::Node(s, InputPort(0)));
        t.connect(s, OutputPort(1), Target::Sink(sink));
        t.push(a, vec![1, 2, 3]);
        let dot = t.to_dot("demo");
        assert!(dot.starts_with("digraph \"demo\""), "{dot}");
        assert!(dot.contains("label=\"alpha\\nin=3 out=3\""), "{dot}");
        assert!(dot.contains("n0 -> n1"), "{dot}");
        assert!(dot.contains("-> s0 [label=\"1\"]"), "{dot}");
        assert!(dot.contains("shape=ellipse"), "{dot}");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn dot_export_skips_removed_nodes() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("keep"));
        let b = t.add_operator(passthrough("gone"));
        t.connect(a, OutputPort(0), Target::Node(b, InputPort(0)));
        t.remove_node(b);
        let dot = t.to_dot("x");
        assert!(dot.contains("keep"));
        assert!(!dot.contains("gone"));
        assert!(!dot.contains("->"), "dangling edge exported: {dot}");
    }

    #[test]
    fn empty_batches_are_skipped() {
        let mut t: Topology<u32> = Topology::new();
        let a = t.add_operator(passthrough("a"));
        t.push(a, vec![]);
        assert_eq!(t.node_metrics(a).batches, 0);
    }
}
