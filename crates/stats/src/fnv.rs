//! The workspace's one FNV-1a implementation.
//!
//! Canonical golden artifacts ([`craqr_scenario`'s report and the adaptive
//! controller's trace) end in a 64-bit FNV-1a checksum line so CI can
//! compare runs by checksum alone. The hash used to be re-implemented per
//! consumer; this module is now the single source of truth.

/// 64-bit FNV-1a over a byte string — stable, dependency-free, and fast
/// enough for report-sized inputs.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn order_sensitive() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
    }
}
