//! Statistical substrate for CrAQR.
//!
//! The point-process machinery of the paper needs, beyond a uniform RNG:
//!
//! - **Samplers** for Poisson counts (how many points fall in a window),
//!   exponential inter-arrivals, and Gaussian noise (mobility and sensor
//!   error models). The offline crate set contains `rand` but not
//!   `rand_distr`, so [`dist`] implements these from first principles
//!   (Box–Muller, inversion, Knuth/PTRS Poisson).
//! - **Special functions** ([`special`]): `ln Γ`, `erf`, regularized
//!   incomplete gamma — enough to compute Poisson/χ²/normal CDFs exactly.
//! - **Hypothesis tests** ([`hypothesis`]): χ² homogeneity over binned
//!   counts, Kolmogorov–Smirnov on exponential inter-arrivals, and the
//!   variance-to-mean dispersion index. These are how the test-suite and the
//!   experiment harness *verify* the paper's claims that `flatten` output is
//!   "approximately homogeneous" and `thin` hits its target rate.
//! - **Online estimators** ([`online`]): Welford moments, EWMA, and
//!   windowed rates used by sliding-window flattening and budget tuning.
//! - **Drift detectors** ([`drift`]): sequential change-point tests
//!   (two-sided CUSUM, Page–Hinkley) the adaptive acquisition loop runs
//!   over estimator innovation streams.
//! - **Summaries** ([`summary`]): histograms and quantiles for experiment
//!   reports.
//! - **Seed derivation** ([`rng`]): stable per-component sub-seeds so a
//!   whole simulation is reproducible from one master seed.
//! - **Checksums** ([`fnv`]): the FNV-1a hash every canonical golden
//!   artifact ends in.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dist;
pub mod drift;
pub mod fnv;
pub mod hypothesis;
pub mod online;
pub mod rng;
pub mod special;
pub mod summary;
pub mod text;

pub use dist::{Exponential, Normal, Poisson};
pub use drift::{Cusum, DriftDirection, PageHinkley};
pub use fnv::fnv1a64;
pub use hypothesis::{chi_square_uniform, dispersion_index, ks_exponential, ChiSquare, KsTest};
pub use online::{Ewma, OnlineMoments, WindowedRate};
pub use rng::{seeded_rng, sub_rng};
pub use summary::{Histogram, Summary};
pub use text::format_float;
