//! Descriptive summaries for experiment reports.

use serde::{Deserialize, Serialize};

/// A fixed-range, equal-width histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    below: u64,
    above: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    ///
    /// # Panics
    /// Panics when `hi <= lo` or `bins == 0`.
    #[track_caller]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "need at least one bin");
        Self { lo, hi, bins: vec![0; bins], below: 0, above: 0 }
    }

    /// Records one observation; out-of-range values go to overflow counters.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.below += 1;
        } else if x >= self.hi {
            self.above += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo` / at-or-above `hi`.
    #[inline]
    pub fn overflow(&self) -> (u64, u64) {
        (self.below, self.above)
    }

    /// Total recorded observations, including overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.below + self.above
    }

    /// The `[lo, hi)` edges of bin `i`.
    ///
    /// # Panics
    /// Panics when `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Five-number summary plus mean of a finite sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes the summary of a sample (sorts a copy).
    ///
    /// # Panics
    /// Panics on an empty sample or NaN values.
    #[track_caller]
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let mut s = xs.to_vec();
        s.sort_by(|a, b| a.partial_cmp(b).expect("sample must not contain NaN"));
        let q = |p: f64| -> f64 {
            // Linear interpolation between closest ranks (type-7 quantile).
            let h = p * (s.len() - 1) as f64;
            let lo = h.floor() as usize;
            let hi = h.ceil() as usize;
            if lo == hi {
                s[lo]
            } else {
                s[lo] + (h - lo as f64) * (s[hi] - s[lo])
            }
        };
        Self {
            n: s.len(),
            min: s[0],
            p25: q(0.25),
            p50: q(0.5),
            p75: q(0.75),
            max: s[s.len() - 1],
            mean: s.iter().sum::<f64>() / s.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.0, 1.9, 2.0, 5.5, 9.999, -1.0, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.overflow(), (1, 2));
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn histogram_bin_edges() {
        let h = Histogram::new(0.0, 10.0, 4);
        assert_eq!(h.bin_edges(0), (0.0, 2.5));
        assert_eq!(h.bin_edges(3), (7.5, 10.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn histogram_empty_range_rejected() {
        let _ = Histogram::new(1.0, 1.0, 3);
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
    }

    #[test]
    fn summary_interpolates_quantiles() {
        let s = Summary::of(&[0.0, 10.0]);
        assert_eq!(s.p50, 5.0);
        assert_eq!(s.p25, 2.5);
    }

    #[test]
    fn summary_is_order_invariant() {
        let a = Summary::of(&[3.0, 1.0, 2.0]);
        let b = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }
}
