//! Streaming estimators.
//!
//! Budget tuning and sliding-window flattening observe unbounded tuple
//! streams; everything here is O(1) memory per statistic.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Welford's online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
}

impl OnlineMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation `sd/mean` — the homogeneity score used by
    /// the flatten experiments (a homogeneous process drives per-cell count
    /// CV towards `1/√mean`).
    ///
    /// Returns `f64::INFINITY` when the mean is zero but observations exist.
    pub fn cv(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else if self.mean == 0.0 {
            f64::INFINITY
        } else {
            self.sd() / self.mean.abs()
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

impl Extend<f64> for OnlineMoments {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Exponentially-weighted moving average.
///
/// Budget tuning smooths the per-batch rate-violation percentage `N_v`
/// before comparing it with the user threshold, so a single noisy batch does
/// not flip the budget direction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha ∈ (0, 1]` (1 = no
    /// smoothing, track the last observation exactly).
    ///
    /// # Panics
    /// Panics when `alpha` is outside `(0, 1]`.
    #[track_caller]
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0,1], got {alpha}");
        Self { alpha, value: None }
    }

    /// Feeds an observation, returning the updated average.
    pub fn push(&mut self, x: f64) -> f64 {
        let v = match self.value {
            None => x,
            Some(prev) => prev + self.alpha * (x - prev),
        };
        self.value = Some(v);
        v
    }

    /// Current average, or `None` before the first observation.
    #[inline]
    pub fn value(&self) -> Option<f64> {
        self.value
    }

    /// Resets to the pre-observation state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// Event rate over a sliding time window.
///
/// Stores event timestamps inside the window; `rate()` is
/// `events / window`. Used by the request/response handler to measure the
/// actual delivery rate per (attribute, cell) and by sliding-window flatten.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowedRate {
    window: f64,
    times: VecDeque<f64>,
}

impl WindowedRate {
    /// Creates a rate tracker over a window of `window` time units.
    ///
    /// # Panics
    /// Panics unless `window > 0`.
    #[track_caller]
    pub fn new(window: f64) -> Self {
        assert!(window.is_finite() && window > 0.0, "window must be > 0, got {window}");
        Self { window, times: VecDeque::new() }
    }

    /// Records an event at time `t`. Times must be non-decreasing; a stale
    /// event (older than the newest by more than the window) is ignored.
    pub fn record(&mut self, t: f64) {
        if let Some(&newest) = self.times.back() {
            if t < newest - self.window {
                return;
            }
        }
        self.times.push_back(t);
        self.evict(t);
    }

    /// Number of events within `(now − window, now]`.
    pub fn count_at(&mut self, now: f64) -> usize {
        self.evict(now);
        self.times.len()
    }

    /// Event rate per time unit as of `now`.
    pub fn rate_at(&mut self, now: f64) -> f64 {
        self.count_at(now) as f64 / self.window
    }

    /// The window length.
    #[inline]
    pub fn window(&self) -> f64 {
        self.window
    }

    fn evict(&mut self, now: f64) {
        while let Some(&front) = self.times.front() {
            if front <= now - self.window {
                self.times.pop_front();
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive_two_pass() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = OnlineMoments::new();
        m.extend(xs.iter().copied());
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.count(), 8);
    }

    #[test]
    fn welford_empty_and_singleton() {
        let mut m = OnlineMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.variance(), 0.0);
        m.push(42.0);
        assert_eq!(m.mean(), 42.0);
        assert_eq!(m.variance(), 0.0);
        assert_eq!(m.sd(), 0.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineMoments::new();
        whole.extend(xs.iter().copied());

        let mut left = OnlineMoments::new();
        left.extend(xs[..37].iter().copied());
        let mut right = OnlineMoments::new();
        right.extend(xs[37..].iter().copied());
        left.merge(&right);

        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty_is_identity() {
        let mut a = OnlineMoments::new();
        a.extend([1.0, 2.0, 3.0]);
        let before = a;
        a.merge(&OnlineMoments::new());
        assert_eq!(a, before);

        let mut empty = OnlineMoments::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn cv_of_constant_stream_is_zero() {
        let mut m = OnlineMoments::new();
        m.extend([5.0; 10]);
        assert_eq!(m.cv(), 0.0);
    }

    #[test]
    fn cv_of_zero_mean_is_infinite() {
        let mut m = OnlineMoments::new();
        m.extend([-1.0, 1.0]);
        assert!(m.cv().is_infinite());
    }

    #[test]
    fn ewma_first_observation_passes_through() {
        let mut e = Ewma::new(0.3);
        assert_eq!(e.value(), None);
        assert_eq!(e.push(10.0), 10.0);
    }

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = Ewma::new(0.5);
        for _ in 0..60 {
            e.push(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_alpha_one_tracks_last_value() {
        let mut e = Ewma::new(1.0);
        e.push(1.0);
        e.push(100.0);
        assert_eq!(e.value(), Some(100.0));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn windowed_rate_counts_recent_events() {
        let mut w = WindowedRate::new(10.0);
        for t in 0..20 {
            w.record(t as f64);
        }
        // At t=19, events in (9, 19] are 10..=19 → 10 events.
        assert_eq!(w.count_at(19.0), 10);
        assert!((w.rate_at(19.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windowed_rate_evicts_everything_after_gap() {
        let mut w = WindowedRate::new(5.0);
        w.record(1.0);
        w.record(2.0);
        assert_eq!(w.count_at(100.0), 0);
        assert_eq!(w.rate_at(100.0), 0.0);
    }

    #[test]
    fn windowed_rate_ignores_stale_records() {
        let mut w = WindowedRate::new(5.0);
        w.record(100.0);
        w.record(1.0); // far in the past relative to newest: ignored
        assert_eq!(w.count_at(100.0), 1);
    }
}
