//! Random-variate samplers built on `rand`'s uniform source.
//!
//! `rand_distr` is not in the offline crate set, so the three distributions
//! the point-process machinery needs are implemented here:
//!
//! - [`Exponential`] by inversion — inter-arrival times of a temporal
//!   Poisson process.
//! - [`Normal`] by Box–Muller — mobility perturbations and the GPS /
//!   sensor-noise error models of Section VI.
//! - [`Poisson`] by Knuth's product method for small means and Hörmann's
//!   PTRS transformed rejection for large means — the count of points a
//!   homogeneous MDPP drops in a window.
//!
//! All samplers implement [`rand::distributions::Distribution`] so they
//! compose with `Rng::sample` and iterator adapters.

use rand::distributions::Distribution;
use rand::Rng;

use crate::special::ln_gamma;

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential with the given rate.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    #[track_caller]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate > 0.0, "exponential rate must be > 0, got {rate}");
        Self { rate }
    }

    /// The rate parameter λ.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Distribution mean `1/λ`.
    #[inline]
    pub fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

impl Distribution<f64> for Exponential {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inversion: −ln(U)/λ. `gen` yields [0,1); flip to (0,1] so ln is finite.
        let u: f64 = 1.0 - rng.gen::<f64>();
        -u.ln() / self.rate
    }
}

/// Normal distribution `N(mean, sd²)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    sd: f64,
}

impl Normal {
    /// Creates a normal with the given mean and standard deviation.
    ///
    /// # Panics
    /// Panics unless `sd` is finite and non-negative (`sd == 0` degenerates
    /// to a point mass, which the error models use to switch noise off).
    #[track_caller]
    pub fn new(mean: f64, sd: f64) -> Self {
        assert!(
            mean.is_finite() && sd.is_finite() && sd >= 0.0,
            "bad normal params ({mean}, {sd})"
        );
        Self { mean, sd }
    }

    /// A standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Mean.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Standard deviation.
    #[inline]
    pub fn sd(&self) -> f64 {
        self.sd
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sd == 0.0 {
            return self.mean;
        }
        // Box–Muller. The spare variate is deliberately discarded: the
        // sampler stays stateless, so interleaved samplers sharing one RNG
        // remain reproducible.
        let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
        let u2: f64 = rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.sd * r * theta.cos()
    }
}

/// Poisson distribution with mean `μ`.
///
/// Sampling strategy:
/// - `μ == 0` → constant 0;
/// - `μ < 10` → Knuth's product-of-uniforms method, O(μ) per draw;
/// - `μ ≥ 10` → Hörmann's PTRS transformed-rejection sampler, O(1) expected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    mean: f64,
}

/// Mean threshold at which sampling switches from Knuth to PTRS.
const PTRS_THRESHOLD: f64 = 10.0;

impl Poisson {
    /// Creates a Poisson with the given mean.
    ///
    /// # Panics
    /// Panics unless `mean` is finite and non-negative.
    #[track_caller]
    pub fn new(mean: f64) -> Self {
        assert!(mean.is_finite() && mean >= 0.0, "poisson mean must be >= 0, got {mean}");
        Self { mean }
    }

    /// The mean μ (also the variance).
    #[inline]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    fn sample_knuth<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let limit = (-self.mean).exp();
        let mut product: f64 = rng.gen();
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen::<f64>();
            count += 1;
        }
        count
    }

    /// PTRS — "transformed rejection with squeeze" (W. Hörmann, 1993),
    /// valid for μ ≥ 10.
    fn sample_ptrs<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mu = self.mean;
        let log_mu = mu.ln();
        let b = 0.931 + 2.53 * mu.sqrt();
        let a = -0.059 + 0.024_83 * b;
        let inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
        let v_r = 0.9277 - 3.6224 / (b - 2.0);
        loop {
            let u: f64 = rng.gen::<f64>() - 0.5;
            let v: f64 = rng.gen();
            let us = 0.5 - u.abs();
            let k = ((2.0 * a / us + b) * u + mu + 0.43).floor();
            if us >= 0.07 && v <= v_r {
                return k as u64;
            }
            if k < 0.0 || (us < 0.013 && v > us) {
                continue;
            }
            let lhs = (v * inv_alpha / (a / (us * us) + b)).ln();
            let rhs = k * log_mu - mu - ln_gamma(k + 1.0);
            if lhs <= rhs {
                return k as u64;
            }
        }
    }
}

impl Distribution<u64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.mean == 0.0 {
            0
        } else if self.mean < PTRS_THRESHOLD {
            self.sample_knuth(rng)
        } else {
            self.sample_ptrs(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::OnlineMoments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0x5EED_CAFE)
    }

    fn sample_moments<D, T>(dist: &D, n: usize) -> OnlineMoments
    where
        D: Distribution<T>,
        T: Into<f64> + Copy,
    {
        let mut rng = rng();
        let mut m = OnlineMoments::new();
        for _ in 0..n {
            m.push(dist.sample(&mut rng).into());
        }
        m
    }

    #[test]
    fn exponential_mean_and_variance() {
        let d = Exponential::new(2.0);
        let m = sample_moments(&d, 200_000);
        assert!((m.mean() - 0.5).abs() < 0.01, "mean {}", m.mean());
        assert!((m.variance() - 0.25).abs() < 0.02, "var {}", m.variance());
    }

    #[test]
    fn exponential_samples_are_positive() {
        let d = Exponential::new(0.1);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rate must be > 0")]
    fn exponential_rejects_zero_rate() {
        let _ = Exponential::new(0.0);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0);
        let m = sample_moments(&d, 200_000);
        assert!((m.mean() - 3.0).abs() < 0.02, "mean {}", m.mean());
        assert!((m.variance() - 4.0).abs() < 0.08, "var {}", m.variance());
    }

    #[test]
    fn degenerate_normal_is_constant() {
        let d = Normal::new(5.0, 0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 5.0);
        }
    }

    #[test]
    fn normal_tail_mass_is_symmetric() {
        let d = Normal::standard();
        let mut r = rng();
        let n = 100_000;
        let above = (0..n).filter(|_| d.sample(&mut r) > 0.0).count();
        let frac = above as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn poisson_zero_mean_is_zero() {
        let d = Poisson::new(0.0);
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(d.sample(&mut r), 0);
        }
    }

    #[test]
    fn poisson_small_mean_moments() {
        // Knuth branch.
        let d = Poisson::new(3.5);
        let m = {
            let mut r = rng();
            let mut m = OnlineMoments::new();
            for _ in 0..200_000 {
                m.push(d.sample(&mut r) as f64);
            }
            m
        };
        assert!((m.mean() - 3.5).abs() < 0.03, "mean {}", m.mean());
        assert!((m.variance() - 3.5).abs() < 0.08, "var {}", m.variance());
    }

    #[test]
    fn poisson_large_mean_moments() {
        // PTRS branch.
        let d = Poisson::new(250.0);
        let mut r = rng();
        let mut m = OnlineMoments::new();
        for _ in 0..100_000 {
            m.push(d.sample(&mut r) as f64);
        }
        assert!((m.mean() - 250.0).abs() < 0.5, "mean {}", m.mean());
        assert!((m.variance() - 250.0).abs() < 6.0, "var {}", m.variance());
    }

    #[test]
    fn poisson_boundary_mean_between_branches() {
        // Means just below/above the PTRS threshold should agree in moments.
        for &mu in &[9.5, 10.5] {
            let d = Poisson::new(mu);
            let mut r = rng();
            let mut m = OnlineMoments::new();
            for _ in 0..150_000 {
                m.push(d.sample(&mut r) as f64);
            }
            assert!((m.mean() - mu).abs() < 0.05, "mu={mu} mean {}", m.mean());
        }
    }

    #[test]
    fn poisson_distribution_matches_pmf() {
        // Compare empirical frequencies to the exact PMF for a few k.
        let mu = 4.0;
        let d = Poisson::new(mu);
        let mut r = rng();
        let n = 300_000usize;
        let mut counts = [0usize; 16];
        for _ in 0..n {
            let k = d.sample(&mut r) as usize;
            if k < counts.len() {
                counts[k] += 1;
            }
        }
        for k in 0..12u64 {
            let pmf = (-mu + k as f64 * mu.ln() - crate::special::ln_factorial(k)).exp();
            let freq = counts[k as usize] as f64 / n as f64;
            assert!((freq - pmf).abs() < 0.004, "k={k}: freq {freq:.4} vs pmf {pmf:.4}");
        }
    }
}
