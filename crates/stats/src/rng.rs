//! Deterministic seed derivation.
//!
//! A CrAQR simulation contains many stochastic components (sensor mobility,
//! response behaviour, every `F`/`T` operator's Bernoulli draws, process
//! samplers). Giving each component an independent RNG derived from one
//! master seed keeps experiments reproducible *and* prevents accidental
//! cross-component correlation when components interleave differently
//! between runs.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates the master RNG for a simulation from a user seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent sub-stream RNG from `(master_seed, tag)`.
///
/// Uses the SplitMix64 finalizer to decorrelate nearby seeds, so
/// `sub_rng(s, 0)` and `sub_rng(s, 1)` share no observable structure.
pub fn sub_rng(master_seed: u64, tag: u64) -> StdRng {
    StdRng::seed_from_u64(split_mix(master_seed ^ split_mix(tag)))
}

/// SplitMix64 finalizer (public-domain reference constants).
fn split_mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn sub_streams_are_reproducible() {
        let mut a = sub_rng(42, 7);
        let mut b = sub_rng(42, 7);
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn different_tags_give_different_streams() {
        let mut a = sub_rng(42, 0);
        let mut b = sub_rng(42, 1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn nearby_master_seeds_decorrelate() {
        let mut a = sub_rng(1, 5);
        let mut b = sub_rng(2, 5);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn split_mix_is_a_bijection_probe() {
        // Distinct inputs must give distinct outputs (spot check).
        let outs: Vec<u64> = (0..1_000u64).map(split_mix).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }
}
