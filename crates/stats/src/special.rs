//! Special functions needed by the distribution CDFs and hypothesis tests.
//!
//! Implementations follow the classic numerically-stable forms (Lanczos for
//! `ln Γ`, Abramowitz–Stegun 7.1.26-style rational approximation refined to
//! double precision for `erf`, series/continued-fraction split for the
//! regularized incomplete gamma). Accuracy targets are ~1e-10 relative over
//! the parameter ranges the workspace uses, verified against reference
//! values in the tests.

/// `ln Γ(x)` for `x > 0` via the Lanczos approximation (g = 7, n = 9).
///
/// # Panics
/// Panics when `x <= 0` (the reflection branch is not needed here: every
/// caller passes positive arguments such as `k+1` or `df/2`).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    // Lanczos coefficients (g = 7).
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for tiny x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Natural log of `n!` computed through [`ln_gamma`].
#[inline]
pub fn ln_factorial(n: u64) -> f64 {
    ln_gamma(n as f64 + 1.0)
}

/// The error function `erf(x)`, accurate to ~1e-12.
///
/// Uses the Chebyshev-fitted expansion from Numerical Recipes (`erfc` core)
/// with the symmetry `erf(-x) = -erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The complementary error function `erfc(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 2.0 / (2.0 + z);
    let ty = 4.0 * t - 2.0;
    // Chebyshev coefficients for erfc, Numerical Recipes 3rd ed. §6.2.2.
    const COF: [f64; 28] = [
        -1.3026537197817094,
        6.419_697_923_564_902e-1,
        1.9476473204185836e-2,
        -9.561_514_786_808_63e-3,
        -9.46595344482036e-4,
        3.66839497852761e-4,
        4.2523324806907e-5,
        -2.0278578112534e-5,
        -1.624290004647e-6,
        1.303655835580e-6,
        1.5626441722e-8,
        -8.5238095915e-8,
        6.529054439e-9,
        5.059343495e-9,
        -9.91364156e-10,
        -2.27365122e-10,
        9.6467911e-11,
        2.394038e-12,
        -6.886027e-12,
        8.94487e-13,
        3.13092e-13,
        -1.12708e-13,
        3.81e-16,
        7.106e-15,
        -1.523e-15,
        -9.4e-17,
        1.21e-16,
        -2.8e-17,
    ];
    let mut d = 0.0;
    let mut dd = 0.0;
    for &c in COF.iter().rev().take(COF.len() - 1) {
        let tmp = d;
        d = ty * d - dd + c;
        dd = tmp;
    }
    let ans = t * (-z * z + 0.5 * (COF[0] + ty * d) - dd).exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal CDF `Φ(z)`.
#[inline]
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * erfc(-z / std::f64::consts::SQRT_2)
}

/// Regularized lower incomplete gamma `P(a, x) = γ(a,x)/Γ(a)`.
///
/// Series expansion for `x < a + 1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
///
/// # Panics
/// Panics for `a <= 0` or `x < 0`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain error: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_series(a, x)
    } else {
        1.0 - gamma_cf(a, x)
    }
}

/// Regularized upper incomplete gamma `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain error: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_series(a, x)
    } else {
        gamma_cf(a, x)
    }
}

const GAMMA_EPS: f64 = 1e-14;
const GAMMA_MAX_ITER: usize = 500;

fn gamma_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..GAMMA_MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * GAMMA_EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

fn gamma_cf(a: f64, x: f64) -> f64 {
    // Lentz's algorithm for the continued fraction of Q(a, x).
    let fpmin = f64::MIN_POSITIVE / GAMMA_EPS;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / fpmin;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=GAMMA_MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < fpmin {
            d = fpmin;
        }
        c = b + an / c;
        if c.abs() < fpmin {
            c = fpmin;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < GAMMA_EPS {
            break;
        }
    }
    (-x + a * x.ln() - ln_gamma(a)).exp() * h
}

/// χ² survival function: `Pr[X ≥ stat]` for `df` degrees of freedom.
#[inline]
pub fn chi_square_sf(stat: f64, df: f64) -> f64 {
    assert!(df > 0.0, "chi_square_sf needs df > 0");
    if stat <= 0.0 {
        return 1.0;
    }
    gamma_q(df / 2.0, stat / 2.0)
}

/// Poisson CDF `Pr[N ≤ k]` for mean `mu`, via `Q(k+1, mu)`.
#[inline]
pub fn poisson_cdf(k: u64, mu: f64) -> f64 {
    assert!(mu >= 0.0, "poisson_cdf needs mu >= 0");
    if mu == 0.0 {
        return 1.0;
    }
    gamma_q(k as f64 + 1.0, mu)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        close(ln_gamma(1.0), 0.0, 1e-12);
        close(ln_gamma(2.0), 0.0, 1e-12);
        close(ln_gamma(5.0), (24.0f64).ln(), 1e-12);
        close(ln_gamma(11.0), (3_628_800.0f64).ln(), 1e-12);
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-10);
        // Γ(3/2) = √π/2.
        close(ln_gamma(1.5), (std::f64::consts::PI.sqrt() / 2.0).ln(), 1e-10);
    }

    #[test]
    fn ln_factorial_small_values() {
        close(ln_factorial(0), 0.0, 1e-14);
        close(ln_factorial(1), 0.0, 1e-14);
        close(ln_factorial(10), (3_628_800.0f64).ln(), 1e-12);
    }

    #[test]
    #[should_panic(expected = "x > 0")]
    fn ln_gamma_rejects_nonpositive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn erf_reference_values() {
        // Reference: Abramowitz & Stegun tables.
        close(erf(0.0), 0.0, 1e-14);
        close(erf(0.5), 0.520_499_877_813_046_5, 1e-10);
        close(erf(1.0), 0.842_700_792_949_714_9, 1e-10);
        close(erf(2.0), 0.995_322_265_018_952_7, 1e-10);
        close(erf(-1.0), -0.842_700_792_949_714_9, 1e-10);
    }

    #[test]
    fn erfc_complements_erf() {
        for &x in &[-2.5, -1.0, -0.1, 0.0, 0.3, 1.7, 3.0] {
            close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn std_normal_cdf_quantiles() {
        close(std_normal_cdf(0.0), 0.5, 1e-12);
        close(std_normal_cdf(1.959_963_984_540_054), 0.975, 1e-9);
        close(std_normal_cdf(-1.959_963_984_540_054), 0.025, 1e-9);
        close(std_normal_cdf(3.0), 0.998_650_101_968_369_9, 1e-9);
    }

    #[test]
    fn gamma_p_q_sum_to_one() {
        for &(a, x) in &[(0.5, 0.2), (1.0, 1.0), (3.5, 2.0), (10.0, 14.0), (100.0, 90.0)] {
            close(gamma_p(a, x) + gamma_q(a, x), 1.0, 1e-12);
        }
    }

    #[test]
    fn gamma_p_exponential_special_case() {
        // P(1, x) = 1 - e^{-x}.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            close(gamma_p(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn chi_square_sf_reference_values() {
        // Critical values: P[X >= 3.841] = 0.05 at df=1; 18.307 at df=10.
        close(chi_square_sf(3.841_458_820_694_124, 1.0), 0.05, 1e-8);
        close(chi_square_sf(18.307_038_053_275_146, 10.0), 0.05, 1e-8);
        close(chi_square_sf(0.0, 5.0), 1.0, 1e-14);
    }

    #[test]
    fn poisson_cdf_small_mean() {
        // Pr[N <= 0] = e^{-mu}.
        for &mu in &[0.5, 1.0, 3.0] {
            close(poisson_cdf(0, mu), (-mu).exp(), 1e-10);
        }
        // Pr[N <= 2] for mu=1: e^{-1}(1 + 1 + 0.5).
        close(poisson_cdf(2, 1.0), (-1.0f64).exp() * 2.5, 1e-10);
        close(poisson_cdf(5, 0.0), 1.0, 1e-14);
    }

    #[test]
    fn poisson_cdf_is_monotone_in_k() {
        let mu = 7.3;
        let mut prev = 0.0;
        for k in 0..30 {
            let c = poisson_cdf(k, mu);
            assert!(c >= prev - 1e-12);
            prev = c;
        }
        assert!(prev > 0.999999);
    }
}
