//! Hypothesis tests used to *verify* point-process behaviour.
//!
//! The paper's operators come with "provable expected behaviour" (Section
//! IV-B); this module supplies the machinery to check that behaviour
//! empirically: a flattened stream must pass a χ² homogeneity test over
//! space-time bins, a thinned homogeneous stream must keep exponential
//! inter-arrivals (KS test), and Poisson counts must have unit dispersion.

use crate::special::{chi_square_sf, std_normal_cdf};
use serde::{Deserialize, Serialize};

/// Result of a χ² goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChiSquare {
    /// The χ² statistic `Σ (obs − exp)² / exp`.
    pub statistic: f64,
    /// Degrees of freedom.
    pub df: f64,
    /// Survival probability `Pr[χ²_df ≥ statistic]`.
    pub p_value: f64,
}

impl ChiSquare {
    /// `true` when the null hypothesis survives at significance `alpha`.
    #[inline]
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// χ² test of the null "all bins share one expected count" — the
/// homogeneity check for binned point-process counts.
///
/// # Panics
/// Panics with fewer than two bins (no degrees of freedom) or a zero total.
#[track_caller]
pub fn chi_square_uniform(counts: &[u64]) -> ChiSquare {
    assert!(counts.len() >= 2, "need at least two bins");
    let total: u64 = counts.iter().sum();
    assert!(total > 0, "need at least one observation");
    let expected = total as f64 / counts.len() as f64;
    let statistic: f64 = counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum();
    let df = (counts.len() - 1) as f64;
    ChiSquare { statistic, df, p_value: chi_square_sf(statistic, df) }
}

/// χ² test against explicit expected counts (lengths must match).
///
/// Used when the bins have unequal volumes (e.g. edge cells clipped by a
/// query footprint), so the homogeneous null predicts unequal counts.
///
/// # Panics
/// Panics on length mismatch, fewer than two bins, or non-positive expected
/// counts.
#[track_caller]
pub fn chi_square_expected(observed: &[u64], expected: &[f64]) -> ChiSquare {
    assert_eq!(observed.len(), expected.len(), "bin count mismatch");
    assert!(observed.len() >= 2, "need at least two bins");
    let statistic: f64 = observed
        .iter()
        .zip(expected)
        .map(|(&o, &e)| {
            assert!(e > 0.0, "expected counts must be positive");
            let d = o as f64 - e;
            d * d / e
        })
        .sum();
    let df = (observed.len() - 1) as f64;
    ChiSquare { statistic, df, p_value: chi_square_sf(statistic, df) }
}

/// Result of a Kolmogorov–Smirnov test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KsTest {
    /// The KS statistic `D_n = sup |F_emp − F|`.
    pub statistic: f64,
    /// Sample size.
    pub n: usize,
    /// Asymptotic p-value from the Kolmogorov distribution.
    pub p_value: f64,
}

impl KsTest {
    /// `true` when the null hypothesis survives at significance `alpha`.
    #[inline]
    pub fn accepts(&self, alpha: f64) -> bool {
        self.p_value >= alpha
    }
}

/// One-sample KS test of inter-arrival gaps against `Exponential(rate)`.
///
/// For a homogeneous temporal Poisson process of rate `λ·area`, sorted
/// arrival gaps are iid `Exp(λ·area)`; this is the classic check that a
/// `thin`ned or `flatten`ed stream is "still Poisson" in time.
///
/// # Panics
/// Panics on an empty sample or non-positive rate.
#[track_caller]
pub fn ks_exponential(gaps: &[f64], rate: f64) -> KsTest {
    assert!(!gaps.is_empty(), "need at least one gap");
    assert!(rate > 0.0, "rate must be positive");
    let mut sorted = gaps.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("gaps must not be NaN"));
    let n = sorted.len();
    let mut d: f64 = 0.0;
    for (i, &g) in sorted.iter().enumerate() {
        let f = 1.0 - (-rate * g).exp();
        let lo = i as f64 / n as f64;
        let hi = (i + 1) as f64 / n as f64;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    KsTest { statistic: d, n, p_value: kolmogorov_sf((n as f64).sqrt() * d) }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(x) = 2 Σ_{k≥1} (−1)^{k−1} e^{−2k²x²}` (asymptotic, accurate for n ≳ 35;
/// adequate for the thousands-of-points samples the experiments use).
fn kolmogorov_sf(x: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64) * (k as f64) * x * x).exp();
        if term < 1e-16 {
            break;
        }
        sum += if k % 2 == 1 { term } else { -term };
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Result of the variance-to-mean dispersion test for Poisson counts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Dispersion {
    /// Variance/mean ratio (1 under the Poisson null).
    pub index: f64,
    /// Two-sided p-value from the normal approximation of
    /// `(n−1)·index ~ χ²_{n−1}`.
    pub p_value: f64,
}

/// Variance-to-mean dispersion index test on per-bin counts.
///
/// Under-dispersion (`index < 1`) indicates a more-regular-than-Poisson
/// stream; over-dispersion indicates clustering — exactly what flatten
/// removes when it succeeds.
///
/// # Panics
/// Panics with fewer than two bins or an all-zero sample.
#[track_caller]
pub fn dispersion_index(counts: &[u64]) -> Dispersion {
    assert!(counts.len() >= 2, "need at least two bins");
    let n = counts.len() as f64;
    let mean = counts.iter().sum::<u64>() as f64 / n;
    assert!(mean > 0.0, "need a non-zero mean count");
    let var = counts.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let index = var / mean;
    // (n-1)*index ~ χ²_{n-1}; use the Wilson–Hilferty normal approximation
    // for a two-sided p-value, robust for large bin counts.
    let df = n - 1.0;
    let z = ((index).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * df))) / (2.0 / (9.0 * df)).sqrt();
    let one_sided = 1.0 - std_normal_cdf(z.abs());
    Dispersion { index, p_value: (2.0 * one_sided).min(1.0) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Poisson};
    use rand::distributions::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn chi_square_accepts_uniform_counts() {
        let counts = vec![100u64; 20];
        let r = chi_square_uniform(&counts);
        assert_eq!(r.statistic, 0.0);
        assert!((r.p_value - 1.0).abs() < 1e-12);
        assert!(r.accepts(0.05));
    }

    #[test]
    fn chi_square_rejects_skewed_counts() {
        let mut counts = vec![100u64; 20];
        counts[0] = 600;
        let r = chi_square_uniform(&counts);
        assert!(r.p_value < 1e-6, "p={}", r.p_value);
        assert!(!r.accepts(0.001));
    }

    #[test]
    fn chi_square_accepts_true_poisson_counts() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Poisson::new(80.0);
        let counts: Vec<u64> = (0..50).map(|_| d.sample(&mut rng)).collect();
        let r = chi_square_uniform(&counts);
        assert!(r.accepts(0.001), "p={}", r.p_value);
    }

    #[test]
    fn chi_square_expected_handles_unequal_bins() {
        // Two bins with expected 2:1 ratio and observations matching it.
        let r = chi_square_expected(&[200, 100], &[200.0, 100.0]);
        assert!(r.accepts(0.05));
        let bad = chi_square_expected(&[100, 200], &[200.0, 100.0]);
        assert!(!bad.accepts(0.001), "p={}", bad.p_value);
    }

    #[test]
    #[should_panic(expected = "bin count mismatch")]
    fn chi_square_expected_length_mismatch() {
        let _ = chi_square_expected(&[1, 2, 3], &[1.0, 2.0]);
    }

    #[test]
    fn ks_accepts_true_exponential_gaps() {
        let mut rng = StdRng::seed_from_u64(11);
        let d = Exponential::new(3.0);
        let gaps: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_exponential(&gaps, 3.0);
        assert!(r.accepts(0.001), "D={} p={}", r.statistic, r.p_value);
    }

    #[test]
    fn ks_rejects_wrong_rate() {
        let mut rng = StdRng::seed_from_u64(13);
        let d = Exponential::new(3.0);
        let gaps: Vec<f64> = (0..5_000).map(|_| d.sample(&mut rng)).collect();
        let r = ks_exponential(&gaps, 1.0);
        assert!(!r.accepts(0.001), "p={}", r.p_value);
    }

    #[test]
    fn ks_rejects_uniform_gaps() {
        let gaps: Vec<f64> = (0..2_000).map(|i| 0.5 + (i % 10) as f64 * 1e-4).collect();
        let r = ks_exponential(&gaps, 2.0);
        assert!(!r.accepts(0.001));
    }

    #[test]
    fn dispersion_near_one_for_poisson() {
        let mut rng = StdRng::seed_from_u64(17);
        let d = Poisson::new(50.0);
        let counts: Vec<u64> = (0..400).map(|_| d.sample(&mut rng)).collect();
        let r = dispersion_index(&counts);
        assert!((r.index - 1.0).abs() < 0.25, "index {}", r.index);
        assert!(r.p_value > 0.001);
    }

    #[test]
    fn dispersion_detects_clustering() {
        // Alternate empty and double-loaded bins: variance >> mean.
        let counts: Vec<u64> = (0..200).map(|i| if i % 2 == 0 { 0 } else { 100 }).collect();
        let r = dispersion_index(&counts);
        assert!(r.index > 10.0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn dispersion_detects_regularity() {
        // Constant counts: index 0 (more regular than Poisson).
        let counts = vec![50u64; 100];
        let r = dispersion_index(&counts);
        assert_eq!(r.index, 0.0);
        assert!(r.p_value < 1e-6);
    }

    #[test]
    fn kolmogorov_sf_reference() {
        // Known value: Q(0.8276) ≈ 0.5 (median of the Kolmogorov dist).
        let q = kolmogorov_sf(0.827_573_555);
        assert!((q - 0.5).abs() < 1e-3, "{q}");
        assert_eq!(kolmogorov_sf(0.0), 1.0);
        assert!(kolmogorov_sf(3.0) < 1e-6);
    }
}
