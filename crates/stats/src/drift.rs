//! Sequential change-point (drift) detectors.
//!
//! The adaptive acquisition loop watches the *innovation* stream of an
//! online intensity estimator — standardized "observed minus expected"
//! residuals that hover around zero while the modelled process is
//! stationary and walk away from zero after a regime shift. Two classic
//! sequential detectors turn that stream into a fire/no-fire decision:
//!
//! - [`Cusum`]: the two-sided cumulative-sum scheme. Per side it
//!   accumulates `g⁺ ← max(0, g⁺ + x − k)` (resp. `g⁻` on `−x`) and fires
//!   when the accumulator exceeds the decision threshold `h`. The slack
//!   `k` absorbs zero-mean noise; `h` trades detection delay against
//!   false-alarm rate.
//! - [`PageHinkley`]: the Page–Hinkley test. It tracks the cumulative
//!   deviation of the signal from its own running mean and fires when
//!   that deviation climbs `lambda` above its historical minimum
//!   (resp. falls below its maximum, for downward shifts). Self-centering
//!   makes it robust to an unknown but stationary baseline level.
//!
//! Both detectors are plain deterministic state machines: no RNG, no
//! clocks, `O(1)` memory — feeding the same sequence always yields the
//! same decisions, which is what lets adaptive traces be golden-tested.

use serde::{Deserialize, Serialize};

/// The direction of a detected shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftDirection {
    /// The signal shifted upward (e.g. arrival intensity jumped).
    Up,
    /// The signal shifted downward (e.g. correlated sensor dropout).
    Down,
}

impl std::fmt::Display for DriftDirection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriftDirection::Up => write!(f, "up"),
            DriftDirection::Down => write!(f, "down"),
        }
    }
}

/// Two-sided CUSUM detector around a zero-mean signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cusum {
    /// Per-step slack `k ≥ 0`: deviations below `k` never accumulate.
    pub slack: f64,
    /// Decision threshold `h > 0`.
    pub threshold: f64,
    g_pos: f64,
    g_neg: f64,
    last_evidence: f64,
    samples: u64,
}

impl Cusum {
    /// Creates a detector with slack `k` and decision threshold `h`.
    ///
    /// # Panics
    /// Panics unless `slack >= 0` and `threshold > 0` (both finite).
    #[track_caller]
    pub fn new(slack: f64, threshold: f64) -> Self {
        assert!(slack.is_finite() && slack >= 0.0, "CUSUM slack must be >= 0, got {slack}");
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "CUSUM threshold must be > 0, got {threshold}"
        );
        Self { slack, threshold, g_pos: 0.0, g_neg: 0.0, last_evidence: 0.0, samples: 0 }
    }

    /// Feeds one observation; returns the shift direction when the
    /// accumulated evidence crosses the threshold. The detector resets
    /// itself after firing (restart semantics); the evidence level that
    /// crossed stays readable via [`Cusum::last_evidence`].
    pub fn observe(&mut self, x: f64) -> Option<DriftDirection> {
        self.samples += 1;
        self.g_pos = (self.g_pos + x - self.slack).max(0.0);
        self.g_neg = (self.g_neg - x - self.slack).max(0.0);
        self.last_evidence = self.g_pos.max(self.g_neg);
        // Deterministic tie-break: the larger excursion wins; `Up` on an
        // exact tie (both sides crossing together is a pathological input).
        if self.g_pos > self.threshold || self.g_neg > self.threshold {
            let dir =
                if self.g_pos >= self.g_neg { DriftDirection::Up } else { DriftDirection::Down };
            self.reset();
            return Some(dir);
        }
        None
    }

    /// The current evidence score: the larger of the two accumulators.
    pub fn score(&self) -> f64 {
        self.g_pos.max(self.g_neg)
    }

    /// The evidence level immediately after the most recent observation,
    /// *before* any restart — on a firing observation this is the value
    /// that crossed the threshold, where [`Cusum::score`] has already been
    /// reset to 0.
    pub fn last_evidence(&self) -> f64 {
        self.last_evidence
    }

    /// Observations consumed since creation (survives resets).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Clears the accumulated evidence (the sample counter is kept).
    pub fn reset(&mut self) {
        self.g_pos = 0.0;
        self.g_neg = 0.0;
    }
}

/// Two-sided Page–Hinkley detector, self-centered on the running mean.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PageHinkley {
    /// Magnitude tolerance `δ ≥ 0`: drifts smaller than `δ` per step are
    /// treated as noise.
    pub delta: f64,
    /// Decision threshold `λ > 0` on the deviation-from-extremum.
    pub lambda: f64,
    mean: f64,
    since_reset: u64,
    m_up: f64,
    m_up_min: f64,
    m_down: f64,
    m_down_min: f64,
    last_evidence: f64,
    samples: u64,
}

impl PageHinkley {
    /// Creates a detector with tolerance `delta` and threshold `lambda`.
    ///
    /// # Panics
    /// Panics unless `delta >= 0` and `lambda > 0` (both finite).
    #[track_caller]
    pub fn new(delta: f64, lambda: f64) -> Self {
        assert!(delta.is_finite() && delta >= 0.0, "PH delta must be >= 0, got {delta}");
        assert!(lambda.is_finite() && lambda > 0.0, "PH lambda must be > 0, got {lambda}");
        Self {
            delta,
            lambda,
            mean: 0.0,
            since_reset: 0,
            m_up: 0.0,
            m_up_min: 0.0,
            m_down: 0.0,
            m_down_min: 0.0,
            last_evidence: 0.0,
            samples: 0,
        }
    }

    /// Feeds one observation; returns the shift direction when the
    /// cumulative deviation climbs `lambda` past its historical extremum.
    /// The detector resets itself after firing (restart semantics); the
    /// evidence level that crossed stays readable via
    /// [`PageHinkley::last_evidence`].
    pub fn observe(&mut self, x: f64) -> Option<DriftDirection> {
        self.samples += 1;
        self.since_reset += 1;
        // Running mean of the monitored segment (since the last fire).
        self.mean += (x - self.mean) / self.since_reset as f64;
        self.m_up += x - self.mean - self.delta;
        self.m_up_min = self.m_up_min.min(self.m_up);
        self.m_down += self.mean - x - self.delta;
        self.m_down_min = self.m_down_min.min(self.m_down);
        let up = self.m_up - self.m_up_min;
        let down = self.m_down - self.m_down_min;
        self.last_evidence = up.max(down);
        if up > self.lambda || down > self.lambda {
            let dir = if up >= down { DriftDirection::Up } else { DriftDirection::Down };
            self.reset();
            return Some(dir);
        }
        None
    }

    /// The current evidence score: the larger deviation-from-extremum.
    pub fn score(&self) -> f64 {
        (self.m_up - self.m_up_min).max(self.m_down - self.m_down_min)
    }

    /// The evidence level immediately after the most recent observation,
    /// *before* any restart — on a firing observation this is the value
    /// that crossed the threshold, where [`PageHinkley::score`] has
    /// already been reset to 0.
    pub fn last_evidence(&self) -> f64 {
        self.last_evidence
    }

    /// Observations consumed since creation (survives resets).
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Clears the accumulated evidence and the running mean (the sample
    /// counter is kept).
    pub fn reset(&mut self) {
        self.mean = 0.0;
        self.since_reset = 0;
        self.m_up = 0.0;
        self.m_up_min = 0.0;
        self.m_down = 0.0;
        self.m_down_min = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cusum_quiet_on_zero_signal() {
        let mut c = Cusum::new(0.5, 5.0);
        for i in 0..1000 {
            // Deterministic bounded zero-mean wiggle.
            let x = ((i as f64) * 0.7).sin() * 0.4;
            assert_eq!(c.observe(x), None, "false alarm at sample {i}");
        }
        assert_eq!(c.samples(), 1000);
    }

    #[test]
    fn cusum_fires_up_fast_on_level_shift() {
        let mut c = Cusum::new(0.5, 5.0);
        for _ in 0..50 {
            assert_eq!(c.observe(0.0), None);
        }
        let mut fired_at = None;
        for i in 0..20 {
            if let Some(dir) = c.observe(2.0) {
                assert_eq!(dir, DriftDirection::Up);
                fired_at = Some(i);
                break;
            }
        }
        // Evidence grows by (2.0 - 0.5) per step: crosses h=5 at step 3.
        assert_eq!(fired_at, Some(3));
    }

    #[test]
    fn cusum_fires_down_on_negative_shift() {
        let mut c = Cusum::new(0.25, 4.0);
        for _ in 0..10 {
            c.observe(0.0);
        }
        let dir = (0..40).find_map(|_| c.observe(-1.0));
        assert_eq!(dir, Some(DriftDirection::Down));
        // Restart semantics: evidence is gone after the fire — but the
        // crossing value survives for trace recording.
        assert_eq!(c.score(), 0.0);
        assert!(c.last_evidence() > c.threshold, "evidence {}", c.last_evidence());
    }

    #[test]
    fn last_evidence_tracks_score_until_a_fire() {
        let mut c = Cusum::new(0.25, 3.0);
        let mut ph = PageHinkley::new(0.1, 3.0);
        for i in 0..5 {
            let x = 0.5 + i as f64 * 0.1;
            assert_eq!(c.observe(x), None);
            assert_eq!(c.last_evidence(), c.score());
            assert_eq!(ph.observe(x), None);
            assert_eq!(ph.last_evidence(), ph.score());
        }
        assert!((0..20).any(|_| ph.observe(5.0).is_some()));
        assert!(ph.last_evidence() > ph.lambda);
        assert_eq!(ph.score(), 0.0);
    }

    #[test]
    fn page_hinkley_quiet_on_constant_offset() {
        // Self-centering: a constant non-zero level is *not* drift.
        let mut ph = PageHinkley::new(0.1, 8.0);
        for i in 0..2000 {
            let x = 3.0 + ((i as f64) * 1.3).sin() * 0.3;
            assert_eq!(ph.observe(x), None, "false alarm at sample {i}");
        }
    }

    #[test]
    fn page_hinkley_fires_on_mean_jump() {
        let mut ph = PageHinkley::new(0.05, 6.0);
        for _ in 0..100 {
            assert_eq!(ph.observe(0.0), None);
        }
        let fired = (0..30).find_map(|i| ph.observe(1.5).map(|d| (i, d)));
        let (delay, dir) = fired.expect("PH must fire on a 1.5-sigma jump");
        assert_eq!(dir, DriftDirection::Up);
        assert!(delay < 15, "detection delay {delay} too large");
    }

    #[test]
    fn page_hinkley_fires_down_on_drop() {
        let mut ph = PageHinkley::new(0.05, 6.0);
        for _ in 0..100 {
            ph.observe(2.0);
        }
        let dir = (0..40).find_map(|_| ph.observe(0.0));
        assert_eq!(dir, Some(DriftDirection::Down));
    }

    #[test]
    fn detectors_are_deterministic() {
        let feed = |mut c: Cusum| -> Vec<Option<DriftDirection>> {
            (0..200).map(|i| c.observe(((i as f64) * 0.37).sin() + (i / 100) as f64)).collect()
        };
        assert_eq!(feed(Cusum::new(0.3, 4.0)), feed(Cusum::new(0.3, 4.0)));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn cusum_rejects_zero_threshold() {
        let _ = Cusum::new(0.1, 0.0);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn page_hinkley_rejects_zero_lambda() {
        let _ = PageHinkley::new(0.1, 0.0);
    }
}
