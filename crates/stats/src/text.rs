//! The workspace's one shortest-roundtrip float formatter.
//!
//! Canonical text artifacts (scenario reports, adaptive traces, run
//! logs) must render floats so they parse back **bit-identically** while
//! still reading as floats in a diff. Like [`crate::fnv`], this used to
//! be re-implemented per consumer; one copy means the scenario codec and
//! the run-log codec can never drift on how the same value prints.

/// Formats a float so it parses back bit-identically *and* still reads
/// as a float (`1` becomes `1.0`) — Rust's shortest-roundtrip `{}` plus
/// a `.0`/exponent guarantee.
pub fn format_float(f: f64) -> String {
    let s = format!("{f}");
    if s.contains('.')
        || s.contains('e')
        || s.contains('E')
        || s.contains("inf")
        || s.contains("NaN")
    {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_bit_exactly() {
        for f in [0.1, -0.0, 1.0, 1e-300, f64::MAX, f64::MIN_POSITIVE, 123_456_789.123_456_78] {
            let s = format_float(f);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} → '{s}' → {back}");
        }
    }

    #[test]
    fn integers_still_read_as_floats() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(-42.0), "-42.0");
        assert_eq!(format_float(-0.0), "-0.0");
        assert_eq!(format_float(f64::INFINITY), "inf");
    }
}
