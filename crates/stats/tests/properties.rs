//! Property tests for the statistical substrate: sampler moments, special
//! function identities, and estimator laws under randomized parameters.

use craqr_stats::dist::{Exponential, Normal, Poisson};
use craqr_stats::online::{Ewma, OnlineMoments};
use craqr_stats::special::{chi_square_sf, erf, erfc, gamma_p, gamma_q, ln_gamma};
use craqr_stats::{seeded_rng, sub_rng};
use proptest::prelude::*;
use rand::distributions::Distribution;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exponential_mean_tracks_rate(rate in 0.1f64..50.0, seed in any::<u64>()) {
        let d = Exponential::new(rate);
        let mut rng = seeded_rng(seed);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        let expect = 1.0 / rate;
        // Standard error of the mean is expect/√n; allow 6σ.
        prop_assert!(
            (mean - expect).abs() < 6.0 * expect / (n as f64).sqrt(),
            "mean {mean} vs {expect}"
        );
    }

    #[test]
    fn normal_samples_standardize(mu in -50.0f64..50.0, sd in 0.01f64..20.0, seed in any::<u64>()) {
        let d = Normal::new(mu, sd);
        let mut rng = seeded_rng(seed);
        let n = 20_000;
        let mut m = OnlineMoments::new();
        for _ in 0..n {
            m.push(d.sample(&mut rng));
        }
        prop_assert!((m.mean() - mu).abs() < 6.0 * sd / (n as f64).sqrt());
        prop_assert!((m.sd() - sd).abs() < 0.1 * sd + 1e-6);
    }

    #[test]
    fn poisson_mean_equals_variance(mean in 0.1f64..500.0, seed in any::<u64>()) {
        let d = Poisson::new(mean);
        let mut rng = seeded_rng(seed);
        let n = 20_000;
        let mut m = OnlineMoments::new();
        for _ in 0..n {
            m.push(d.sample(&mut rng) as f64);
        }
        let se = (mean / n as f64).sqrt();
        prop_assert!((m.mean() - mean).abs() < 6.0 * se, "mean {} vs {mean}", m.mean());
        // Variance concentrates more slowly; allow 10% + slack.
        prop_assert!(
            (m.variance() - mean).abs() < 0.1 * mean + 1.0,
            "var {} vs {mean}",
            m.variance()
        );
    }

    #[test]
    fn gamma_identities_hold(a in 0.05f64..200.0, x in 0.0f64..300.0) {
        let p = gamma_p(a, x);
        let q = gamma_q(a, x);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        prop_assert!((0.0..=1.0 + 1e-12).contains(&q));
        prop_assert!((p + q - 1.0).abs() < 1e-10, "P+Q = {}", p + q);
    }

    #[test]
    fn gamma_p_is_monotone_in_x(a in 0.1f64..50.0, x in 0.0f64..100.0, dx in 0.01f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn erf_is_odd_and_bounded(x in -6.0f64..6.0) {
        prop_assert!((erf(x) + erf(-x)).abs() < 1e-12);
        prop_assert!(erf(x).abs() <= 1.0);
        prop_assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_satisfies_recurrence(x in 0.1f64..100.0) {
        // Γ(x+1) = x·Γ(x)  ⇒  lnΓ(x+1) = ln x + lnΓ(x).
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn chi_square_sf_is_monotone(df in 1.0f64..100.0, stat in 0.0f64..200.0, d in 0.1f64..20.0) {
        prop_assert!(chi_square_sf(stat + d, df) <= chi_square_sf(stat, df) + 1e-12);
    }

    #[test]
    fn welford_merge_is_associative_enough(
        xs in prop::collection::vec(-100.0f64..100.0, 3..200),
        split in 1usize..100,
    ) {
        let split = split.min(xs.len() - 1);
        let mut whole = OnlineMoments::new();
        whole.extend(xs.iter().copied());
        let mut left = OnlineMoments::new();
        left.extend(xs[..split].iter().copied());
        let mut right = OnlineMoments::new();
        right.extend(xs[split..].iter().copied());
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        prop_assert!((left.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((left.variance() - whole.variance()).abs() < 1e-7);
    }

    #[test]
    fn ewma_stays_within_input_hull(
        xs in prop::collection::vec(-10.0f64..10.0, 1..60),
        alpha in 0.01f64..1.0,
    ) {
        let mut e = Ewma::new(alpha);
        let lo = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for &x in &xs {
            let v = e.push(x);
            prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn sub_rng_streams_are_stable(seed in any::<u64>(), tag in any::<u64>()) {
        use rand::Rng;
        let a: u64 = sub_rng(seed, tag).gen();
        let b: u64 = sub_rng(seed, tag).gen();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Drift detectors: the false-alarm/detection-delay contract behind the
// adaptive acquisition loop (ISSUE 3). Stationary standardized-innovation
// streams must never fire across seeds; an injected jump must fire within
// a bounded number of observations.
// ---------------------------------------------------------------------------

/// A synthetic standardized-innovation stream: zero-mean, roughly
/// unit-variance (what a calibrated estimator emits while stationary).
fn innovation_stream(seed: u64, n: usize) -> Vec<f64> {
    let d = Normal::new(0.0, 1.0);
    let mut rng = seeded_rng(seed);
    (0..n).map(|_| d.sample(&mut rng)).collect()
}

#[test]
fn drift_detectors_have_zero_false_alarms_on_stationary_streams() {
    use craqr_stats::{Cusum, PageHinkley};
    for seed in 0u64..10 {
        let stream = innovation_stream(seed, 400);
        let mut cusum = Cusum::new(0.5, 8.0);
        let mut ph = PageHinkley::new(0.5, 8.0);
        for (i, &x) in stream.iter().enumerate() {
            assert_eq!(cusum.observe(x), None, "CUSUM false alarm, seed {seed}, sample {i}");
            assert_eq!(ph.observe(x), None, "PH false alarm, seed {seed}, sample {i}");
        }
    }
}

#[test]
fn drift_detectors_fire_within_k_of_an_injected_jump() {
    use craqr_stats::{Cusum, DriftDirection, PageHinkley};
    const K: usize = 8;
    for seed in 0u64..10 {
        for (magnitude, want) in [(3.0, DriftDirection::Up), (-3.0, DriftDirection::Down)] {
            let mut stream = innovation_stream(seed, 80);
            // Inject the jump: the post-change innovations re-center on
            // `magnitude` (a 3σ regime shift).
            stream.extend(innovation_stream(seed ^ 0xD1F7, 40).iter().map(|x| x + magnitude));

            let mut cusum = Cusum::new(0.5, 8.0);
            let mut ph = PageHinkley::new(0.5, 8.0);
            let mut cusum_fire = None;
            let mut ph_fire = None;
            for (i, &x) in stream.iter().enumerate() {
                if let (Some(d), None) = (cusum.observe(x), cusum_fire) {
                    assert_eq!(d, want, "CUSUM direction, seed {seed}");
                    cusum_fire = Some(i);
                }
                if let (Some(d), None) = (ph.observe(x), ph_fire) {
                    assert_eq!(d, want, "PH direction, seed {seed}");
                    ph_fire = Some(i);
                }
            }
            for (name, fire) in [("CUSUM", cusum_fire), ("PH", ph_fire)] {
                let at = fire.unwrap_or_else(|| panic!("{name} never fired, seed {seed}"));
                assert!(
                    (80..80 + K).contains(&at),
                    "{name} fired at {at}, want within {K} of the jump at 80 (seed {seed})"
                );
            }
        }
    }
}
