//! Merge laws for [`craqr_telemetry::Registry::absorb`]: commutative,
//! associative, and therefore order-independent over any shard
//! permutation — the property the sharded executor relies on to merge
//! per-shard registries without fixing a merge order.

use craqr_telemetry::{Determinism, Registry};
use proptest::prelude::*;

/// One abstract metric operation.
#[derive(Debug, Clone)]
enum Op {
    Inc { name: usize, tenant: usize, delta: u64 },
    Gauge { name: usize, delta: i32 },
    Observe { name: usize, value_milli: u32 },
}

const BOUNDS: &[f64] = &[0.5, 1.0, 2.0, 4.0];

fn apply(r: &mut Registry, op: &Op) {
    match op {
        Op::Inc { name, tenant, delta } => r.inc(
            &format!("craqr_c{name}_total"),
            "counter under test",
            Determinism::Event,
            &[("tenant", &tenant.to_string())],
            *delta,
        ),
        Op::Gauge { name, delta } => r.gauge_add(
            &format!("craqr_g{name}"),
            "gauge under test",
            Determinism::Event,
            &[],
            f64::from(*delta),
        ),
        // Dyadic values (k/1024) add exactly in f64, so histogram sums —
        // which are *not* associative for general floats and are excluded
        // from every checksum for exactly that reason — stay bit-equal
        // across merge orders here; bucket counts are integers and are
        // exact regardless.
        Op::Observe { name, value_milli } => r.observe(
            &format!("craqr_h{name}_seconds"),
            "histogram under test",
            Determinism::Timing,
            &[],
            BOUNDS,
            f64::from(*value_milli) / 1024.0,
        ),
    }
}

fn registry_of(ops: &[Op]) -> Registry {
    let mut r = Registry::new();
    for op in ops {
        apply(&mut r, op);
    }
    r
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..3usize, 0..3usize, 0..100u64).prop_map(|(name, tenant, delta)| Op::Inc {
            name,
            tenant,
            delta
        }),
        (0..2usize, -50..50i32).prop_map(|(name, delta)| Op::Gauge { name, delta }),
        (0..2usize, 0..8000u32).prop_map(|(name, value_milli)| Op::Observe { name, value_milli }),
    ]
}

fn shards_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    prop::collection::vec(prop::collection::vec(op_strategy(), 0..12), 1..5)
}

/// Both canonical renderings (gauges are floats, so compare text rather
/// than bit patterns indirectly — the shortest-roundtrip formatter makes
/// equal values render equally; float addition over these small integral
/// deltas is exact).
fn fingerprint(r: &Registry) -> (String, String) {
    (r.canonical_events(), r.canonical_full())
}

proptest! {
    #[test]
    fn absorb_is_commutative(a in prop::collection::vec(op_strategy(), 0..20),
                             b in prop::collection::vec(op_strategy(), 0..20)) {
        let (ra, rb) = (registry_of(&a), registry_of(&b));
        let mut ab = ra.clone();
        ab.absorb(&rb);
        let mut ba = rb.clone();
        ba.absorb(&ra);
        prop_assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn absorb_is_associative(a in prop::collection::vec(op_strategy(), 0..15),
                             b in prop::collection::vec(op_strategy(), 0..15),
                             c in prop::collection::vec(op_strategy(), 0..15)) {
        let (ra, rb, rc) = (registry_of(&a), registry_of(&b), registry_of(&c));
        // (a ⊔ b) ⊔ c
        let mut left = ra.clone();
        left.absorb(&rb);
        left.absorb(&rc);
        // a ⊔ (b ⊔ c)
        let mut bc = rb.clone();
        bc.absorb(&rc);
        let mut right = ra.clone();
        right.absorb(&bc);
        prop_assert_eq!(fingerprint(&left), fingerprint(&right));
    }

    #[test]
    fn shard_merge_is_order_independent(shards in shards_strategy(),
                                        seed in 0..u64::MAX) {
        let registries: Vec<Registry> = shards.iter().map(|ops| registry_of(ops)).collect();

        // Ascending shard order — the executor's canonical merge.
        let mut forward = Registry::new();
        for r in &registries {
            forward.absorb(r);
        }

        // A deterministic pseudo-random permutation of the same shards.
        let mut order: Vec<usize> = (0..registries.len()).collect();
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        let mut shuffled = Registry::new();
        for i in order {
            shuffled.absorb(&registries[i]);
        }

        prop_assert_eq!(fingerprint(&forward), fingerprint(&shuffled));
    }

    #[test]
    fn split_equals_whole(ops in prop::collection::vec(op_strategy(), 0..30),
                          cut in 0..30usize) {
        // Applying ops in one registry == applying a prefix/suffix split
        // into two registries and absorbing: absorb loses nothing.
        let cut = cut.min(ops.len());
        let whole = registry_of(&ops);
        let mut halves = registry_of(&ops[..cut]);
        halves.absorb(&registry_of(&ops[cut..]));
        prop_assert_eq!(fingerprint(&whole), fingerprint(&halves));
    }
}
