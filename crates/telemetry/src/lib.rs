//! Determinism-aware metrics: counters, gauges, and fixed-boundary
//! histograms in a mergeable registry, with a canonical text snapshot and
//! a Prometheus exposition renderer.
//!
//! CrAQR's hard constraint is bit-identical output for a fixed seed across
//! execution modes and hosts. Metrics therefore carry a [`Determinism`]
//! tag at registration:
//!
//! - [`Determinism::Event`] — derived purely from the simulation's event
//!   stream (dispatch counts, admission verdicts, tenant charges, fault
//!   and retry counters). These are identical on every host and may join
//!   checksummed artifacts like the scenario report's `[telemetry]`
//!   section ([`Registry::canonical_events`]).
//! - [`Determinism::Timing`] — derived from clocks (epoch-phase
//!   latencies, shard busy time, node processing time). Useful for
//!   operators, meaningless for checksums; they are excluded from
//!   [`Registry::canonical_events`] exactly as `busy_ns` is excluded from
//!   report bodies, and appear only in the full snapshot and the
//!   Prometheus render.
//!
//! Registries merge with [`Registry::absorb`], which is commutative and
//! associative (counters and gauges sum; histograms add bucket-wise), so
//! per-shard registries can merge in any order without changing the
//! result — proptested in `tests/merge_laws.rs`.

mod lint;
mod registry;

pub use lint::{lint_exposition, LintError};
pub use registry::{Determinism, HistogramSnapshot, MetricKind, MetricValue, Registry};

/// Bucket boundaries (seconds) for epoch-phase latency histograms:
/// 10µs … 1s in half-decade steps — wide enough for a starved CI host,
/// fine enough to see a 2× regression in a 100µs phase.
pub const PHASE_SECONDS_BOUNDS: &[f64] =
    &[1e-5, 3.16e-5, 1e-4, 3.16e-4, 1e-3, 3.16e-3, 1e-2, 3.16e-2, 1e-1, 3.16e-1, 1.0];
