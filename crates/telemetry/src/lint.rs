//! A strict format lint for Prometheus exposition text (version 0.0.4) —
//! the check the CI `telemetry` job runs over `--metrics` output.
//!
//! Enforced:
//! - every sample belongs to a family announced by a `# HELP` + `# TYPE`
//!   pair (HELP first), and each family is announced exactly once;
//! - family names are unique and well-formed (`[a-zA-Z_:][a-zA-Z0-9_:]*`);
//! - histogram families expose `_bucket`/`_sum`/`_count` series whose
//!   `le` buckets are strictly ascending, cumulative (non-decreasing
//!   counts), terminated by `le="+Inf"`, with `_count` equal to the
//!   `+Inf` bucket;
//! - sample values parse as numbers.

use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A lint violation with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// 1-based line of the offending input (0 for whole-document errors).
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> LintError {
    LintError { line, message: message.into() }
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{labels} value` into (name, labels-or-empty, value).
fn split_sample(line: &str) -> Option<(&str, &str, &str)> {
    if let Some(open) = line.find('{') {
        let close = line.rfind('}')?;
        let name = &line[..open];
        let labels = &line[open + 1..close];
        let value = line[close + 1..].trim();
        Some((name, labels, value))
    } else {
        let (name, value) = line.split_at(line.find(' ')?);
        Some((name, "", value.trim()))
    }
}

fn label_value(labels: &str, key: &str) -> Option<String> {
    for part in labels.split(',') {
        let (k, v) = part.split_once('=')?;
        if k == key {
            return Some(v.trim_matches('"').to_string());
        }
    }
    None
}

/// The base family a sample name belongs to, honouring histogram
/// suffixes for families declared `histogram`.
fn family_of<'a>(name: &'a str, types: &BTreeMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|t| t == "histogram") {
                return base;
            }
        }
    }
    name
}

/// Lints one exposition document; returns every violation found.
pub fn lint_exposition(text: &str) -> Result<(), Vec<LintError>> {
    let mut errors = Vec::new();
    let mut helps: HashSet<String> = HashSet::new();
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // (family, labels-without-le) → ascending (le, cumulative, line) rows.
    type BucketRows = Vec<(f64, u64, usize)>;
    let mut buckets: BTreeMap<(String, String), BucketRows> = BTreeMap::new();
    let mut counts: BTreeMap<(String, String), (u64, usize)> = BTreeMap::new();

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let Some((name, _)) = rest.split_once(' ') else {
                errors.push(err(line_no, format!("HELP without text: '{line}'")));
                continue;
            };
            if !helps.insert(name.to_string()) {
                errors.push(err(line_no, format!("duplicate HELP for '{name}'")));
            }
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let Some((name, kind)) = rest.split_once(' ') else {
                errors.push(err(line_no, format!("TYPE without kind: '{line}'")));
                continue;
            };
            if !helps.contains(name) {
                errors.push(err(line_no, format!("TYPE for '{name}' precedes its HELP")));
            }
            if types.insert(name.to_string(), kind.to_string()).is_some() {
                errors.push(err(line_no, format!("duplicate TYPE for '{name}'")));
            }
            if !valid_name(name) {
                errors.push(err(line_no, format!("invalid metric name '{name}'")));
            }
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                errors.push(err(line_no, format!("unknown metric type '{kind}'")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // free-form comment
        }
        let Some((name, labels, value)) = split_sample(line) else {
            errors.push(err(line_no, format!("malformed sample line: '{line}'")));
            continue;
        };
        let family = family_of(name, &types);
        if !types.contains_key(family) {
            errors.push(err(
                line_no,
                format!("sample '{name}' has no preceding # TYPE for family '{family}'"),
            ));
            continue;
        }
        if value.parse::<f64>().is_err() && value != "+Inf" && value != "-Inf" && value != "NaN" {
            errors.push(err(line_no, format!("sample value does not parse: '{value}'")));
        }
        if types.get(family).is_some_and(|t| t == "histogram") {
            let series_labels: Vec<&str> =
                labels.split(',').filter(|p| !p.starts_with("le=") && !p.is_empty()).collect();
            let key = (family.to_string(), series_labels.join(","));
            if name.ends_with("_bucket") {
                let Some(le) = label_value(labels, "le") else {
                    errors.push(err(line_no, format!("bucket sample without le: '{line}'")));
                    continue;
                };
                let le_val =
                    if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
                let cum = value.parse::<u64>().unwrap_or(u64::MAX);
                buckets.entry(key).or_default().push((le_val, cum, line_no));
            } else if name.ends_with("_count") {
                counts.insert(key, (value.parse::<u64>().unwrap_or(u64::MAX), line_no));
            }
        }
    }

    for (name,) in types.keys().map(|n| (n,)) {
        if !helps.contains(name.as_str()) {
            errors.push(err(0, format!("family '{name}' has TYPE but no HELP")));
        }
    }
    for ((family, labels), series) in &buckets {
        let at = series.first().map(|(_, _, l)| *l).unwrap_or(0);
        // NaN les (unparseable) must fail the ascending check too, so the
        // comparison is deliberately "not strictly less" rather than >=.
        if series.windows(2).any(|w| w[0].0.partial_cmp(&w[1].0) != Some(std::cmp::Ordering::Less))
        {
            errors.push(err(at, format!("histogram '{family}{{{labels}}}' le not ascending")));
        }
        if series.windows(2).any(|w| w[0].1 > w[1].1) {
            errors.push(err(
                at,
                format!("histogram '{family}{{{labels}}}' bucket counts not cumulative"),
            ));
        }
        match series.last() {
            Some((le, last_cum, _)) if le.is_infinite() => {
                if let Some((count, cline)) = counts.get(&(family.clone(), labels.clone())) {
                    if count != last_cum {
                        errors.push(err(
                            *cline,
                            format!(
                                "histogram '{family}{{{labels}}}' _count {count} != +Inf bucket {last_cum}"
                            ),
                        ));
                    }
                }
            }
            _ => errors.push(err(
                at,
                format!("histogram '{family}{{{labels}}}' does not end at le=\"+Inf\""),
            )),
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = "\
# HELP craqr_sent_total probes sent
# TYPE craqr_sent_total counter
craqr_sent_total{tenant=\"0\"} 9
# HELP craqr_lat_seconds latency
# TYPE craqr_lat_seconds histogram
craqr_lat_seconds_bucket{le=\"1.0\"} 1
craqr_lat_seconds_bucket{le=\"+Inf\"} 3
craqr_lat_seconds_sum 11.0
craqr_lat_seconds_count 3
";

    #[test]
    fn clean_document_passes() {
        lint_exposition(GOOD).expect("good document lints clean");
    }

    #[test]
    fn missing_type_is_flagged() {
        let bad = "craqr_orphan_total 3\n";
        let errs = lint_exposition(bad).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("no preceding # TYPE")), "{errs:?}");
    }

    #[test]
    fn duplicate_family_is_flagged() {
        let bad = format!("{GOOD}# HELP craqr_sent_total again\n# TYPE craqr_sent_total counter\n");
        let errs = lint_exposition(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("duplicate HELP")), "{errs:?}");
        assert!(errs.iter().any(|e| e.message.contains("duplicate TYPE")), "{errs:?}");
    }

    #[test]
    fn non_monotone_buckets_are_flagged() {
        let bad = GOOD.replace(
            "craqr_lat_seconds_bucket{le=\"+Inf\"} 3",
            "craqr_lat_seconds_bucket{le=\"+Inf\"} 0",
        );
        let errs = lint_exposition(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not cumulative")), "{errs:?}");
    }

    #[test]
    fn missing_inf_bucket_is_flagged() {
        let bad: String =
            GOOD.lines().filter(|l| !l.contains("+Inf")).map(|l| format!("{l}\n")).collect();
        let errs = lint_exposition(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("does not end at le")), "{errs:?}");
    }

    #[test]
    fn count_must_match_inf_bucket() {
        let bad = GOOD.replace("craqr_lat_seconds_count 3", "craqr_lat_seconds_count 4");
        let errs = lint_exposition(&bad).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("!= +Inf bucket")), "{errs:?}");
    }
}
