//! The metric registry: named families of counters, gauges, and
//! fixed-boundary histograms, each tagged with a [`Determinism`] class,
//! optionally fanned out over label sets.

use craqr_stats::{fnv1a64, format_float};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Whether a metric's value is reproducible across hosts and schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Determinism {
    /// Derived from the deterministic event stream — identical for a
    /// fixed seed on every host; safe to checksum.
    Event,
    /// Derived from clocks — host- and schedule-dependent; excluded from
    /// every checksummed rendering (the `busy_ns` rule).
    Timing,
}

impl Determinism {
    fn tag(self) -> &'static str {
        match self {
            Determinism::Event => "event",
            Determinism::Timing => "timing",
        }
    }
}

/// The shape of a metric family (fixed at first touch).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone sum of `u64` increments.
    Counter,
    /// A summable level (absorb adds, so per-shard gauges merge to the
    /// fleet total — use one registry per logical scope if you need
    /// last-write semantics instead).
    Gauge,
    /// Fixed-boundary cumulative histogram.
    Histogram,
}

impl MetricKind {
    fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One series' current value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(f64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// A histogram's buckets (non-cumulative per-bucket counts), sum, and
/// count. `bounds.len() + 1 == buckets.len()`: the final bucket is the
/// `+Inf` overflow.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct HistogramSnapshot {
    /// Upper bounds, strictly ascending, excluding `+Inf`.
    pub bounds: Vec<f64>,
    /// Per-bucket observation counts (last entry = overflow past the
    /// final bound).
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending: {bounds:?}"
        );
        Self { bounds: bounds.to_vec(), buckets: vec![0; bounds.len() + 1], sum: 0.0, count: 0 }
    }

    fn observe(&mut self, value: f64) {
        let idx = self.bounds.partition_point(|b| value > *b);
        self.buckets[idx] += 1;
        self.sum += value;
        self.count += 1;
    }

    fn absorb(&mut self, other: &Self) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot absorb histograms with different bucket boundaries"
        );
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A label set, kept sorted by key so equal sets compare and render
/// identically regardless of call-site order.
type Labels = Vec<(String, String)>;

fn labels_of(pairs: &[(&str, &str)]) -> Labels {
    let mut labels: Labels = pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    labels.sort();
    debug_assert!(labels.windows(2).all(|w| w[0].0 != w[1].0), "duplicate label key");
    labels
}

fn fmt_labels(labels: &Labels) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

#[derive(Debug, Clone, PartialEq)]
struct Family {
    help: String,
    determinism: Determinism,
    kind: MetricKind,
    series: BTreeMap<Labels, MetricValue>,
}

/// A mergeable collection of metric families.
///
/// Metrics auto-register on first touch; re-touching with a different
/// kind, determinism class, or histogram bounds panics (it is a
/// programming error, not input-dependent). [`Registry::absorb`] is
/// commutative and associative, so shard registries merge
/// order-independently.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    fn family(
        &mut self,
        name: &str,
        help: &str,
        determinism: Determinism,
        kind: MetricKind,
    ) -> &mut Family {
        if !self.families.contains_key(name) {
            self.families.insert(
                name.to_string(),
                Family { help: help.to_string(), determinism, kind, series: BTreeMap::new() },
            );
        }
        let fam = self.families.get_mut(name).expect("inserted above");
        assert_eq!(fam.kind, kind, "metric '{name}' re-registered with a different kind");
        assert_eq!(
            fam.determinism, determinism,
            "metric '{name}' re-registered with a different determinism class"
        );
        fam
    }

    /// The allocation-free hot path: locates an existing series without
    /// building owned label strings. Epoch loops touch the same few
    /// series thousands of times, so after first registration every
    /// record lands here — a `&str` family lookup plus a linear scan of
    /// the family's handful of series. Returns `None` (→ the allocating
    /// registration path) when the family or series does not exist yet,
    /// or when `pairs` is not key-sorted (stored label sets are sorted;
    /// every craqr call site passes ≤1 label, which is trivially sorted).
    fn fast_series(
        &mut self,
        name: &str,
        determinism: Determinism,
        kind: MetricKind,
        pairs: &[(&str, &str)],
    ) -> Option<&mut MetricValue> {
        if !pairs.windows(2).all(|w| w[0].0 <= w[1].0) {
            return None;
        }
        let fam = self.families.get_mut(name)?;
        assert_eq!(fam.kind, kind, "metric '{name}' re-registered with a different kind");
        assert_eq!(
            fam.determinism, determinism,
            "metric '{name}' re-registered with a different determinism class"
        );
        fam.series
            .iter_mut()
            .find(|(stored, _)| {
                stored.len() == pairs.len()
                    && stored.iter().zip(pairs).all(|((k, v), (pk, pv))| k == pk && v == pv)
            })
            .map(|(_, value)| value)
    }

    /// Adds `delta` to the counter `name` (auto-registering it).
    pub fn inc(
        &mut self,
        name: &str,
        help: &str,
        determinism: Determinism,
        labels: &[(&str, &str)],
        delta: u64,
    ) {
        if let Some(MetricValue::Counter(v)) =
            self.fast_series(name, determinism, MetricKind::Counter, labels)
        {
            *v += delta;
            return;
        }
        let labels = labels_of(labels);
        let fam = self.family(name, help, determinism, MetricKind::Counter);
        match fam.series.entry(labels).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Adds `delta` to the gauge `name` (auto-registering it). Gauges sum
    /// under [`Registry::absorb`]; use `add` semantics at the call site.
    pub fn gauge_add(
        &mut self,
        name: &str,
        help: &str,
        determinism: Determinism,
        labels: &[(&str, &str)],
        delta: f64,
    ) {
        if let Some(MetricValue::Gauge(v)) =
            self.fast_series(name, determinism, MetricKind::Gauge, labels)
        {
            *v += delta;
            return;
        }
        let labels = labels_of(labels);
        let fam = self.family(name, help, determinism, MetricKind::Gauge);
        match fam.series.entry(labels).or_insert(MetricValue::Gauge(0.0)) {
            MetricValue::Gauge(v) => *v += delta,
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Records one observation into the histogram `name`
    /// (auto-registering it with `bounds`).
    pub fn observe(
        &mut self,
        name: &str,
        help: &str,
        determinism: Determinism,
        labels: &[(&str, &str)],
        bounds: &[f64],
        value: f64,
    ) {
        if let Some(MetricValue::Histogram(h)) =
            self.fast_series(name, determinism, MetricKind::Histogram, labels)
        {
            assert_eq!(
                h.bounds, bounds,
                "metric '{name}' re-touched with different bucket boundaries"
            );
            h.observe(value);
            return;
        }
        let labels = labels_of(labels);
        let fam = self.family(name, help, determinism, MetricKind::Histogram);
        match fam
            .series
            .entry(labels)
            .or_insert_with(|| MetricValue::Histogram(HistogramSnapshot::new(bounds)))
        {
            MetricValue::Histogram(h) => {
                assert_eq!(
                    h.bounds, bounds,
                    "metric '{name}' re-touched with different bucket boundaries"
                );
                h.observe(value);
            }
            _ => unreachable!("family kind checked above"),
        }
    }

    /// Reads a counter's current total (0 when untouched).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        let labels = labels_of(labels);
        match self.families.get(name).and_then(|f| f.series.get(&labels)) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Iterates `(name, labels, value)` over every series, family name
    /// ascending, then label set ascending — the canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[(String, String)], &MetricValue)> + '_ {
        self.families.iter().flat_map(|(name, fam)| {
            fam.series.iter().map(move |(labels, value)| (name.as_str(), labels.as_slice(), value))
        })
    }

    /// Merges `other` into `self`: counters and gauges sum, histograms
    /// add bucket-wise. Commutative and associative (see the crate docs),
    /// so shard registries merge in any order.
    ///
    /// # Panics
    /// Panics when the same name carries a different kind, determinism
    /// class, or histogram bounds in the two registries.
    pub fn absorb(&mut self, other: &Registry) {
        for (name, theirs) in &other.families {
            let mine = self.families.entry(name.clone()).or_insert_with(|| Family {
                help: theirs.help.clone(),
                determinism: theirs.determinism,
                kind: theirs.kind,
                series: BTreeMap::new(),
            });
            assert_eq!(mine.kind, theirs.kind, "absorb: metric '{name}' kind mismatch");
            assert_eq!(
                mine.determinism, theirs.determinism,
                "absorb: metric '{name}' determinism mismatch"
            );
            for (labels, value) in &theirs.series {
                match (
                    mine.series.entry(labels.clone()).or_insert_with(|| match value {
                        MetricValue::Counter(_) => MetricValue::Counter(0),
                        MetricValue::Gauge(_) => MetricValue::Gauge(0.0),
                        MetricValue::Histogram(h) => {
                            MetricValue::Histogram(HistogramSnapshot::new(&h.bounds))
                        }
                    }),
                    value,
                ) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.absorb(b),
                    _ => unreachable!("family kind checked above"),
                }
            }
        }
    }

    fn render_canonical(&self, include_timing: bool) -> String {
        let mut s = String::new();
        for (name, fam) in &self.families {
            if fam.determinism == Determinism::Timing && !include_timing {
                continue;
            }
            for (labels, value) in &fam.series {
                let lbl = fmt_labels(labels);
                match value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(s, "{} {}{} {}", fam.determinism.tag(), name, lbl, v);
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(
                            s,
                            "{} {}{} {}",
                            fam.determinism.tag(),
                            name,
                            lbl,
                            format_float(*v)
                        );
                    }
                    MetricValue::Histogram(h) => {
                        let buckets: Vec<String> =
                            h.buckets.iter().map(|b| b.to_string()).collect();
                        let _ = writeln!(
                            s,
                            "{} {}{} count={} sum={} buckets=[{}]",
                            fam.determinism.tag(),
                            name,
                            lbl,
                            h.count,
                            format_float(h.sum),
                            buckets.join(","),
                        );
                    }
                }
            }
        }
        s
    }

    /// Canonical text of the **event-derived** series only — the bytes
    /// that may join checksummed artifacts. Deterministic for a fixed
    /// seed: timing families are skipped entirely, so instrumenting a
    /// phase with a clock can never perturb this rendering.
    pub fn canonical_events(&self) -> String {
        self.render_canonical(false)
    }

    /// Canonical text of everything, timing included (diagnostics; never
    /// checksummed).
    pub fn canonical_full(&self) -> String {
        self.render_canonical(true)
    }

    /// FNV-1a checksum of [`Registry::canonical_events`].
    pub fn events_checksum(&self) -> u64 {
        fnv1a64(self.canonical_events().as_bytes())
    }

    /// Renders the registry in Prometheus exposition format (text
    /// version 0.0.4): one `# HELP` + `# TYPE` pair per family, samples
    /// in canonical order, histograms as cumulative `_bucket{le=…}` /
    /// `_sum` / `_count` triples ending at `le="+Inf"`.
    pub fn render_prometheus(&self) -> String {
        let mut s = String::new();
        for (name, fam) in &self.families {
            let _ = writeln!(s, "# HELP {name} {}", fam.help);
            let _ = writeln!(s, "# TYPE {name} {}", fam.kind.exposition_type());
            for (labels, value) in &fam.series {
                match value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(s, "{name}{} {v}", fmt_labels(labels));
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(s, "{name}{} {}", fmt_labels(labels), format_float(*v));
                    }
                    MetricValue::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (i, count) in h.buckets.iter().enumerate() {
                            cumulative += count;
                            let le = match h.bounds.get(i) {
                                Some(b) => format_float(*b),
                                None => "+Inf".to_string(),
                            };
                            let mut with_le = labels.clone();
                            with_le.push(("le".to_string(), le));
                            with_le.sort();
                            let _ =
                                writeln!(s, "{name}_bucket{} {cumulative}", fmt_labels(&with_le));
                        }
                        let lbl = fmt_labels(labels);
                        let _ = writeln!(s, "{name}_sum{lbl} {}", format_float(h.sum));
                        let _ = writeln!(s, "{name}_count{lbl} {}", h.count);
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sum_and_read_back() {
        let mut r = Registry::new();
        r.inc("craqr_sent_total", "probes sent", Determinism::Event, &[], 3);
        r.inc("craqr_sent_total", "probes sent", Determinism::Event, &[], 4);
        assert_eq!(r.counter_value("craqr_sent_total", &[]), 7);
        assert_eq!(r.counter_value("craqr_missing", &[]), 0);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let mut r = Registry::new();
        r.inc("c", "h", Determinism::Event, &[("a", "1"), ("b", "2")], 1);
        r.inc("c", "h", Determinism::Event, &[("b", "2"), ("a", "1")], 1);
        assert_eq!(r.counter_value("c", &[("a", "1"), ("b", "2")]), 2);
    }

    #[test]
    fn histogram_buckets_partition_correctly() {
        let mut r = Registry::new();
        let bounds = [1.0, 2.0];
        // 0.5 → bucket 0; 1.0 → bucket 0 (le is inclusive); 1.5 → bucket 1;
        // 99.0 → overflow.
        for v in [0.5, 1.0, 1.5, 99.0] {
            r.observe("h", "hist", Determinism::Timing, &[], &bounds, v);
        }
        let MetricValue::Histogram(h) = r.iter().next().unwrap().2 else { panic!() };
        assert_eq!(h.buckets, vec![2, 1, 1]);
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 102.0);
    }

    #[test]
    fn canonical_events_excludes_timing_families() {
        let mut r = Registry::new();
        r.inc("craqr_e", "event", Determinism::Event, &[], 1);
        r.observe("craqr_t", "timing", Determinism::Timing, &[], &[0.1], 0.05);
        let events = r.canonical_events();
        assert!(events.contains("craqr_e"));
        assert!(!events.contains("craqr_t"));
        assert!(r.canonical_full().contains("craqr_t"));

        // More timing observations never move the event checksum.
        let before = r.events_checksum();
        r.observe("craqr_t", "timing", Determinism::Timing, &[], &[0.1], 0.2);
        assert_eq!(r.events_checksum(), before);
    }

    #[test]
    fn absorb_sums_everything() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        a.inc("c", "h", Determinism::Event, &[], 2);
        b.inc("c", "h", Determinism::Event, &[], 5);
        a.gauge_add("g", "h", Determinism::Event, &[], 1.5);
        b.gauge_add("g", "h", Determinism::Event, &[], 2.5);
        a.observe("hst", "h", Determinism::Timing, &[], &[1.0], 0.5);
        b.observe("hst", "h", Determinism::Timing, &[], &[1.0], 2.0);
        a.absorb(&b);
        assert_eq!(a.counter_value("c", &[]), 7);
        let text = a.canonical_full();
        assert!(text.contains("event g 4.0"), "{text}");
        assert!(text.contains("count=2"), "{text}");
    }

    #[test]
    fn prometheus_render_is_cumulative_and_linted() {
        let mut r = Registry::new();
        r.inc("craqr_sent_total", "probes sent", Determinism::Event, &[("tenant", "0")], 9);
        for v in [0.5, 1.5, 9.0] {
            r.observe("craqr_lat_seconds", "latency", Determinism::Timing, &[], &[1.0, 2.0], v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("craqr_lat_seconds_bucket{le=\"1.0\"} 1"), "{text}");
        assert!(text.contains("craqr_lat_seconds_bucket{le=\"2.0\"} 2"), "{text}");
        assert!(text.contains("craqr_lat_seconds_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("craqr_lat_seconds_count 3"), "{text}");
        crate::lint_exposition(&text).expect("render passes its own lint");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_conflicts_panic() {
        let mut r = Registry::new();
        r.inc("m", "h", Determinism::Event, &[], 1);
        r.gauge_add("m", "h", Determinism::Event, &[], 1.0);
    }
}
