//! # craqr-adaptive — the closed-loop acquisition controller.
//!
//! The paper's premise is that acquisition plans should follow the
//! *estimated* multi-dimensional intensity (Section IV-B points at online
//! SGD estimation precisely because batch MLE per window is unaffordable).
//! Until this crate, estimation and budget tuning were leaf utilities: every
//! scenario ran a static plan even when the underlying process shifted.
//! This crate closes the sense → estimate → re-plan loop:
//!
//! 1. **Sense**: each epoch's delivered tuples per standing query feed a
//!    per-query [`craqr_mdpp::SgdEstimator`] (plus an empirical
//!    [`craqr_mdpp::IntensitySummary`] track).
//! 2. **Estimate / detect**: the estimator's standardized *innovations*
//!    (observed-vs-expected batch counts) stream into a sequential drift
//!    detector ([`craqr_stats::drift`] — Page–Hinkley or two-sided CUSUM).
//! 3. **Re-plan**: a confirmed drift triggers a [`ReplanRecord`]: the
//!    acquisition budget pool is re-allocated across the active queries by
//!    a deterministic [water-filling allocator](allocator::water_fill) and
//!    pushed back into the epoch loop as
//!    [`craqr_core::ControlAction`]s (budget overwrites + chain rebuilds).
//!
//! The controller implements [`craqr_core::ControlHook`], so it *observes*
//! the epoch loop without owning it; `CraqrServer::run_epoch_with` is the
//! only integration point. Every decision — every innovation, detector
//! score, drift event, and replan — is recorded in an [`AdaptiveTrace`]
//! whose canonical rendering is byte-identical across
//! [`craqr_core::ExecMode`]s and reruns at a fixed seed, and ends in the
//! workspace FNV-1a checksum, exactly like scenario golden reports.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod allocator;
pub mod config;
pub mod controller;
pub mod timed;
pub mod trace;

pub use config::{AdaptiveConfig, DetectorConfig, DetectorKind};
pub use controller::AdaptiveController;
pub use timed::TimedHook;
pub use trace::{AdaptiveTrace, ObservationRow, ReplanRecord, TraceSummary};
