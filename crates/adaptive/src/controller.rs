//! The adaptive acquisition controller — a [`ControlHook`] closing the
//! sense → estimate → re-plan loop over the epoch executor.

use crate::allocator::{water_fill, water_fill_tenants};
use crate::config::{AdaptiveConfig, DetectorKind};
use crate::trace::{AdaptiveTrace, ObservationRow, ReplanRecord, TenantPoolRow};
use craqr_core::{ControlAction, ControlHook, EpochObservation, QueryId, TenantId};
use craqr_geom::{CellId, Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::{IntensityModel, IntensitySummary, SgdEstimator};
use craqr_sensing::AttributeId;
use craqr_stats::{Cusum, DriftDirection, PageHinkley};
use std::collections::{BTreeMap, BTreeSet};

/// Either sequential detector behind one interface.
#[derive(Debug, Clone)]
enum Detector {
    PageHinkley(PageHinkley),
    Cusum(Cusum),
}

impl Detector {
    fn observe(&mut self, x: f64) -> Option<DriftDirection> {
        match self {
            Detector::PageHinkley(d) => d.observe(x),
            Detector::Cusum(d) => d.observe(x),
        }
    }

    /// Evidence after the most recent observation, pre-restart — the
    /// value the trace records (a firing row shows the level that crossed
    /// the threshold, not the post-reset 0).
    fn last_evidence(&self) -> f64 {
        match self {
            Detector::PageHinkley(d) => d.last_evidence(),
            Detector::Cusum(d) => d.last_evidence(),
        }
    }

    fn reset(&mut self) {
        match self {
            Detector::PageHinkley(d) => d.reset(),
            Detector::Cusum(d) => d.reset(),
        }
    }
}

/// Per-standing-query controller state.
struct QueryTrack {
    qid: QueryId,
    attr: AttributeId,
    /// The owning tenant whose pool bounds this query's replan share.
    tenant: TenantId,
    requested_rate: f64,
    /// Footprint area (km²).
    area: f64,
    /// Footprint bounding box — the estimator's spatial window.
    bbox: Rect,
    /// `(cell, overlap area)` for every cell the query taps.
    cells: Vec<(CellId, f64)>,
    estimator: SgdEstimator,
    detector: Detector,
}

/// The closed-loop controller: per-query online SGD estimation over each
/// epoch's delivered tuples, drift detection on the innovation stream, and
/// water-filled budget replanning on confirmed shifts. Everything it does
/// is recorded in an [`AdaptiveTrace`].
///
/// Plug it into the loop with
/// [`CraqrServer::run_epoch_with`](craqr_core::CraqrServer::run_epoch_with);
/// it learns the standing queries from its first observation.
pub struct AdaptiveController {
    config: AdaptiveConfig,
    tracks: Vec<QueryTrack>,
    batch_minutes: f64,
    summary_side: u32,
    epochs_observed: u64,
    total_sent: u64,
    total_responses: u64,
    last_replan: Option<u64>,
    trace: AdaptiveTrace,
}

impl AdaptiveController {
    /// Creates a controller with the given policy.
    ///
    /// # Panics
    /// Panics on an invalid config (see [`AdaptiveConfig::validate`]).
    #[track_caller]
    pub fn new(config: AdaptiveConfig) -> Self {
        if let Err((field, message)) = config.validate() {
            panic!("invalid adaptive config: {field}: {message}");
        }
        Self {
            trace: AdaptiveTrace {
                enabled: config.enabled,
                detector: config.detector,
                warmup_epochs: config.warmup_epochs,
                cooldown_epochs: config.cooldown_epochs,
                observations: Vec::new(),
                replans: Vec::new(),
            },
            config,
            tracks: Vec::new(),
            batch_minutes: 0.0,
            summary_side: 1,
            epochs_observed: 0,
            total_sent: 0,
            total_responses: 0,
            last_replan: None,
        }
    }

    /// The decision log so far.
    pub fn trace(&self) -> &AdaptiveTrace {
        &self.trace
    }

    /// Consumes the controller, yielding its decision log.
    pub fn into_trace(self) -> AdaptiveTrace {
        self.trace
    }

    /// Lazily learns the standing queries from the first observation (the
    /// query set is fixed for the lifetime of a scenario run).
    fn ensure_tracks(&mut self, obs: &EpochObservation) {
        if !self.tracks.is_empty() {
            return;
        }
        self.batch_minutes = obs.plan.batch_duration;
        self.summary_side = obs.plan.grid.side();
        for plan in &obs.plan.queries {
            let reference = SpaceTimeWindow::new(plan.bbox, 0.0, self.batch_minutes);
            let detector = match self.config.detector.kind {
                DetectorKind::PageHinkley => Detector::PageHinkley(PageHinkley::new(
                    self.config.detector.slack,
                    self.config.detector.threshold,
                )),
                DetectorKind::Cusum => Detector::Cusum(Cusum::new(
                    self.config.detector.slack,
                    self.config.detector.threshold,
                )),
            };
            self.tracks.push(QueryTrack {
                qid: plan.qid,
                attr: plan.attr,
                tenant: plan.tenant,
                requested_rate: plan.rate,
                area: plan.area,
                bbox: plan.bbox,
                cells: plan.cells.clone(),
                estimator: SgdEstimator::new(&reference, self.config.estimator),
                detector,
            });
        }
    }

    /// Observed response yield (responses per request) so far; the demand
    /// estimator's conversion factor from tuples to requests.
    fn response_yield(&self) -> f64 {
        if self.total_sent == 0 {
            1.0
        } else {
            (self.total_responses as f64 / self.total_sent as f64).max(1e-3)
        }
    }

    /// Builds the replan for `triggers` and the actions realizing it.
    fn plan_replan(
        &mut self,
        epoch: u64,
        triggers: Vec<(u64, DriftDirection)>,
        obs: &EpochObservation,
    ) -> (ReplanRecord, Vec<ControlAction>) {
        let yield_ = self.response_yield();
        // Demand per query: requests/epoch needed to fabricate the
        // requested volume given the observed crowd yield, scaled up by
        // the query's *estimated deficit* — the ratio of its requested
        // rate to the SGD-estimated delivered intensity. This is the
        // paper's premise made operational: the plan follows the
        // estimated intensity, so starved queries bid for more of the
        // pool than satisfied ones (capped at 5× to keep one dead query
        // from draining everyone).
        let reference_volume = |t: &QueryTrack| t.bbox.area() * self.batch_minutes;
        let demands: Vec<f64> = self
            .tracks
            .iter()
            .map(|t| {
                let reference = SpaceTimeWindow::new(t.bbox, 0.0, self.batch_minutes);
                let volume = reference_volume(t);
                let est_rate = if volume > 0.0 {
                    t.estimator.estimate().integral(&reference) / volume
                } else {
                    t.requested_rate
                };
                let deficit =
                    (t.requested_rate / est_rate.max(1e-6 * t.requested_rate)).clamp(1.0, 5.0);
                t.requested_rate * t.area * self.batch_minutes / yield_
                    * self.config.demand_headroom
                    * deficit
            })
            .collect();
        // Multi-tenant servers replan inside tenant pool boundaries:
        // every query is first filled from its own tenant's pool, and
        // only unused capacity crosses tenants ([`water_fill_tenants`]).
        // Single-owner servers keep the flat shared-pool fill.
        let tenant_summaries: &[craqr_core::TenantSummary] =
            obs.tenants.as_deref().filter(|s| !s.is_empty()).unwrap_or(&[]);
        let (pool, allocations, tenant_pools) = if tenant_summaries.is_empty() {
            let pool = self.config.budget_pool.unwrap_or_else(|| {
                obs.plan
                    .demands
                    .iter()
                    .filter_map(|(cell, attr, _)| obs.budgets.of(*cell, *attr))
                    .sum()
            });
            (pool, water_fill(&demands, pool), Vec::new())
        } else {
            // Tenant ids are dense from 0 in registration order, so the
            // id doubles as the pool index.
            let pools: Vec<f64> = tenant_summaries.iter().map(|s| s.capacity).collect();
            let owners: Vec<usize> = self.tracks.iter().map(|t| t.tenant.0 as usize).collect();
            let allocations = water_fill_tenants(&demands, &owners, &pools);
            let tenant_pools = tenant_summaries
                .iter()
                .map(|s| {
                    let (demand, alloc) = self
                        .tracks
                        .iter()
                        .zip(demands.iter().zip(&allocations))
                        .filter(|(t, _)| t.tenant == s.tenant)
                        .fold((0.0, 0.0), |(d, a), (_, (dd, aa))| (d + dd, a + aa));
                    TenantPoolRow { tenant: s.tenant.0, pool: s.capacity, demand, alloc }
                })
                .collect();
            (pools.iter().sum(), allocations, tenant_pools)
        };

        // Fold per-query allocations onto their chains, proportional to the
        // per-cell overlap area (two queries sharing a chain both
        // contribute).
        let mut chain_budget: BTreeMap<(CellId, AttributeId), f64> = BTreeMap::new();
        for (t, alloc) in self.tracks.iter().zip(&allocations) {
            for (cell, share) in &t.cells {
                *chain_budget.entry((*cell, t.attr)).or_insert(0.0) += alloc * share / t.area;
            }
        }
        // Floor at the tuner's minimum so every chain stays minimally
        // probed, but deliberately do NOT clamp to its cap: a replan is
        // the automated form of Section V's "pay more to obtain the
        // required rate" escape hatch. (Subsequent `N_v` tuner steps pull
        // budgets back toward the cap on their own.)
        let tuner = &obs.budgets.tuner;
        let budgets: Vec<(CellId, AttributeId, f64)> = chain_budget
            .into_iter()
            .map(|((cell, attr), b)| (cell, attr, b.max(tuner.min_budget)))
            .collect();

        // Rebuild exactly the fired queries' chains: their statistics
        // describe the pre-shift world.
        let rebuilds: BTreeSet<(CellId, AttributeId)> = if self.config.rebuild_chains {
            self.tracks
                .iter()
                .filter(|t| triggers.iter().any(|(q, _)| *q == t.qid.0))
                .flat_map(|t| t.cells.iter().map(|(c, _)| (*c, t.attr)))
                .collect()
        } else {
            BTreeSet::new()
        };

        let mut actions: Vec<ControlAction> = budgets
            .iter()
            .map(|(cell, attr, b)| ControlAction::SetBudget {
                cell: *cell,
                attr: *attr,
                requests_per_epoch: *b,
            })
            .collect();
        actions.extend(
            rebuilds
                .iter()
                .map(|(cell, attr)| ControlAction::RebuildChain { cell: *cell, attr: *attr }),
        );

        let record = ReplanRecord {
            epoch,
            triggers,
            pool,
            allocations: self
                .tracks
                .iter()
                .zip(demands.iter().zip(&allocations))
                .map(|(t, (d, a))| (t.qid.0, *d, *a))
                .collect(),
            tenant_pools,
            budgets,
            rebuilds: rebuilds.len(),
        };
        (record, actions)
    }
}

impl ControlHook for AdaptiveController {
    fn on_epoch(&mut self, obs: &EpochObservation) -> Vec<ControlAction> {
        self.ensure_tracks(obs);
        let epoch = obs.report.epoch;
        self.total_sent += obs.report.dispatch.sent;
        self.total_responses += obs.report.responses as u64;

        // Warmup counts epochs *this controller* has observed, not the
        // server's absolute epoch counter — a controller attached to an
        // already-running server still gets its full calibration window
        // before the detectors consume the SGD estimator's early (and
        // large) calibration residuals.
        let warmed_up = self.epochs_observed >= self.config.warmup_epochs as u64;
        self.epochs_observed += 1;
        let mut triggers: Vec<(u64, DriftDirection)> = Vec::new();
        for track in &mut self.tracks {
            let empty = Vec::new();
            let delivered = obs
                .delivered
                .iter()
                .find(|(qid, _)| *qid == track.qid)
                .map_or(&empty, |(_, tuples)| tuples);
            // Time-marginalize the batch onto the reference window's
            // midpoint: per-epoch planning has no intra-epoch temporal
            // signal, and real response latencies cluster tuples near the
            // epoch start — an affine fit on raw times would rail its
            // temporal slope against the positivity corner and bias the
            // window integral (the innovation's expectation) low. The
            // spatial coordinates keep the full gradient signal.
            let span = obs.epoch_end - obs.epoch_start;
            let t_mid = span * 0.5;
            let points: Vec<SpaceTimePoint> = delivered
                .iter()
                .map(|t| SpaceTimePoint::new(t_mid, t.point.x, t.point.y))
                .collect();
            let window = SpaceTimeWindow::new(track.bbox, 0.0, span.max(f64::MIN_POSITIVE));
            let innovation = track.estimator.observe_batch(&points, &window);
            let empirical = IntensitySummary::from_points(&points, &window, self.summary_side);

            let drift =
                if warmed_up { track.detector.observe(innovation.standardized) } else { None };
            if let Some(direction) = drift {
                triggers.push((track.qid.0, direction));
            }
            self.trace.observations.push(ObservationRow {
                epoch,
                query: track.qid.0,
                delivered: points.len(),
                empirical_rate: empirical.mean_rate,
                innovation: innovation.standardized,
                score: track.detector.last_evidence(),
                drift,
            });
        }

        if triggers.is_empty() || !self.config.enabled {
            return Vec::new();
        }
        if let Some(last) = self.last_replan {
            if epoch < last + self.config.cooldown_epochs as u64 {
                return Vec::new();
            }
        }
        let (record, actions) = self.plan_replan(epoch, triggers, obs);
        self.trace.replans.push(record);
        self.last_replan = Some(epoch);
        // A replan starts a new regime: stale evidence must not re-fire.
        for track in &mut self.tracks {
            track.detector.reset();
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_core::{CraqrServer, ServerConfig};
    use craqr_geom::Rect as GRect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
    };

    fn server(seed: u64) -> CraqrServer {
        let region = GRect::with_size(4.0, 4.0);
        let crowd = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size: 500,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.1 },
                human_fraction: 0.0,
            },
            seed,
        });
        let mut s = CraqrServer::new(crowd, ServerConfig::default());
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
        s
    }

    #[test]
    fn stationary_world_never_replans() {
        let mut s = server(3);
        s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
        let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
        for _ in 0..20 {
            s.run_epoch_with(Some(&mut ctl));
        }
        let trace = ctl.trace();
        assert_eq!(trace.observations.len(), 20);
        assert_eq!(trace.replans.len(), 0, "{}", trace.canonical());
        assert_eq!(trace.drift_events(), 0, "{}", trace.canonical());
    }

    #[test]
    fn participation_collapse_triggers_a_replan() {
        let mut s = server(5);
        s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
        let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
        for _ in 0..10 {
            s.run_epoch_with(Some(&mut ctl));
        }
        // Regime shift: the crowd stops answering almost entirely.
        s.crowd_mut().scale_participation(0.05);
        for _ in 0..10 {
            s.run_epoch_with(Some(&mut ctl));
        }
        let trace = ctl.trace();
        assert!(trace.drift_events() >= 1, "{}", trace.canonical());
        assert!(!trace.replans.is_empty(), "{}", trace.canonical());
        let first = &trace.replans[0];
        assert!(
            (10..16).contains(&first.epoch),
            "replan at epoch {} not within 6 of the shift\n{}",
            first.epoch,
            trace.canonical()
        );
        assert!(first.triggers.iter().all(|(_, d)| *d == DriftDirection::Down));
        assert!(first.rebuilds > 0);
        assert!(first.pool > 0.0);
    }

    #[test]
    fn observe_mode_detects_but_never_acts() {
        let run = |enabled: bool| {
            let mut s = server(5);
            let qid = s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
            let mut ctl =
                AdaptiveController::new(AdaptiveConfig { enabled, ..AdaptiveConfig::default() });
            for e in 0..20 {
                if e == 10 {
                    s.crowd_mut().scale_participation(0.05);
                }
                s.run_epoch_with(Some(&mut ctl));
            }
            (ctl.into_trace(), s.take_output(qid).len())
        };
        let (active, _) = run(true);
        let (observe, observe_delivered) = run(false);
        assert!(observe.drift_events() >= 1, "observe mode still detects");
        assert_eq!(observe.replans.len(), 0, "observe mode never replans");
        assert!(!active.replans.is_empty());

        // And a hook-free run delivers exactly what observe mode did: the
        // observer provably does not perturb the loop.
        let mut s = server(5);
        let qid = s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
        for e in 0..20 {
            if e == 10 {
                s.crowd_mut().scale_participation(0.05);
            }
            s.run_epoch();
        }
        assert_eq!(s.take_output(qid).len(), observe_delivered);
    }

    #[test]
    fn controller_is_deterministic() {
        let run = || {
            let mut s = server(7);
            s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 1").unwrap();
            s.submit("ACQUIRE temp FROM RECT(2,2,4,4) RATE 0.5").unwrap();
            let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
            for e in 0..16 {
                if e == 8 {
                    s.crowd_mut().scale_participation(0.1);
                }
                s.run_epoch_with(Some(&mut ctl));
            }
            ctl.into_trace().canonical()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn mid_run_attachment_still_gets_a_full_warmup() {
        // 5 hook-free epochs, then attach a fresh controller: its first
        // observations carry the estimator's big calibration residuals,
        // and warmup must still swallow them (no drift, no replan) in a
        // stationary world.
        let mut s = server(13);
        s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
        for _ in 0..5 {
            s.run_epoch();
        }
        let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
        for _ in 0..15 {
            s.run_epoch_with(Some(&mut ctl));
        }
        let trace = ctl.trace();
        assert_eq!(trace.replans.len(), 0, "{}", trace.canonical());
        assert_eq!(trace.drift_events(), 0, "{}", trace.canonical());
    }

    #[test]
    fn firing_rows_record_the_crossing_evidence() {
        let mut s = server(5);
        s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
        let mut ctl = AdaptiveController::new(AdaptiveConfig::default());
        for e in 0..16 {
            if e == 8 {
                s.crowd_mut().scale_participation(0.05);
            }
            s.run_epoch_with(Some(&mut ctl));
        }
        let trace = ctl.trace();
        let firing: Vec<_> = trace.observations.iter().filter(|o| o.drift.is_some()).collect();
        assert!(!firing.is_empty(), "{}", trace.canonical());
        for row in firing {
            assert!(
                row.score > ctl.config.detector.threshold,
                "firing row must show the evidence that crossed, got {}\n{}",
                row.score,
                trace.canonical()
            );
        }
    }

    #[test]
    fn cooldown_rate_limits_replans() {
        let mut s = server(9);
        s.submit("ACQUIRE temp FROM RECT(0,0,4,4) RATE 0.5").unwrap();
        let mut ctl = AdaptiveController::new(AdaptiveConfig {
            cooldown_epochs: 100,
            ..AdaptiveConfig::default()
        });
        for e in 0..30 {
            // Whiplash world: collapse, recover, collapse.
            if e == 8 {
                s.crowd_mut().scale_participation(0.05);
            }
            if e == 16 {
                s.crowd_mut().scale_participation(20.0);
            }
            s.run_epoch_with(Some(&mut ctl));
        }
        let trace = ctl.trace();
        assert!(trace.replans.len() <= 1, "cooldown violated:\n{}", trace.canonical());
    }
}
