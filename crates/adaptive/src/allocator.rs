//! The water-filling budget allocator.
//!
//! On a confirmed drift the controller re-divides one acquisition budget
//! pool across the active queries. Water-filling is the classic fair
//! allocation under caps: pour budget into all queries at an equal "water
//! level" until the pool runs dry, letting queries whose *demand* (their
//! cap) is below the level keep only what they asked for. The result:
//!
//! - every query gets `min(demand, level)`,
//! - the common level is chosen so the allocations sum to
//!   `min(pool, Σ demand)`,
//! - no query is starved to feed another one past its own demand.
//!
//! The multi-tenant variant ([`water_fill_tenants`]) adds a fairness
//! boundary: each tenant's queries are first water-filled within that
//! tenant's **own** pool, and only the capacity a tenant leaves unused
//! (its surplus) is then water-filled across the still-unmet demands of
//! everyone else. A drifting tenant can therefore never drain another
//! tenant's pool — it can only borrow what the others did not need.
//!
//! Borrowed surplus is a **planning target**, not a spending right:
//! dispatch-time charging (`craqr_core::tenant::TenantRegistry::allow`)
//! still clamps every tenant's per-epoch charge at its *own* pool
//! capacity — the conservation invariant is unconditional. Chain budgets
//! above a tenant's pool therefore express replan priority (they steer
//! which chains the tenant's own capacity reaches first, and count as
//! `throttled` beyond it); they become real extra spend only under a
//! charging model that credits surplus, e.g. the incentive-aware billing
//! direction in ROADMAP.md.

/// Allocates `pool` across demands by water-filling. Returns one
/// allocation per demand, in input order; allocations sum to
/// `min(pool, Σ demands)` (up to float rounding).
///
/// Non-finite or negative demands are treated as zero.
///
/// # Panics
/// Panics on a negative or non-finite pool.
#[track_caller]
pub fn water_fill(demands: &[f64], pool: f64) -> Vec<f64> {
    assert!(pool.is_finite() && pool >= 0.0, "pool must be >= 0, got {pool}");
    let caps: Vec<f64> =
        demands.iter().map(|d| if d.is_finite() && *d > 0.0 { *d } else { 0.0 }).collect();
    let n = caps.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || pool == 0.0 {
        return alloc;
    }
    // Only *positive* caps participate in leveling, sorted ascending
    // (stable: ties keep input order, so the outcome is deterministic).
    // Zeroed demands (negative/NaN inputs) consume no budget and must not
    // count toward the `remaining / demands-left` divisor: a divisor that
    // includes them deflates the water level and can strand pool budget
    // below `min(pool, Σ demands)`.
    let mut order: Vec<usize> = (0..n).filter(|i| caps[*i] > 0.0).collect();
    order.sort_by(|a, b| caps[*a].total_cmp(&caps[*b]).then(a.cmp(b)));
    let live = order.len();

    let mut remaining = pool;
    for (filled, &i) in order.iter().enumerate() {
        let level = remaining / (live - filled) as f64;
        if caps[i] <= level {
            // This query's demand sits below the water level: satisfy it
            // fully and re-level the rest. Clamp at zero — float rounding
            // near pool exhaustion could otherwise sink `remaining`
            // epsilon-negative, turning the next level (and with it the
            // remaining allocations) negative.
            alloc[i] = caps[i];
            remaining = (remaining - caps[i]).max(0.0);
        } else {
            // Everyone remaining demands more than the level: split evenly.
            for &j in &order[filled..] {
                alloc[j] = level;
            }
            return alloc;
        }
    }
    alloc
}

/// Allocates across per-tenant pools with a hard fairness boundary.
///
/// `demands[i]` is query `i`'s demand and `owners[i]` indexes the tenant
/// pool it draws from; `pools[t]` is tenant `t`'s pool (requests/epoch).
/// Two stages:
///
/// 1. **Within pools** — each tenant's demands are water-filled from that
///    tenant's own pool, so every tenant is guaranteed its fair fill of
///    its own capacity no matter how hard anyone else drifts.
/// 2. **Surplus across tenants** — capacity a tenant's demands left
///    unused is pooled and water-filled across everyone's *residual*
///    (still-unmet) demands, so spare capacity is not stranded at the
///    planning layer (see the module docs for what borrowed surplus
///    means at dispatch time).
///
/// Allocations never exceed demands, per-tenant own-pool fills are
/// monotone in the tenant's own pool, and the total never exceeds
/// `Σ pools`. Non-finite or negative demands are treated as zero (as in
/// [`water_fill`]).
///
/// # Panics
/// Panics when `demands` and `owners` disagree in length, an owner index
/// is out of range, or a pool is negative/non-finite.
#[track_caller]
pub fn water_fill_tenants(demands: &[f64], owners: &[usize], pools: &[f64]) -> Vec<f64> {
    assert_eq!(demands.len(), owners.len(), "one owner per demand");
    for pool in pools {
        assert!(pool.is_finite() && *pool >= 0.0, "pool must be >= 0, got {pool}");
    }
    for (i, owner) in owners.iter().enumerate() {
        assert!(
            *owner < pools.len(),
            "demand {i} names tenant {owner}, only {} pools",
            pools.len()
        );
    }
    let mut alloc = vec![0.0; demands.len()];
    if demands.is_empty() {
        return alloc;
    }

    // Stage 1: per-tenant fills from each tenant's own pool.
    for (tenant, pool) in pools.iter().enumerate() {
        let members: Vec<usize> = (0..demands.len()).filter(|i| owners[*i] == tenant).collect();
        if members.is_empty() {
            continue;
        }
        let member_demands: Vec<f64> = members.iter().map(|i| demands[*i]).collect();
        let fills = water_fill(&member_demands, *pool);
        for (i, fill) in members.iter().zip(fills) {
            alloc[*i] = fill;
        }
    }
    // Stage 2: surplus sharing. What every tenant's demands left unused
    // is offered to the unmet remainder of all demands.
    let used: f64 = alloc.iter().sum();
    let surplus = (pools.iter().sum::<f64>() - used).max(0.0);
    if surplus > 0.0 {
        let residuals: Vec<f64> = demands
            .iter()
            .zip(&alloc)
            .map(|(d, a)| if d.is_finite() && *d > 0.0 { (d - a).max(0.0) } else { 0.0 })
            .collect();
        let extras = water_fill(&residuals, surplus);
        for (a, extra) in alloc.iter_mut().zip(extras) {
            *a += extra;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn abundant_pool_satisfies_every_demand() {
        let a = water_fill(&[3.0, 1.0, 6.0], 100.0);
        assert_eq!(a, vec![3.0, 1.0, 6.0]);
    }

    #[test]
    fn scarce_pool_levels_the_big_demands() {
        // Pool 10 over demands [2, 9, 9]: the small demand is satisfied,
        // the two big ones split the remaining 8 evenly.
        let a = water_fill(&[2.0, 9.0, 9.0], 10.0);
        assert_eq!(a, vec![2.0, 4.0, 4.0]);
        assert!((total(&a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_pool_splits_evenly() {
        let a = water_fill(&[50.0, 70.0, 60.0], 9.0);
        assert_eq!(a, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn zero_and_negative_demands_get_nothing() {
        let a = water_fill(&[0.0, -3.0, f64::NAN, 5.0], 100.0);
        assert_eq!(a, vec![0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn zero_caps_do_not_deflate_the_water_level_under_scarcity() {
        // Regression: mixing zeroed (negative/NaN) demands with positive
        // ones under a scarce pool. The zeroed entries must neither
        // receive budget nor count toward the leveling divisor — the
        // positive demands split the whole pool.
        let a = water_fill(&[0.0, f64::NAN, 8.0, -1.0, 6.0], 10.0);
        assert_eq!(a, vec![0.0, 0.0, 5.0, 0.0, 5.0]);
        assert!((total(&a) - 10.0).abs() < 1e-12, "pool budget stranded: {a:?}");

        // All-zero demands: nothing to allocate, nothing panics.
        assert_eq!(water_fill(&[0.0, -2.0, f64::NAN], 10.0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn allocations_always_exhaust_min_of_pool_and_demand() {
        // Deterministic sweep over demand mixes (including zeros, NaN,
        // and negatives) and pool sizes: the allocator must always hand
        // out exactly `min(pool, Σ sanitized demands)` — no stranding,
        // no overdraw — respect every cap, and starve every zeroed
        // demand.
        let mut rng = craqr_stats::seeded_rng(0xA110C);
        use rand::Rng;
        for _ in 0..500 {
            let n = rng.gen_range(0usize..8);
            let demands: Vec<f64> = (0..n)
                .map(|_| match rng.gen_range(0u8..5) {
                    0 => 0.0,
                    1 => -rng.gen_range(0.0..10.0),
                    2 => f64::NAN,
                    _ => rng.gen_range(0.01..20.0),
                })
                .collect();
            let pool = rng.gen_range(0.0..40.0);
            let alloc = water_fill(&demands, pool);
            assert_eq!(alloc.len(), demands.len());
            let cap_sum: f64 = demands.iter().filter(|d| d.is_finite() && **d > 0.0).sum();
            let want = pool.min(cap_sum);
            let got = total(&alloc);
            assert!(
                (got - want).abs() < 1e-9 * (1.0 + want),
                "allocated {got}, want min(pool={pool}, Σcaps={cap_sum})={want} for {demands:?}"
            );
            for (d, a) in demands.iter().zip(&alloc) {
                if d.is_finite() && *d > 0.0 {
                    assert!(*a <= d + 1e-12, "over-cap: {a} > {d}");
                } else {
                    assert_eq!(*a, 0.0, "zeroed demand got budget: {demands:?} → {alloc:?}");
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(water_fill(&[], 10.0).is_empty());
        assert_eq!(water_fill(&[4.0], 0.0), vec![0.0]);
    }

    #[test]
    fn rounding_near_exhaustion_never_goes_negative() {
        // Regression for the float-rounding drift: caps engineered so the
        // running subtraction `remaining -= cap` lands epsilon-negative
        // right as the pool exhausts, which used to push the next water
        // level — and with it the remaining allocations — below zero.
        // Adversarial cap/pool pairs: many near-equal caps whose exact sum
        // is not representable, pools at (and epsilon around) Σ caps.
        let mut rng = craqr_stats::seeded_rng(0xD81F7);
        use rand::Rng;
        for case in 0..2000 {
            let n = rng.gen_range(1usize..10);
            let base: f64 = rng.gen_range(0.01..3.0);
            let demands: Vec<f64> = (0..n)
                .map(|_| base + rng.gen_range(-1e-13..1e-13) + rng.gen_range(0.0..0.3))
                .collect();
            let cap_sum: f64 = demands.iter().sum();
            for pool in [
                cap_sum,
                f64::from_bits(cap_sum.to_bits() - 1),
                f64::from_bits(cap_sum.to_bits() + 1),
                cap_sum * (1.0 - 1e-15),
                rng.gen_range(0.0..cap_sum * 1.5),
            ] {
                let pool = pool.max(0.0);
                let alloc = water_fill(&demands, pool);
                for (i, a) in alloc.iter().enumerate() {
                    assert!(
                        *a >= 0.0,
                        "case {case}: negative allocation {a} at {i} for pool {pool}: \
                         {demands:?} → {alloc:?}"
                    );
                }
                let got = total(&alloc);
                assert!(
                    got <= pool * (1.0 + 1e-12) + 1e-12,
                    "case {case}: overdraw {got} > pool {pool}: {demands:?} → {alloc:?}"
                );
            }
        }
    }

    #[test]
    fn tenant_fill_respects_pool_boundaries() {
        // Tenant 0 (pool 10) demands far more than it owns; tenant 1
        // (pool 20) demands less. Tenant 0 gets its own pool plus only
        // tenant 1's surplus — tenant 1's fill is untouched.
        let demands = [50.0, 8.0];
        let owners = [0, 1];
        let pools = [10.0, 20.0];
        let alloc = water_fill_tenants(&demands, &owners, &pools);
        assert_eq!(alloc[1], 8.0, "tenant 1's own-pool fill is untouchable");
        assert!((alloc[0] - 22.0).abs() < 1e-9, "10 own + 12 surplus, got {}", alloc[0]);
        assert!(total(&alloc) <= 30.0 + 1e-9);
    }

    #[test]
    fn tenant_fill_shares_surplus_but_never_own_pool_fills() {
        let mut rng = craqr_stats::seeded_rng(0x7E4A47);
        use rand::Rng;
        for _ in 0..500 {
            let n_tenants = rng.gen_range(1usize..4);
            let pools: Vec<f64> = (0..n_tenants).map(|_| rng.gen_range(0.0..30.0)).collect();
            let n = rng.gen_range(0usize..7);
            let demands: Vec<f64> = (0..n)
                .map(|_| match rng.gen_range(0u8..5) {
                    0 => 0.0,
                    1 => -1.0,
                    2 => f64::NAN,
                    _ => rng.gen_range(0.01..25.0),
                })
                .collect();
            let owners: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n_tenants)).collect();
            let alloc = water_fill_tenants(&demands, &owners, &pools);

            // Nothing negative, nothing over demand, total within Σ pools.
            for (i, a) in alloc.iter().enumerate() {
                assert!(*a >= 0.0, "negative allocation: {alloc:?}");
                if demands[i].is_finite() && demands[i] > 0.0 {
                    assert!(*a <= demands[i] + 1e-9, "over-demand at {i}: {alloc:?}");
                } else {
                    assert_eq!(*a, 0.0, "zeroed demand got budget");
                }
            }
            let pool_sum: f64 = pools.iter().sum();
            assert!(total(&alloc) <= pool_sum * (1.0 + 1e-12) + 1e-9, "overdraw: {alloc:?}");

            // The fairness boundary: every tenant's allocation is at least
            // its own-pool water fill — surplus can only add.
            for (tenant, pool) in pools.iter().enumerate() {
                let members: Vec<usize> = (0..n).filter(|i| owners[*i] == tenant).collect();
                let own: Vec<f64> = members.iter().map(|i| demands[*i]).collect();
                let own_fill = water_fill(&own, *pool);
                for (idx, fill) in members.iter().zip(own_fill) {
                    assert!(
                        alloc[*idx] + 1e-9 >= fill,
                        "tenant {tenant} lost own-pool budget: {} < {fill}",
                        alloc[*idx]
                    );
                }
            }
        }
    }

    #[test]
    fn allocation_is_monotone_in_the_pool() {
        let demands = [5.0, 12.0, 3.0, 30.0];
        let mut prev = water_fill(&demands, 0.0);
        for pool in 1..=60 {
            let next = water_fill(&demands, pool as f64);
            for (p, q) in prev.iter().zip(&next) {
                assert!(q + 1e-9 >= *p, "allocation shrank as the pool grew");
            }
            assert!(total(&next) <= pool as f64 + 1e-9);
            prev = next;
        }
        // Saturated: everyone fully satisfied.
        assert_eq!(prev, demands.to_vec());
    }
}
