//! The water-filling budget allocator.
//!
//! On a confirmed drift the controller re-divides one acquisition budget
//! pool across the active queries. Water-filling is the classic fair
//! allocation under caps: pour budget into all queries at an equal "water
//! level" until the pool runs dry, letting queries whose *demand* (their
//! cap) is below the level keep only what they asked for. The result:
//!
//! - every query gets `min(demand, level)`,
//! - the common level is chosen so the allocations sum to
//!   `min(pool, Σ demand)`,
//! - no query is starved to feed another one past its own demand.

/// Allocates `pool` across demands by water-filling. Returns one
/// allocation per demand, in input order; allocations sum to
/// `min(pool, Σ demands)` (up to float rounding).
///
/// Non-finite or negative demands are treated as zero.
///
/// # Panics
/// Panics on a negative or non-finite pool.
#[track_caller]
pub fn water_fill(demands: &[f64], pool: f64) -> Vec<f64> {
    assert!(pool.is_finite() && pool >= 0.0, "pool must be >= 0, got {pool}");
    let caps: Vec<f64> =
        demands.iter().map(|d| if d.is_finite() && *d > 0.0 { *d } else { 0.0 }).collect();
    let n = caps.len();
    let mut alloc = vec![0.0; n];
    if n == 0 || pool == 0.0 {
        return alloc;
    }
    // Only *positive* caps participate in leveling, sorted ascending
    // (stable: ties keep input order, so the outcome is deterministic).
    // Zeroed demands (negative/NaN inputs) consume no budget and must not
    // count toward the `remaining / demands-left` divisor: a divisor that
    // includes them deflates the water level and can strand pool budget
    // below `min(pool, Σ demands)`.
    let mut order: Vec<usize> = (0..n).filter(|i| caps[*i] > 0.0).collect();
    order.sort_by(|a, b| caps[*a].total_cmp(&caps[*b]).then(a.cmp(b)));
    let live = order.len();

    let mut remaining = pool;
    for (filled, &i) in order.iter().enumerate() {
        let level = remaining / (live - filled) as f64;
        if caps[i] <= level {
            // This query's demand sits below the water level: satisfy it
            // fully and re-level the rest.
            alloc[i] = caps[i];
            remaining -= caps[i];
        } else {
            // Everyone remaining demands more than the level: split evenly.
            for &j in &order[filled..] {
                alloc[j] = level;
            }
            return alloc;
        }
    }
    alloc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn total(v: &[f64]) -> f64 {
        v.iter().sum()
    }

    #[test]
    fn abundant_pool_satisfies_every_demand() {
        let a = water_fill(&[3.0, 1.0, 6.0], 100.0);
        assert_eq!(a, vec![3.0, 1.0, 6.0]);
    }

    #[test]
    fn scarce_pool_levels_the_big_demands() {
        // Pool 10 over demands [2, 9, 9]: the small demand is satisfied,
        // the two big ones split the remaining 8 evenly.
        let a = water_fill(&[2.0, 9.0, 9.0], 10.0);
        assert_eq!(a, vec![2.0, 4.0, 4.0]);
        assert!((total(&a) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn tiny_pool_splits_evenly() {
        let a = water_fill(&[50.0, 70.0, 60.0], 9.0);
        assert_eq!(a, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn zero_and_negative_demands_get_nothing() {
        let a = water_fill(&[0.0, -3.0, f64::NAN, 5.0], 100.0);
        assert_eq!(a, vec![0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn zero_caps_do_not_deflate_the_water_level_under_scarcity() {
        // Regression: mixing zeroed (negative/NaN) demands with positive
        // ones under a scarce pool. The zeroed entries must neither
        // receive budget nor count toward the leveling divisor — the
        // positive demands split the whole pool.
        let a = water_fill(&[0.0, f64::NAN, 8.0, -1.0, 6.0], 10.0);
        assert_eq!(a, vec![0.0, 0.0, 5.0, 0.0, 5.0]);
        assert!((total(&a) - 10.0).abs() < 1e-12, "pool budget stranded: {a:?}");

        // All-zero demands: nothing to allocate, nothing panics.
        assert_eq!(water_fill(&[0.0, -2.0, f64::NAN], 10.0), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn allocations_always_exhaust_min_of_pool_and_demand() {
        // Deterministic sweep over demand mixes (including zeros, NaN,
        // and negatives) and pool sizes: the allocator must always hand
        // out exactly `min(pool, Σ sanitized demands)` — no stranding,
        // no overdraw — respect every cap, and starve every zeroed
        // demand.
        let mut rng = craqr_stats::seeded_rng(0xA110C);
        use rand::Rng;
        for _ in 0..500 {
            let n = rng.gen_range(0usize..8);
            let demands: Vec<f64> = (0..n)
                .map(|_| match rng.gen_range(0u8..5) {
                    0 => 0.0,
                    1 => -rng.gen_range(0.0..10.0),
                    2 => f64::NAN,
                    _ => rng.gen_range(0.01..20.0),
                })
                .collect();
            let pool = rng.gen_range(0.0..40.0);
            let alloc = water_fill(&demands, pool);
            assert_eq!(alloc.len(), demands.len());
            let cap_sum: f64 = demands.iter().filter(|d| d.is_finite() && **d > 0.0).sum();
            let want = pool.min(cap_sum);
            let got = total(&alloc);
            assert!(
                (got - want).abs() < 1e-9 * (1.0 + want),
                "allocated {got}, want min(pool={pool}, Σcaps={cap_sum})={want} for {demands:?}"
            );
            for (d, a) in demands.iter().zip(&alloc) {
                if d.is_finite() && *d > 0.0 {
                    assert!(*a <= d + 1e-12, "over-cap: {a} > {d}");
                } else {
                    assert_eq!(*a, 0.0, "zeroed demand got budget: {demands:?} → {alloc:?}");
                }
            }
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(water_fill(&[], 10.0).is_empty());
        assert_eq!(water_fill(&[4.0], 0.0), vec![0.0]);
    }

    #[test]
    fn allocation_is_monotone_in_the_pool() {
        let demands = [5.0, 12.0, 3.0, 30.0];
        let mut prev = water_fill(&demands, 0.0);
        for pool in 1..=60 {
            let next = water_fill(&demands, pool as f64);
            for (p, q) in prev.iter().zip(&next) {
                assert!(q + 1e-9 >= *p, "allocation shrank as the pool grew");
            }
            assert!(total(&next) <= pool as f64 + 1e-9);
            prev = next;
        }
        // Saturated: everyone fully satisfied.
        assert_eq!(prev, demands.to_vec());
    }
}
