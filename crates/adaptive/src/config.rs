//! Controller policy knobs.

use craqr_mdpp::SgdConfig;
use serde::{Deserialize, Serialize};

/// Which sequential change-point test watches the innovation stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Page–Hinkley: self-centering, robust to an unknown stationary
    /// baseline level.
    PageHinkley,
    /// Two-sided CUSUM around zero — the natural choice for standardized
    /// innovations, with the shortest detection delay.
    Cusum,
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::PageHinkley => write!(f, "page_hinkley"),
            DetectorKind::Cusum => write!(f, "cusum"),
        }
    }
}

/// Drift-detector configuration (one detector instance per query).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// The test to run.
    pub kind: DetectorKind,
    /// Per-step slack/tolerance (`k` for CUSUM, `δ` for Page–Hinkley):
    /// innovation magnitudes below this never accumulate evidence.
    pub slack: f64,
    /// Decision threshold (`h` for CUSUM, `λ` for Page–Hinkley): evidence
    /// above it fires a drift.
    pub threshold: f64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        // Standardized innovations are ≈ unit-variance when stationary: a
        // slack of 0.5σ with a threshold of 8 accumulated σ is quiet on
        // noise and fires within a handful of epochs on a real shift.
        Self { kind: DetectorKind::Cusum, slack: 0.5, threshold: 8.0 }
    }
}

/// The full adaptive-controller policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// `true`: replans are applied to the server. `false`: observe-only —
    /// estimation, detection, and the trace still run, but no
    /// [`craqr_core::ControlAction`] is ever emitted (the static-baseline
    /// mode drift scenarios are golden-tested against).
    pub enabled: bool,
    /// Online estimator knobs (one [`craqr_mdpp::SgdEstimator`] per query).
    pub estimator: SgdConfig,
    /// Drift detector knobs (one detector per query).
    pub detector: DetectorConfig,
    /// Epochs before detectors start consuming innovations — the SGD
    /// estimate needs a few batches to calibrate, and its early residuals
    /// would otherwise read as drift.
    pub warmup_epochs: u32,
    /// Minimum epochs between replans; drifts confirmed during the
    /// cooldown are recorded but do not re-trigger.
    pub cooldown_epochs: u32,
    /// Total acquisition budget (requests/epoch) the water-filling
    /// allocator distributes on a replan. `None`: the pool is the sum of
    /// the live per-chain budgets at replan time (re-allocate, don't
    /// grow). Ignored on multi-tenant servers — their replans allocate
    /// from the registered per-tenant pools (the scenario schema rejects
    /// the combination outright).
    pub budget_pool: Option<f64>,
    /// Also rebuild the fired queries' chains on a replan, restarting
    /// their flatten estimators and `N_v` telemetry (the post-shift world
    /// deserves fresh statistics).
    pub rebuild_chains: bool,
    /// Safety factor on the requests-per-delivered-tuple demand estimate
    /// fed to the allocator.
    pub demand_headroom: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            estimator: SgdConfig::default(),
            detector: DetectorConfig::default(),
            warmup_epochs: 3,
            cooldown_epochs: 4,
            budget_pool: None,
            rebuild_chains: true,
            demand_headroom: 1.5,
        }
    }
}

impl AdaptiveConfig {
    /// Checks every knob, returning the first violated constraint as
    /// `(field, requirement)` — same contract as
    /// [`craqr_core::ServerConfig::validate`], so declarative specs reject
    /// bad adaptive blocks with a path-precise error.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        let e = &self.estimator;
        if !(e.gamma0.is_finite() && e.gamma0 > 0.0) {
            return Err(("adaptive.gamma0", format!("must be > 0, got {}", e.gamma0)));
        }
        if !(e.decay_batches.is_finite() && e.decay_batches > 0.0) {
            return Err((
                "adaptive.decay_batches",
                format!("must be > 0, got {}", e.decay_batches),
            ));
        }
        if !(e.initial_rate.is_finite() && e.initial_rate > 0.0) {
            return Err(("adaptive.initial_rate", format!("must be > 0, got {}", e.initial_rate)));
        }
        let d = &self.detector;
        if !(d.slack.is_finite() && d.slack >= 0.0) {
            return Err(("adaptive.slack", format!("must be >= 0, got {}", d.slack)));
        }
        if !(d.threshold.is_finite() && d.threshold > 0.0) {
            return Err(("adaptive.threshold", format!("must be > 0, got {}", d.threshold)));
        }
        if let Some(pool) = self.budget_pool {
            if !(pool.is_finite() && pool > 0.0) {
                return Err(("adaptive.budget_pool", format!("must be > 0, got {pool}")));
            }
        }
        if !(self.demand_headroom.is_finite() && self.demand_headroom >= 1.0) {
            return Err((
                "adaptive.demand_headroom",
                format!("must be >= 1, got {}", self.demand_headroom),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(AdaptiveConfig::default().validate(), Ok(()));
    }

    #[test]
    fn validation_names_the_offending_field() {
        let c = AdaptiveConfig {
            detector: DetectorConfig { threshold: 0.0, ..DetectorConfig::default() },
            ..AdaptiveConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().0, "adaptive.threshold");
        let c = AdaptiveConfig {
            estimator: craqr_mdpp::SgdConfig { gamma0: -1.0, ..Default::default() },
            ..AdaptiveConfig::default()
        };
        assert_eq!(c.validate().unwrap_err().0, "adaptive.gamma0");
        let c = AdaptiveConfig { budget_pool: Some(0.0), ..AdaptiveConfig::default() };
        assert_eq!(c.validate().unwrap_err().0, "adaptive.budget_pool");
        let c = AdaptiveConfig { demand_headroom: 0.5, ..AdaptiveConfig::default() };
        assert_eq!(c.validate().unwrap_err().0, "adaptive.demand_headroom");
    }
}
