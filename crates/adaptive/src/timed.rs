//! A timing decorator for [`ControlHook`]s.
//!
//! The observability layer wants to know how long the control phase
//! spends *inside the hook* (estimation + drift detection + replanning),
//! separate from the rest of the epoch. Wrapping the controller in a
//! [`TimedHook`] measures each `on_epoch` call with the thread-CPU clock
//! ([`craqr_core::exec::thread_busy_ns`]) without the epoch loop knowing
//! anything about timing.
//!
//! Timing is host- and schedule-dependent, so the accumulated totals are
//! **never checksummed** — they feed only the timing-tier of the metrics
//! registry. When constructed with `timed = false` the wrapper performs
//! zero clock reads and is behaviourally identical to the bare hook, so
//! instrumented and uninstrumented runs make bit-identical decisions.

use craqr_core::exec::thread_busy_ns;
use craqr_core::{ControlAction, ControlHook, EpochObservation};

/// Wraps any [`ControlHook`], accumulating per-call thread-CPU time.
///
/// The wrapper is transparent to determinism: it forwards the observation
/// verbatim and returns the inner hook's actions unchanged. Clock reads
/// happen only when `timed` is true.
pub struct TimedHook<'a> {
    inner: &'a mut dyn ControlHook,
    timed: bool,
    calls: u64,
    total_ns: u64,
}

impl<'a> TimedHook<'a> {
    /// Wraps `inner`. With `timed = false` the wrapper never reads the
    /// clock (pure pass-through).
    pub fn new(inner: &'a mut dyn ControlHook, timed: bool) -> Self {
        Self { inner, timed, calls: 0, total_ns: 0 }
    }

    /// Number of `on_epoch` calls forwarded so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Cumulative thread-CPU nanoseconds spent inside the wrapped hook
    /// (zero when constructed untimed).
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }
}

impl ControlHook for TimedHook<'_> {
    fn on_epoch(&mut self, obs: &EpochObservation) -> Vec<ControlAction> {
        self.calls += 1;
        if self.timed {
            let started = thread_busy_ns();
            let actions = self.inner.on_epoch(obs);
            self.total_ns += thread_busy_ns().saturating_sub(started);
            actions
        } else {
            self.inner.on_epoch(obs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_core::{CraqrServer, ServerConfig};
    use craqr_geom::Rect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
    };

    struct Counting(u64);
    impl ControlHook for Counting {
        fn on_epoch(&mut self, _obs: &EpochObservation) -> Vec<ControlAction> {
            self.0 += 1;
            vec![]
        }
    }

    fn server(seed: u64) -> CraqrServer {
        let region = Rect::with_size(4.0, 4.0);
        let crowd = Crowd::new(CrowdConfig {
            region,
            population: PopulationConfig {
                size: 100,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.1 },
                human_fraction: 0.0,
            },
            seed,
        });
        let mut s = CraqrServer::new(crowd, ServerConfig::default());
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
        s
    }

    #[test]
    fn untimed_wrapper_forwards_without_clock_reads() {
        let mut s = server(3);
        s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
        let mut inner = Counting(0);
        let mut hook = TimedHook::new(&mut inner, false);
        for _ in 0..3 {
            s.run_epoch_with(Some(&mut hook));
        }
        assert_eq!(hook.calls(), 3);
        assert_eq!(hook.total_ns(), 0, "untimed wrapper must not accumulate time");
        assert_eq!(inner.0, 3, "inner hook saw every epoch");
    }

    #[test]
    fn timed_wrapper_counts_calls_and_stays_transparent() {
        let run = |timed: bool| {
            let mut s = server(7);
            s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
            let mut inner = Counting(0);
            let mut hook = TimedHook::new(&mut inner, timed);
            let mut reports = Vec::new();
            for _ in 0..5 {
                let mut report = s.run_epoch_with(Some(&mut hook));
                // Shard busy time is host-dependent and irrelevant here:
                // only the event-derived outcome must be unperturbed.
                for shard in &mut report.exec.shards {
                    shard.busy_ns = 0;
                }
                reports.push(report);
            }
            assert_eq!(hook.calls(), 5);
            assert_eq!(inner.0, 5);
            reports
        };
        // Timing instrumentation must not change any epoch outcome.
        assert_eq!(run(true), run(false), "timed wrapper perturbed the run");
    }
}
