//! The canonical, checksummed decision log of one adaptive run.
//!
//! An [`AdaptiveTrace`] records *every* observation the controller made
//! (per epoch, per query: delivered count, empirical rate, innovation,
//! detector score, drift verdict) and every replan it issued (triggers,
//! pool, water-filled allocations, per-chain budgets, rebuilds). Like
//! [`ScenarioReport`](https://docs.rs/craqr-scenario) goldens, its
//! [`canonical`](AdaptiveTrace::canonical) rendering is byte-identical
//! across [`craqr_core::ExecMode`]s and across reruns at a fixed seed, and
//! ends in an FNV-1a checksum line — so drift scenarios can golden-test
//! not just *what* the system produced but *why* it replanned.

use crate::config::DetectorConfig;
use craqr_geom::CellId;
use craqr_sensing::AttributeId;
use craqr_stats::{fnv1a64, DriftDirection};

/// One (epoch, query) observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationRow {
    /// Epoch index.
    pub epoch: u64,
    /// Query id (submission order).
    pub query: u64,
    /// Tuples the query received this epoch.
    pub delivered: usize,
    /// Empirical delivered intensity over the epoch window (/km²/min).
    pub empirical_rate: f64,
    /// The SGD estimator's standardized innovation for this batch.
    pub innovation: f64,
    /// Detector evidence after consuming the innovation, pre-restart — a
    /// firing row records the level that crossed the threshold (0 while
    /// warming up).
    pub score: f64,
    /// Drift verdict, if the detector fired on this observation.
    pub drift: Option<DriftDirection>,
}

/// Per-tenant accounting of one multi-tenant replan: the tenant's pool,
/// what its queries demanded, and what the two-stage tenant water-fill
/// allocated them (own pool first, cross-tenant surplus second).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantPoolRow {
    /// The tenant (dense registration-order id).
    pub tenant: u32,
    /// The tenant's pool capacity (requests/epoch).
    pub pool: f64,
    /// Summed demand of the tenant's queries.
    pub demand: f64,
    /// Summed allocation to the tenant's queries. Always at least the
    /// tenant's own-pool water fill — surplus borrowing only adds.
    pub alloc: f64,
}

/// One replanning decision.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanRecord {
    /// Epoch whose observation triggered the replan.
    pub epoch: u64,
    /// The queries whose detectors fired, with the shift direction.
    pub triggers: Vec<(u64, DriftDirection)>,
    /// The budget pool (requests/epoch) the allocator distributed — on a
    /// multi-tenant server, the sum of the per-tenant pools.
    pub pool: f64,
    /// Per-query `(query, demand, allocation)` from the water-filler.
    pub allocations: Vec<(u64, f64, f64)>,
    /// Per-tenant pool accounting (empty on single-owner servers; the
    /// trace section — and the golden — only exists for tenanted runs).
    pub tenant_pools: Vec<TenantPoolRow>,
    /// The resulting per-chain budgets (requests/epoch), sorted by
    /// (cell, attribute).
    pub budgets: Vec<(CellId, AttributeId, f64)>,
    /// Chains rebuilt (flatten estimator + telemetry restarted).
    pub rebuilds: usize,
}

/// Roll-up of a trace, embedded into scenario reports so the report's
/// checksum pins the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total (epoch, query) observations.
    pub observations: usize,
    /// Drift events across all queries.
    pub drift_events: usize,
    /// Replans issued.
    pub replans: usize,
    /// Epoch of the first replan, if any.
    pub first_replan_epoch: Option<u64>,
    /// Checksum of the full canonical trace.
    pub trace_checksum: u64,
}

/// The full decision log of one adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTrace {
    /// Whether replans were applied (`false` = observe-only baseline).
    pub enabled: bool,
    /// The detector policy in force.
    pub detector: DetectorConfig,
    /// Warmup epochs (no detection).
    pub warmup_epochs: u32,
    /// Cooldown epochs between replans.
    pub cooldown_epochs: u32,
    /// Every (epoch, query) observation, in (epoch, query) order.
    pub observations: Vec<ObservationRow>,
    /// Every replan, ascending by epoch.
    pub replans: Vec<ReplanRecord>,
}

/// Deterministic short float: four decimals is plenty for rates,
/// innovations, and budgets, and keeps goldens reviewable.
fn f4(x: f64) -> String {
    // craqr-lint: allow(R5): fixed 4-decimal rendering is correctly rounded and byte-stable; the trace goldens bless this narrow format deliberately
    format!("{x:.4}")
}

impl AdaptiveTrace {
    /// Drift events across all observations.
    pub fn drift_events(&self) -> usize {
        self.observations.iter().filter(|o| o.drift.is_some()).count()
    }

    /// The trace's roll-up (embedded in scenario reports).
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            observations: self.observations.len(),
            drift_events: self.drift_events(),
            replans: self.replans.len(),
            first_replan_epoch: self.replans.first().map(|r| r.epoch),
            trace_checksum: self.checksum(),
        }
    }

    /// The canonical golden text: byte-stable across hosts and
    /// [`craqr_core::ExecMode`]s, ending in a `checksum:` line over
    /// everything before it.
    pub fn canonical(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "# craqr adaptive trace v1");
        let _ = writeln!(s, "mode: {}", if self.enabled { "active" } else { "observe" });
        let _ = writeln!(
            s,
            "detector: {} slack={} threshold={}",
            self.detector.kind,
            f4(self.detector.slack),
            f4(self.detector.threshold),
        );
        let _ = writeln!(s, "warmup: {} cooldown: {}", self.warmup_epochs, self.cooldown_epochs);
        let _ = writeln!(s, "\n[observations]");
        for o in &self.observations {
            let drift = match o.drift {
                None => "-".to_string(),
                Some(d) => d.to_string(),
            };
            let _ = writeln!(
                s,
                "e={} q={} n={} rate={} innov={} score={} drift={}",
                o.epoch,
                o.query,
                o.delivered,
                f4(o.empirical_rate),
                f4(o.innovation),
                f4(o.score),
                drift,
            );
        }
        let _ = writeln!(s, "\n[replans]");
        for r in &self.replans {
            let triggers: Vec<String> =
                r.triggers.iter().map(|(q, d)| format!("q{q}:{d}")).collect();
            let _ = writeln!(
                s,
                "e={} triggers={} pool={} rebuilds={}",
                r.epoch,
                triggers.join(","),
                f4(r.pool),
                r.rebuilds,
            );
            for (q, demand, alloc) in &r.allocations {
                let _ = writeln!(s, "  q={} demand={} alloc={}", q, f4(*demand), f4(*alloc));
            }
            for t in &r.tenant_pools {
                let _ = writeln!(
                    s,
                    "  tenant={} pool={} demand={} alloc={}",
                    t.tenant,
                    f4(t.pool),
                    f4(t.demand),
                    f4(t.alloc),
                );
            }
            for (cell, attr, budget) in &r.budgets {
                let _ = writeln!(s, "  set cell={} attr={} budget={}", cell, attr, f4(*budget));
            }
        }
        let _ = writeln!(s, "\n[summary]");
        let _ = writeln!(
            s,
            "observations={} drift-events={} replans={} first-replan={}",
            self.observations.len(),
            self.drift_events(),
            self.replans.len(),
            self.replans.first().map_or("-".to_string(), |r| r.epoch.to_string()),
        );
        let _ = writeln!(s, "\nchecksum: {:#018x}", fnv1a64(s.as_bytes()));
        s
    }

    /// The trace's content checksum (the value on the canonical text's
    /// final line).
    pub fn checksum(&self) -> u64 {
        let canon = self.canonical();
        let body = canon.rsplit_once("\nchecksum:").expect("canonical ends in checksum").0;
        fnv1a64(body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> AdaptiveTrace {
        AdaptiveTrace {
            enabled: true,
            detector: DetectorConfig::default(),
            warmup_epochs: 2,
            cooldown_epochs: 3,
            observations: vec![ObservationRow {
                epoch: 0,
                query: 0,
                delivered: 12,
                empirical_rate: 0.31,
                innovation: -0.45,
                score: 0.0,
                drift: None,
            }],
            replans: vec![ReplanRecord {
                epoch: 7,
                triggers: vec![(0, DriftDirection::Up)],
                pool: 40.0,
                allocations: vec![(0, 55.5, 40.0)],
                tenant_pools: Vec::new(),
                budgets: vec![(CellId::new(0, 0), AttributeId(0), 10.0)],
                rebuilds: 1,
            }],
        }
    }

    #[test]
    fn canonical_is_stable_and_checksummed() {
        let t = trace();
        assert_eq!(t.canonical(), t.canonical());
        assert!(t.canonical().ends_with(&format!("checksum: {:#018x}\n", t.checksum())));
        assert!(t.canonical().contains("q0:up"));
    }

    #[test]
    fn checksum_tracks_content() {
        let a = trace();
        let mut b = trace();
        b.observations[0].delivered += 1;
        assert_ne!(a.checksum(), b.checksum());
    }

    #[test]
    fn tenant_pool_rows_render_only_when_present() {
        let plain = trace();
        assert!(!plain.canonical().contains("tenant="), "single-owner traces stay byte-stable");
        let mut tenanted = trace();
        tenanted.replans[0].tenant_pools =
            vec![TenantPoolRow { tenant: 0, pool: 40.0, demand: 55.5, alloc: 40.0 }];
        let canon = tenanted.canonical();
        assert!(canon.contains("tenant=0 pool=40.0000 demand=55.5000 alloc=40.0000"), "{canon}");
        assert_ne!(plain.checksum(), tenanted.checksum());
    }

    #[test]
    fn summary_rolls_up() {
        let s = trace().summary();
        assert_eq!(s.observations, 1);
        assert_eq!(s.drift_events, 0);
        assert_eq!(s.replans, 1);
        assert_eq!(s.first_replan_epoch, Some(7));
        assert_eq!(s.trace_checksum, trace().checksum());
    }
}
