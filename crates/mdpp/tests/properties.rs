//! Property tests for the point-process substrate: sampler counts match
//! integrals, closed forms match quadrature, and inference is stable under
//! randomized geometry.

use craqr_geom::{Rect, SpaceTimeWindow};
use craqr_mdpp::fit::{fit_mle, FitConfig};
use craqr_mdpp::intensity::{numeric_integral, ConstantIntensity, IntensityModel, LinearIntensity};
use craqr_mdpp::process::{HomogeneousMdpp, InhomogeneousMdpp};
use craqr_stats::seeded_rng;
use proptest::prelude::*;

fn window_strategy() -> impl Strategy<Value = SpaceTimeWindow> {
    (-20.0f64..20.0, -20.0f64..20.0, 1.0f64..15.0, 1.0f64..15.0, 0.0f64..100.0, 1.0f64..30.0)
        .prop_map(|(x0, y0, w, h, t0, dt)| {
            SpaceTimeWindow::new(Rect::new(x0, y0, x0 + w, y0 + h), t0, t0 + dt)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn homogeneous_counts_match_volume(
        w in window_strategy(),
        rate in 0.05f64..5.0,
        seed in any::<u64>(),
    ) {
        let process = HomogeneousMdpp::new(rate, w.rect);
        let mut rng = seeded_rng(seed);
        let reps = 30;
        let total: usize = (0..reps).map(|_| process.sample(&w, &mut rng).len()).sum();
        let expect = rate * w.volume() * reps as f64;
        // Poisson total: sd = √expect; allow 6σ.
        prop_assert!(
            (total as f64 - expect).abs() < 6.0 * expect.sqrt() + 5.0,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn all_samples_land_inside_window(
        w in window_strategy(),
        rate in 0.1f64..3.0,
        seed in any::<u64>(),
    ) {
        let process = HomogeneousMdpp::new(rate, w.rect);
        let pts = process.sample(&w, &mut seeded_rng(seed));
        for p in &pts {
            prop_assert!(w.contains(p), "{p:?} outside window");
        }
        // Sorted by time.
        for pair in pts.windows(2) {
            prop_assert!(pair[0].t <= pair[1].t);
        }
    }

    #[test]
    fn linear_integral_matches_quadrature_when_positive(
        w in window_strategy(),
        theta0 in 0.5f64..5.0,
        t_slope in -0.01f64..0.01,
        x_slope in -0.05f64..0.05,
        y_slope in -0.05f64..0.05,
    ) {
        let model = LinearIntensity::new([theta0, t_slope, x_slope, y_slope]);
        prop_assume!(model.is_positive_on(&w));
        let closed = model.integral(&w);
        let numeric = numeric_integral(&model, &w, 24);
        prop_assert!(
            (closed - numeric).abs() < 1e-2 * (1.0 + closed.abs()),
            "closed {closed} vs numeric {numeric}"
        );
    }

    #[test]
    fn inhomogeneous_counts_match_integral(
        w in window_strategy(),
        theta0 in 0.5f64..3.0,
        x_slope in 0.0f64..0.05,
        seed in any::<u64>(),
    ) {
        let model = LinearIntensity::new([theta0, 0.0, x_slope, 0.0]);
        prop_assume!(model.is_positive_on(&w));
        let process = InhomogeneousMdpp::new(model, w.rect);
        let expect_one = process.expected_count(&w);
        prop_assume!(expect_one > 5.0);
        let mut rng = seeded_rng(seed);
        let reps = 20;
        let total: usize = (0..reps).map(|_| process.sample(&w, &mut rng).len()).sum();
        let expect = expect_one * reps as f64;
        prop_assert!(
            (total as f64 - expect).abs() < 6.0 * expect.sqrt() + 5.0,
            "total {total} vs {expect}"
        );
    }

    #[test]
    fn constant_intensity_is_a_fixed_point_of_mle(
        rate in 0.5f64..4.0,
        seed in any::<u64>(),
    ) {
        // Fitting a homogeneous sample must produce a nearly-flat model
        // whose expected count matches the sample size.
        let w = SpaceTimeWindow::new(Rect::with_size(8.0, 8.0), 0.0, 10.0);
        let pts = HomogeneousMdpp::new(rate, w.rect).sample(&w, &mut seeded_rng(seed));
        prop_assume!(pts.len() > 50);
        let fit = fit_mle(&pts, &w, FitConfig::default());
        prop_assert!(fit.converged);
        let expect = fit.intensity.integral(&w);
        prop_assert!(
            (expect - pts.len() as f64).abs() < 0.05 * pts.len() as f64 + 2.0,
            "model expects {expect}, sample had {}",
            pts.len()
        );
    }

    #[test]
    fn mle_never_goes_negative_on_window(
        w in window_strategy(),
        theta0 in 0.5f64..3.0,
        x_slope in -0.1f64..0.1,
        seed in any::<u64>(),
    ) {
        let truth = LinearIntensity::new([theta0, 0.0, x_slope, 0.0]);
        prop_assume!(truth.is_positive_on(&w));
        let process = InhomogeneousMdpp::new(truth, w.rect);
        prop_assume!(process.expected_count(&w) > 30.0);
        let pts = process.sample(&w, &mut seeded_rng(seed));
        let fit = fit_mle(&pts, &w, FitConfig::default());
        prop_assert!(fit.intensity.min_on(&w) >= -1e-9, "min {}", fit.intensity.min_on(&w));
    }

    #[test]
    fn max_rate_bounds_rate_everywhere(
        w in window_strategy(),
        theta0 in 0.0f64..5.0,
        t_slope in -0.05f64..0.05,
        x_slope in -0.2f64..0.2,
        y_slope in -0.2f64..0.2,
        probe_t in 0.0f64..1.0,
        probe_x in 0.0f64..1.0,
        probe_y in 0.0f64..1.0,
    ) {
        let model = LinearIntensity::new([theta0, t_slope, x_slope, y_slope]);
        let max = model.max_rate(&w);
        let p = craqr_geom::SpaceTimePoint::new(
            w.t0 + probe_t * w.duration(),
            w.rect.x0 + probe_x * w.rect.width(),
            w.rect.y0 + probe_y * w.rect.height(),
        );
        prop_assert!(model.rate_at(&p) <= max + 1e-9);
        // Constant model: max equals the rate.
        let c = ConstantIntensity::new(theta0);
        prop_assert!((c.max_rate(&w) - theta0).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Online SGD vs batch MLE: the estimator-quality contract behind the
// adaptive acquisition loop (ISSUE 3): on stationary synthetic windows the
// streaming estimate must land within tolerance of the batch fit.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sgd_tracks_batch_mle_on_stationary_windows(
        seed in any::<u64>(),
        rate in 0.8f64..3.0,
        sx in -0.08f64..0.08,
        sy in -0.08f64..0.08,
    ) {
        use craqr_mdpp::fit::{SgdConfig, SgdEstimator};

        let region = Rect::with_size(10.0, 10.0);
        let truth = LinearIntensity::new([rate, 0.0, sx, sy]);
        let process = InhomogeneousMdpp::new(truth, region);
        let reference = SpaceTimeWindow::new(region, 0.0, 5.0);
        let mut rng = seeded_rng(seed);

        let mut sgd = SgdEstimator::new(&reference, SgdConfig::default());
        let batches = 120;
        let mle_batches = 20;
        let vol = reference.volume();
        // Average the per-batch MLE mean rates over the last few batches:
        // each batch fit is the estimator the paper calls "given a set of
        // acquired tuples", and averaging keeps the MLE's own noise below
        // the comparison tolerance.
        let mut mle_rates = Vec::new();
        let mut mle_probe = Vec::new();
        let probes = [(2.0, 5.0), (5.0, 5.0), (8.0, 2.0)];
        for b in 0..batches {
            let pts = process.sample(&reference, &mut rng);
            sgd.observe_batch(&pts, &reference);
            if b >= batches - mle_batches {
                let mle = fit_mle(&pts, &reference, FitConfig::default());
                prop_assert!(mle.converged, "batch {b} MLE did not converge");
                let mean = mle.intensity.integral(&reference) / vol;
                mle_rates.push(mean);
                mle_probe.push(probes.map(|(x, y)| {
                    mle.intensity.rate_at(&craqr_geom::SpaceTimePoint::new(2.5, x, y)) / mean
                }));
            }
        }
        let mle_rate = mle_rates.iter().sum::<f64>() / mle_rates.len() as f64;
        let sgd_rate = sgd.estimate().integral(&reference) / vol;
        let rel = (sgd_rate - mle_rate).abs() / mle_rate.max(1e-9);
        prop_assert!(
            rel < 0.15,
            "SGD mean rate {sgd_rate:.4} vs MLE {mle_rate:.4} (rel {rel:.3}), truth {rate}"
        );

        // The fitted spatial surfaces agree at probe points (both models
        // normalized to their own mean rate, so shapes are compared).
        for (i, &(x, y)) in probes.iter().enumerate() {
            let p = craqr_geom::SpaceTimePoint::new(2.5, x, y);
            let s = sgd.estimate().rate_at(&p) / sgd_rate;
            let m =
                mle_probe.iter().map(|row| row[i]).sum::<f64>() / mle_probe.len() as f64;
            prop_assert!(
                (s - m).abs() < 0.35,
                "normalized surfaces diverge at ({x},{y}): sgd {s:.3} vs mle {m:.3}"
            );
        }
    }
}
