//! Multi-dimensional point processes (MDPPs).
//!
//! The paper models the spatio-temporal arrival of crowdsensed tuples for
//! each attribute as a 3-D point process over (time, x, y) — Section III-A.
//! This crate is the mathematical substrate behind that model:
//!
//! - [`intensity`]: conditional-intensity functions `λ̃(t, x, y; θ)`,
//!   including the paper's linear parametrization (Eq. (1)) with a
//!   closed-form window integral, plus separable Gaussian-bump and
//!   piecewise-constant models used by the crowd simulator.
//! - [`process`]: the process types `P(λ, R)` (homogeneous) and
//!   `P̃(λ̃, R)` (inhomogeneous) with exact samplers — direct
//!   Poisson-count/uniform placement for the homogeneous case and
//!   Lewis–Shedler thinning for the inhomogeneous case.
//! - [`fit`]: parameter estimation for Eq. (1) — batch maximum-likelihood
//!   (projected gradient ascent on the concave Poisson log-likelihood,
//!   ref. \[12\] of the paper) and online stochastic gradient descent
//!   (ref. \[13\], used by sliding-window flattening).
//! - [`diagnostics`]: empirical homogeneity checks (binned χ², dispersion,
//!   count CV, temporal KS) used to verify operator behaviour.
//! - [`excite`]: self-exciting (Hawkes-style) conditional intensities with
//!   a deterministic cluster-cascade generator — burst workloads for the
//!   scenario harness.
//! - [`summary`]: deterministic empirical intensity summaries of realized
//!   point sets (rate, per-cell extremes, count CV) for golden reports.
//!
//! # Example
//!
//! ```
//! use craqr_geom::{Rect, SpaceTimeWindow};
//! use craqr_mdpp::intensity::LinearIntensity;
//! use craqr_mdpp::process::InhomogeneousMdpp;
//! use craqr_mdpp::fit::fit_mle;
//! use craqr_stats::seeded_rng;
//!
//! let region = Rect::with_size(10.0, 10.0);
//! let window = SpaceTimeWindow::new(region, 0.0, 30.0);
//! let truth = LinearIntensity::new([2.0, 0.0, 0.4, 0.1]);
//! let process = InhomogeneousMdpp::new(truth.clone(), region);
//! let points = process.sample(&window, &mut seeded_rng(7));
//!
//! let fit = fit_mle(&points, &window, Default::default());
//! assert!(fit.converged);
//! // The recovered intercept is close to the true θ0 = 2.0.
//! assert!((fit.intensity.theta()[0] - 2.0).abs() < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod diagnostics;
pub mod excite;
pub mod fit;
pub mod intensity;
pub mod process;
pub mod summary;

pub use diagnostics::{homogeneity_report, HomogeneityReport};
pub use excite::SelfExcitingIntensity;
pub use fit::{fit_mle, FitConfig, FitResult, Innovation, SgdConfig, SgdEstimator};
pub use intensity::{
    ConstantIntensity, GaussianBumpIntensity, IntegralCache, IntensityModel, LinearIntensity,
    PiecewiseConstantIntensity,
};
pub use process::{HomogeneousMdpp, InhomogeneousMdpp};
pub use summary::IntensitySummary;
