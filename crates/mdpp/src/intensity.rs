//! Conditional-intensity models `λ̃(t, x, y; θ)`.
//!
//! An intensity model answers three questions the rest of the stack needs:
//! the *pointwise rate* (flatten's Eq. (3) denominator), a *window upper
//! bound* (the envelope for Lewis–Shedler thinning), and the *window
//! integral* (expected count; the normalizer of the Poisson
//! log-likelihood). Models where the integral has a closed form implement
//! it exactly; the rest fall back to midpoint-rule quadrature.

use craqr_geom::{Grid, SpaceTimePoint, SpaceTimeWindow};
use serde::{Deserialize, Serialize};

/// A conditional spatio-temporal intensity (rate) function.
pub trait IntensityModel {
    /// The rate at a space-time point (always ≥ 0).
    fn rate_at(&self, p: &SpaceTimePoint) -> f64;

    /// An upper bound of the rate over the window (need not be tight, but
    /// tighter bounds make thinning-based samplers faster).
    fn max_rate(&self, w: &SpaceTimeWindow) -> f64;

    /// `∫_W λ` — the expected number of points in the window.
    ///
    /// The default implementation uses midpoint quadrature on a
    /// `res × res × res` lattice; override when a closed form exists.
    fn integral(&self, w: &SpaceTimeWindow) -> f64 {
        numeric_integral(self, w, 32)
    }

    /// `true` when the rate does not depend on `t`, so `∫` over any two
    /// windows with the same footprint and duration coincide. Lets
    /// [`IntegralCache`] serve sliding windows (same shape, shifted `t0`)
    /// from one entry. Conservative default: `false`.
    fn is_time_invariant(&self) -> bool {
        false
    }
}

/// Midpoint-rule quadrature of an intensity over a window.
///
/// Exposed so tests can cross-check closed-form integrals. The lattice
/// midpoint coordinates are precomputed per axis and a single probe point
/// is mutated in place, so the `res³` inner loop does no
/// `SpaceTimePoint` construction — only the `rate_at` calls remain.
/// Summation order matches the naive triple loop exactly (`t`, then `x`,
/// then `y`), keeping results bit-identical to previous versions.
pub fn numeric_integral<I: IntensityModel + ?Sized>(
    intensity: &I,
    w: &SpaceTimeWindow,
    res: usize,
) -> f64 {
    assert!(res > 0, "need at least one lattice cell");
    let dt = w.duration() / res as f64;
    let dx = w.rect.width() / res as f64;
    let dy = w.rect.height() / res as f64;
    let ts: Vec<f64> = (0..res).map(|i| w.t0 + dt * (i as f64 + 0.5)).collect();
    let xs: Vec<f64> = (0..res).map(|i| w.rect.x0 + dx * (i as f64 + 0.5)).collect();
    let ys: Vec<f64> = (0..res).map(|i| w.rect.y0 + dy * (i as f64 + 0.5)).collect();
    let mut probe = SpaceTimePoint::new(0.0, 0.0, 0.0);
    let mut sum = 0.0;
    for &t in &ts {
        probe.t = t;
        for &x in &xs {
            probe.x = x;
            for &y in &ys {
                probe.y = y;
                sum += intensity.rate_at(&probe);
            }
        }
    }
    sum * dt * dx * dy
}

/// One memoized integral: the identifying key plus the cached value.
#[derive(Debug, Clone, Copy, PartialEq)]
struct IntegralEntry {
    /// Model revision the value was computed for.
    epoch: u64,
    /// Window identity: bit patterns of `(x0, y0, x1, y1)` plus either
    /// `(t0, t1)` or `(duration, duration)` for time-invariant models.
    key: [u64; 6],
    value: f64,
}

/// A small memo table for [`IntensityModel::integral`] keyed by
/// `(model epoch, window)`.
///
/// Epoch-driven workloads (the bench harness's stream generators, and any
/// consumer of [`crate::process::InhomogeneousMdpp::expected_count`])
/// evaluate expected counts for the *same* window shape epoch after epoch
/// — each cell's batch window just slides in time. Without caching, every
/// evaluation of a model with no closed form re-runs `32³ = 32 768`
/// `rate_at` calls of midpoint quadrature. Callers own the cache and bump
/// `epoch` whenever the model's parameters change (e.g. per fitted
/// batch), which implicitly invalidates all older entries. (The `F`
/// operator itself estimates per-tuple *pointwise* rates, not window
/// integrals, so it has no use for this cache — integral consumers sit
/// at the sampling/diagnostic layer.)
///
/// For models reporting [`IntensityModel::is_time_invariant`], windows are
/// keyed by footprint + duration, so sliding a window through time hits
/// the same entry.
#[derive(Debug, Default)]
pub struct IntegralCache {
    entries: Vec<IntegralEntry>,
    hits: u64,
    misses: u64,
}

/// Retained entries per cache — enough for one server's worth of distinct
/// cell windows without unbounded growth.
const INTEGRAL_CACHE_CAPACITY: usize = 64;

impl IntegralCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    fn key_of<I: IntensityModel + ?Sized>(model: &I, w: &SpaceTimeWindow) -> [u64; 6] {
        let (kt0, kt1) = if model.is_time_invariant() {
            (w.duration().to_bits(), w.duration().to_bits())
        } else {
            (w.t0.to_bits(), w.t1.to_bits())
        };
        [
            w.rect.x0.to_bits(),
            w.rect.y0.to_bits(),
            w.rect.x1.to_bits(),
            w.rect.y1.to_bits(),
            kt0,
            kt1,
        ]
    }

    /// `∫_W λ` through the cache: returns the memoized value when
    /// `(epoch, window)` was seen before, otherwise computes
    /// [`IntensityModel::integral`], stores it, and returns it.
    pub fn integral_of<I: IntensityModel + ?Sized>(
        &mut self,
        model: &I,
        epoch: u64,
        w: &SpaceTimeWindow,
    ) -> f64 {
        let key = Self::key_of(model, w);
        if let Some(e) = self.entries.iter().find(|e| e.epoch == epoch && e.key == key) {
            self.hits += 1;
            return e.value;
        }
        self.misses += 1;
        let value = model.integral(w);
        if self.entries.len() == INTEGRAL_CACHE_CAPACITY {
            self.entries.remove(0); // FIFO eviction; the table is tiny
        }
        self.entries.push(IntegralEntry { epoch, key, value });
        value
    }

    /// `(hits, misses)` since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of memoized integrals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops every entry (e.g. after wholesale model replacement).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Constant rate `λ` — the intensity of a homogeneous MDPP `P(λ, R)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstantIntensity {
    rate: f64,
}

impl ConstantIntensity {
    /// Creates a constant intensity.
    ///
    /// # Panics
    /// Panics when `rate` is negative or non-finite.
    #[track_caller]
    pub fn new(rate: f64) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0, got {rate}");
        Self { rate }
    }

    /// The rate λ.
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl IntensityModel for ConstantIntensity {
    #[inline]
    fn rate_at(&self, _p: &SpaceTimePoint) -> f64 {
        self.rate
    }

    #[inline]
    fn max_rate(&self, _w: &SpaceTimeWindow) -> f64 {
        self.rate
    }

    #[inline]
    fn integral(&self, w: &SpaceTimeWindow) -> f64 {
        self.rate * w.volume()
    }

    #[inline]
    fn is_time_invariant(&self) -> bool {
        true
    }
}

/// The paper's Eq. (1): `λ̃(t, x, y; θ) = θ0 + θ1·t + θ2·x + θ3·y`,
/// truncated at zero.
///
/// The linear form can go negative outside its fitted range; following the
/// convention of conditional-intensity fitting (ref. \[12\]) the model value
/// is `max(0, ·)`. [`LinearIntensity::is_positive_on`] reports whether the
/// window stays in the strictly-positive regime, where the closed-form
/// integral and the concavity of the log-likelihood are exact.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearIntensity {
    theta: [f64; 4],
}

impl LinearIntensity {
    /// Creates the model from `θ = [θ0, θ1, θ2, θ3]`.
    ///
    /// # Panics
    /// Panics on non-finite parameters.
    #[track_caller]
    pub fn new(theta: [f64; 4]) -> Self {
        assert!(theta.iter().all(|t| t.is_finite()), "theta must be finite: {theta:?}");
        Self { theta }
    }

    /// A constant-rate special case (`θ1 = θ2 = θ3 = 0`).
    pub fn constant(rate: f64) -> Self {
        Self::new([rate, 0.0, 0.0, 0.0])
    }

    /// The parameter vector θ.
    #[inline]
    pub fn theta(&self) -> [f64; 4] {
        self.theta
    }

    /// The raw (untruncated) linear form.
    #[inline]
    pub fn linear_at(&self, p: &SpaceTimePoint) -> f64 {
        self.theta[0] + self.theta[1] * p.t + self.theta[2] * p.x + self.theta[3] * p.y
    }

    /// The feature vector `f(p) = (1, t, x, y)` of Eq. (1); gradient of the
    /// linear form with respect to θ.
    #[inline]
    pub fn features(p: &SpaceTimePoint) -> [f64; 4] {
        [1.0, p.t, p.x, p.y]
    }

    /// Evaluates the linear form at every corner of the window. Because the
    /// form is affine, its extrema over the box lie at corners.
    fn corner_values(&self, w: &SpaceTimeWindow) -> [f64; 8] {
        let mut vals = [0.0; 8];
        let mut i = 0;
        for &t in &[w.t0, w.t1] {
            for &x in &[w.rect.x0, w.rect.x1] {
                for &y in &[w.rect.y0, w.rect.y1] {
                    vals[i] = self.linear_at(&SpaceTimePoint::new(t, x, y));
                    i += 1;
                }
            }
        }
        vals
    }

    /// `true` when the linear form is strictly positive over the whole
    /// window (checked at corners; exact for an affine function).
    pub fn is_positive_on(&self, w: &SpaceTimeWindow) -> bool {
        self.corner_values(w).iter().all(|&v| v > 0.0)
    }

    /// Minimum of the linear form over the window.
    pub fn min_on(&self, w: &SpaceTimeWindow) -> f64 {
        self.corner_values(w).iter().copied().fold(f64::INFINITY, f64::min)
    }
}

impl IntensityModel for LinearIntensity {
    #[inline]
    fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
        self.linear_at(p).max(0.0)
    }

    fn max_rate(&self, w: &SpaceTimeWindow) -> f64 {
        self.corner_values(w).iter().copied().fold(0.0, f64::max)
    }

    fn integral(&self, w: &SpaceTimeWindow) -> f64 {
        if self.is_positive_on(w) {
            // ∫_W (θ0 + θ1 t + θ2 x + θ3 y) = V · λ(midpoint) for an affine
            // integrand over a box.
            let (cx, cy) = w.rect.center();
            let mid = SpaceTimePoint::new((w.t0 + w.t1) * 0.5, cx, cy);
            self.linear_at(&mid) * w.volume()
        } else {
            // Truncation active somewhere: integrate max(0, ·) numerically.
            numeric_integral(self, w, 64)
        }
    }

    #[inline]
    fn is_time_invariant(&self) -> bool {
        self.theta[1] == 0.0
    }
}

/// Separable intensity `λ(t, x, y) = m(t) · s(x, y)` with a Gaussian-bump
/// spatial profile and sinusoidal temporal modulation.
///
/// This is the shape of the crowd simulator's *skewed* sensor density — the
/// phenomenon (hotspots downtown, diurnal cycles) the paper says makes
/// crowdsensed arrivals "highly skewed".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaussianBumpIntensity {
    base: f64,
    bumps: Vec<Bump>,
    temporal_amplitude: f64,
    temporal_period: f64,
}

/// One spatial hotspot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bump {
    /// Hotspot centre x (km).
    pub cx: f64,
    /// Hotspot centre y (km).
    pub cy: f64,
    /// Peak added rate at the centre.
    pub amplitude: f64,
    /// Gaussian width σ (km).
    pub sigma: f64,
}

impl GaussianBumpIntensity {
    /// Creates a bump intensity with base rate `base` and no temporal
    /// modulation.
    ///
    /// # Panics
    /// Panics when `base` is negative or any bump has non-positive
    /// `sigma`/negative `amplitude`.
    #[track_caller]
    pub fn new(base: f64, bumps: Vec<Bump>) -> Self {
        assert!(base.is_finite() && base >= 0.0, "base rate must be >= 0");
        for b in &bumps {
            assert!(b.sigma > 0.0, "bump sigma must be > 0");
            assert!(b.amplitude >= 0.0, "bump amplitude must be >= 0");
        }
        Self { base, bumps, temporal_amplitude: 0.0, temporal_period: 1.0 }
    }

    /// Adds sinusoidal temporal modulation
    /// `m(t) = 1 + amplitude · sin(2πt / period)`, clamped at zero.
    ///
    /// # Panics
    /// Panics when `amplitude ∉ [0, 1]` or `period ≤ 0`.
    #[track_caller]
    pub fn with_diurnal(mut self, amplitude: f64, period: f64) -> Self {
        assert!((0.0..=1.0).contains(&amplitude), "amplitude must be in [0,1]");
        assert!(period > 0.0, "period must be > 0");
        self.temporal_amplitude = amplitude;
        self.temporal_period = period;
        self
    }

    fn spatial(&self, x: f64, y: f64) -> f64 {
        let mut s = self.base;
        for b in &self.bumps {
            let dx = x - b.cx;
            let dy = y - b.cy;
            s += b.amplitude * (-(dx * dx + dy * dy) / (2.0 * b.sigma * b.sigma)).exp();
        }
        s
    }

    fn temporal(&self, t: f64) -> f64 {
        (1.0 + self.temporal_amplitude
            * (2.0 * std::f64::consts::PI * t / self.temporal_period).sin())
        .max(0.0)
    }
}

impl IntensityModel for GaussianBumpIntensity {
    fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
        self.spatial(p.x, p.y) * self.temporal(p.t)
    }

    fn max_rate(&self, _w: &SpaceTimeWindow) -> f64 {
        // Cheap bound: all bumps at their peaks, temporal factor at max.
        let spatial_max = self.base + self.bumps.iter().map(|b| b.amplitude).sum::<f64>();
        spatial_max * (1.0 + self.temporal_amplitude)
    }

    #[inline]
    fn is_time_invariant(&self) -> bool {
        self.temporal_amplitude == 0.0
    }
}

/// Piecewise-constant intensity over the cells of a [`Grid`]
/// (time-invariant).
///
/// This is the natural "estimated rate per materialized grid cell" model:
/// the budget tuner can use it to describe how crowd density varies across
/// cells without committing to a parametric form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PiecewiseConstantIntensity {
    grid: Grid,
    /// Row-major `side × side` rates.
    rates: Vec<f64>,
    /// Rate outside the grid region.
    outside: f64,
}

impl PiecewiseConstantIntensity {
    /// Creates the model; `rates` is row-major over the grid's cells.
    ///
    /// # Panics
    /// Panics when `rates.len() != grid.cell_count()` or any rate is
    /// negative/non-finite.
    #[track_caller]
    pub fn new(grid: Grid, rates: Vec<f64>) -> Self {
        assert_eq!(rates.len(), grid.cell_count() as usize, "one rate per cell required");
        assert!(rates.iter().all(|r| r.is_finite() && *r >= 0.0), "rates must be finite and >= 0");
        Self { grid, rates, outside: 0.0 }
    }

    /// The underlying grid.
    #[inline]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Rate of cell `(q, r)`.
    pub fn cell_rate(&self, q: u32, r: u32) -> f64 {
        self.rates[(r * self.grid.side() + q) as usize]
    }
}

impl IntensityModel for PiecewiseConstantIntensity {
    fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
        match self.grid.cell_of(p.x, p.y) {
            Some(c) => self.cell_rate(c.q, c.r),
            None => self.outside,
        }
    }

    fn max_rate(&self, _w: &SpaceTimeWindow) -> f64 {
        self.rates.iter().copied().fold(0.0, f64::max)
    }

    fn integral(&self, w: &SpaceTimeWindow) -> f64 {
        // Exact: sum rate × overlap-area over the cells the window touches.
        let overlaps = self.grid.cells_overlapping(&w.rect);
        let spatial: f64 =
            overlaps.iter().map(|o| self.cell_rate(o.cell.q, o.cell.r) * o.overlap.area()).sum();
        spatial * w.duration()
    }

    #[inline]
    fn is_time_invariant(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::Rect;

    fn window() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::with_size(10.0, 10.0), 0.0, 20.0)
    }

    #[test]
    fn constant_intensity_integral_is_rate_times_volume() {
        let c = ConstantIntensity::new(2.5);
        let w = window();
        assert!((c.integral(&w) - 2.5 * 2000.0).abs() < 1e-9);
        assert_eq!(c.max_rate(&w), 2.5);
        assert_eq!(c.rate_at(&SpaceTimePoint::new(1.0, 2.0, 3.0)), 2.5);
    }

    #[test]
    fn linear_intensity_matches_eq1() {
        let l = LinearIntensity::new([1.0, 0.5, 2.0, -0.25]);
        let p = SpaceTimePoint::new(2.0, 3.0, 4.0);
        // 1 + 0.5*2 + 2*3 - 0.25*4 = 7.
        assert!((l.rate_at(&p) - 7.0).abs() < 1e-12);
        assert_eq!(LinearIntensity::features(&p), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn linear_intensity_truncates_at_zero() {
        let l = LinearIntensity::new([-5.0, 0.0, 0.0, 0.0]);
        assert_eq!(l.rate_at(&SpaceTimePoint::new(0.0, 0.0, 0.0)), 0.0);
    }

    #[test]
    fn linear_closed_form_integral_matches_quadrature() {
        let l = LinearIntensity::new([3.0, 0.05, 0.2, 0.1]);
        let w = window();
        assert!(l.is_positive_on(&w));
        let closed = l.integral(&w);
        let numeric = numeric_integral(&l, &w, 48);
        assert!((closed - numeric).abs() < 1e-3 * closed, "closed {closed} vs numeric {numeric}");
    }

    #[test]
    fn linear_truncated_integral_uses_quadrature() {
        // Goes negative over part of the window.
        let l = LinearIntensity::new([-2.0, 0.0, 1.0, 0.0]);
        let w = window();
        assert!(!l.is_positive_on(&w));
        // Analytic: ∫max(0, x-2) over x∈[0,10] = 32; times 10 (y) times 20 (t).
        let expected = 32.0 * 10.0 * 20.0;
        let got = l.integral(&w);
        assert!((got - expected).abs() < 0.02 * expected, "got {got} want {expected}");
    }

    #[test]
    fn linear_max_and_min_on_corners() {
        let l = LinearIntensity::new([1.0, 1.0, 1.0, 1.0]);
        let w = window();
        assert!((l.max_rate(&w) - (1.0 + 20.0 + 10.0 + 10.0)).abs() < 1e-12);
        assert!((l.min_on(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bump_intensity_peaks_at_hotspot() {
        let g = GaussianBumpIntensity::new(
            1.0,
            vec![Bump { cx: 5.0, cy: 5.0, amplitude: 10.0, sigma: 1.0 }],
        );
        let peak = g.rate_at(&SpaceTimePoint::new(0.0, 5.0, 5.0));
        let far = g.rate_at(&SpaceTimePoint::new(0.0, 0.0, 0.0));
        assert!((peak - 11.0).abs() < 1e-9);
        assert!(far < 1.01);
        assert!(g.max_rate(&window()) >= peak);
    }

    #[test]
    fn bump_intensity_diurnal_modulation() {
        let g = GaussianBumpIntensity::new(4.0, vec![]).with_diurnal(0.5, 24.0);
        // sin peaks at t = 6 (quarter period).
        let high = g.rate_at(&SpaceTimePoint::new(6.0, 1.0, 1.0));
        let low = g.rate_at(&SpaceTimePoint::new(18.0, 1.0, 1.0));
        assert!((high - 6.0).abs() < 1e-9);
        assert!((low - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bump_numeric_integral_close_to_monte_carlo_expectation() {
        // Flat base only: integral must equal base * volume.
        let g = GaussianBumpIntensity::new(2.0, vec![]);
        let w = window();
        let int = numeric_integral(&g, &w, 24);
        assert!((int - 2.0 * w.volume()).abs() < 1e-6 * w.volume());
    }

    #[test]
    fn piecewise_constant_rate_lookup_and_integral() {
        let grid = Grid::new(Rect::with_size(2.0, 2.0), 2);
        // rates: cell (0,0)=1, (1,0)=2, (0,1)=3, (1,1)=4 (row-major by r).
        let pc = PiecewiseConstantIntensity::new(grid, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(pc.rate_at(&SpaceTimePoint::new(0.0, 0.5, 0.5)), 1.0);
        assert_eq!(pc.rate_at(&SpaceTimePoint::new(0.0, 1.5, 0.5)), 2.0);
        assert_eq!(pc.rate_at(&SpaceTimePoint::new(0.0, 0.5, 1.5)), 3.0);
        assert_eq!(pc.rate_at(&SpaceTimePoint::new(0.0, 1.5, 1.5)), 4.0);
        assert_eq!(pc.rate_at(&SpaceTimePoint::new(0.0, 5.0, 5.0)), 0.0);

        // Whole-region window: ∫ = Σ rate × cell area × duration.
        let w = SpaceTimeWindow::new(Rect::with_size(2.0, 2.0), 0.0, 3.0);
        assert!((pc.integral(&w) - (1.0 + 2.0 + 3.0 + 4.0) * 1.0 * 3.0).abs() < 1e-9);
        assert_eq!(pc.max_rate(&w), 4.0);
    }

    #[test]
    fn piecewise_partial_window_integral() {
        let grid = Grid::new(Rect::with_size(2.0, 2.0), 2);
        let pc = PiecewiseConstantIntensity::new(grid, vec![1.0, 2.0, 3.0, 4.0]);
        // Window covering only the left column (x in [0,1)).
        let w = SpaceTimeWindow::new(Rect::new(0.0, 0.0, 1.0, 2.0), 0.0, 1.0);
        assert!((pc.integral(&w) - (1.0 + 3.0)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "one rate per cell")]
    fn piecewise_wrong_rate_count_rejected() {
        let grid = Grid::new(Rect::with_size(1.0, 1.0), 2);
        let _ = PiecewiseConstantIntensity::new(grid, vec![1.0]);
    }

    /// Counts `rate_at` evaluations, so tests can prove the cache elides
    /// quadrature.
    struct CountingIntensity {
        inner: GaussianBumpIntensity,
        calls: std::cell::Cell<u64>,
    }

    impl CountingIntensity {
        fn new(inner: GaussianBumpIntensity) -> Self {
            Self { inner, calls: std::cell::Cell::new(0) }
        }
    }

    impl IntensityModel for CountingIntensity {
        fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
            self.calls.set(self.calls.get() + 1);
            self.inner.rate_at(p)
        }
        fn max_rate(&self, w: &SpaceTimeWindow) -> f64 {
            self.inner.max_rate(w)
        }
        fn is_time_invariant(&self) -> bool {
            self.inner.is_time_invariant()
        }
    }

    #[test]
    fn hoisted_numeric_integral_matches_closed_forms() {
        let w = window();
        let c = ConstantIntensity::new(1.75);
        assert!((numeric_integral(&c, &w, 16) - c.integral(&w)).abs() < 1e-9);
        let l = LinearIntensity::new([3.0, 0.05, 0.2, 0.1]);
        assert!((numeric_integral(&l, &w, 48) - l.integral(&w)).abs() < 1e-3 * l.integral(&w));
    }

    #[test]
    fn integral_cache_elides_repeat_quadrature() {
        let model = CountingIntensity::new(GaussianBumpIntensity::new(
            0.5,
            vec![Bump { cx: 5.0, cy: 5.0, amplitude: 4.0, sigma: 1.0 }],
        ));
        let mut cache = IntegralCache::new();
        let w = window();
        let first = cache.integral_of(&model, 0, &w);
        let after_miss = model.calls.get();
        assert_eq!(after_miss, 32 * 32 * 32, "default quadrature is 32³ probes");
        // Same (epoch, window): served from memory, zero extra rate_at.
        let second = cache.integral_of(&model, 0, &w);
        assert_eq!(model.calls.get(), after_miss, "cache hit must not probe");
        assert_eq!(first, second);
        assert_eq!(cache.stats(), (1, 1));
        // A new model epoch invalidates: quadrature runs again.
        let _ = cache.integral_of(&model, 1, &w);
        assert_eq!(model.calls.get(), 2 * after_miss);
    }

    #[test]
    fn time_invariant_models_share_slid_windows() {
        let model = CountingIntensity::new(GaussianBumpIntensity::new(
            0.5,
            vec![Bump { cx: 2.0, cy: 2.0, amplitude: 3.0, sigma: 0.8 }],
        ));
        assert!(model.is_time_invariant());
        let mut cache = IntegralCache::new();
        let rect = Rect::with_size(10.0, 10.0);
        let w0 = SpaceTimeWindow::new(rect, 0.0, 10.0);
        let epoch0 = cache.integral_of(&model, 0, &w0);
        let probes = model.calls.get();
        // The same footprint and duration, shifted in time: cache hit.
        let w7 = SpaceTimeWindow::new(rect, 70.0, 80.0);
        let epoch7 = cache.integral_of(&model, 0, &w7);
        assert_eq!(model.calls.get(), probes, "slid window must hit the cache");
        assert_eq!(epoch0, epoch7);
        // A *diurnal* (time-varying) model must not share slid windows.
        let varying =
            CountingIntensity::new(GaussianBumpIntensity::new(0.5, vec![]).with_diurnal(0.5, 24.0));
        assert!(!varying.is_time_invariant());
        let mut cache = IntegralCache::new();
        let _ = cache.integral_of(&varying, 0, &w0);
        let _ = cache.integral_of(&varying, 0, &w7);
        assert_eq!(cache.stats(), (0, 2), "time-varying windows are distinct keys");
    }

    #[test]
    fn cached_expected_count_matches_uncached() {
        use crate::process::InhomogeneousMdpp;
        let rect = Rect::with_size(10.0, 10.0);
        let p = InhomogeneousMdpp::new(
            GaussianBumpIntensity::new(
                0.4,
                vec![Bump { cx: 3.0, cy: 7.0, amplitude: 5.0, sigma: 1.5 }],
            ),
            rect,
        );
        let mut cache = IntegralCache::new();
        for e in 0..5 {
            let w = SpaceTimeWindow::new(rect, e as f64 * 10.0, (e + 1) as f64 * 10.0);
            let plain = p.expected_count(&w);
            let cached = p.expected_count_cached(&w, &mut cache, 0);
            assert_eq!(plain, cached, "epoch {e}");
        }
        // Time-invariant bump model + sliding windows: one miss, four hits.
        assert_eq!(cache.stats(), (4, 1));
    }

    #[test]
    fn integral_cache_capacity_is_bounded() {
        let c = ConstantIntensity::new(1.0);
        let mut cache = IntegralCache::new();
        for i in 0..200 {
            let w = SpaceTimeWindow::new(Rect::with_size(1.0 + i as f64, 1.0), 0.0, 1.0);
            let _ = cache.integral_of(&c, 0, &w);
        }
        assert!(cache.len() <= 64, "cache must stay bounded, got {}", cache.len());
        cache.clear();
        assert!(cache.is_empty());
    }
}
