//! Parameter estimation for the linear conditional-intensity model.
//!
//! The paper points at two estimation regimes (Section III-A and IV-B):
//! batch maximum-likelihood "given a set of acquired tuples" (ref. \[12\]) and
//! online stochastic gradient descent for sliding-window flattening
//! (ref. \[13\]). Both are implemented here over the concave Poisson
//! log-likelihood
//!
//! ```text
//! ℓ(θ) = Σᵢ ln λ̃(pᵢ; θ) − ∫_W λ̃(·; θ)
//! ```
//!
//! Internally both estimators work in *centred, scaled* window coordinates
//! (`u, v, w ∈ [−1, 1]`), which makes the problem well-conditioned no matter
//! the window's physical units, and makes the positivity constraint a simple
//! corner inequality `φ0 > |φ1| + |φ2| + |φ3|`.

mod mle;
mod sgd;

pub use mle::{fit_mle, FitConfig, FitResult};
pub use sgd::{Innovation, SgdConfig, SgdEstimator};

use craqr_geom::{SpaceTimePoint, SpaceTimeWindow};

use crate::intensity::LinearIntensity;

/// Affine map between physical coordinates and centred/scaled coordinates
/// of a window.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WindowScale {
    mid: [f64; 3],  // (t̄, x̄, ȳ)
    half: [f64; 3], // (Δt/2, Δx/2, Δy/2)
}

impl WindowScale {
    pub(crate) fn of(w: &SpaceTimeWindow) -> Self {
        let (cx, cy) = w.rect.center();
        Self {
            mid: [(w.t0 + w.t1) * 0.5, cx, cy],
            half: [w.duration() * 0.5, w.rect.width() * 0.5, w.rect.height() * 0.5],
        }
    }

    /// Scaled feature vector `(1, u, v, w)` of a point.
    #[inline]
    pub(crate) fn features(&self, p: &SpaceTimePoint) -> [f64; 4] {
        [
            1.0,
            (p.t - self.mid[0]) / self.half[0],
            (p.x - self.mid[1]) / self.half[1],
            (p.y - self.mid[2]) / self.half[2],
        ]
    }

    /// Converts scaled parameters φ back to physical θ (Eq. (1)).
    pub(crate) fn to_physical(self, phi: [f64; 4]) -> LinearIntensity {
        let slopes = [phi[1] / self.half[0], phi[2] / self.half[1], phi[3] / self.half[2]];
        let theta0 =
            phi[0] - slopes[0] * self.mid[0] - slopes[1] * self.mid[1] - slopes[2] * self.mid[2];
        LinearIntensity::new([theta0, slopes[0], slopes[1], slopes[2]])
    }

    /// Converts physical θ to scaled φ.
    pub(crate) fn to_scaled(self, theta: [f64; 4]) -> [f64; 4] {
        let phi0 =
            theta[0] + theta[1] * self.mid[0] + theta[2] * self.mid[1] + theta[3] * self.mid[2];
        [phi0, theta[1] * self.half[0], theta[2] * self.half[1], theta[3] * self.half[2]]
    }
}

/// Smallest admissible intensity floor in scaled coordinates; keeps `ln λ`
/// finite during optimization.
pub(crate) const POSITIVITY_EPS: f64 = 1e-8;

/// Projects scaled parameters onto the positivity region
/// `φ0 ≥ |φ1| + |φ2| + |φ3| + eps` by shrinking the slopes.
pub(crate) fn project_positive(phi: &mut [f64; 4], eps: f64) {
    if phi[0] < eps {
        phi[0] = eps;
    }
    let slope_sum = phi[1].abs() + phi[2].abs() + phi[3].abs();
    let budget = phi[0] - eps;
    if slope_sum > budget {
        let shrink = if slope_sum > 0.0 { (budget / slope_sum).max(0.0) } else { 0.0 };
        for s in &mut phi[1..] {
            *s *= shrink;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::Rect;

    #[test]
    fn scale_round_trip() {
        let w = SpaceTimeWindow::new(Rect::new(2.0, 3.0, 12.0, 23.0), 5.0, 45.0);
        let s = WindowScale::of(&w);
        let theta = [4.0, 0.05, -0.2, 0.12];
        let phi = s.to_scaled(theta);
        let back = s.to_physical(phi).theta();
        for i in 0..4 {
            assert!((back[i] - theta[i]).abs() < 1e-10, "{back:?} vs {theta:?}");
        }
    }

    #[test]
    fn scaled_features_lie_in_unit_box() {
        let w = SpaceTimeWindow::new(Rect::new(0.0, 0.0, 10.0, 4.0), 0.0, 100.0);
        let s = WindowScale::of(&w);
        let f = s.features(&SpaceTimePoint::new(0.0, 0.0, 0.0));
        assert_eq!(f, [1.0, -1.0, -1.0, -1.0]);
        let f = s.features(&SpaceTimePoint::new(100.0, 10.0, 4.0));
        assert_eq!(f, [1.0, 1.0, 1.0, 1.0]);
        let f = s.features(&SpaceTimePoint::new(50.0, 5.0, 2.0));
        assert_eq!(f, [1.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn scaled_value_equals_physical_value() {
        let w = SpaceTimeWindow::new(Rect::new(1.0, 2.0, 7.0, 8.0), 10.0, 40.0);
        let s = WindowScale::of(&w);
        let theta = [3.0, 0.02, 0.3, -0.1];
        let phi = s.to_scaled(theta);
        let model = LinearIntensity::new(theta);
        let p = SpaceTimePoint::new(22.0, 4.5, 3.25);
        let f = s.features(&p);
        let scaled_val: f64 = phi.iter().zip(&f).map(|(a, b)| a * b).sum();
        assert!((scaled_val - model.linear_at(&p)).abs() < 1e-10);
    }

    #[test]
    fn projection_enforces_corner_positivity() {
        let mut phi = [1.0, 3.0, -4.0, 0.5];
        project_positive(&mut phi, 1e-6);
        let slope_sum = phi[1].abs() + phi[2].abs() + phi[3].abs();
        assert!(phi[0] >= slope_sum, "{phi:?}");
        // Direction of slopes preserved.
        assert!(phi[1] > 0.0 && phi[2] < 0.0 && phi[3] > 0.0);
    }

    #[test]
    fn projection_leaves_feasible_points_unchanged() {
        let mut phi = [5.0, 1.0, 1.0, 1.0];
        let before = phi;
        project_positive(&mut phi, 1e-6);
        assert_eq!(phi, before);
    }

    #[test]
    fn projection_handles_nonpositive_intercept() {
        let mut phi = [-2.0, 1.0, 1.0, 1.0];
        project_positive(&mut phi, 1e-6);
        assert!(phi[0] > 0.0);
        let slope_sum: f64 = phi[1..].iter().map(|s| s.abs()).sum();
        assert!(phi[0] >= slope_sum);
    }
}
