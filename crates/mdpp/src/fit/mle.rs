//! Batch maximum-likelihood estimation of Eq. (1).

use craqr_geom::{SpaceTimePoint, SpaceTimeWindow};
use serde::{Deserialize, Serialize};

use super::{project_positive, WindowScale, POSITIVITY_EPS};
use crate::intensity::LinearIntensity;

/// Configuration of the MLE solver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitConfig {
    /// Maximum gradient-ascent iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the relative log-likelihood improvement.
    pub tol: f64,
    /// Initial step size for backtracking line search.
    pub initial_step: f64,
}

impl Default for FitConfig {
    fn default() -> Self {
        Self { max_iters: 500, tol: 1e-10, initial_step: 1.0 }
    }
}

/// Result of an MLE fit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// The fitted intensity model (physical coordinates, Eq. (1) form).
    pub intensity: LinearIntensity,
    /// The attained Poisson log-likelihood.
    pub log_likelihood: f64,
    /// Iterations used.
    pub iterations: usize,
    /// `true` when the tolerance was met within the iteration budget.
    pub converged: bool,
}

/// Fits the linear conditional intensity of Eq. (1) to points observed in a
/// window, by projected gradient ascent on the concave Poisson
/// log-likelihood `ℓ(θ) = Σᵢ ln λ̃(pᵢ) − ∫_W λ̃`.
///
/// With no points the MLE degenerates to the zero process and
/// `LinearIntensity::constant(0)` is returned as converged.
///
/// # Panics
/// Panics when a point lies outside the window (the caller batched wrongly).
pub fn fit_mle(
    points: &[SpaceTimePoint],
    window: &SpaceTimeWindow,
    config: FitConfig,
) -> FitResult {
    for p in points {
        assert!(window.contains(p), "point {p:?} outside fit window");
    }
    if points.is_empty() {
        return FitResult {
            intensity: LinearIntensity::constant(0.0),
            log_likelihood: 0.0,
            iterations: 0,
            converged: true,
        };
    }

    let scale = WindowScale::of(window);
    let volume = window.volume();
    let features: Vec<[f64; 4]> = points.iter().map(|p| scale.features(p)).collect();

    // In centred/scaled coordinates the window integral of the affine form
    // is simply `φ0 · V` (the odd terms integrate to zero).
    let log_lik = |phi: &[f64; 4]| -> f64 {
        let mut ll = -phi[0] * volume;
        for f in &features {
            let lam: f64 = phi.iter().zip(f).map(|(a, b)| a * b).sum();
            debug_assert!(lam > 0.0, "infeasible phi reached the likelihood");
            ll += lam.ln();
        }
        ll
    };
    let gradient = |phi: &[f64; 4]| -> [f64; 4] {
        let mut g = [-volume, 0.0, 0.0, 0.0];
        for f in &features {
            let lam: f64 = phi.iter().zip(f).map(|(a, b)| a * b).sum();
            let inv = 1.0 / lam;
            for k in 0..4 {
                g[k] += f[k] * inv;
            }
        }
        g
    };
    let feasible = |phi: &[f64; 4]| {
        phi[0] - (phi[1].abs() + phi[2].abs() + phi[3].abs()) >= POSITIVITY_EPS * 0.5
    };

    // Start from the homogeneous MLE: φ = (n/V, 0, 0, 0).
    let mut phi = [points.len() as f64 / volume, 0.0, 0.0, 0.0];
    project_positive(&mut phi, POSITIVITY_EPS);
    let mut ll = log_lik(&phi);
    let mut converged = false;
    let mut iterations = 0;

    for it in 0..config.max_iters {
        iterations = it + 1;
        let g = gradient(&phi);
        // Scale-free step: normalize by n so the step size is O(1).
        let n = points.len() as f64;
        let mut step = config.initial_step;
        let mut advanced = false;
        for _ in 0..60 {
            let mut cand = [
                phi[0] + step * g[0] / n,
                phi[1] + step * g[1] / n,
                phi[2] + step * g[2] / n,
                phi[3] + step * g[3] / n,
            ];
            project_positive(&mut cand, POSITIVITY_EPS);
            if feasible(&cand) {
                let cand_ll = log_lik(&cand);
                if cand_ll > ll {
                    let improvement = cand_ll - ll;
                    phi = cand;
                    ll = cand_ll;
                    advanced = true;
                    if improvement < config.tol * (1.0 + ll.abs()) {
                        converged = true;
                    }
                    break;
                }
            }
            step *= 0.5;
        }
        if !advanced {
            // No ascent direction at line-search resolution: at the optimum.
            converged = true;
            break;
        }
        if converged {
            break;
        }
    }

    FitResult { intensity: scale.to_physical(phi), log_likelihood: ll, iterations, converged }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::IntensityModel;
    use crate::process::{HomogeneousMdpp, InhomogeneousMdpp};
    use craqr_geom::Rect;
    use craqr_stats::seeded_rng;

    fn window() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::with_size(10.0, 10.0), 0.0, 30.0)
    }

    #[test]
    fn empty_sample_yields_zero_process() {
        let r = fit_mle(&[], &window(), FitConfig::default());
        assert!(r.converged);
        assert_eq!(r.intensity.theta(), [0.0; 4]);
    }

    #[test]
    fn homogeneous_sample_recovers_constant_rate() {
        let w = window();
        let truth = 3.0;
        let pts = HomogeneousMdpp::new(truth, w.rect).sample(&w, &mut seeded_rng(42));
        let r = fit_mle(&pts, &w, FitConfig::default());
        assert!(r.converged);
        let theta = r.intensity.theta();
        assert!((theta[0] - truth).abs() < 0.3, "theta0 {}", theta[0]);
        // Slopes should be near zero relative to the scale of the rate.
        assert!(theta[1].abs() * 15.0 < 0.5, "theta1 {}", theta[1]);
        assert!(theta[2].abs() * 5.0 < 0.5, "theta2 {}", theta[2]);
    }

    #[test]
    fn linear_gradient_sample_recovers_theta() {
        let w = window();
        let truth = LinearIntensity::new([2.0, 0.05, 0.4, -0.1]);
        assert!(truth.is_positive_on(&w));
        let pts = InhomogeneousMdpp::new(truth, w.rect).sample(&w, &mut seeded_rng(11));
        assert!(pts.len() > 3_000, "need a healthy sample, got {}", pts.len());
        let r = fit_mle(&pts, &w, FitConfig::default());
        assert!(r.converged);
        let est = r.intensity.theta();
        let tru = truth.theta();
        // Compare intensity values rather than raw θ (θ components trade off);
        // relative error of the fitted surface must be small at probe points.
        for &(t, x, y) in &[(5.0, 2.0, 8.0), (15.0, 5.0, 5.0), (25.0, 9.0, 1.0)] {
            let p = SpaceTimePoint::new(t, x, y);
            let rel = (r.intensity.rate_at(&p) - truth.rate_at(&p)).abs() / truth.rate_at(&p);
            assert!(rel < 0.12, "rel err {rel} at {p:?}; est {est:?} truth {tru:?}");
        }
    }

    #[test]
    fn fitted_likelihood_beats_homogeneous_baseline() {
        let w = window();
        let truth = LinearIntensity::new([1.0, 0.0, 0.8, 0.0]);
        let pts = InhomogeneousMdpp::new(truth, w.rect).sample(&w, &mut seeded_rng(13));
        let fit = fit_mle(&pts, &w, FitConfig::default());

        // Log-likelihood of the best *constant* model: λ = n/V.
        let lam = pts.len() as f64 / w.volume();
        let const_ll = pts.len() as f64 * lam.ln() - lam * w.volume();
        assert!(
            fit.log_likelihood > const_ll + 10.0,
            "fit {} vs const {}",
            fit.log_likelihood,
            const_ll
        );
    }

    #[test]
    fn fit_respects_positivity_on_window() {
        let w = window();
        // Strong gradient pushing towards zero on one edge.
        let truth = LinearIntensity::new([0.5, 0.0, 1.0, 0.0]);
        let pts = InhomogeneousMdpp::new(truth, w.rect).sample(&w, &mut seeded_rng(17));
        let r = fit_mle(&pts, &w, FitConfig::default());
        assert!(r.intensity.min_on(&w) >= 0.0, "min {}", r.intensity.min_on(&w));
    }

    #[test]
    #[should_panic(expected = "outside fit window")]
    fn point_outside_window_panics() {
        let w = window();
        let _ = fit_mle(&[SpaceTimePoint::new(99.0, 1.0, 1.0)], &w, FitConfig::default());
    }

    #[test]
    fn tiny_sample_still_converges() {
        let w = window();
        let pts = vec![
            SpaceTimePoint::new(1.0, 1.0, 1.0),
            SpaceTimePoint::new(2.0, 9.0, 9.0),
            SpaceTimePoint::new(20.0, 5.0, 5.0),
        ];
        let r = fit_mle(&pts, &w, FitConfig::default());
        assert!(r.converged);
        // Expected count of the fitted model ≈ sample size.
        let expected = r.intensity.integral(&w);
        assert!((expected - 3.0).abs() < 0.5, "expected {expected}");
    }
}
