//! Online stochastic-gradient estimation of Eq. (1).
//!
//! Sliding-window flattening (Section IV-B) cannot afford a batch MLE per
//! window; the paper points to "online parameter estimation algorithms like
//! stochastic gradient descent … [13]". [`SgdEstimator`] consumes point
//! batches as they arrive and maintains a running θ estimate with O(1) work
//! per point.

use craqr_geom::{SpaceTimePoint, SpaceTimeWindow};
use serde::{Deserialize, Serialize};

use super::{project_positive, WindowScale, POSITIVITY_EPS};
use crate::intensity::LinearIntensity;

/// Configuration of the online estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Initial learning rate γ₀.
    pub gamma0: f64,
    /// Learning-rate decay horizon: `γ_k = γ0 / (1 + k / k0)` after `k`
    /// batches (Bottou's schedule with λ·γ0 = 1/k0).
    pub decay_batches: f64,
    /// Initial rate guess (per km²·min) before any data arrives.
    pub initial_rate: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self { gamma0: 0.5, decay_batches: 50.0, initial_rate: 1.0 }
    }
}

/// The one-step-ahead residual of a batch: how far the observed count fell
/// from what the *pre-update* model predicted for the batch window.
///
/// Under a well-calibrated model the observed count is approximately
/// Poisson with mean `expected`, so the Anscombe-free standardization
/// `(observed − expected) / √max(expected, 1)` hovers around zero with
/// unit-ish variance while the process is stationary — exactly the signal
/// sequential drift detectors ([`craqr_stats::drift`]) are built to watch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Innovation {
    /// Points observed in the batch window.
    pub observed: usize,
    /// Expected count under the pre-update estimate: `∫_window λ̂`.
    pub expected: f64,
    /// `(observed − expected) / √max(expected, 1)`.
    pub standardized: f64,
}

/// Online SGD estimator for the linear conditional-intensity model.
///
/// The estimator is anchored to a *reference window* (the spatial region and
/// a nominal batch duration) whose scaling keeps the optimization
/// well-conditioned; batches may cover any sub-window of the region.
#[derive(Debug, Clone)]
pub struct SgdEstimator {
    scale: WindowScale,
    phi: [f64; 4],
    batches_seen: u64,
    points_seen: u64,
    config: SgdConfig,
}

impl SgdEstimator {
    /// Creates an estimator anchored to `reference` (typically: the grid
    /// cell's rectangle over one batch duration).
    pub fn new(reference: &SpaceTimeWindow, config: SgdConfig) -> Self {
        assert!(config.gamma0 > 0.0, "gamma0 must be > 0");
        assert!(config.decay_batches > 0.0, "decay_batches must be > 0");
        assert!(config.initial_rate > 0.0, "initial_rate must be > 0");
        let scale = WindowScale::of(reference);
        let mut phi = [config.initial_rate, 0.0, 0.0, 0.0];
        project_positive(&mut phi, POSITIVITY_EPS);
        Self { scale, phi, batches_seen: 0, points_seen: 0, config }
    }

    /// Feeds one batch of points observed in `window` (a sub-window of the
    /// reference region) and performs one gradient step. Returns the
    /// batch's [`Innovation`] — the observed-vs-expected residual under
    /// the **pre-update** estimate, which is what downstream drift
    /// detection consumes.
    ///
    /// The per-batch gradient of the Poisson log-likelihood is
    /// `Σᵢ f(pᵢ)/λ(pᵢ) − V_b · f(midpoint)`, normalized by the expected
    /// batch size so the step magnitude is insensitive to batch volume.
    pub fn observe_batch(
        &mut self,
        points: &[SpaceTimePoint],
        window: &SpaceTimeWindow,
    ) -> Innovation {
        self.batches_seen += 1;
        self.points_seen += points.len() as u64;
        let k = self.batches_seen as f64;
        let gamma = self.config.gamma0 / (1.0 + k / self.config.decay_batches);
        let volume = window.volume();

        // Integral term: for an affine intensity, the window average of the
        // scaled features is their value at the window midpoint.
        let (cx, cy) = window.rect.center();
        let mid = SpaceTimePoint::new((window.t0 + window.t1) * 0.5, cx, cy);
        let fbar = self.scale.features(&mid);

        // Innovation before the update: E[count] = V_b × λ̂(midpoint) for
        // an affine intensity.
        let lam_mid: f64 = self.phi.iter().zip(&fbar).map(|(a, b)| a * b).sum();
        let expected = (volume * lam_mid).max(0.0);
        let innovation = Innovation {
            observed: points.len(),
            expected,
            standardized: (points.len() as f64 - expected) / expected.max(1.0).sqrt(),
        };

        let mut g = [0.0f64; 4];
        for p in points {
            let f = self.scale.features(p);
            let lam: f64 = self.phi.iter().zip(&f).map(|(a, b)| a * b).sum();
            let lam = lam.max(POSITIVITY_EPS);
            let inv = 1.0 / lam;
            for i in 0..4 {
                g[i] += f[i] * inv;
            }
        }
        for i in 0..4 {
            g[i] -= volume * fbar[i];
        }
        // Normalize by the expected batch count under the current model so
        // steps stay O(gamma) regardless of batch size.
        // Preconditioned step: scaling the raw gradient by `φ0 / V` turns
        // the level coordinate into the relaxation `φ0 ← φ0 + γ (n/V − φ0)`
        // (an unbiased multiplicative Robbins–Monro scheme whose relative
        // step noise is `γ/√E[n]`), instead of the `1/φ0²`-scaled steps a
        // flat normalizer produces — those overshoot violently once the
        // estimate dips low.
        let prev0 = self.phi[0];
        let precond = prev0.max(POSITIVITY_EPS) / volume.max(f64::MIN_POSITIVE);
        for (p, gi) in self.phi.iter_mut().zip(&g) {
            *p += gamma * gi * precond;
        }
        // Trust region on the level: one batch may at most halve the
        // estimate, or raise it toward the batch's own empirical rate.
        // Without this a near-zero estimate makes the `1/λ` gradients
        // explode and a single batch can catapult the estimator into a
        // huge frozen state (the step normalizer then kills all future
        // corrections).
        let batch_rate = points.len() as f64 / volume.max(f64::MIN_POSITIVE);
        let hi = (2.0 * prev0 + gamma * batch_rate).max(POSITIVITY_EPS);
        self.phi[0] = self.phi[0].clamp(0.5 * prev0, hi);
        project_positive(&mut self.phi, POSITIVITY_EPS);
        innovation
    }

    /// The current estimate in physical (Eq. (1)) coordinates.
    pub fn estimate(&self) -> LinearIntensity {
        self.scale.to_physical(self.phi)
    }

    /// Number of batches consumed.
    #[inline]
    pub fn batches_seen(&self) -> u64 {
        self.batches_seen
    }

    /// Number of points consumed.
    #[inline]
    pub fn points_seen(&self) -> u64 {
        self.points_seen
    }

    /// Warm-starts the estimator from a known model (e.g. a batch MLE fit
    /// computed at query-insertion time).
    pub fn warm_start(&mut self, model: &LinearIntensity) {
        self.phi = self.scale.to_scaled(model.theta());
        project_positive(&mut self.phi, POSITIVITY_EPS);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::IntensityModel;
    use crate::process::InhomogeneousMdpp;
    use craqr_geom::Rect;
    use craqr_stats::seeded_rng;

    fn reference() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::with_size(10.0, 10.0), 0.0, 5.0)
    }

    /// Stream `n_batches` consecutive 5-minute batches from `truth` into an
    /// estimator and return it.
    fn run_stream(truth: LinearIntensity, n_batches: usize, seed: u64) -> SgdEstimator {
        let mut est = SgdEstimator::new(&reference(), SgdConfig::default());
        let region = Rect::with_size(10.0, 10.0);
        let process = InhomogeneousMdpp::new(truth, region);
        let mut rng = seeded_rng(seed);
        for b in 0..n_batches {
            let w = SpaceTimeWindow::new(region, b as f64 * 5.0, (b + 1) as f64 * 5.0);
            let pts = process.sample(&w, &mut rng);
            // Re-anchor each batch to the reference time span: the spatial
            // gradient is stationary, so shift times into [0, 5).
            let shifted: Vec<_> =
                pts.iter().map(|p| SpaceTimePoint::new(p.t - b as f64 * 5.0, p.x, p.y)).collect();
            est.observe_batch(&shifted, &reference());
        }
        est
    }

    #[test]
    fn recovers_constant_rate() {
        let truth = LinearIntensity::constant(2.0);
        let est = run_stream(truth, 150, 3);
        let got = est.estimate();
        let w = reference();
        let rel = (got.integral(&w) - 2.0 * w.volume()).abs() / (2.0 * w.volume());
        assert!(rel < 0.1, "relative count error {rel}, theta {:?}", got.theta());
    }

    #[test]
    fn recovers_spatial_gradient_direction_and_magnitude() {
        let truth = LinearIntensity::new([1.0, 0.0, 0.6, 0.0]);
        let est = run_stream(truth, 300, 5);
        let got = est.estimate();
        // Compare fitted surface against truth at probe points.
        for &(x, y) in &[(1.0, 5.0), (5.0, 5.0), (9.0, 5.0)] {
            let p = SpaceTimePoint::new(2.5, x, y);
            let rel = (got.rate_at(&p) - truth.rate_at(&p)).abs() / truth.rate_at(&p);
            assert!(rel < 0.25, "rel {rel} at x={x}, est {:?}", got.theta());
        }
        // Gradient sign must match.
        assert!(got.theta()[2] > 0.05, "theta2 {:?}", got.theta());
    }

    #[test]
    fn estimate_stays_positive_on_reference_window() {
        let truth = LinearIntensity::new([0.4, 0.0, 0.9, 0.9]);
        let est = run_stream(truth, 100, 7);
        assert!(est.estimate().min_on(&reference()) >= 0.0);
    }

    #[test]
    fn warm_start_short_circuits_learning() {
        let truth = LinearIntensity::new([2.0, 0.0, 0.3, -0.1]);
        let mut est = SgdEstimator::new(&reference(), SgdConfig::default());
        est.warm_start(&truth);
        let got = est.estimate().theta();
        let want = truth.theta();
        for i in 0..4 {
            assert!((got[i] - want[i]).abs() < 1e-9, "{got:?} vs {want:?}");
        }
    }

    #[test]
    fn empty_batches_decay_rate_towards_zero() {
        let mut est =
            SgdEstimator::new(&reference(), SgdConfig { initial_rate: 5.0, ..Default::default() });
        for _ in 0..100 {
            est.observe_batch(&[], &reference());
        }
        let got = est.estimate();
        let w = reference();
        assert!(
            got.integral(&w) < 2.0 * w.volume(),
            "rate should shrink with no observations: {:?}",
            got.theta()
        );
    }

    #[test]
    fn innovations_centre_once_calibrated_and_react_to_jumps() {
        let truth = LinearIntensity::constant(2.0);
        let est = run_stream(truth, 200, 11);
        // Replay a fresh stationary stream through the calibrated model:
        // standardized innovations must hover around zero.
        let region = Rect::with_size(10.0, 10.0);
        let process = InhomogeneousMdpp::new(LinearIntensity::constant(2.0), region);
        let mut rng = seeded_rng(99);
        let mut calibrated = est.clone();
        let mut sum = 0.0;
        for _ in 0..40 {
            let pts = process.sample(&reference(), &mut rng);
            sum += calibrated.observe_batch(&pts, &reference()).standardized;
        }
        assert!((sum / 40.0).abs() < 1.0, "stationary innovations biased: {}", sum / 40.0);

        // A 3x rate jump produces a strongly positive innovation at once.
        let burst = InhomogeneousMdpp::new(LinearIntensity::constant(6.0), region);
        let pts = burst.sample(&reference(), &mut rng);
        let innov = calibrated.observe_batch(&pts, &reference());
        assert!(innov.standardized > 5.0, "jump innovation {innov:?}");
        assert!(innov.expected > 0.0 && innov.observed > innov.expected as usize);
    }

    #[test]
    fn counters_track_input() {
        let mut est = SgdEstimator::new(&reference(), SgdConfig::default());
        est.observe_batch(&[SpaceTimePoint::new(1.0, 1.0, 1.0)], &reference());
        est.observe_batch(&[], &reference());
        assert_eq!(est.batches_seen(), 2);
        assert_eq!(est.points_seen(), 1);
    }
}
