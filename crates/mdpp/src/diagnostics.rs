//! Empirical homogeneity diagnostics.
//!
//! "As shown in \[12\], this procedure produces an approximately homogeneous
//! point process" — claims like this one are *testable*, and this module is
//! how the workspace tests them. A [`HomogeneityReport`] bins a point set
//! over a space-time lattice and runs three complementary checks:
//!
//! - χ² goodness of fit of per-bin counts against the uniform expectation,
//! - the variance-to-mean dispersion index of those counts,
//! - a Kolmogorov–Smirnov test of temporal inter-arrival gaps against the
//!   exponential law implied by the empirical rate.

use craqr_geom::{SpaceTimePoint, SpaceTimeWindow};
use craqr_stats::hypothesis::{
    chi_square_uniform, dispersion_index, ks_exponential, ChiSquare, Dispersion, KsTest,
};
use craqr_stats::online::OnlineMoments;
use serde::{Deserialize, Serialize};

/// Outcome of the homogeneity diagnostics over one window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HomogeneityReport {
    /// Total points observed.
    pub n: usize,
    /// Empirical rate `n / volume` (points per km²·min).
    pub empirical_rate: f64,
    /// Per-bin counts over the `s_bins × s_bins × t_bins` lattice.
    pub counts: Vec<u64>,
    /// Coefficient of variation of the per-bin counts.
    pub count_cv: f64,
    /// χ² homogeneity test over the bins.
    pub chi_square: ChiSquare,
    /// Variance-to-mean dispersion test over the bins.
    pub dispersion: Dispersion,
    /// KS test of the temporal gaps (`None` with fewer than 10 points).
    pub temporal_ks: Option<KsTest>,
}

impl HomogeneityReport {
    /// A single headline verdict: `true` when both count-based tests accept
    /// homogeneity at significance `alpha`.
    pub fn is_homogeneous(&self, alpha: f64) -> bool {
        self.chi_square.accepts(alpha) && self.dispersion.p_value >= alpha
    }
}

/// Bins `points` over an `s_bins × s_bins` spatial lattice crossed with
/// `t_bins` time slices of `window`, and runs the homogeneity tests.
///
/// Points outside the window are ignored (callers often diagnose a clipped
/// sub-stream against its own sub-window).
///
/// # Panics
/// Panics when `s_bins == 0`, `t_bins == 0`, or no point falls inside the
/// window (there is nothing to diagnose).
pub fn homogeneity_report(
    points: &[SpaceTimePoint],
    window: &SpaceTimeWindow,
    s_bins: usize,
    t_bins: usize,
) -> HomogeneityReport {
    assert!(s_bins > 0 && t_bins > 0, "need at least one bin per axis");
    let mut counts = vec![0u64; s_bins * s_bins * t_bins];
    let dx = window.rect.width() / s_bins as f64;
    let dy = window.rect.height() / s_bins as f64;
    let dt = window.duration() / t_bins as f64;
    let mut times: Vec<f64> = Vec::new();
    for p in points {
        if !window.contains(p) {
            continue;
        }
        let ix = (((p.x - window.rect.x0) / dx) as usize).min(s_bins - 1);
        let iy = (((p.y - window.rect.y0) / dy) as usize).min(s_bins - 1);
        let it = (((p.t - window.t0) / dt) as usize).min(t_bins - 1);
        counts[(it * s_bins + iy) * s_bins + ix] += 1;
        times.push(p.t);
    }
    let n = times.len();
    assert!(n > 0, "no points inside the window");

    let mut moments = OnlineMoments::new();
    moments.extend(counts.iter().map(|&c| c as f64));

    let temporal_ks = if n >= 10 {
        times.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
        let gaps: Vec<f64> = times.windows(2).map(|w| (w[1] - w[0]).max(1e-12)).collect();
        // Under homogeneity, gaps are Exp(n / duration).
        let temporal_rate = n as f64 / window.duration();
        Some(ks_exponential(&gaps, temporal_rate))
    } else {
        None
    };

    HomogeneityReport {
        n,
        empirical_rate: window.empirical_rate(n),
        count_cv: moments.cv(),
        chi_square: chi_square_uniform(&counts),
        dispersion: dispersion_index(&counts),
        temporal_ks,
        counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::LinearIntensity;
    use crate::process::{HomogeneousMdpp, InhomogeneousMdpp};
    use craqr_geom::Rect;
    use craqr_stats::seeded_rng;

    fn window() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::with_size(10.0, 10.0), 0.0, 40.0)
    }

    #[test]
    fn homogeneous_process_passes_all_tests() {
        let w = window();
        let pts = HomogeneousMdpp::new(2.0, w.rect).sample(&w, &mut seeded_rng(1));
        let rep = homogeneity_report(&pts, &w, 4, 4);
        assert!(rep.is_homogeneous(0.001), "chi p={}", rep.chi_square.p_value);
        assert!((rep.empirical_rate - 2.0).abs() < 0.15, "rate {}", rep.empirical_rate);
        let ks = rep.temporal_ks.expect("large sample has KS");
        assert!(ks.accepts(0.001), "KS p={}", ks.p_value);
    }

    #[test]
    fn skewed_process_fails_chi_square() {
        let w = window();
        let truth = LinearIntensity::new([0.5, 0.0, 0.9, 0.0]);
        let pts = InhomogeneousMdpp::new(truth, w.rect).sample(&w, &mut seeded_rng(2));
        let rep = homogeneity_report(&pts, &w, 4, 4);
        assert!(!rep.is_homogeneous(0.001), "should reject: p={}", rep.chi_square.p_value);
        assert!(rep.dispersion.index > 1.5, "dispersion {}", rep.dispersion.index);
    }

    #[test]
    fn cv_larger_for_skewed_streams() {
        let w = window();
        let homog = HomogeneousMdpp::new(2.0, w.rect).sample(&w, &mut seeded_rng(3));
        let skewed = InhomogeneousMdpp::new(LinearIntensity::new([0.2, 0.0, 0.36, 0.0]), w.rect)
            .sample(&w, &mut seeded_rng(3));
        let rep_h = homogeneity_report(&homog, &w, 4, 4);
        let rep_s = homogeneity_report(&skewed, &w, 4, 4);
        assert!(
            rep_s.count_cv > rep_h.count_cv * 1.5,
            "skewed CV {} vs homog CV {}",
            rep_s.count_cv,
            rep_h.count_cv
        );
    }

    #[test]
    fn points_outside_window_are_ignored() {
        let w = window();
        let mut pts = HomogeneousMdpp::new(1.0, w.rect).sample(&w, &mut seeded_rng(4));
        let inside = pts.len();
        pts.push(SpaceTimePoint::new(999.0, 1.0, 1.0));
        pts.push(SpaceTimePoint::new(1.0, -5.0, 1.0));
        let rep = homogeneity_report(&pts, &w, 3, 3);
        assert_eq!(rep.n, inside);
    }

    #[test]
    fn small_sample_skips_ks() {
        let w = window();
        let pts = vec![
            SpaceTimePoint::new(1.0, 1.0, 1.0),
            SpaceTimePoint::new(2.0, 2.0, 2.0),
            SpaceTimePoint::new(3.0, 3.0, 3.0),
        ];
        let rep = homogeneity_report(&pts, &w, 2, 2);
        assert!(rep.temporal_ks.is_none());
        assert_eq!(rep.n, 3);
    }

    #[test]
    #[should_panic(expected = "no points inside")]
    fn empty_window_panics() {
        let w = window();
        let _ = homogeneity_report(&[], &w, 2, 2);
    }

    #[test]
    fn counts_sum_to_n() {
        let w = window();
        let pts = HomogeneousMdpp::new(1.5, w.rect).sample(&w, &mut seeded_rng(5));
        let rep = homogeneity_report(&pts, &w, 5, 3);
        assert_eq!(rep.counts.iter().sum::<u64>() as usize, rep.n);
        assert_eq!(rep.counts.len(), 5 * 5 * 3);
    }
}
