//! Empirical intensity summaries of realized point sets.
//!
//! Scenario reports need a compact, *deterministic* description of a
//! fabricated stream's spatio-temporal intensity — "how fast, how even,
//! how skewed" — without committing golden files to full point dumps. An
//! [`IntensitySummary`] bins a point set on a `side × side` grid over a
//! space-time window and records the moments every regression check needs:
//! the overall rate, the per-cell extremes, and the coefficient of
//! variation of cell counts (the homogeneity signal the paper's flatten
//! operator is supposed to drive toward zero).

use craqr_geom::{Grid, SpaceTimePoint, SpaceTimeWindow};

/// Deterministic empirical summary of one point set.
#[derive(Debug, Clone, PartialEq)]
pub struct IntensitySummary {
    /// Points inside the window (points outside are ignored).
    pub count: u64,
    /// Window duration (minutes).
    pub duration: f64,
    /// Window footprint area (km²).
    pub area: f64,
    /// Overall empirical rate `count / (area × duration)` (/km²/min).
    pub mean_rate: f64,
    /// Smallest per-cell empirical rate.
    pub min_cell_rate: f64,
    /// Largest per-cell empirical rate.
    pub max_cell_rate: f64,
    /// Coefficient of variation of per-cell counts (0 = perfectly even;
    /// 0 when the window holds no points).
    pub cell_cv: f64,
}

impl IntensitySummary {
    /// Summarizes `points` over `window` on a `side × side` grid.
    ///
    /// # Panics
    /// Panics when `side == 0` (delegated to [`Grid::new`]).
    pub fn from_points(points: &[SpaceTimePoint], window: &SpaceTimeWindow, side: u32) -> Self {
        let grid = Grid::new(window.rect, side);
        let mut counts = vec![0u64; (side * side) as usize];
        let mut count = 0u64;
        for p in points {
            if p.t < window.t0 || p.t >= window.t1 {
                continue;
            }
            let Some(cell) = grid.cell_of(p.x, p.y) else { continue };
            counts[(cell.r * side + cell.q) as usize] += 1;
            count += 1;
        }
        let duration = window.duration();
        let area = window.rect.area();
        let cell_volume = grid.cell_area() * duration;
        let mean_rate = count as f64 / (area * duration);
        let min_cell_rate = counts.iter().min().map_or(0.0, |m| *m as f64 / cell_volume);
        let max_cell_rate = counts.iter().max().map_or(0.0, |m| *m as f64 / cell_volume);
        let cell_cv = if count == 0 {
            0.0
        } else {
            let n = counts.len() as f64;
            let mean = count as f64 / n;
            let var = counts.iter().map(|c| (*c as f64 - mean).powi(2)).sum::<f64>() / n;
            var.sqrt() / mean
        };
        Self { count, duration, area, mean_rate, min_cell_rate, max_cell_rate, cell_cv }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::Rect;

    fn window() -> SpaceTimeWindow {
        SpaceTimeWindow::new(Rect::with_size(4.0, 4.0), 0.0, 10.0)
    }

    #[test]
    fn empty_set_is_all_zero() {
        let s = IntensitySummary::from_points(&[], &window(), 4);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean_rate, 0.0);
        assert_eq!(s.cell_cv, 0.0);
    }

    #[test]
    fn uniform_lattice_has_low_cv() {
        // One point dead-centre in every (cell, unit-time) slot.
        let mut pts = Vec::new();
        for q in 0..4 {
            for r in 0..4 {
                pts.push(SpaceTimePoint::new(5.0, q as f64 + 0.5, r as f64 + 0.5));
            }
        }
        let s = IntensitySummary::from_points(&pts, &window(), 4);
        assert_eq!(s.count, 16);
        assert!((s.mean_rate - 16.0 / 160.0).abs() < 1e-12);
        assert_eq!(s.cell_cv, 0.0);
        assert_eq!(s.min_cell_rate, s.max_cell_rate);
    }

    #[test]
    fn concentrated_mass_has_high_cv_and_extremes() {
        let pts: Vec<SpaceTimePoint> =
            (0..32).map(|i| SpaceTimePoint::new(i as f64 * 0.3, 0.5, 0.5)).collect();
        let s = IntensitySummary::from_points(&pts, &window(), 4);
        assert_eq!(s.count, 32);
        assert_eq!(s.min_cell_rate, 0.0);
        assert!(s.max_cell_rate > s.mean_rate);
        assert!(s.cell_cv > 2.0, "cv {}", s.cell_cv);
    }

    #[test]
    fn out_of_window_points_ignored() {
        let pts = vec![
            SpaceTimePoint::new(-1.0, 1.0, 1.0),  // before t0
            SpaceTimePoint::new(10.0, 1.0, 1.0),  // at t1 (exclusive)
            SpaceTimePoint::new(5.0, 99.0, 99.0), // outside footprint
            SpaceTimePoint::new(5.0, 1.0, 1.0),   // kept
        ];
        let s = IntensitySummary::from_points(&pts, &window(), 2);
        assert_eq!(s.count, 1);
    }
}
