//! The process types `P(λ, R)` and `P̃(λ̃, R)` with exact samplers.

use crate::intensity::{ConstantIntensity, IntensityModel};
use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_stats::dist::Poisson;
use rand::distributions::Distribution;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A homogeneous MDPP `P⟨j⟩(λ, R)` — constant rate over space and time
/// (Section III-A; the paper's default process kind).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HomogeneousMdpp {
    rate: f64,
    region: Rect,
}

impl HomogeneousMdpp {
    /// Creates `P(λ, R)`.
    ///
    /// # Panics
    /// Panics when `rate` is negative or non-finite.
    #[track_caller]
    pub fn new(rate: f64, region: Rect) -> Self {
        assert!(rate.is_finite() && rate >= 0.0, "rate must be >= 0, got {rate}");
        Self { rate, region }
    }

    /// The constant rate λ (points / km² / min).
    #[inline]
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The spatial extent `R`.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Samples every point the process drops in `[t0, t1) × region`.
    ///
    /// Exact two-stage sampler: `N ~ Poisson(λ·V)`, then `N` points placed
    /// independently and uniformly. Output is sorted by time so it can feed
    /// streaming operators directly.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        window: &SpaceTimeWindow,
        rng: &mut R,
    ) -> Vec<SpaceTimePoint> {
        let w = window.restricted_to(&self.region).unwrap_or_else(|| {
            panic!("window {:?} outside process region {}", window.rect, self.region)
        });
        let n = Poisson::new(self.rate * w.volume()).sample(rng);
        let mut points = Vec::with_capacity(n as usize);
        for _ in 0..n {
            points.push(SpaceTimePoint::new(
                rng.gen_range(w.t0..w.t1),
                rng.gen_range(w.rect.x0..w.rect.x1),
                rng.gen_range(w.rect.y0..w.rect.y1),
            ));
        }
        points.sort_by(|a, b| a.t.partial_cmp(&b.t).expect("sampled times are finite"));
        points
    }

    /// The expected number of points in a window (after clipping to `R`).
    pub fn expected_count(&self, window: &SpaceTimeWindow) -> f64 {
        window.restricted_to(&self.region).map_or(0.0, |w| self.rate * w.volume())
    }

    /// Views this process as an intensity model.
    pub fn intensity(&self) -> ConstantIntensity {
        ConstantIntensity::new(self.rate)
    }
}

/// An inhomogeneous MDPP `P̃⟨j⟩(λ̃, R)` whose rate varies over space-time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InhomogeneousMdpp<I> {
    intensity: I,
    region: Rect,
}

impl<I: IntensityModel> InhomogeneousMdpp<I> {
    /// Creates `P̃(λ̃, R)`.
    pub fn new(intensity: I, region: Rect) -> Self {
        Self { intensity, region }
    }

    /// The conditional-intensity model λ̃.
    #[inline]
    pub fn intensity(&self) -> &I {
        &self.intensity
    }

    /// The spatial extent `R`.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Samples the process in a window by Lewis–Shedler thinning:
    /// draw from the homogeneous envelope `P(λ_max, R)` and retain each
    /// point with probability `λ̃(p)/λ_max`.
    ///
    /// # Panics
    /// Panics when the window lies outside `R` or the intensity's claimed
    /// `max_rate` is violated at a sampled point (a model bug worth
    /// crashing loudly on, since it silently skews every experiment).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        window: &SpaceTimeWindow,
        rng: &mut R,
    ) -> Vec<SpaceTimePoint> {
        let w = window.restricted_to(&self.region).unwrap_or_else(|| {
            panic!("window {:?} outside process region {}", window.rect, self.region)
        });
        let lambda_max = self.intensity.max_rate(&w);
        if lambda_max <= 0.0 {
            return Vec::new();
        }
        let envelope = HomogeneousMdpp::new(lambda_max, w.rect);
        let mut points = envelope.sample(&w, rng);
        points.retain(|p| {
            let rate = self.intensity.rate_at(p);
            assert!(
                rate <= lambda_max * (1.0 + 1e-9),
                "intensity {rate} exceeds claimed max {lambda_max} at {p:?}"
            );
            rng.gen::<f64>() < rate / lambda_max
        });
        points
    }

    /// The expected number of points in a window (after clipping to `R`).
    pub fn expected_count(&self, window: &SpaceTimeWindow) -> f64 {
        window.restricted_to(&self.region).map_or(0.0, |w| self.intensity.integral(&w))
    }

    /// [`InhomogeneousMdpp::expected_count`] through an
    /// [`crate::intensity::IntegralCache`].
    ///
    /// Epoch-driven workloads (e.g. the `e13_parallel` stream generator)
    /// evaluate the expected count of the *same* window shape every epoch
    /// (per cell, the batch window just slides in time); for models
    /// without a closed-form integral each evaluation costs `32³`
    /// `rate_at` calls of quadrature. Callers that own a cache pay that
    /// once per distinct `(model epoch, window)` instead. Pass a new
    /// `epoch` whenever this process's intensity is replaced.
    pub fn expected_count_cached(
        &self,
        window: &SpaceTimeWindow,
        cache: &mut crate::intensity::IntegralCache,
        epoch: u64,
    ) -> f64 {
        window
            .restricted_to(&self.region)
            .map_or(0.0, |w| cache.integral_of(&self.intensity, epoch, &w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intensity::LinearIntensity;
    use craqr_stats::seeded_rng;

    fn region() -> Rect {
        Rect::with_size(10.0, 10.0)
    }

    #[test]
    fn homogeneous_sample_count_matches_expectation() {
        let p = HomogeneousMdpp::new(0.5, region());
        let w = SpaceTimeWindow::new(region(), 0.0, 10.0);
        let mut rng = seeded_rng(1);
        let n: usize = (0..200).map(|_| p.sample(&w, &mut rng).len()).sum();
        let mean = n as f64 / 200.0;
        let expected = p.expected_count(&w); // 0.5 * 1000 = 500
        assert!((expected - 500.0).abs() < 1e-9);
        assert!((mean - expected).abs() < 0.02 * expected, "mean {mean}");
    }

    #[test]
    fn homogeneous_sample_is_time_sorted_and_inside_window() {
        let p = HomogeneousMdpp::new(2.0, region());
        let w = SpaceTimeWindow::new(Rect::new(2.0, 3.0, 6.0, 8.0), 5.0, 9.0);
        let mut rng = seeded_rng(2);
        let pts = p.sample(&w, &mut rng);
        assert!(!pts.is_empty());
        for pair in pts.windows(2) {
            assert!(pair[0].t <= pair[1].t);
        }
        for pt in &pts {
            assert!(w.contains(pt), "{pt:?} outside {w:?}");
        }
    }

    #[test]
    fn zero_rate_process_is_empty() {
        let p = HomogeneousMdpp::new(0.0, region());
        let w = SpaceTimeWindow::new(region(), 0.0, 100.0);
        assert!(p.sample(&w, &mut seeded_rng(3)).is_empty());
        assert_eq!(p.expected_count(&w), 0.0);
    }

    #[test]
    fn window_clipped_to_region() {
        let p = HomogeneousMdpp::new(1.0, Rect::with_size(5.0, 5.0));
        // Window extends beyond the region; only the overlap counts.
        let w = SpaceTimeWindow::new(Rect::with_size(10.0, 10.0), 0.0, 4.0);
        assert!((p.expected_count(&w) - 25.0 * 4.0).abs() < 1e-9);
        let pts = p.sample(&w, &mut seeded_rng(4));
        for pt in &pts {
            assert!(pt.x < 5.0 && pt.y < 5.0);
        }
    }

    #[test]
    fn inhomogeneous_sample_count_matches_integral() {
        let li = LinearIntensity::new([1.0, 0.0, 0.3, 0.0]);
        let p = InhomogeneousMdpp::new(li, region());
        let w = SpaceTimeWindow::new(region(), 0.0, 10.0);
        let expected = p.expected_count(&w); // (1 + 0.3*5) * 1000 = 2500
        assert!((expected - 2500.0).abs() < 1e-6);
        let mut rng = seeded_rng(5);
        let n: usize = (0..50).map(|_| p.sample(&w, &mut rng).len()).sum();
        let mean = n as f64 / 50.0;
        assert!((mean - expected).abs() < 0.03 * expected, "mean {mean} vs {expected}");
    }

    #[test]
    fn inhomogeneous_density_follows_gradient() {
        // Rate grows with x; the high-x half must receive more points.
        let li = LinearIntensity::new([0.5, 0.0, 0.8, 0.0]);
        let p = InhomogeneousMdpp::new(li, region());
        let w = SpaceTimeWindow::new(region(), 0.0, 20.0);
        let pts = p.sample(&w, &mut seeded_rng(6));
        let high = pts.iter().filter(|p| p.x >= 5.0).count();
        let low = pts.len() - high;
        assert!(high > low * 2, "high {high} low {low}");
    }

    #[test]
    fn inhomogeneous_zero_intensity_is_empty() {
        let li = LinearIntensity::new([0.0, 0.0, 0.0, 0.0]);
        let p = InhomogeneousMdpp::new(li, region());
        let w = SpaceTimeWindow::new(region(), 0.0, 10.0);
        assert!(p.sample(&w, &mut seeded_rng(7)).is_empty());
    }

    #[test]
    #[should_panic(expected = "outside process region")]
    fn disjoint_window_panics() {
        let p = HomogeneousMdpp::new(1.0, Rect::with_size(1.0, 1.0));
        let w = SpaceTimeWindow::new(Rect::new(5.0, 5.0, 6.0, 6.0), 0.0, 1.0);
        let _ = p.sample(&w, &mut seeded_rng(8));
    }
}
