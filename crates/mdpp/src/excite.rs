//! Self-exciting (Hawkes-style) intensities.
//!
//! The paper models crowdsensed arrivals as inhomogeneous MDPPs; real
//! incident-driven workloads (accidents, cloudbursts, flash crowds) go one
//! step further — every event *raises* the local rate and triggers
//! offspring events. A [`SelfExcitingIntensity`] is the conditional
//! intensity of such a process *given a realized event history*:
//!
//! ```text
//! λ(t, x, y) = μ + Σᵢ α · exp(−β (t − tᵢ)) · g_σ(x − xᵢ, y − yᵢ)
//! ```
//!
//! with `g_σ` an (unnormalized) isotropic Gaussian kernel. Freezing the
//! history makes the model a plain [`IntensityModel`], so the whole stack —
//! thinning samplers, flatten estimators, scenario ground-truth fields —
//! can consume bursts without knowing about the branching structure.
//!
//! [`SelfExcitingIntensity::cascade`] generates the history itself: seeded
//! immigrant events spawn Poisson offspring (mean `branching_ratio`) with
//! exponentially distributed delays and Gaussian displacements, recursively,
//! exactly the cluster representation of a Hawkes process.

use crate::intensity::IntensityModel;
use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A conditional Hawkes intensity over a frozen event history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelfExcitingIntensity {
    /// Background (immigrant) rate μ (events /km²/min).
    mu: f64,
    /// Kernel jump α: the rate added right on top of a fresh event.
    alpha: f64,
    /// Temporal decay β (1/min).
    beta: f64,
    /// Spatial kernel width σ (km).
    sigma: f64,
    /// The frozen trigger events, ascending in time.
    events: Vec<SpaceTimePoint>,
}

impl SelfExcitingIntensity {
    /// Creates the model over an explicit event history (sorted by time
    /// internally).
    ///
    /// # Panics
    /// Panics when `mu < 0`, `alpha < 0`, `beta <= 0`, or `sigma <= 0`.
    #[track_caller]
    pub fn new(
        mu: f64,
        alpha: f64,
        beta: f64,
        sigma: f64,
        mut events: Vec<SpaceTimePoint>,
    ) -> Self {
        assert!(mu.is_finite() && mu >= 0.0, "background rate must be >= 0");
        assert!(alpha.is_finite() && alpha >= 0.0, "kernel jump must be >= 0");
        assert!(beta.is_finite() && beta > 0.0, "temporal decay must be > 0");
        assert!(sigma.is_finite() && sigma > 0.0, "spatial width must be > 0");
        events.sort_by(|a, b| a.t.total_cmp(&b.t));
        Self { mu, alpha, beta, sigma, events }
    }

    /// Generates a Hawkes cluster cascade and freezes it into a model.
    ///
    /// `immigrants` seed events are placed uniformly in `region × [0,
    /// horizon)`; each event (immigrant or offspring) spawns
    /// `Poisson(branching_ratio)` children with `Exp(beta)` time delays and
    /// `N(0, sigma²)` axis displacements. Events past `horizon` or outside
    /// `region` are kept as triggers only if inside the region (escaped
    /// offspring die). A `branching_ratio ≥ 1` would be supercritical, so
    /// it is rejected.
    ///
    /// # Panics
    /// Panics on invalid kernel parameters (see [`SelfExcitingIntensity::new`]),
    /// `branching_ratio ∉ [0, 1)`, or a non-positive horizon.
    #[allow(clippy::too_many_arguments)]
    #[track_caller]
    pub fn cascade(
        mu: f64,
        alpha: f64,
        beta: f64,
        sigma: f64,
        region: Rect,
        horizon: f64,
        immigrants: usize,
        branching_ratio: f64,
        rng: &mut StdRng,
    ) -> Self {
        assert!((0.0..1.0).contains(&branching_ratio), "branching ratio must be in [0,1)");
        assert!(horizon > 0.0, "horizon must be > 0");
        let mut events: Vec<SpaceTimePoint> = Vec::new();
        let mut frontier: Vec<SpaceTimePoint> = (0..immigrants)
            .map(|_| {
                SpaceTimePoint::new(
                    rng.gen_range(0.0..horizon),
                    rng.gen_range(region.x0..region.x1),
                    rng.gen_range(region.y0..region.y1),
                )
            })
            .collect();
        let displacement = craqr_stats::dist::Normal::new(0.0, sigma);
        while let Some(parent) = frontier.pop() {
            events.push(parent);
            // Poisson(branching_ratio) children by inversion (ratio < 1, so
            // counts are tiny and the loop terminates fast).
            let mut k = 0usize;
            let mut acc = (-branching_ratio).exp();
            let u = rng.gen::<f64>();
            let mut cum = acc;
            while u > cum && k < 16 {
                k += 1;
                acc *= branching_ratio / k as f64;
                cum += acc;
            }
            for _ in 0..k {
                use rand::distributions::Distribution;
                let dt = -rng.gen::<f64>().max(1e-12).ln() / beta;
                let child = SpaceTimePoint::new(
                    parent.t + dt,
                    parent.x + displacement.sample(rng),
                    parent.y + displacement.sample(rng),
                );
                if child.t < horizon && region.contains(child.x, child.y) {
                    frontier.push(child);
                }
            }
        }
        Self::new(mu, alpha, beta, sigma, events)
    }

    /// The frozen trigger events, ascending in time.
    pub fn events(&self) -> &[SpaceTimePoint] {
        &self.events
    }

    /// Kernel parameters `(μ, α, β, σ)`.
    pub fn params(&self) -> (f64, f64, f64, f64) {
        (self.mu, self.alpha, self.beta, self.sigma)
    }
}

impl IntensityModel for SelfExcitingIntensity {
    fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
        let mut rate = self.mu;
        let inv_2s2 = 1.0 / (2.0 * self.sigma * self.sigma);
        for e in &self.events {
            if e.t > p.t {
                break; // events are sorted; the future cannot excite the past
            }
            let dt = p.t - e.t;
            let dx = p.x - e.x;
            let dy = p.y - e.y;
            rate += self.alpha * (-self.beta * dt).exp() * (-(dx * dx + dy * dy) * inv_2s2).exp();
        }
        rate
    }

    fn max_rate(&self, w: &SpaceTimeWindow) -> f64 {
        // Bound: every event ≤ t1 contributes at most α (kernel peaks at the
        // event itself, decay only shrinks it).
        let active = self.events.iter().filter(|e| e.t <= w.t1).count();
        self.mu + self.alpha * active as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_stats::seeded_rng;

    fn region() -> Rect {
        Rect::with_size(4.0, 4.0)
    }

    #[test]
    fn rate_spikes_at_events_and_decays() {
        let e = SpaceTimePoint::new(10.0, 2.0, 2.0);
        let m = SelfExcitingIntensity::new(0.5, 3.0, 0.2, 0.5, vec![e]);
        let at_event = m.rate_at(&SpaceTimePoint::new(10.0, 2.0, 2.0));
        assert!((at_event - 3.5).abs() < 1e-12, "peak {at_event}");
        let later = m.rate_at(&SpaceTimePoint::new(20.0, 2.0, 2.0));
        assert!(later < at_event && later > 0.5, "decayed {later}");
        let before = m.rate_at(&SpaceTimePoint::new(5.0, 2.0, 2.0));
        assert!((before - 0.5).abs() < 1e-12, "future events must not excite the past");
        let far = m.rate_at(&SpaceTimePoint::new(10.0, 0.0, 0.0));
        assert!(far < 0.6, "spatially distant point barely excited: {far}");
    }

    #[test]
    fn max_rate_bounds_rate_everywhere() {
        let mut rng = seeded_rng(9);
        let m =
            SelfExcitingIntensity::cascade(0.4, 2.0, 0.3, 0.4, region(), 30.0, 5, 0.6, &mut rng);
        let w = SpaceTimeWindow::new(region(), 0.0, 30.0);
        let bound = m.max_rate(&w);
        for i in 0..200 {
            let p = SpaceTimePoint::new(
                (i as f64 * 0.149).rem_euclid(30.0),
                (i as f64 * 0.731).rem_euclid(4.0),
                (i as f64 * 0.377).rem_euclid(4.0),
            );
            assert!(m.rate_at(&p) <= bound + 1e-9);
        }
    }

    #[test]
    fn cascade_is_deterministic_and_supercritical_rejected() {
        let build = |seed| {
            SelfExcitingIntensity::cascade(
                0.2,
                1.5,
                0.25,
                0.3,
                region(),
                20.0,
                4,
                0.5,
                &mut seeded_rng(seed),
            )
        };
        assert_eq!(build(3), build(3));
        assert!(build(3).events().len() >= 4, "immigrants must survive");
        let r = std::panic::catch_unwind(|| {
            SelfExcitingIntensity::cascade(
                0.2,
                1.0,
                0.25,
                0.3,
                region(),
                20.0,
                1,
                1.0,
                &mut seeded_rng(1),
            )
        });
        assert!(r.is_err(), "branching ratio 1.0 is supercritical");
    }

    #[test]
    fn events_sorted_regardless_of_input_order() {
        let m = SelfExcitingIntensity::new(
            0.0,
            1.0,
            1.0,
            1.0,
            vec![SpaceTimePoint::new(5.0, 0.0, 0.0), SpaceTimePoint::new(1.0, 0.0, 0.0)],
        );
        assert!(m.events()[0].t < m.events()[1].t);
    }
}
