//! Structural comparison of two run logs with first-divergence reporting.
//!
//! A byte diff of two logs tells you *that* they differ; this module
//! tells you **where the runs diverged**: the first epoch whose inputs
//! disagree, and which record inside it (shift, dispatch outcome, the
//! n-th response, the n-th control action). That is the primary forensic
//! tool for "the replay no longer matches the recording" and "these two
//! builds made different decisions from the same world".

use crate::codec::{action_line, admission_line, charge_line, response_line, shift_line};
use crate::log::{EpochRecord, RunLog};
use std::fmt;

/// Field-level differences inside one epoch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochDiff {
    /// The epoch index.
    pub epoch: u64,
    /// Human-readable difference lines, in record order (`a` is the left
    /// log, `b` the right).
    pub details: Vec<String>,
}

/// The structural difference between two logs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LogDiff {
    /// Header-level differences (scenario, seed, spec, epoch counts,
    /// recorded final checksums).
    pub header: Vec<String>,
    /// Differing epochs over the common prefix, ascending.
    pub epochs: Vec<EpochDiff>,
}

impl LogDiff {
    /// `true` when the two logs are structurally identical.
    pub fn identical(&self) -> bool {
        self.header.is_empty() && self.epochs.is_empty()
    }

    /// The first epoch whose inputs diverge, if any.
    pub fn first_divergence(&self) -> Option<&EpochDiff> {
        self.epochs.first()
    }

    /// A human-readable summary, one difference per line; empty string
    /// when identical.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for h in &self.header {
            let _ = writeln!(s, "{h}");
        }
        if let Some(first) = self.first_divergence() {
            let _ = writeln!(s, "first divergence at epoch {}:", first.epoch);
            for d in &first.details {
                let _ = writeln!(s, "  {d}");
            }
            let later = self.epochs.len() - 1;
            if later > 0 {
                let _ = writeln!(s, "({later} later epoch(s) also differ)");
            }
        }
        s
    }
}

impl fmt::Display for LogDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.identical() {
            write!(f, "logs are identical")
        } else {
            write!(f, "{}", self.render().trim_end())
        }
    }
}

/// Compares two same-length record vectors, reporting count mismatch or
/// the first differing element rendered in on-disk syntax.
fn diff_records<T: PartialEq>(
    what: &str,
    a: &[T],
    b: &[T],
    render: impl Fn(&T) -> String,
    out: &mut Vec<String>,
) {
    if a.len() != b.len() {
        out.push(format!("{what} count: {} vs {}", a.len(), b.len()));
    }
    if let Some(i) = a.iter().zip(b).position(|(x, y)| x != y) {
        out.push(format!("{what}[{i}]: '{}' vs '{}'", render(&a[i]), render(&b[i])));
    }
}

/// Structural differences between two epoch records (empty when equal).
pub fn diff_epoch(a: &EpochRecord, b: &EpochRecord) -> Vec<String> {
    let mut details = Vec::new();
    if a.epoch != b.epoch {
        details.push(format!("epoch index: {} vs {}", a.epoch, b.epoch));
    }
    diff_records("shift", &a.shifts, &b.shifts, shift_line, &mut details);
    if a.requested != b.requested {
        details.push(format!("dispatch requested: {} vs {}", a.requested, b.requested));
    }
    if a.sent != b.sent {
        details.push(format!("dispatch sent: {} vs {}", a.sent, b.sent));
    }
    if (a.dropped, a.delayed, a.duplicated) != (b.dropped, b.delayed, b.duplicated) {
        details.push(format!(
            "faults: dropped={} delayed={} duplicated={} vs dropped={} delayed={} duplicated={}",
            a.dropped, a.delayed, a.duplicated, b.dropped, b.delayed, b.duplicated
        ));
    }
    diff_records("response", &a.responses, &b.responses, response_line, &mut details);
    diff_records("action", &a.actions, &b.actions, action_line, &mut details);
    diff_records("charge", &a.charges, &b.charges, charge_line, &mut details);
    details
}

fn fmt_opt_crc(c: Option<u64>) -> String {
    c.map_or("-".to_string(), |c| format!("{c:#018x}"))
}

/// Compares two logs structurally. Epoch differences are reported over
/// the common prefix; a length mismatch lands in the header section.
pub fn diff_logs(a: &RunLog, b: &RunLog) -> LogDiff {
    let mut diff = LogDiff::default();
    if a.scenario != b.scenario {
        diff.header.push(format!("scenario: '{}' vs '{}'", a.scenario, b.scenario));
    }
    if a.seed != b.seed {
        diff.header.push(format!("seed: {} vs {}", a.seed, b.seed));
    }
    if a.spec_toml != b.spec_toml {
        let first =
            a.spec_toml.lines().zip(b.spec_toml.lines()).position(|(x, y)| x != y).map_or_else(
                || "one spec is a prefix of the other".to_string(),
                |i| {
                    format!(
                        "first differing spec line {}: '{}' vs '{}'",
                        i + 1,
                        a.spec_toml.lines().nth(i).unwrap_or(""),
                        b.spec_toml.lines().nth(i).unwrap_or("")
                    )
                },
            );
        diff.header.push(format!("embedded spec differs ({first})"));
    }
    diff_records("admission", &a.admissions, &b.admissions, admission_line, &mut diff.header);
    if a.epochs.len() != b.epochs.len() {
        diff.header.push(format!("epoch count: {} vs {}", a.epochs.len(), b.epochs.len()));
    }
    if a.report_checksum != b.report_checksum {
        diff.header.push(format!(
            "report-checksum: {} vs {}",
            fmt_opt_crc(a.report_checksum),
            fmt_opt_crc(b.report_checksum)
        ));
    }
    if a.trace_checksum != b.trace_checksum {
        diff.header.push(format!(
            "trace-checksum: {} vs {}",
            fmt_opt_crc(a.trace_checksum),
            fmt_opt_crc(b.trace_checksum)
        ));
    }
    for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
        let details = diff_epoch(ea, eb);
        if !details.is_empty() {
            diff.epochs.push(EpochDiff { epoch: ea.epoch, details });
        }
    }
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::log::{ActionRecord, ResponseRecord, ShiftEvent, ValueRecord};

    fn log() -> RunLog {
        RunLog {
            scenario: "d".into(),
            seed: 3,
            spec_toml: "name = \"d\"\n".into(),
            admissions: vec![crate::log::AdmissionRecord {
                tenant: 0,
                submission: 0,
                demand: 5.0,
                committed: 0.0,
                capacity: 10.0,
                admitted: true,
            }],
            epochs: (0..3)
                .map(|epoch| EpochRecord {
                    epoch,
                    shifts: if epoch == 1 {
                        vec![ShiftEvent::Participation { factor: 2.0 }]
                    } else {
                        vec![]
                    },
                    requested: 10 + epoch,
                    sent: 10 + epoch,
                    dropped: 0,
                    delayed: 0,
                    duplicated: 0,
                    responses: vec![ResponseRecord {
                        sensor: epoch,
                        attr: 0,
                        t: epoch as f64,
                        x: 0.5,
                        y: 0.5,
                        value: ValueRecord::Float(1.5),
                        issued_at: 0.0,
                    }],
                    actions: vec![],
                    charges: vec![crate::log::ChargeRecord { tenant: 0, spent: 2.5 }],
                })
                .collect(),
            report_checksum: Some(1),
            trace_checksum: None,
        }
    }

    #[test]
    fn identical_logs_diff_empty() {
        let d = diff_logs(&log(), &log());
        assert!(d.identical(), "{d}");
        assert_eq!(d.render(), "");
    }

    #[test]
    fn first_divergence_names_the_epoch_and_record() {
        let a = log();
        let mut b = log();
        b.epochs[1].responses[0].value = ValueRecord::Float(2.5);
        b.epochs[2].sent = 99;
        let d = diff_logs(&a, &b);
        assert!(!d.identical());
        let first = d.first_divergence().unwrap();
        assert_eq!(first.epoch, 1);
        assert!(first.details[0].contains("response[0]"), "{:?}", first.details);
        assert!(first.details[0].contains("v=f1.5"), "{:?}", first.details);
        assert_eq!(d.epochs.len(), 2);
        assert!(d.render().contains("first divergence at epoch 1"), "{}", d.render());
        assert!(d.render().contains("1 later epoch(s)"), "{}", d.render());
    }

    #[test]
    fn header_level_differences_are_reported() {
        let a = log();
        let mut b = log();
        b.seed = 4;
        b.spec_toml = "name = \"e\"\n".into();
        b.epochs.truncate(2);
        b.report_checksum = None;
        let d = diff_logs(&a, &b);
        assert_eq!(d.header.len(), 4, "{:?}", d.header);
        assert!(d.header.iter().any(|h| h.contains("seed")));
        assert!(d.header.iter().any(|h| h.contains("epoch count: 3 vs 2")));
        assert!(d.header.iter().any(|h| h.contains("spec")));
        assert!(d.header.iter().any(|h| h.contains("report-checksum")));
    }

    #[test]
    fn shift_differences_surface() {
        let a = log();
        let mut b = log();
        b.epochs[1].shifts[0] = ShiftEvent::Participation { factor: 3.0 };
        let d = diff_logs(&a, &b);
        let first = d.first_divergence().unwrap();
        assert!(first.details[0].contains("factor=2.0"), "{:?}", first.details);

        let mut c = log();
        c.epochs[0].actions.push(ActionRecord::RebuildChain { cell: (0, 0), attr: 0 });
        let d = diff_logs(&a, &c);
        assert_eq!(d.first_divergence().unwrap().epoch, 0);
        assert!(d.first_divergence().unwrap().details[0].contains("action count"));
    }
}
