//! The run-log data model: one record per epoch, holding exactly what the
//! epoch consumed from outside the server.

use craqr_core::{AdmissionDecision, ControlAction, TenantId};
use craqr_geom::{CellId, SpaceTimePoint};
use craqr_sensing::{AttrValue, AttributeId, Measurement, SensorId, SensorResponse};

/// The codec version this crate reads and writes.
pub const RUNLOG_VERSION: u32 = 1;

/// One recorded observation value (mirror of [`craqr_sensing::AttrValue`]
/// with a stable text encoding).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueRecord {
    /// A human-sensed boolean.
    Bool(bool),
    /// A sensor-sensed real.
    Float(f64),
}

/// One crowd response exactly as drained from the crowd —
/// pre-error-injection, pre-mitigation, pre-id-assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResponseRecord {
    /// The answering sensor.
    pub sensor: u64,
    /// The observed attribute.
    pub attr: u16,
    /// Measurement time (minutes).
    pub t: f64,
    /// Easting (km).
    pub x: f64,
    /// Northing (km).
    pub y: f64,
    /// The observed value.
    pub value: ValueRecord,
    /// When the eliciting request was issued (minutes).
    pub issued_at: f64,
}

impl From<&SensorResponse> for ResponseRecord {
    fn from(r: &SensorResponse) -> Self {
        Self {
            sensor: r.sensor.0,
            attr: r.measurement.attr.0,
            t: r.measurement.point.t,
            x: r.measurement.point.x,
            y: r.measurement.point.y,
            value: match r.measurement.value {
                AttrValue::Bool(b) => ValueRecord::Bool(b),
                AttrValue::Float(f) => ValueRecord::Float(f),
            },
            issued_at: r.issued_at,
        }
    }
}

impl ResponseRecord {
    /// The [`SensorResponse`] this record describes.
    pub fn to_response(&self) -> SensorResponse {
        SensorResponse {
            sensor: SensorId(self.sensor),
            measurement: Measurement {
                attr: AttributeId(self.attr),
                point: SpaceTimePoint::new(self.t, self.x, self.y),
                value: match self.value {
                    ValueRecord::Bool(b) => AttrValue::Bool(b),
                    ValueRecord::Float(f) => AttrValue::Float(f),
                },
            },
            issued_at: self.issued_at,
        }
    }
}

/// One control action the epoch's hook injected (mirror of
/// [`craqr_core::ControlAction`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ActionRecord {
    /// Overwrite one chain's acquisition budget.
    SetBudget {
        /// Cell `(q, r)`.
        cell: (u32, u32),
        /// Attribute id.
        attr: u16,
        /// Requests per epoch.
        budget: f64,
    },
    /// Tear a chain down and rebuild it.
    RebuildChain {
        /// Cell `(q, r)`.
        cell: (u32, u32),
        /// Attribute id.
        attr: u16,
    },
}

impl From<&ControlAction> for ActionRecord {
    fn from(a: &ControlAction) -> Self {
        match *a {
            ControlAction::SetBudget { cell, attr, requests_per_epoch } => {
                ActionRecord::SetBudget {
                    cell: (cell.q, cell.r),
                    attr: attr.0,
                    budget: requests_per_epoch,
                }
            }
            ControlAction::RebuildChain { cell, attr } => {
                ActionRecord::RebuildChain { cell: (cell.q, cell.r), attr: attr.0 }
            }
        }
    }
}

impl ActionRecord {
    /// The [`ControlAction`] this record describes.
    pub fn to_action(&self) -> ControlAction {
        match *self {
            ActionRecord::SetBudget { cell, attr, budget } => ControlAction::SetBudget {
                cell: CellId::new(cell.0, cell.1),
                attr: AttributeId(attr),
                requests_per_epoch: budget,
            },
            ActionRecord::RebuildChain { cell, attr } => ControlAction::RebuildChain {
                cell: CellId::new(cell.0, cell.1),
                attr: AttributeId(attr),
            },
        }
    }
}

/// One admission-control decision taken before the run's first epoch
/// (mirror of [`craqr_core::AdmissionDecision`]) — recorded so tenant
/// disputes ("why was my query rejected?") are auditable from the log
/// alone, and so replay can verify it reproduces the same verdicts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRecord {
    /// The tenant that submitted the query.
    pub tenant: u32,
    /// Submission order across the server (counts rejections too).
    pub submission: u32,
    /// Estimated demand (requests/epoch).
    pub demand: f64,
    /// Demand already committed when the check ran.
    pub committed: f64,
    /// The tenant's pool capacity.
    pub capacity: f64,
    /// The verdict.
    pub admitted: bool,
}

impl From<&AdmissionDecision> for AdmissionRecord {
    fn from(d: &AdmissionDecision) -> Self {
        Self {
            tenant: d.tenant.0,
            submission: d.submission,
            demand: d.estimated_demand,
            committed: d.committed_before,
            capacity: d.capacity,
            admitted: d.admitted,
        }
    }
}

/// One tenant's requests charged in one epoch (mirror of
/// [`craqr_core::EpochReport::tenant_charges`]): the per-epoch audit
/// trail that pool conservation can be checked against offline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChargeRecord {
    /// The tenant.
    pub tenant: u32,
    /// Requests charged this epoch (≤ the tenant's pool capacity).
    pub spent: f64,
}

impl ChargeRecord {
    /// Builds the record from a core `(tenant, charge)` pair.
    pub fn from_charge(pair: &(TenantId, f64)) -> Self {
        Self { tenant: pair.0 .0, spent: pair.1 }
    }
}

/// A scripted world event applied just before an epoch ran (mirror of the
/// scenario layer's `[[shifts]]`; recorded so a log is auditable and
/// diffable without the spec in hand).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ShiftEvent {
    /// Participation scale (surge/collapse).
    Participation {
        /// The response-probability scale factor.
        factor: f64,
    },
    /// Correlated regional dropout.
    Dropout {
        /// Per-sensor dropout probability.
        probability: f64,
        /// Affected region `(x0, y0, x1, y1)`.
        rect: (f64, f64, f64, f64),
    },
    /// Hotspot migration.
    Migrate {
        /// Per-sensor migration probability.
        probability: f64,
        /// Destination region `(x0, y0, x1, y1)`.
        rect: (f64, f64, f64, f64),
    },
}

/// Everything one epoch consumed from outside the deterministic server
/// core, plus the control actions injected back.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EpochRecord {
    /// Epoch index (0-based, ascending, gap-free).
    pub epoch: u64,
    /// Scripted world events applied before this epoch.
    pub shifts: Vec<ShiftEvent>,
    /// Requests the handler attempted (recorded for cross-checking: a
    /// faithful replay recomputes the same number from budget state).
    pub requested: u64,
    /// Requests the crowd actually received — the crowd-side outcome a
    /// detached replay cannot recompute.
    pub sent: u64,
    /// Responses the crowd's fault layer dropped while this epoch's
    /// steps ran — crowd-side activity a detached replay cannot
    /// recompute, so it is recorded and echoed like `sent`. All three
    /// fault counters render as one optional `faults` line; a fault-free
    /// epoch writes nothing, keeping such logs byte-identical to the
    /// pre-fault-counter format.
    pub dropped: u64,
    /// Responses the fault layer re-queued to mature later.
    pub delayed: u64,
    /// Responses the fault layer delivered twice.
    pub duplicated: u64,
    /// Responses drained this epoch, pre-error-injection, in drain order.
    pub responses: Vec<ResponseRecord>,
    /// Control actions injected after the epoch, in application order.
    pub actions: Vec<ActionRecord>,
    /// Per-tenant requests charged this epoch, ascending by tenant
    /// (empty on single-owner servers — those logs are byte-identical to
    /// the pre-tenant format).
    pub charges: Vec<ChargeRecord>,
}

impl EpochRecord {
    /// The epoch's recorded fault activity as core's [`craqr_core::FaultDeltas`] —
    /// what [`craqr_core::ReplayInputs::faults`] wants.
    pub fn faults(&self) -> craqr_core::FaultDeltas {
        craqr_core::FaultDeltas {
            dropped: self.dropped,
            delayed: self.delayed,
            duplicated: self.duplicated,
        }
    }
}

/// An event-sourced record of one complete run: the spec that defined it,
/// the seed, and every epoch's inputs. See the crate docs for the
/// format and integrity guarantees.
#[derive(Debug, Clone, PartialEq)]
pub struct RunLog {
    /// Scenario name (golden-file stem).
    pub scenario: String,
    /// The seed the run used.
    pub seed: u64,
    /// The full scenario spec as canonical TOML (always `\n`-terminated)
    /// — embedded so a log is self-contained: replay needs nothing but
    /// this file. Opaque to this crate; the scenario layer parses it.
    pub spec_toml: String,
    /// Admission decisions taken before the first epoch, in submission
    /// order (empty on single-owner servers). Part of the checksummed
    /// header, so every epoch checksum also pins the admission outcomes
    /// the run started from.
    pub admissions: Vec<AdmissionRecord>,
    /// One record per epoch, ascending and gap-free from 0.
    pub epochs: Vec<EpochRecord>,
    /// Checksum of the live run's canonical [`ScenarioReport`], when the
    /// recording run captured one — replay verifies against it.
    ///
    /// [`ScenarioReport`]: https://docs.rs/craqr-scenario
    pub report_checksum: Option<u64>,
    /// Checksum of the live run's canonical `AdaptiveTrace`, when the
    /// run closed the loop.
    pub trace_checksum: Option<u64>,
}

impl RunLog {
    /// Renders the canonical text form (see [`crate::codec::render`]).
    pub fn canonical(&self) -> String {
        crate::codec::render(self)
    }

    /// Parses (and integrity-checks) a canonical text log.
    pub fn parse(src: &str) -> Result<Self, crate::codec::CodecError> {
        crate::codec::parse(src)
    }

    /// The whole-document content checksum (the value on the canonical
    /// text's final line).
    pub fn checksum(&self) -> u64 {
        let canon = self.canonical();
        let body = canon.rsplit_once("\nchecksum:").expect("canonical ends in checksum").0;
        // The split ate the newline terminating the last body line; the
        // recorded checksum hashed it.
        craqr_stats::fnv1a64(format!("{body}\n").as_bytes())
    }

    /// A copy truncated to the first `k` epochs — the resume point. The
    /// final report/trace checksums are dropped: a truncated log no
    /// longer attests to a finished run.
    ///
    /// Returns `None` when `k` exceeds the epoch count: asking to cut a
    /// log at a boundary it never reached is a caller error (a `resume
    /// --at N` typo), not a request for the whole log.
    pub fn truncated(&self, k: usize) -> Option<Self> {
        if k > self.epochs.len() {
            return None;
        }
        let mut log = self.clone();
        log.epochs.truncate(k);
        log.report_checksum = None;
        log.trace_checksum = None;
        Some(log)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_record_round_trips_through_sensing_types() {
        let response = SensorResponse {
            sensor: SensorId(42),
            measurement: Measurement {
                attr: AttributeId(3),
                point: SpaceTimePoint::new(12.5, 1.25, 3.75),
                value: AttrValue::Float(-7.125),
            },
            issued_at: 10.0,
        };
        let record = ResponseRecord::from(&response);
        assert_eq!(record.to_response(), response);

        let boolean = SensorResponse {
            measurement: Measurement { value: AttrValue::Bool(true), ..response.measurement },
            ..response
        };
        assert_eq!(ResponseRecord::from(&boolean).to_response(), boolean);
    }

    #[test]
    fn action_record_round_trips_through_core_types() {
        let set = ControlAction::SetBudget {
            cell: CellId::new(2, 5),
            attr: AttributeId(1),
            requests_per_epoch: 12.75,
        };
        assert_eq!(ActionRecord::from(&set).to_action(), set);
        let rebuild = ControlAction::RebuildChain { cell: CellId::new(0, 3), attr: AttributeId(0) };
        assert_eq!(ActionRecord::from(&rebuild).to_action(), rebuild);
    }

    #[test]
    fn truncation_drops_final_checksums() {
        let log = RunLog {
            scenario: "t".into(),
            seed: 1,
            spec_toml: "name = \"t\"\n".into(),
            admissions: vec![],
            epochs: vec![EpochRecord::default(), EpochRecord { epoch: 1, ..Default::default() }],
            report_checksum: Some(7),
            trace_checksum: Some(9),
        };
        let cut = log.truncated(1).unwrap();
        assert_eq!(cut.epochs.len(), 1);
        assert_eq!(cut.report_checksum, None);
        assert_eq!(cut.trace_checksum, None);
        assert_eq!(log.truncated(2).unwrap().epochs.len(), 2, "cut at the end keeps every epoch");
        assert_eq!(log.truncated(5), None, "over-truncation is a signalled error");
    }
}
