//! Crash-safe streaming persistence for run logs.
//!
//! [`RunLogRecorder`] builds the whole log in memory and writes nothing
//! until the run finishes — a crash loses every epoch. The
//! [`StreamingRecorder`] here closes that gap with an explicit fsync
//! discipline:
//!
//! 1. the checksummed header is written (and synced) as soon as the run
//!    begins, so even an epoch-zero crash leaves a salvageable file;
//! 2. each epoch block plus its chained-CRC `end` line is appended and
//!    `fsync`ed the moment the epoch closes — after a crash, every epoch
//!    whose `end` line reached the disk is durable;
//! 3. the sealed trailer is never appended in place: `finish` renders the
//!    full canonical document and swaps it in atomically
//!    ([`write_atomic`]: temp file in the same directory, `fsync`,
//!    `rename`), so the on-disk log is always either a valid streamed
//!    prefix or the complete sealed document, never a half-written seal.
//!
//! Because the streamed bytes come from the same
//! [`codec`](crate::codec) helpers as [`RunLog::canonical`], an
//! interrupted file is a byte-prefix of the canonical render and
//! [`parse_salvage`](crate::codec::parse_salvage) recovers exactly the
//! epochs whose `end` lines were synced.

use crate::codec::{advance_chain, end_line, epoch_block, header_text};
use crate::log::{RunLog, ShiftEvent};
use crate::record::RunLogRecorder;
use craqr_core::{AdmissionDecision, EpochInputsRecord, EpochTap};
use craqr_stats::fnv1a64;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `contents` to `path` atomically: a temp file in the same
/// directory is written, `fsync`ed, then renamed over the target, and the
/// directory entry is synced best-effort. A reader (or a crash) never
/// observes a half-written file — only the old bytes or the new.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{}: not a file path", path.display()))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // The rename itself only becomes durable once the directory entry is
    // on disk; not every platform lets a directory be opened for sync, so
    // this layer is best-effort.
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// A [`RunLogRecorder`] that also appends each sealed epoch block to disk
/// as it closes (see the [module docs](self) for the durability
/// contract).
///
/// I/O failures during an append are deferred: the tap cannot return
/// errors, so the first failure is stored, further streaming stops, and
/// [`StreamingRecorder::finish`] (or [`StreamingRecorder::last_error`],
/// for drivers that poll between epochs) surfaces it.
pub struct StreamingRecorder {
    inner: RunLogRecorder,
    path: PathBuf,
    file: Option<File>,
    chain: u64,
    streamed: usize,
    tear_next: bool,
    torn: bool,
    error: Option<io::Error>,
}

impl StreamingRecorder {
    /// Creates a streaming recorder that persists to `path`. Nothing is
    /// written until [`StreamingRecorder::begin`] or the first epoch.
    pub fn new(path: &Path, scenario: &str, seed: u64, spec_toml: &str) -> Self {
        Self {
            inner: RunLogRecorder::new(scenario, seed, spec_toml),
            path: path.to_path_buf(),
            file: None,
            chain: 0,
            streamed: 0,
            tear_next: false,
            torn: false,
            error: None,
        }
    }

    /// Notes a scripted world event (see [`RunLogRecorder::record_shift`]).
    pub fn record_shift(&mut self, shift: ShiftEvent) {
        self.inner.record_shift(shift);
    }

    /// Records pre-epoch admission decisions (see
    /// [`RunLogRecorder::record_admissions`]). Must precede
    /// [`StreamingRecorder::begin`]: the admissions land in the
    /// checksummed header, which freezes when it hits the disk.
    pub fn record_admissions(&mut self, decisions: &[AdmissionDecision]) {
        assert!(self.file.is_none(), "record_admissions must precede the streamed header");
        self.inner.record_admissions(decisions);
    }

    /// Writes and syncs the header now, so a crash before the first epoch
    /// still leaves a salvageable (zero-epoch) file. Called implicitly by
    /// the first epoch append if skipped.
    pub fn begin(&mut self) -> io::Result<()> {
        if self.file.is_some() {
            return Ok(());
        }
        let header = header_text(self.inner.log_ref());
        let mut f = File::create(&self.path)?;
        f.write_all(header.as_bytes())?;
        f.sync_all()?;
        self.chain = fnv1a64(header.as_bytes());
        self.file = Some(f);
        Ok(())
    }

    /// Epochs whose `end` line has been written and synced — the durable
    /// resume point after a crash.
    pub fn epochs_streamed(&self) -> usize {
        self.streamed
    }

    /// Epochs recorded in memory so far.
    pub fn epochs_recorded(&self) -> usize {
        self.inner.epochs_recorded()
    }

    /// The first I/O error hit while streaming, if any. The in-memory
    /// record stays complete regardless.
    pub fn last_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Arms the `mid-log-append` crash seam: the *next* epoch append
    /// writes only half its block — no `end` line, no chain seal — then
    /// stops streaming for good, leaving exactly the torn tail a process
    /// killed inside `write(2)` would. The in-memory recorder keeps
    /// recording, so the driver can still compare against the truth.
    pub fn tear_next_append(&mut self) {
        self.tear_next = true;
    }

    /// Whether the tear seam has fired (the on-disk file ends mid-block).
    pub fn is_torn(&self) -> bool {
        self.torn
    }

    fn stream_last_epoch(&mut self) -> io::Result<()> {
        self.begin()?;
        let e = self.inner.epochs().last().expect("stream_last_epoch follows a recorded epoch");
        let block = epoch_block(e);
        let file = self.file.as_mut().expect("begin() opened the file");
        if self.tear_next {
            let cut = block.len() / 2;
            file.write_all(&block.as_bytes()[..cut])?;
            file.sync_all()?;
            self.torn = true;
            return Ok(());
        }
        self.chain = advance_chain(self.chain, &block);
        file.write_all(block.as_bytes())?;
        file.write_all(end_line(e.epoch, self.chain).as_bytes())?;
        file.sync_all()?;
        self.streamed += 1;
        Ok(())
    }

    /// Seals the log and atomically replaces the streamed file with the
    /// complete canonical document. Surfaces any I/O error deferred from
    /// an earlier append; refuses to seal a deliberately torn file.
    pub fn finish(self, report_checksum: u64, trace_checksum: Option<u64>) -> io::Result<RunLog> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if self.torn {
            return Err(io::Error::other("refusing to seal a torn stream"));
        }
        let log = self.inner.finish(report_checksum, trace_checksum);
        write_atomic(&self.path, &log.canonical())?;
        Ok(log)
    }

    /// The log as recorded in memory so far, without sealing (the on-disk
    /// file keeps whatever prefix was durable).
    pub fn into_partial(self) -> RunLog {
        self.inner.into_partial()
    }
}

impl EpochTap for StreamingRecorder {
    fn on_epoch(&mut self, record: &EpochInputsRecord<'_>) {
        self.inner.on_epoch(record);
        if self.torn || self.error.is_some() {
            return;
        }
        if let Err(e) = self.stream_last_epoch() {
            self.error = Some(e);
        }
        self.tear_next = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::parse_salvage;
    use craqr_core::{CraqrServer, ServerConfig};
    use craqr_geom::Rect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
    };

    fn server(seed: u64) -> CraqrServer {
        let crowd = Crowd::new(CrowdConfig {
            region: Rect::with_size(4.0, 4.0),
            population: PopulationConfig {
                size: 300,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.1 },
                human_fraction: 0.0,
            },
            seed,
        });
        let mut s = CraqrServer::new(crowd, ServerConfig::default());
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
        s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.8").unwrap();
        s
    }

    fn run(dir: &Path, epochs: usize, tear_at: Option<usize>) -> (PathBuf, Option<RunLog>) {
        let path = dir.join("stream.runlog.txt");
        let mut live = server(11);
        let mut rec = StreamingRecorder::new(&path, "unit", 11, "name = \"unit\"\n");
        rec.begin().unwrap();
        for e in 0..epochs {
            if tear_at == Some(e) {
                rec.tear_next_append();
            }
            live.driver().tap(&mut rec).step();
            assert!(rec.last_error().is_none());
        }
        if tear_at.is_some() {
            (path, None)
        } else {
            let log = rec.finish(0xFEED, None).unwrap();
            (path, Some(log))
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("craqr-stream-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sealed_stream_equals_canonical_render() {
        let dir = tempdir("sealed");
        let (path, log) = run(&dir, 5, None);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, log.unwrap().canonical());
        assert!(RunLog::parse(&on_disk).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streamed_prefix_is_a_byte_prefix_of_the_canonical_render() {
        let dir = tempdir("prefix");
        let path = dir.join("stream.runlog.txt");
        let mut live = server(11);
        let mut rec = StreamingRecorder::new(&path, "unit", 11, "name = \"unit\"\n");
        rec.begin().unwrap();
        for _ in 0..4 {
            live.driver().tap(&mut rec).step();
        }
        // Read the streamed bytes *before* sealing: they must be a strict
        // prefix of the final canonical document.
        let streamed = std::fs::read_to_string(&path).unwrap();
        let log = rec.finish(0x1234, None).unwrap();
        assert!(log.canonical().starts_with(&streamed), "streamed bytes diverge from canonical");
        // And the streamed prefix salvages to all four epochs.
        let salvage = parse_salvage(&streamed).unwrap();
        assert_eq!(salvage.log.epochs.len(), 4);
        let torn = salvage.torn.expect("an unsealed stream reports a (zero-byte) tear");
        assert_eq!(torn.discarded_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_salvages_to_the_last_durable_epoch() {
        let dir = tempdir("torn");
        let (path, _) = run(&dir, 5, Some(3));
        let bytes = std::fs::read_to_string(&path).unwrap();
        let salvage = parse_salvage(&bytes).unwrap();
        assert_eq!(salvage.log.epochs.len(), 3, "epochs past the tear are gone");
        let torn = salvage.torn.expect("half an epoch block is a torn tail");
        assert!(torn.discarded_bytes > 0);
        assert_eq!(salvage.log.report_checksum, None);
        // The salvaged prefix re-renders to a log that parses clean.
        assert!(RunLog::parse(&salvage.log.canonical()).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn header_only_file_salvages_to_zero_epochs() {
        let dir = tempdir("header");
        let path = dir.join("stream.runlog.txt");
        let mut rec = StreamingRecorder::new(&path, "unit", 11, "name = \"unit\"\n");
        rec.begin().unwrap();
        drop(rec); // crash before epoch 0
        let bytes = std::fs::read_to_string(&path).unwrap();
        let salvage = parse_salvage(&bytes).unwrap();
        assert_eq!(salvage.log.epochs.len(), 0);
        assert_eq!(salvage.log.scenario, "unit");
        assert_eq!(salvage.torn.unwrap().discarded_bytes, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_and_never_leaves_temp_files() {
        let dir = tempdir("atomic");
        let path = dir.join("out.txt");
        write_atomic(&path, "first\n").unwrap();
        write_atomic(&path, "second\n").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stray temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
