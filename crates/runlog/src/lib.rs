//! # craqr-runlog — the event-sourced epoch log.
//!
//! A crowdsensing acquisition loop is only trustworthy at scale if a run
//! can be reconstructed and audited after the fact. This crate supplies
//! the missing subsystem: an **append-only, versioned, checksummed log of
//! every epoch's inputs** — the crowd responses as drained, the scripted
//! regime shifts, the dispatch outcome, and the control actions the
//! adaptive seam injected — recorded through the
//! [`craqr_core::EpochTap`] seam on the epoch loop.
//!
//! Everything *downstream* of those inputs (error injection, mitigation,
//! ingestion, per-cell processing, budget tuning, the controller's
//! estimates and replans) is a deterministic function of
//! `(spec, seed, inputs)`, so the log is a complete event source:
//!
//! - **replay** — re-drive a server from the log with the crowd detached
//!   ([`craqr_core::EpochDriver::run_replayed`]) and reproduce the
//!   live run's reports, traces, and decisions bit-for-bit, serial or
//!   sharded (the scenario harness wires this up end to end);
//! - **resume** — truncate at epoch *k* ([`RunLog::truncated`]), rebuild
//!   state, and continue live;
//! - **diff** — structurally compare two logs epoch by epoch with
//!   first-divergence reporting ([`diff_logs`]);
//! - **crash safety** — stream each sealed epoch block to disk with an
//!   fsync discipline ([`StreamingRecorder`]), and salvage the longest
//!   valid checksummed prefix of a torn file ([`parse_salvage`]) so a
//!   crashed run resumes from its last durable epoch boundary instead of
//!   losing the log.
//!
//! # Format
//!
//! The codec is a deterministic, line-oriented text format in the style
//! of `craqr_scenario::value` (the workspace's vendored `serde` is a
//! no-op, so encoding is in-crate). Three integrity layers:
//!
//! 1. a version stamp on line one (`# craqr runlog v1`) — unknown
//!    versions are rejected, not guessed at;
//! 2. a **chained** FNV-1a checksum per epoch block (each `end … crc=`
//!    line hashes its block *and* the previous block's checksum, seeded
//!    from the header), so truncating, reordering, or editing any epoch
//!    invalidates every subsequent line — the append-only discipline is
//!    mechanically checkable;
//! 3. a whole-document `checksum:` trailer, same contract as scenario
//!    reports and adaptive traces.
//!
//! Floats render in shortest-roundtrip form, so `parse(render(log)) ==
//! log` exactly (proptested in `tests/properties.rs`).
//!
//! **v1 compatibility note:** multi-tenant runs added two record kinds
//! to v1 *without* a version bump — `adm …` lines in the checksummed
//! header (admission decisions) and `charge …` lines at the end of an
//! epoch block (per-tenant spend). The extension is strictly additive:
//! single-owner logs contain neither line and render byte-identically
//! to the pre-tenant format, and this reader accepts both shapes. A
//! *pre-tenant* reader handed a tenanted log fails at the first `adm`/
//! `charge` line with a structural ("expected …, got 'adm …'") error
//! rather than a version mismatch — acceptable because such logs are
//! new artifacts, while every previously written v1 log still parses
//! everywhere.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod diff;
pub mod log;
pub mod record;
pub mod stream;

pub use codec::{parse_salvage, CodecError, Salvage, TornTail};
pub use diff::{diff_logs, EpochDiff, LogDiff};
pub use log::{
    ActionRecord, AdmissionRecord, ChargeRecord, EpochRecord, ResponseRecord, RunLog, ShiftEvent,
    ValueRecord,
};
pub use record::RunLogRecorder;
pub use stream::{write_atomic, StreamingRecorder};
