//! Recording a live run: an [`craqr_core::EpochTap`] implementation that
//! appends one [`EpochRecord`] per epoch.

use crate::log::{
    ActionRecord, AdmissionRecord, ChargeRecord, EpochRecord, ResponseRecord, RunLog, ShiftEvent,
};
use craqr_core::{AdmissionDecision, EpochInputsRecord, EpochTap};

/// Builds a [`RunLog`] from a live run, epoch by epoch.
///
/// Wire it into the loop as the tap of
/// [`craqr_core::EpochDriver::tap`]; call
/// [`RunLogRecorder::record_shift`] just before an epoch whose world was
/// scripted (the pending shifts attach to the next recorded epoch); call
/// [`RunLogRecorder::finish`] once the run's canonical report (and trace,
/// if any) checksums are known.
///
/// The recorder is append-only by construction: it never revisits an
/// earlier epoch, and the rendered log's chained checksums pin the order
/// it observed.
pub struct RunLogRecorder {
    log: RunLog,
    pending_shifts: Vec<ShiftEvent>,
}

impl RunLogRecorder {
    /// Creates a recorder for one run. `spec_toml` is the canonical spec
    /// the run executes (embedded verbatim so the log is self-contained);
    /// a missing trailing newline is normalized away.
    pub fn new(scenario: &str, seed: u64, spec_toml: &str) -> Self {
        let spec_toml = if spec_toml.is_empty() || spec_toml.ends_with('\n') {
            spec_toml.to_string()
        } else {
            format!("{spec_toml}\n")
        };
        Self {
            log: RunLog {
                scenario: scenario.to_string(),
                seed,
                spec_toml,
                admissions: Vec::new(),
                epochs: Vec::new(),
                report_checksum: None,
                trace_checksum: None,
            },
            pending_shifts: Vec::new(),
        }
    }

    /// Notes a scripted world event; it attaches to the next epoch the
    /// recorder observes.
    pub fn record_shift(&mut self, shift: ShiftEvent) {
        self.pending_shifts.push(shift);
    }

    /// Records the run's pre-epoch admission decisions (multi-tenant
    /// servers; see [`craqr_core::CraqrServer::admissions`]). Call once,
    /// before the first epoch is tapped — the records land in the log's
    /// checksummed header.
    pub fn record_admissions(&mut self, decisions: &[AdmissionDecision]) {
        self.log.admissions = decisions.iter().map(AdmissionRecord::from).collect();
    }

    /// Epochs recorded so far.
    pub fn epochs_recorded(&self) -> usize {
        self.log.epochs.len()
    }

    /// The records captured so far (ascending by epoch) — lets a
    /// resume-style driver cross-check each rebuilt epoch against an
    /// existing log as it goes.
    pub fn epochs(&self) -> &[EpochRecord] {
        &self.log.epochs
    }

    /// Seals the log with the finished run's report checksum (and trace
    /// checksum, when the run closed the loop).
    pub fn finish(mut self, report_checksum: u64, trace_checksum: Option<u64>) -> RunLog {
        self.log.report_checksum = Some(report_checksum);
        self.log.trace_checksum = trace_checksum;
        self.log
    }

    /// The log as recorded so far, without sealing (an interrupted run's
    /// partial log — replayable up to its last recorded epoch).
    pub fn into_partial(self) -> RunLog {
        self.log
    }

    /// The in-progress log (the streaming writer renders its header and
    /// epoch blocks from the same structure it will seal).
    pub(crate) fn log_ref(&self) -> &RunLog {
        &self.log
    }
}

impl EpochTap for RunLogRecorder {
    fn on_epoch(&mut self, record: &EpochInputsRecord<'_>) {
        self.log.epochs.push(EpochRecord {
            epoch: record.report.epoch,
            shifts: std::mem::take(&mut self.pending_shifts),
            requested: record.report.dispatch.requested,
            sent: record.report.dispatch.sent,
            dropped: record.report.faults.dropped,
            delayed: record.report.faults.delayed,
            duplicated: record.report.faults.duplicated,
            responses: record.responses.iter().map(ResponseRecord::from).collect(),
            actions: record.actions.iter().map(ActionRecord::from).collect(),
            charges: record.report.tenant_charges.iter().map(ChargeRecord::from_charge).collect(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_core::{CraqrServer, ServerConfig};
    use craqr_geom::Rect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, Crowd, CrowdConfig, Mobility, Placement, PopulationConfig,
    };

    fn server(size: usize, seed: u64) -> CraqrServer {
        let crowd = Crowd::new(CrowdConfig {
            region: Rect::with_size(4.0, 4.0),
            population: PopulationConfig {
                size,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.1 },
                human_fraction: 0.0,
            },
            seed,
        });
        let mut s = CraqrServer::new(crowd, ServerConfig::default());
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(20.0))));
        s
    }

    #[test]
    fn recorded_log_replays_bit_for_bit_through_a_detached_server() {
        // Record a live run.
        let mut live = server(400, 7);
        let qid = live.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.8").unwrap();
        let mut recorder = RunLogRecorder::new("unit", 7, "name = \"unit\"\n");
        recorder.record_shift(ShiftEvent::Participation { factor: 1.0 });
        for _ in 0..6 {
            live.driver().tap(&mut recorder).step();
        }
        let live_ids: Vec<u64> = live.take_output(qid).iter().map(|t| t.id).collect();
        let log = recorder.finish(0xABCD, None);
        assert_eq!(log.epochs.len(), 6);
        assert_eq!(log.epochs[0].shifts, vec![ShiftEvent::Participation { factor: 1.0 }]);
        assert!(log.epochs[1].shifts.is_empty(), "pending shifts attach once");

        // The canonical text survives a disk round trip.
        let reparsed = RunLog::parse(&log.canonical()).unwrap();
        assert_eq!(reparsed, log);

        // Replay it into a detached (zero-sensor) server, re-recording.
        let mut replayed = server(0, 7);
        let rqid = replayed.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.8").unwrap();
        assert_eq!(qid, rqid);
        let mut rerecorder = RunLogRecorder::new("unit", 7, "name = \"unit\"\n");
        rerecorder.record_shift(ShiftEvent::Participation { factor: 1.0 });
        for e in &reparsed.epochs {
            let responses: Vec<_> = e.responses.iter().map(|r| r.to_response()).collect();
            replayed.driver().tap(&mut rerecorder).step_replayed(craqr_core::ReplayInputs {
                sent: e.sent,
                responses: &responses,
                faults: e.faults(),
            });
        }
        let replay_ids: Vec<u64> = replayed.take_output(qid).iter().map(|t| t.id).collect();
        assert_eq!(live_ids, replay_ids, "replayed delivery stream diverged");

        // The re-recorded log is structurally identical to the original.
        let fresh = rerecorder.finish(0xABCD, None);
        let diff = crate::diff::diff_logs(&log, &fresh);
        assert!(diff.identical(), "replay re-recording diverged:\n{diff}");
    }
}
