//! The deterministic text codec for [`RunLog`]s.
//!
//! Line-oriented, dense (no blank lines), and canonical: rendering the
//! same log twice yields identical bytes, and `parse(render(log)) == log`
//! for every well-formed log (floats print in shortest-roundtrip form).
//! The parser is *strict* — record kinds must appear in their canonical
//! order inside a block, epoch indices must be gap-free from zero, and
//! every checksum (per-epoch chain + whole-document trailer) is verified
//! — so a truncated, reordered, or hand-edited log is rejected with a
//! line-precise error instead of silently replaying garbage.

use crate::log::{
    ActionRecord, AdmissionRecord, ChargeRecord, EpochRecord, ResponseRecord, RunLog, ShiftEvent,
    ValueRecord, RUNLOG_VERSION,
};
use craqr_stats::fnv1a64;
use std::fmt;

/// A parse/integrity error with its 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// 1-based line of the offending input (0 for end-of-input errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CodecError {}

fn err(line: usize, message: impl Into<String>) -> CodecError {
    CodecError { line, message: message.into() }
}

/// The workspace's shared shortest-roundtrip float formatter (also used
/// by the scenario codec): renders so parsing gives back identical bits.
pub(crate) use craqr_stats::format_float as fmt_f64;

fn parse_f64(s: &str, line: usize, what: &str) -> Result<f64, CodecError> {
    s.parse::<f64>().map_err(|_| err(line, format!("{what}: not a float: '{s}'")))
}

fn parse_u64(s: &str, line: usize, what: &str) -> Result<u64, CodecError> {
    s.parse::<u64>().map_err(|_| err(line, format!("{what}: not an unsigned integer: '{s}'")))
}

pub(crate) fn fmt_crc(crc: u64) -> String {
    format!("{crc:#018x}")
}

fn parse_crc(s: &str, line: usize, what: &str) -> Result<u64, CodecError> {
    let hex = s
        .strip_prefix("0x")
        .ok_or_else(|| err(line, format!("{what}: expected 0x-prefixed hex, got '{s}'")))?;
    u64::from_str_radix(hex, 16).map_err(|_| err(line, format!("{what}: bad hex '{s}'")))
}

/// Strips `key=` from a token.
fn kv<'a>(token: &'a str, key: &str, line: usize) -> Result<&'a str, CodecError> {
    token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| err(line, format!("expected '{key}=…', got '{token}'")))
}

fn parse_rect(s: &str, line: usize) -> Result<(f64, f64, f64, f64), CodecError> {
    let parts: Vec<&str> = s.split(',').collect();
    if parts.len() != 4 {
        return Err(err(line, format!("rect needs 4 comma-separated floats, got '{s}'")));
    }
    Ok((
        parse_f64(parts[0], line, "rect.x0")?,
        parse_f64(parts[1], line, "rect.y0")?,
        parse_f64(parts[2], line, "rect.x1")?,
        parse_f64(parts[3], line, "rect.y1")?,
    ))
}

fn fmt_rect(r: &(f64, f64, f64, f64)) -> String {
    format!("{},{},{},{}", fmt_f64(r.0), fmt_f64(r.1), fmt_f64(r.2), fmt_f64(r.3))
}

fn parse_cell(s: &str, line: usize) -> Result<(u32, u32), CodecError> {
    let (q, r) =
        s.split_once(',').ok_or_else(|| err(line, format!("cell needs 'q,r', got '{s}'")))?;
    let q = q.parse::<u32>().map_err(|_| err(line, format!("cell.q: bad integer '{q}'")))?;
    let r = r.parse::<u32>().map_err(|_| err(line, format!("cell.r: bad integer '{r}'")))?;
    Ok((q, r))
}

// ---------------------------------------------------------------------------
// Line renderers (shared with the diff module so divergences print in the
// exact on-disk syntax)
// ---------------------------------------------------------------------------

pub(crate) fn shift_line(s: &ShiftEvent) -> String {
    match s {
        ShiftEvent::Participation { factor } => {
            format!("shift participation factor={}", fmt_f64(*factor))
        }
        ShiftEvent::Dropout { probability, rect } => {
            format!("shift dropout probability={} rect={}", fmt_f64(*probability), fmt_rect(rect))
        }
        ShiftEvent::Migrate { probability, rect } => {
            format!("shift migrate probability={} rect={}", fmt_f64(*probability), fmt_rect(rect))
        }
    }
}

pub(crate) fn response_line(r: &ResponseRecord) -> String {
    let value = match r.value {
        ValueRecord::Bool(b) => format!("b{b}"),
        ValueRecord::Float(f) => format!("f{}", fmt_f64(f)),
    };
    format!(
        "r s={} a={} t={} x={} y={} v={} issued={}",
        r.sensor,
        r.attr,
        fmt_f64(r.t),
        fmt_f64(r.x),
        fmt_f64(r.y),
        value,
        fmt_f64(r.issued_at),
    )
}

pub(crate) fn admission_line(a: &AdmissionRecord) -> String {
    format!(
        "adm tenant={} sub={} demand={} committed={} capacity={} verdict={}",
        a.tenant,
        a.submission,
        fmt_f64(a.demand),
        fmt_f64(a.committed),
        fmt_f64(a.capacity),
        if a.admitted { "admitted" } else { "rejected" },
    )
}

pub(crate) fn charge_line(c: &ChargeRecord) -> String {
    format!("charge tenant={} spent={}", c.tenant, fmt_f64(c.spent))
}

pub(crate) fn action_line(a: &ActionRecord) -> String {
    match a {
        ActionRecord::SetBudget { cell, attr, budget } => {
            format!("act set cell={},{} attr={} budget={}", cell.0, cell.1, attr, fmt_f64(*budget))
        }
        ActionRecord::RebuildChain { cell, attr } => {
            format!("act rebuild cell={},{} attr={}", cell.0, cell.1, attr)
        }
    }
}

fn parse_shift_line(line_no: usize, rest: &str) -> Result<ShiftEvent, CodecError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    match tokens.first().copied() {
        Some("participation") if tokens.len() == 2 => Ok(ShiftEvent::Participation {
            factor: parse_f64(kv(tokens[1], "factor", line_no)?, line_no, "factor")?,
        }),
        Some("dropout") if tokens.len() == 3 => Ok(ShiftEvent::Dropout {
            probability: parse_f64(kv(tokens[1], "probability", line_no)?, line_no, "probability")?,
            rect: parse_rect(kv(tokens[2], "rect", line_no)?, line_no)?,
        }),
        Some("migrate") if tokens.len() == 3 => Ok(ShiftEvent::Migrate {
            probability: parse_f64(kv(tokens[1], "probability", line_no)?, line_no, "probability")?,
            rect: parse_rect(kv(tokens[2], "rect", line_no)?, line_no)?,
        }),
        _ => Err(err(line_no, format!("malformed shift record: 'shift {rest}'"))),
    }
}

fn parse_response_line(line_no: usize, rest: &str) -> Result<ResponseRecord, CodecError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    if tokens.len() != 7 {
        return Err(err(line_no, format!("response record needs 7 fields, got 'r {rest}'")));
    }
    let value_token = kv(tokens[5], "v", line_no)?;
    let value = if let Some(b) = value_token.strip_prefix('b') {
        ValueRecord::Bool(
            b.parse::<bool>()
                .map_err(|_| err(line_no, format!("v: bad boolean '{value_token}'")))?,
        )
    } else if let Some(f) = value_token.strip_prefix('f') {
        ValueRecord::Float(parse_f64(f, line_no, "v")?)
    } else {
        return Err(err(line_no, format!("v: expected b<bool> or f<float>, got '{value_token}'")));
    };
    Ok(ResponseRecord {
        sensor: parse_u64(kv(tokens[0], "s", line_no)?, line_no, "s")?,
        attr: parse_u64(kv(tokens[1], "a", line_no)?, line_no, "a")?
            .try_into()
            .map_err(|_| err(line_no, "a: attribute id does not fit in u16".to_string()))?,
        t: parse_f64(kv(tokens[2], "t", line_no)?, line_no, "t")?,
        x: parse_f64(kv(tokens[3], "x", line_no)?, line_no, "x")?,
        y: parse_f64(kv(tokens[4], "y", line_no)?, line_no, "y")?,
        value,
        issued_at: parse_f64(kv(tokens[6], "issued", line_no)?, line_no, "issued")?,
    })
}

fn parse_admission_line(line_no: usize, rest: &str) -> Result<AdmissionRecord, CodecError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    if tokens.len() != 6 {
        return Err(err(line_no, format!("admission record needs 6 fields, got 'adm {rest}'")));
    }
    let u32_of = |token: &str, key: &str| -> Result<u32, CodecError> {
        parse_u64(kv(token, key, line_no)?, line_no, key)?
            .try_into()
            .map_err(|_| err(line_no, format!("{key}: does not fit in u32")))
    };
    let admitted = match kv(tokens[5], "verdict", line_no)? {
        "admitted" => true,
        "rejected" => false,
        other => {
            return Err(err(
                line_no,
                format!("verdict: expected 'admitted' or 'rejected', got '{other}'"),
            ))
        }
    };
    Ok(AdmissionRecord {
        tenant: u32_of(tokens[0], "tenant")?,
        submission: u32_of(tokens[1], "sub")?,
        demand: parse_f64(kv(tokens[2], "demand", line_no)?, line_no, "demand")?,
        committed: parse_f64(kv(tokens[3], "committed", line_no)?, line_no, "committed")?,
        capacity: parse_f64(kv(tokens[4], "capacity", line_no)?, line_no, "capacity")?,
        admitted,
    })
}

fn parse_charge_line(line_no: usize, rest: &str) -> Result<ChargeRecord, CodecError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    if tokens.len() != 2 {
        return Err(err(line_no, format!("charge record needs 2 fields, got 'charge {rest}'")));
    }
    Ok(ChargeRecord {
        tenant: parse_u64(kv(tokens[0], "tenant", line_no)?, line_no, "tenant")?
            .try_into()
            .map_err(|_| err(line_no, "tenant: does not fit in u32".to_string()))?,
        spent: parse_f64(kv(tokens[1], "spent", line_no)?, line_no, "spent")?,
    })
}

fn parse_action_line(line_no: usize, rest: &str) -> Result<ActionRecord, CodecError> {
    let tokens: Vec<&str> = rest.split_whitespace().collect();
    let attr_of = |token: &str| -> Result<u16, CodecError> {
        parse_u64(kv(token, "attr", line_no)?, line_no, "attr")?
            .try_into()
            .map_err(|_| err(line_no, "attr: attribute id does not fit in u16".to_string()))
    };
    match tokens.first().copied() {
        Some("set") if tokens.len() == 4 => Ok(ActionRecord::SetBudget {
            cell: parse_cell(kv(tokens[1], "cell", line_no)?, line_no)?,
            attr: attr_of(tokens[2])?,
            budget: parse_f64(kv(tokens[3], "budget", line_no)?, line_no, "budget")?,
        }),
        Some("rebuild") if tokens.len() == 3 => Ok(ActionRecord::RebuildChain {
            cell: parse_cell(kv(tokens[1], "cell", line_no)?, line_no)?,
            attr: attr_of(tokens[2])?,
        }),
        _ => Err(err(line_no, format!("malformed action record: 'act {rest}'"))),
    }
}

// ---------------------------------------------------------------------------
// Render
// ---------------------------------------------------------------------------

/// The checksummed header: version stamp, scenario, seed, embedded spec,
/// and admission decisions. The streaming writer emits exactly these
/// bytes before the first epoch block, so an interrupted streamed file is
/// always a byte-prefix of the canonical render.
pub(crate) fn header_text(log: &RunLog) -> String {
    use std::fmt::Write;
    let spec = if log.spec_toml.is_empty() || log.spec_toml.ends_with('\n') {
        log.spec_toml.clone()
    } else {
        format!("{}\n", log.spec_toml)
    };
    let mut s = String::new();
    let _ = writeln!(s, "# craqr runlog v{RUNLOG_VERSION}");
    let _ = writeln!(s, "scenario: {}", log.scenario);
    let _ = writeln!(s, "seed: {}", log.seed);
    let _ = writeln!(s, "spec-lines: {}", spec.matches('\n').count());
    s.push_str(&spec);
    // Admission decisions precede the first epoch (they are taken at
    // submit time) and live inside the checksummed header, so every
    // epoch checksum also pins the admission outcomes. Single-owner logs
    // have none and render byte-identically to the pre-tenant format.
    for a in &log.admissions {
        let _ = writeln!(s, "{}", admission_line(a));
    }
    s
}

/// One epoch's record lines (`[epoch N]` through the last charge line),
/// *without* the `end` line — the bytes the chained checksum covers.
pub(crate) fn epoch_block(e: &EpochRecord) -> String {
    use std::fmt::Write;
    let mut block = String::new();
    let _ = writeln!(block, "[epoch {}]", e.epoch);
    for shift in &e.shifts {
        let _ = writeln!(block, "{}", shift_line(shift));
    }
    let _ = writeln!(block, "dispatch requested={} sent={}", e.requested, e.sent);
    // Fault-free epochs skip the line entirely, keeping their blocks
    // byte-identical to logs recorded before fault counters existed.
    if e.dropped != 0 || e.delayed != 0 || e.duplicated != 0 {
        let _ = writeln!(
            block,
            "faults dropped={} delayed={} duplicated={}",
            e.dropped, e.delayed, e.duplicated
        );
    }
    for r in &e.responses {
        let _ = writeln!(block, "{}", response_line(r));
    }
    for a in &e.actions {
        let _ = writeln!(block, "{}", action_line(a));
    }
    for c in &e.charges {
        let _ = writeln!(block, "{}", charge_line(c));
    }
    block
}

/// Advances the chained checksum over one epoch block: each link hashes
/// its block *and* the previous link, so order and completeness are
/// pinned.
pub(crate) fn advance_chain(chain: u64, block: &str) -> u64 {
    fnv1a64(format!("{}\n{block}", fmt_crc(chain)).as_bytes())
}

/// The `end epoch=N crc=…` line sealing one epoch block (with trailing
/// newline).
pub(crate) fn end_line(epoch: u64, chain: u64) -> String {
    format!("end epoch={epoch} crc={}\n", fmt_crc(chain))
}

/// Renders the canonical text form of a log. Deterministic: the same log
/// always yields identical bytes.
pub fn render(log: &RunLog) -> String {
    use std::fmt::Write;
    let mut s = header_text(log);
    // The chain seed covers the header: an epoch checksum therefore also
    // pins the spec, seed, and admissions it was recorded under.
    let mut chain = fnv1a64(s.as_bytes());
    for e in &log.epochs {
        let block = epoch_block(e);
        chain = advance_chain(chain, &block);
        s.push_str(&block);
        s.push_str(&end_line(e.epoch, chain));
    }
    let _ = writeln!(s, "[final]");
    if let Some(c) = log.report_checksum {
        let _ = writeln!(s, "report-checksum: {}", fmt_crc(c));
    }
    if let Some(c) = log.trace_checksum {
        let _ = writeln!(s, "trace-checksum: {}", fmt_crc(c));
    }
    let _ = writeln!(s, "checksum: {}", fmt_crc(fnv1a64(s.as_bytes())));
    s
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    lines: Vec<&'a str>,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn line_no(&self) -> usize {
        self.pos // pos is the index of the *next* line; after next() it is 1-based current
    }

    fn next(&mut self) -> Option<&'a str> {
        let line = self.lines.get(self.pos).copied();
        if line.is_some() {
            self.pos += 1;
        }
        line
    }

    fn peek(&self) -> Option<&'a str> {
        self.lines.get(self.pos).copied()
    }

    fn expect_prefix(&mut self, prefix: &str) -> Result<&'a str, CodecError> {
        match self.next() {
            Some(line) => line
                .strip_prefix(prefix)
                .ok_or_else(|| err(self.line_no(), format!("expected '{prefix}…', got '{line}'"))),
            None => Err(err(0, format!("unexpected end of log, expected '{prefix}…'"))),
        }
    }
}

/// The parsed checksummed header plus the chain seed it hashes to.
struct Header {
    scenario: String,
    seed: u64,
    spec_toml: String,
    admissions: Vec<AdmissionRecord>,
    chain: u64,
}

fn parse_header(cur: &mut Cursor<'_>) -> Result<Header, CodecError> {
    let version = cur.expect_prefix("# craqr runlog v")?;
    if version.trim() != RUNLOG_VERSION.to_string() {
        return Err(err(
            1,
            format!("unsupported runlog version 'v{version}' (this build reads v{RUNLOG_VERSION})"),
        ));
    }
    let scenario = cur.expect_prefix("scenario: ")?.to_string();
    let seed_str = cur.expect_prefix("seed: ")?;
    let seed = parse_u64(seed_str, cur.line_no(), "seed")?;
    let n_str = cur.expect_prefix("spec-lines: ")?;
    let spec_lines = parse_u64(n_str, cur.line_no(), "spec-lines")? as usize;
    let mut spec_toml = String::new();
    for _ in 0..spec_lines {
        match cur.next() {
            Some(line) => {
                spec_toml.push_str(line);
                spec_toml.push('\n');
            }
            None => return Err(err(0, "unexpected end of log inside the embedded spec")),
        }
    }
    let mut admissions: Vec<AdmissionRecord> = Vec::new();
    while let Some(line) = cur.peek() {
        let Some(rest) = line.strip_prefix("adm ") else { break };
        cur.next();
        admissions.push(parse_admission_line(cur.line_no(), rest)?);
    }
    let header: String = cur.lines[..cur.pos].iter().flat_map(|l| [l, "\n"]).collect::<String>();
    let chain = fnv1a64(header.as_bytes());
    Ok(Header { scenario, seed, spec_toml, admissions, chain })
}

/// Parses one epoch block (through its verified `end` line), or consumes
/// the `[final]` marker and returns `Ok(None)`.
///
/// `chain` is taken by value and the advanced link is returned alongside
/// the record, so a failed call leaves the caller's chain untouched — the
/// property the salvage parser relies on to re-anchor at the last good
/// epoch boundary.
fn parse_epoch(
    cur: &mut Cursor<'_>,
    parsed: usize,
    chain: u64,
) -> Result<Option<(EpochRecord, u64)>, CodecError> {
    let line_no = cur.pos + 1;
    let Some(line) = cur.next() else {
        return Err(err(0, "unexpected end of log, expected '[epoch N]' or '[final]'"));
    };
    if line == "[final]" {
        return Ok(None);
    }
    let index_str = line
        .strip_prefix("[epoch ")
        .and_then(|rest| rest.strip_suffix(']'))
        .ok_or_else(|| err(line_no, format!("expected '[epoch N]' or '[final]', got '{line}'")))?;
    let epoch = parse_u64(index_str, line_no, "epoch index")?;
    if epoch != parsed as u64 {
        return Err(err(
            line_no,
            format!("epoch indices must be gap-free from 0: expected {parsed}, got {epoch}"),
        ));
    }

    let mut block = format!("{line}\n");
    let mut record = EpochRecord { epoch, ..Default::default() };
    let mut saw_dispatch = false;
    // Strict record order inside a block: shifts, dispatch, responses,
    // actions, end.
    loop {
        let line_no = cur.pos + 1;
        let Some(line) = cur.next() else {
            return Err(err(0, format!("unexpected end of log inside epoch {epoch}")));
        };
        if let Some(rest) = line.strip_prefix("end ") {
            if !saw_dispatch {
                return Err(err(line_no, format!("epoch {epoch} has no dispatch line")));
            }
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 2 {
                return Err(err(line_no, format!("malformed end line: '{line}'")));
            }
            let end_epoch = parse_u64(kv(tokens[0], "epoch", line_no)?, line_no, "epoch")?;
            if end_epoch != epoch {
                return Err(err(
                    line_no,
                    format!("end line closes epoch {end_epoch} inside epoch {epoch}"),
                ));
            }
            let recorded = parse_crc(kv(tokens[1], "crc", line_no)?, line_no, "crc")?;
            let advanced = advance_chain(chain, &block);
            if recorded != advanced {
                return Err(err(
                    line_no,
                    format!(
                        "epoch {epoch} checksum mismatch: log says {}, content hashes to {} \
                         (the log was truncated, reordered, or edited)",
                        fmt_crc(recorded),
                        fmt_crc(advanced)
                    ),
                ));
            }
            return Ok(Some((record, advanced)));
        }
        block.push_str(line);
        block.push('\n');
        if let Some(rest) = line.strip_prefix("shift ") {
            if saw_dispatch {
                return Err(err(line_no, "shift records must precede the dispatch line"));
            }
            record.shifts.push(parse_shift_line(line_no, rest)?);
        } else if let Some(rest) = line.strip_prefix("dispatch ") {
            if saw_dispatch {
                return Err(err(line_no, "duplicate dispatch line in one epoch"));
            }
            saw_dispatch = true;
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 2 {
                return Err(err(line_no, format!("malformed dispatch line: '{line}'")));
            }
            record.requested =
                parse_u64(kv(tokens[0], "requested", line_no)?, line_no, "requested")?;
            record.sent = parse_u64(kv(tokens[1], "sent", line_no)?, line_no, "sent")?;
        } else if let Some(rest) = line.strip_prefix("faults ") {
            if !saw_dispatch {
                return Err(err(line_no, "the faults line must follow the dispatch line"));
            }
            if !record.responses.is_empty()
                || !record.actions.is_empty()
                || !record.charges.is_empty()
            {
                return Err(err(line_no, "the faults line must precede response records"));
            }
            if record.dropped != 0 || record.delayed != 0 || record.duplicated != 0 {
                return Err(err(line_no, "duplicate faults line in one epoch"));
            }
            let tokens: Vec<&str> = rest.split_whitespace().collect();
            if tokens.len() != 3 {
                return Err(err(line_no, format!("malformed faults line: '{line}'")));
            }
            record.dropped = parse_u64(kv(tokens[0], "dropped", line_no)?, line_no, "dropped")?;
            record.delayed = parse_u64(kv(tokens[1], "delayed", line_no)?, line_no, "delayed")?;
            record.duplicated =
                parse_u64(kv(tokens[2], "duplicated", line_no)?, line_no, "duplicated")?;
            if record.dropped == 0 && record.delayed == 0 && record.duplicated == 0 {
                // The renderer never writes an all-zero line; accepting
                // one would break render∘parse = identity.
                return Err(err(line_no, "all-zero faults line (fault-free epochs omit it)"));
            }
        } else if let Some(rest) = line.strip_prefix("r ") {
            if !saw_dispatch {
                return Err(err(line_no, "response records must follow the dispatch line"));
            }
            if !record.actions.is_empty() || !record.charges.is_empty() {
                return Err(err(line_no, "response records must precede action/charge records"));
            }
            record.responses.push(parse_response_line(line_no, rest)?);
        } else if let Some(rest) = line.strip_prefix("act ") {
            if !saw_dispatch {
                return Err(err(line_no, "action records must follow the dispatch line"));
            }
            if !record.charges.is_empty() {
                return Err(err(line_no, "action records must precede charge records"));
            }
            record.actions.push(parse_action_line(line_no, rest)?);
        } else if let Some(rest) = line.strip_prefix("charge ") {
            if !saw_dispatch {
                return Err(err(line_no, "charge records must follow the dispatch line"));
            }
            record.charges.push(parse_charge_line(line_no, rest)?);
        } else {
            return Err(err(line_no, format!("unrecognized record line: '{line}'")));
        }
    }
}

/// Parses the `[final]` block's seal lines and verifies the whole-document
/// checksum over everything consumed so far. The `[final]` marker itself
/// must already have been consumed.
fn parse_trailer(cur: &mut Cursor<'_>) -> Result<(Option<u64>, Option<u64>), CodecError> {
    let mut report_checksum = None;
    let mut trace_checksum = None;
    if let Some(line) = cur.peek() {
        if let Some(rest) = line.strip_prefix("report-checksum: ") {
            report_checksum = Some(parse_crc(rest, cur.pos + 1, "report-checksum")?);
            cur.next();
        }
    }
    if let Some(line) = cur.peek() {
        if let Some(rest) = line.strip_prefix("trace-checksum: ") {
            trace_checksum = Some(parse_crc(rest, cur.pos + 1, "trace-checksum")?);
            cur.next();
        }
    }
    let checksum_line_no = cur.pos + 1;
    let recorded = parse_crc(cur.expect_prefix("checksum: ")?, checksum_line_no, "checksum")?;
    let body: String = cur.lines[..cur.pos - 1].iter().flat_map(|l| [l, "\n"]).collect::<String>();
    let actual = fnv1a64(body.as_bytes());
    if recorded != actual {
        return Err(err(
            checksum_line_no,
            format!(
                "document checksum mismatch: log says {}, content hashes to {}",
                fmt_crc(recorded),
                fmt_crc(actual)
            ),
        ));
    }
    Ok((report_checksum, trace_checksum))
}

/// Nothing may follow the trailer (whitespace-only lines — a stray final
/// newline from an editor — are tolerated): anything else is unchecksummed
/// content masquerading as part of the log.
fn check_no_trailing(cur: &mut Cursor<'_>) -> Result<(), CodecError> {
    while let Some(extra) = cur.next() {
        if !extra.trim().is_empty() {
            return Err(err(cur.line_no(), format!("trailing content after checksum: '{extra}'")));
        }
    }
    Ok(())
}

/// Parses (and integrity-checks) a canonical text log: the version stamp,
/// every per-epoch chained checksum, and the whole-document trailer must
/// all verify, and epoch indices must be gap-free from zero.
pub fn parse(src: &str) -> Result<RunLog, CodecError> {
    let mut cur = Cursor { lines: src.lines().collect(), pos: 0 };
    let header = parse_header(&mut cur)?;
    let mut chain = header.chain;
    let mut epochs: Vec<EpochRecord> = Vec::new();
    while let Some((record, advanced)) = parse_epoch(&mut cur, epochs.len(), chain)? {
        chain = advanced;
        epochs.push(record);
    }
    let (report_checksum, trace_checksum) = parse_trailer(&mut cur)?;
    check_no_trailing(&mut cur)?;
    let Header { scenario, seed, spec_toml, admissions, .. } = header;
    Ok(RunLog { scenario, seed, spec_toml, admissions, epochs, report_checksum, trace_checksum })
}

// ---------------------------------------------------------------------------
// Salvage
// ---------------------------------------------------------------------------

/// Describes the bytes a salvage discarded after the last durable epoch
/// boundary (see [`parse_salvage`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Bytes of the longest valid checksummed prefix that was kept.
    pub valid_bytes: usize,
    /// Bytes discarded past the tear (0 when the log simply stopped at an
    /// epoch boundary with no trailer — a clean crash).
    pub discarded_bytes: usize,
    /// 1-based line of the first discarded line (one past the last line
    /// when the log ended early and nothing was discarded).
    pub line: usize,
    /// Why the remainder failed verification, in the strict parser's words.
    pub reason: String,
}

impl fmt::Display for TornTail {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "torn tail at line {}: {} byte(s) kept, {} discarded ({})",
            self.line, self.valid_bytes, self.discarded_bytes, self.reason
        )
    }
}

/// The outcome of a salvage parse: the longest valid checksummed prefix,
/// plus what (if anything) was torn off.
#[derive(Debug, Clone, PartialEq)]
pub struct Salvage {
    /// The salvaged log. Unsealed (no report/trace checksums) when the
    /// tear took the trailer with it — exactly the shape
    /// `craqr_scenario::resume` accepts as a crash prefix.
    pub log: RunLog,
    /// `None` when the whole document verified (equivalent to a clean
    /// [`parse`]); otherwise the tear description.
    pub torn: Option<TornTail>,
}

/// Byte offset where 0-based line `idx` starts in `src` (i.e. the length
/// of the first `idx` lines including their newlines); `src.len()` when
/// `idx` is past the last line.
fn byte_offset_of_line(src: &str, idx: usize) -> usize {
    let mut offset = 0;
    for (i, seg) in src.split_inclusive('\n').enumerate() {
        if i == idx {
            return offset;
        }
        offset += seg.len();
    }
    src.len()
}

/// Parses as much of a (possibly torn) log as verifies, instead of
/// rejecting it outright.
///
/// The salvage keeps the longest prefix whose checksums all hold —
/// header, then whole epochs up to the first block whose chained CRC
/// fails or that is cut mid-record — and reports everything after that
/// boundary as a structured [`TornTail`]. A log whose *header* does not
/// parse is beyond salvage (the scenario, seed, and spec are gone) and
/// still fails hard with the strict parser's error.
///
/// Guarantees, proptested against truncation at every byte offset:
/// the salvaged log's canonical render always re-parses clean, and it
/// never contains more epochs than the input's last durable (`end`-sealed)
/// epoch boundary.
pub fn parse_salvage(src: &str) -> Result<Salvage, CodecError> {
    let mut cur = Cursor { lines: src.lines().collect(), pos: 0 };
    let header = parse_header(&mut cur)?;
    let mut chain = header.chain;
    let mut epochs: Vec<EpochRecord> = Vec::new();
    let mut report_checksum = None;
    let mut trace_checksum = None;
    let mut tear: Option<(usize, CodecError)> = None;
    loop {
        let mark = cur.pos;
        match parse_epoch(&mut cur, epochs.len(), chain) {
            Ok(Some((record, advanced))) => {
                chain = advanced;
                epochs.push(record);
            }
            Ok(None) => {
                // `[final]` was consumed at line index `mark`. A trailer
                // that fails to verify is torn off whole — its seal lines
                // attest to a run this prefix does not represent.
                match parse_trailer(&mut cur) {
                    Ok((report, trace)) => {
                        let after = cur.pos;
                        if check_no_trailing(&mut cur).is_err() {
                            // Sealed trailer verified but unchecksummed
                            // content rides behind it: keep the seals,
                            // tear at the first non-blank trailing line.
                            let mut idx = after;
                            while cur.lines[idx].trim().is_empty() {
                                idx += 1;
                            }
                            let reason =
                                err(idx + 1, "trailing content after checksum".to_string());
                            tear = Some((idx, reason));
                        }
                        report_checksum = report;
                        trace_checksum = trace;
                    }
                    Err(reason) => {
                        cur.pos = mark;
                        tear = Some((mark, reason));
                    }
                }
                break;
            }
            Err(reason) => {
                cur.pos = mark;
                tear = Some((mark, reason));
                break;
            }
        }
    }
    let Header { scenario, seed, spec_toml, admissions, .. } = header;
    let log =
        RunLog { scenario, seed, spec_toml, admissions, epochs, report_checksum, trace_checksum };
    let torn = tear.map(|(idx, reason)| {
        let valid_bytes = byte_offset_of_line(src, idx);
        TornTail {
            valid_bytes,
            discarded_bytes: src.len() - valid_bytes,
            line: idx + 1,
            reason: reason.message,
        }
    });
    Ok(Salvage { log, torn })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunLog {
        RunLog {
            scenario: "unit".into(),
            seed: 4101,
            spec_toml: "name = \"unit\"\nseed = 4101\n".into(),
            admissions: vec![
                AdmissionRecord {
                    tenant: 0,
                    submission: 0,
                    demand: 12.5,
                    committed: 0.0,
                    capacity: 40.0,
                    admitted: true,
                },
                AdmissionRecord {
                    tenant: 1,
                    submission: 1,
                    demand: 99.0,
                    committed: 0.0,
                    capacity: 10.0,
                    admitted: false,
                },
            ],
            epochs: vec![
                EpochRecord {
                    epoch: 0,
                    shifts: vec![ShiftEvent::Participation { factor: 0.2 }],
                    requested: 64,
                    sent: 64,
                    dropped: 2,
                    delayed: 1,
                    duplicated: 0,
                    responses: vec![
                        ResponseRecord {
                            sensor: 12,
                            attr: 0,
                            t: 3.25,
                            x: 1.2,
                            y: 0.5,
                            value: ValueRecord::Float(18.25),
                            issued_at: 0.0,
                        },
                        ResponseRecord {
                            sensor: 7,
                            attr: 1,
                            t: 4.0,
                            x: 0.1,
                            y: 3.9,
                            value: ValueRecord::Bool(true),
                            issued_at: 0.0,
                        },
                    ],
                    actions: vec![],
                    charges: vec![ChargeRecord { tenant: 0, spent: 11.25 }],
                },
                EpochRecord {
                    epoch: 1,
                    shifts: vec![ShiftEvent::Dropout {
                        probability: 0.5,
                        rect: (0.0, 0.0, 2.0, 2.0),
                    }],
                    requested: 96,
                    sent: 90,
                    dropped: 0,
                    delayed: 0,
                    duplicated: 0,
                    responses: vec![],
                    actions: vec![
                        ActionRecord::SetBudget { cell: (1, 0), attr: 0, budget: 3.5 },
                        ActionRecord::RebuildChain { cell: (1, 0), attr: 0 },
                    ],
                    charges: vec![],
                },
            ],
            report_checksum: Some(0xDEAD),
            trace_checksum: None,
        }
    }

    #[test]
    fn render_is_deterministic_and_parses_back() {
        let log = sample();
        let text = render(&log);
        assert_eq!(text, render(&log));
        let parsed = parse(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(parsed, log);
    }

    #[test]
    fn tampering_with_any_epoch_is_detected() {
        let text = render(&sample());
        // Flip one response value deep inside epoch 0.
        let tampered = text.replace("v=f18.25", "v=f19.25");
        assert_ne!(text, tampered);
        let e = parse(&tampered).unwrap_err();
        assert!(e.message.contains("checksum mismatch"), "{e}");

        // Drop epoch 1's block entirely (splice epoch 0's end straight to
        // [final]): the chain breaks at the document trailer.
        let start = text.find("[epoch 1]").unwrap();
        let end = text.find("[final]").unwrap();
        let truncated = format!("{}{}", &text[..start], &text[end..]);
        assert!(parse(&truncated).is_err());
    }

    #[test]
    fn version_and_structure_are_enforced() {
        let text = render(&sample());
        let future = text.replace("# craqr runlog v1", "# craqr runlog v2");
        let e = parse(&future).unwrap_err();
        assert!(e.message.contains("unsupported runlog version"), "{e}");
        assert_eq!(e.line, 1);

        let reordered = text.replace("[epoch 1]", "[epoch 7]");
        let e = parse(&reordered).unwrap_err();
        assert!(e.message.contains("gap-free"), "{e}");

        assert!(parse("").is_err());
        assert!(parse("# craqr runlog v1\n").is_err());

        // Trailing garbage is rejected even when a blank line precedes it
        // — nothing unchecksummed may ride along after the trailer.
        let annotated = format!("{text}\nTAMPERED ANNOTATION\n");
        let e = parse(&annotated).unwrap_err();
        assert!(e.message.contains("trailing content"), "{e}");
        // A stray final newline alone stays tolerated.
        assert!(parse(&format!("{text}\n")).is_ok());
    }

    #[test]
    fn empty_log_round_trips() {
        let log = RunLog {
            scenario: "empty".into(),
            seed: 0,
            spec_toml: String::new(),
            admissions: vec![],
            epochs: vec![],
            report_checksum: None,
            trace_checksum: None,
        };
        let text = render(&log);
        assert_eq!(parse(&text).unwrap(), log);
    }

    #[test]
    fn floats_round_trip_in_shortest_form() {
        for f in [0.1, -0.0, 1.0, 1e-300, f64::MAX, 123_456_789.123_456_79, 2.5e-17] {
            let s = fmt_f64(f);
            let back: f64 = s.parse().unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} → '{s}' → {back}");
        }
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(-0.0), "-0.0");
    }

    #[test]
    fn checksum_matches_trailer_line() {
        let log = sample();
        let text = render(&log);
        assert!(text.ends_with(&format!("checksum: {}\n", fmt_crc(log.checksum()))));
    }
}
