//! Property tests for the salvage parser: truncate a valid rendered log
//! at *every byte offset* — not just record boundaries — and check that
//! the salvaged prefix always re-parses clean and never claims more
//! epochs than the truncated bytes durably contain.

use craqr_runlog::{
    parse_salvage, ActionRecord, AdmissionRecord, ChargeRecord, EpochRecord, ResponseRecord,
    RunLog, ShiftEvent, ValueRecord,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn arb_f64(rng: &mut StdRng) -> f64 {
    loop {
        let f = f64::from_bits(rng.gen());
        if f.is_finite() {
            return f;
        }
    }
}

fn arb_log(rng: &mut StdRng) -> RunLog {
    let epochs = (0..rng.gen_range(0usize..5))
        .map(|epoch| EpochRecord {
            epoch: epoch as u64,
            shifts: if rng.gen() {
                vec![ShiftEvent::Participation { factor: arb_f64(rng) }]
            } else {
                vec![]
            },
            requested: rng.gen(),
            sent: rng.gen(),
            dropped: 0,
            delayed: 0,
            duplicated: 0,
            responses: (0..rng.gen_range(0usize..5))
                .map(|_| ResponseRecord {
                    sensor: rng.gen(),
                    attr: rng.gen(),
                    t: arb_f64(rng),
                    x: arb_f64(rng),
                    y: arb_f64(rng),
                    value: if rng.gen() {
                        ValueRecord::Bool(rng.gen())
                    } else {
                        ValueRecord::Float(arb_f64(rng))
                    },
                    issued_at: arb_f64(rng),
                })
                .collect(),
            actions: if rng.gen() {
                vec![ActionRecord::RebuildChain {
                    cell: (rng.gen_range(0u32..9), rng.gen_range(0u32..9)),
                    attr: rng.gen(),
                }]
            } else {
                vec![]
            },
            charges: if rng.gen() {
                vec![ChargeRecord { tenant: rng.gen_range(0u32..4), spent: arb_f64(rng) }]
            } else {
                vec![]
            },
        })
        .collect();
    RunLog {
        scenario: format!("salvage_{}", rng.gen_range(0u32..1000)),
        seed: rng.gen(),
        // Adversarial embedded spec: record-lookalike lines must neither
        // parse as records nor confuse the tear accounting.
        spec_toml: "name = \"salvage\"\n[epoch 0]\nend epoch=0 crc=0xdeadbeefdeadbeef\n".into(),
        admissions: (0..rng.gen_range(0usize..3))
            .map(|i| AdmissionRecord {
                tenant: rng.gen_range(0u32..4),
                submission: i as u32,
                demand: arb_f64(rng),
                committed: arb_f64(rng),
                capacity: arb_f64(rng),
                admitted: rng.gen(),
            })
            .collect(),
        epochs,
        report_checksum: if rng.gen() { Some(rng.gen()) } else { None },
        trace_checksum: if rng.gen() { Some(rng.gen()) } else { None },
    }
}

/// Byte offset of the first line that leaves the header (the first
/// `[epoch …]` / `[final]` line). Any cut at or past this point has a
/// complete header and therefore must salvage.
fn header_len(text: &str) -> usize {
    let mut offset = 0;
    let mut spec_left = 0usize;
    for line in text.split_inclusive('\n') {
        if spec_left > 0 {
            // Embedded spec lines are opaque — `[epoch …]` lookalikes in
            // the spec must not end the header scan.
            spec_left -= 1;
        } else if let Some(n) = line.strip_prefix("spec-lines: ") {
            spec_left = n.trim().parse().unwrap();
        } else if line.starts_with("[epoch ") || line.starts_with("[final]") {
            return offset;
        }
        offset += line.len();
    }
    offset
}

/// Upper bound on the durable epochs in `prefix`: complete,
/// newline-terminated `end epoch=` lines (lines inside the embedded spec
/// can only inflate the bound, never shrink it).
fn durable_bound(prefix: &str) -> usize {
    prefix
        .split_inclusive('\n')
        .filter(|l| {
            // Newline-terminated end lines are complete; an unterminated
            // final end line still counts if all 16 CRC hex digits made
            // it (the fixed-width render means a shorter tail is a cut).
            l.starts_with("end epoch=")
                && (l.ends_with('\n')
                    || l.rsplit_once("crc=0x").is_some_and(|(_, hex)| hex.trim().len() == 16))
        })
        .count()
}

fn check_every_offset(log: &RunLog) {
    let text = log.canonical();
    let header = header_len(&text);
    for cut in 0..=text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let prefix = &text[..cut];
        let salvage = match parse_salvage(prefix) {
            Ok(s) => s,
            Err(e) => {
                assert!(
                    cut < header,
                    "cut at byte {cut} (header ends at {header}) failed to salvage: {e}"
                );
                continue;
            }
        };
        // The salvaged prefix always re-parses clean…
        let canon = salvage.log.canonical();
        if let Err(e) = RunLog::parse(&canon) {
            panic!("salvage of cut {cut} does not re-parse: {e}\n{canon}");
        }
        // …and never exceeds the last durable epoch boundary.
        assert!(
            salvage.log.epochs.len() <= durable_bound(prefix),
            "cut at byte {cut}: salvaged {} epochs from {} durable end lines",
            salvage.log.epochs.len(),
            durable_bound(prefix)
        );
        assert!(salvage.log.epochs.len() <= log.epochs.len());
        match salvage.torn {
            // Only a (semantically) complete document salvages tear-free:
            // the full text, or the full text minus its final newline.
            None => {
                assert!(cut >= text.len() - 1, "cut at byte {cut} salvaged with no tear");
                assert_eq!(&salvage.log, log, "a complete document salvages to itself");
            }
            Some(torn) => {
                assert!(cut < text.len(), "the complete document reported a tear");
                assert_eq!(
                    torn.valid_bytes + torn.discarded_bytes,
                    cut,
                    "tear bytes must tile the cut"
                );
                assert!(torn.line >= 1);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn truncation_at_every_byte_offset_salvages_cleanly(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let log = arb_log(&mut rng);
        check_every_offset(&log);
    }
}

#[test]
fn empty_and_sealed_edge_logs_survive_every_offset() {
    let empty = RunLog {
        scenario: "edge".into(),
        seed: 0,
        spec_toml: String::new(),
        admissions: vec![],
        epochs: vec![],
        report_checksum: None,
        trace_checksum: None,
    };
    check_every_offset(&empty);
    let sealed = RunLog {
        epochs: vec![EpochRecord { epoch: 0, requested: 3, sent: 3, ..Default::default() }],
        report_checksum: Some(0xABCD),
        trace_checksum: Some(0x1234),
        ..empty
    };
    check_every_offset(&sealed);
}
