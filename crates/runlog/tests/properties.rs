//! Property tests for the run-log codec: `parse(render(log)) == log`
//! over generated logs — including adversarial embedded specs and
//! bit-pattern floats — plus integrity-failure detection on mutation.

use craqr_runlog::{
    ActionRecord, AdmissionRecord, ChargeRecord, EpochRecord, ResponseRecord, RunLog, ShiftEvent,
    ValueRecord,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A finite f64 drawn from raw bit patterns — exercises subnormals,
/// huge/tiny magnitudes, and negative zero, not just "nice" decimals.
fn arb_f64(rng: &mut StdRng) -> f64 {
    loop {
        let f = f64::from_bits(rng.gen());
        if f.is_finite() {
            return f;
        }
    }
}

fn arb_rect(rng: &mut StdRng) -> (f64, f64, f64, f64) {
    (arb_f64(rng), arb_f64(rng), arb_f64(rng), arb_f64(rng))
}

fn arb_shift(rng: &mut StdRng) -> ShiftEvent {
    match rng.gen_range(0u8..3) {
        0 => ShiftEvent::Participation { factor: arb_f64(rng) },
        1 => ShiftEvent::Dropout { probability: arb_f64(rng), rect: arb_rect(rng) },
        _ => ShiftEvent::Migrate { probability: arb_f64(rng), rect: arb_rect(rng) },
    }
}

fn arb_response(rng: &mut StdRng) -> ResponseRecord {
    ResponseRecord {
        sensor: rng.gen(),
        attr: rng.gen(),
        t: arb_f64(rng),
        x: arb_f64(rng),
        y: arb_f64(rng),
        value: if rng.gen() {
            ValueRecord::Bool(rng.gen())
        } else {
            ValueRecord::Float(arb_f64(rng))
        },
        issued_at: arb_f64(rng),
    }
}

fn arb_action(rng: &mut StdRng) -> ActionRecord {
    let cell = (rng.gen_range(0u32..64), rng.gen_range(0u32..64));
    let attr = rng.gen::<u16>();
    if rng.gen() {
        ActionRecord::SetBudget { cell, attr, budget: arb_f64(rng) }
    } else {
        ActionRecord::RebuildChain { cell, attr }
    }
}

/// An embedded spec with adversarial content: lines that *look* like
/// runlog records must pass through untouched (the parser counts lines,
/// it never interprets them).
fn arb_spec_toml(rng: &mut StdRng) -> String {
    let tricky = [
        "name = \"prop\"",
        "[epoch 0]",
        "end epoch=0 crc=0xdeadbeefdeadbeef",
        "checksum: 0x0000000000000000",
        "[final]",
        "r s=1 a=2 t=3 x=4 y=5 v=f6 issued=7",
        "",
        "   indented = true   ",
        "# craqr runlog v1",
        "unicode = \"λ✓π\"",
    ];
    let n = rng.gen_range(0usize..12);
    let mut s = String::new();
    for _ in 0..n {
        s.push_str(tricky[rng.gen_range(0..tricky.len())]);
        s.push('\n');
    }
    s
}

fn arb_admission(rng: &mut StdRng, submission: u32) -> AdmissionRecord {
    AdmissionRecord {
        tenant: rng.gen_range(0u32..8),
        submission,
        demand: arb_f64(rng),
        committed: arb_f64(rng),
        capacity: arb_f64(rng),
        admitted: rng.gen(),
    }
}

fn arb_charge(rng: &mut StdRng) -> ChargeRecord {
    ChargeRecord { tenant: rng.gen_range(0u32..8), spent: arb_f64(rng) }
}

fn arb_log(rng: &mut StdRng) -> RunLog {
    let epochs = (0..rng.gen_range(0usize..6))
        .map(|epoch| EpochRecord {
            epoch: epoch as u64,
            shifts: (0..rng.gen_range(0usize..3)).map(|_| arb_shift(rng)).collect(),
            requested: rng.gen(),
            sent: rng.gen(),
            dropped: 0,
            delayed: 0,
            duplicated: 0,
            responses: (0..rng.gen_range(0usize..8)).map(|_| arb_response(rng)).collect(),
            actions: (0..rng.gen_range(0usize..4)).map(|_| arb_action(rng)).collect(),
            charges: (0..rng.gen_range(0usize..4)).map(|_| arb_charge(rng)).collect(),
        })
        .collect();
    RunLog {
        scenario: format!("prop_{}", rng.gen_range(0u32..1000)),
        seed: rng.gen(),
        spec_toml: arb_spec_toml(rng),
        admissions: (0..rng.gen_range(0usize..5)).map(|i| arb_admission(rng, i as u32)).collect(),
        epochs,
        report_checksum: if rng.gen() { Some(rng.gen()) } else { None },
        trace_checksum: if rng.gen() { Some(rng.gen()) } else { None },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn render_parse_is_the_identity(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let log = arb_log(&mut rng);
        let text = log.canonical();
        prop_assert_eq!(&text, &log.canonical(), "rendering is not deterministic");
        let parsed = RunLog::parse(&text);
        prop_assert!(parsed.is_ok(), "re-parse failed: {:?}\n{}", parsed.err(), text);
        prop_assert_eq!(&parsed.unwrap(), &log, "round trip changed the log:\n{}", text);
    }

    #[test]
    fn single_line_mutations_never_parse_cleanly_as_the_same_log(seed in any::<u64>()) {
        // Flip one digit somewhere in a rendered log: either the parse
        // fails (structure/checksum) or — if the mutation landed in the
        // opaque spec block — the parsed log differs from the original.
        // A mutation that parses back *equal* would mean the codec
        // ignores content, which is exactly what the checksums forbid.
        let mut rng = StdRng::seed_from_u64(seed);
        let log = arb_log(&mut rng);
        let text = log.canonical();
        let digit_positions: Vec<usize> = text
            .char_indices()
            .filter(|(_, c)| c.is_ascii_digit())
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!digit_positions.is_empty());
        let at = digit_positions[rng.gen_range(0..digit_positions.len())];
        let old = text.as_bytes()[at];
        let new = if old == b'9' { b'0' } else { old + 1 };
        let mut mutated = text.into_bytes();
        mutated[at] = new;
        let mutated = String::from_utf8(mutated).unwrap();
        match RunLog::parse(&mutated) {
            Err(_) => {}
            Ok(reparsed) => prop_assert!(
                reparsed != log,
                "a content mutation at byte {at} parsed back as the identical log"
            ),
        }
    }
}
