//! Replaying, resuming, and verifying event-sourced runs.
//!
//! A [`RunLog`] recorded by `run_full`/`run_recorded` is a complete event
//! source for the server side of a run: the embedded spec, the seed, and
//! every epoch's crowd inputs. This module closes the loop:
//!
//! - [`replay`] re-drives a server from the log with the **crowd
//!   detached** (a zero-sensor world; the recorded responses stand in
//!   for it) under any [`ExecMode`], re-records as it goes, and verifies
//!   both layers: the regenerated epoch inputs/decisions must be
//!   structurally identical to the log, and the final report/trace
//!   checksums must match the seals the recording run wrote. A faithful
//!   log therefore replays **byte-for-byte**, serial or sharded.
//! - [`resume`] truncates at epoch *k* and continues **live**. In this
//!   in-process system the world itself is part of the deterministic
//!   simulation, so "rebuild state at *k*" re-drives the world from the
//!   spec; the log's job during the prefix is *verification* — every
//!   rebuilt epoch is cross-checked record-by-record against what the
//!   original run actually consumed, and the first divergence is
//!   reported precisely ([`ReplayError::Diverged`]). Past *k* the run is
//!   fresh, and an unperturbed resume re-converges on the uninterrupted
//!   run's exact report and trace.
//! - Both paths return the same [`RunOutput`] a live run does, including
//!   a freshly sealed log, so replays and resumes are themselves
//!   replayable.

use crate::runner::{
    build_server, drive, epoch_row, finalize_report, make_collector, phase_timer,
    spec_shift_schedule, RunError, RunOutput, ShiftSink, ShiftTap,
};
use crate::spec::{ScenarioSpec, SpecError};
use craqr_adaptive::{AdaptiveController, AdaptiveTrace};
use craqr_core::{ControlHook, ExecMode, ReplayInputs};
use craqr_runlog::{diff_logs, RunLog, RunLogRecorder, ShiftEvent};
use craqr_sensing::SensorResponse;
use std::fmt;

/// Why a replay or resume failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The log's embedded spec no longer parses/validates (recorded by an
    /// incompatible version, or hand-edited).
    Spec(SpecError),
    /// The reconstructed scenario failed to run.
    Run(RunError),
    /// The resume point lies beyond the recorded epochs.
    BadResumePoint {
        /// Requested epoch boundary.
        at: usize,
        /// Epochs the log actually holds.
        recorded: usize,
    },
    /// The re-driven run no longer produces the recorded inputs or
    /// decisions — the code, spec semantics, or log diverged.
    Diverged {
        /// First epoch that differs (`None`: a header-level difference).
        epoch: Option<u64>,
        /// Human-readable difference report (see
        /// [`craqr_runlog::LogDiff::render`]).
        details: String,
    },
    /// The run completed and its inputs matched, but a sealed final
    /// checksum did not.
    ChecksumMismatch {
        /// `"report"` or `"trace"`.
        what: &'static str,
        /// The checksum the log recorded.
        recorded: u64,
        /// The checksum this run produced.
        actual: u64,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Spec(e) => write!(f, "embedded spec: {e}"),
            ReplayError::Run(e) => write!(f, "{e}"),
            ReplayError::BadResumePoint { at, recorded } => {
                write!(f, "cannot resume at epoch {at}: the log records only {recorded} epoch(s)")
            }
            ReplayError::Diverged { epoch, details } => match epoch {
                Some(e) => write!(f, "run diverged from the log at epoch {e}:\n{details}"),
                None => write!(f, "run diverged from the log:\n{details}"),
            },
            ReplayError::ChecksumMismatch { what, recorded, actual } => write!(
                f,
                "{what} checksum mismatch: log sealed {recorded:#018x}, run produced \
                 {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<SpecError> for ReplayError {
    fn from(e: SpecError) -> Self {
        ReplayError::Spec(e)
    }
}

impl From<RunError> for ReplayError {
    fn from(e: RunError) -> Self {
        ReplayError::Run(e)
    }
}

/// Parses and validates the spec a log embeds.
pub fn spec_of(log: &RunLog) -> Result<ScenarioSpec, ReplayError> {
    Ok(ScenarioSpec::from_toml(&log.spec_toml)?)
}

/// Re-drives a server from a recorded log with the crowd detached and
/// verifies the regeneration (see the module docs). Works under any
/// `exec` regardless of how the run was recorded — the log is
/// mode-independent by construction.
pub fn replay(log: &RunLog, exec: ExecMode) -> Result<RunOutput, ReplayError> {
    replay_instrumented(log, exec, false)
}

/// [`replay`] with the clock-derived metric tier switched on — the CLI
/// `metrics` subcommand uses this to render a full metrics snapshot from
/// any committed log without touching the original run. Timing changes
/// nothing checksummed, so the replay verifies exactly as untimed.
pub fn replay_instrumented(
    log: &RunLog,
    exec: ExecMode,
    timing: bool,
) -> Result<RunOutput, ReplayError> {
    replay_inner(log, exec, timing, false)
}

/// [`replay`] on the pipelined executor
/// ([`craqr_core::EpochDriver::run_replayed_pipelined`]): the recorded
/// inputs flow through the four stage workers and the regenerated log
/// must still match the recording byte-for-byte.
pub fn replay_pipelined(log: &RunLog, exec: ExecMode) -> Result<RunOutput, ReplayError> {
    replay_inner(log, exec, false, true)
}

fn replay_inner(
    log: &RunLog,
    exec: ExecMode,
    timing: bool,
    pipelined: bool,
) -> Result<RunOutput, ReplayError> {
    let spec = spec_of(log)?;
    let (mut server, qids) = build_server(&spec, log.seed, exec, true)?;
    // A `[telemetry]` spec recorded a `[telemetry]` report section, so
    // the replay must rebuild the registry from the same replay-stable
    // sources or the sealed report checksum cannot re-converge.
    let mut telemetry = make_collector(&spec, timing);
    if timing {
        server.set_engine_timing(true);
    }
    if let Some(t) = &mut telemetry {
        t.observe_admissions(server.admissions());
    }
    let mut controller = match &spec.adaptive {
        Some(a) => Some(AdaptiveController::new(a.to_config().map_err(ReplayError::Spec)?)),
        None => None,
    };
    let mut recorder = RunLogRecorder::new(&log.scenario, log.seed, &log.spec_toml);
    // Admission re-ran deterministically inside build_server; the diff
    // below verifies the re-derived verdicts against the recorded ones.
    recorder.record_admissions(server.admissions());

    // The recorded shift events have no world to apply to; they are
    // echoed into the fresh log (for the structural comparison) by the
    // tap adapter, exactly when the recording run appended them.
    let shift_schedule: Vec<Vec<ShiftEvent>> =
        log.epochs.iter().map(|r| r.shifts.clone()).collect();
    let responses: Vec<Vec<SensorResponse>> = log
        .epochs
        .iter()
        .map(|r| r.responses.iter().map(|resp| resp.to_response()).collect())
        .collect();
    let responses_delivered: u64 = log.epochs.iter().map(|r| r.responses.len() as u64).sum();
    let inputs: Vec<ReplayInputs<'_>> = log
        .epochs
        .iter()
        .zip(&responses)
        .map(|(r, resp)| ReplayInputs { sent: r.sent, responses: resp, faults: r.faults() })
        .collect();

    let mut tap = ShiftTap::new(&mut recorder as &mut dyn ShiftSink, shift_schedule, None);
    let outcome = {
        let mut d = server.driver().tap(&mut tap);
        if let Some(c) = controller.as_mut() {
            d = d.hook(c as &mut dyn ControlHook);
        }
        if let Some(t) = phase_timer(&mut telemetry, timing) {
            d = d.timer(t);
        }
        if pipelined {
            d.run_replayed_pipelined(&inputs)
        } else {
            d.run_replayed(&inputs)
        }
    };
    drop(tap);

    let mut epochs = Vec::with_capacity(outcome.reports.len());
    for r in &outcome.reports {
        if let Some(t) = &mut telemetry {
            t.observe_epoch(r);
        }
        epochs.push(epoch_row(r));
    }

    let trace = controller.map(AdaptiveController::into_trace);
    let report = finalize_report(
        &spec,
        log.seed,
        &mut server,
        &qids,
        epochs,
        responses_delivered,
        trace.as_ref(),
        telemetry.as_mut(),
    );
    let mut fresh = recorder.finish(report.checksum(), trace.as_ref().map(AdaptiveTrace::checksum));

    // Layer 1: the regenerated inputs and decisions must be structurally
    // identical to the recording. The seals are layer 2's business, so
    // align them on the fresh copy for the diff (cheaper than cloning
    // both multi-hundred-KB logs just to strip two fields) and restore
    // them afterwards.
    let (fresh_report_seal, fresh_trace_seal) = (fresh.report_checksum, fresh.trace_checksum);
    fresh.report_checksum = log.report_checksum;
    fresh.trace_checksum = log.trace_checksum;
    let diff = diff_logs(log, &fresh);
    fresh.report_checksum = fresh_report_seal;
    fresh.trace_checksum = fresh_trace_seal;
    if !diff.identical() {
        return Err(ReplayError::Diverged {
            epoch: diff.first_divergence().map(|d| d.epoch),
            details: diff.render(),
        });
    }
    // Layer 2: the sealed final checksums must reproduce byte-for-byte.
    verify_seals(log, &fresh)?;
    Ok(RunOutput { report, trace, log: Some(fresh), telemetry })
}

/// Resumes a recorded run at epoch boundary `at` (0-based: epochs
/// `0..at` are rebuilt and verified against the log, epochs `at..` run
/// fresh) and carries the run through to the spec's full horizon. See
/// the module docs for the verification contract.
pub fn resume(log: &RunLog, exec: ExecMode, at: usize) -> Result<RunOutput, ReplayError> {
    resume_inner(log, exec, at, false)
}

/// [`resume`] on the pipelined executor: the rebuilt prefix and the
/// fresh suffix both run through the staged dataflow, and an
/// unperturbed resume still re-converges on the sealed finals.
pub fn resume_pipelined(log: &RunLog, exec: ExecMode, at: usize) -> Result<RunOutput, ReplayError> {
    resume_inner(log, exec, at, true)
}

fn resume_inner(
    log: &RunLog,
    exec: ExecMode,
    at: usize,
    pipelined: bool,
) -> Result<RunOutput, ReplayError> {
    if at > log.epochs.len() {
        return Err(ReplayError::BadResumePoint { at, recorded: log.epochs.len() });
    }
    let spec = spec_of(log)?;
    let (mut server, qids) = build_server(&spec, log.seed, exec, false)?;
    // `[telemetry]` specs need the registry rebuilt over the whole
    // horizon (prefix included) for the final report to re-converge.
    let mut telemetry = make_collector(&spec, false);
    if let Some(t) = &mut telemetry {
        t.observe_admissions(server.admissions());
    }
    let mut controller = match &spec.adaptive {
        Some(a) => Some(AdaptiveController::new(a.to_config().map_err(ReplayError::Spec)?)),
        None => None,
    };
    let mut recorder = RunLogRecorder::new(&log.scenario, log.seed, &log.spec_toml);
    recorder.record_admissions(server.admissions());
    // The rebuilt admission verdicts must match what the original run
    // recorded — a resume must not silently admit what the recorded run
    // rejected (or vice versa).
    let rebuilt_admissions: Vec<craqr_runlog::AdmissionRecord> =
        server.admissions().iter().map(craqr_runlog::AdmissionRecord::from).collect();
    if rebuilt_admissions != log.admissions {
        return Err(ReplayError::Diverged {
            epoch: None,
            details: format!(
                "admission decisions diverged from the log: recorded {:?}, rebuilt {:?}",
                log.admissions, rebuilt_admissions
            ),
        });
    }

    let mut tap =
        ShiftTap::new(&mut recorder as &mut dyn ShiftSink, spec_shift_schedule(&spec), None);
    let outcome = drive(
        &mut server,
        &spec,
        spec.epochs as u64,
        controller.as_mut().map(|c| c as &mut dyn ControlHook),
        Some(&mut tap),
        None,
        None,
        pipelined,
    );
    drop(tap);

    let mut epochs = Vec::with_capacity(outcome.reports.len());
    for r in &outcome.reports {
        if let Some(t) = &mut telemetry {
            t.observe_epoch(r);
        }
        epochs.push(epoch_row(r));
    }

    // Inside the rebuilt prefix every epoch must reproduce the log's
    // record exactly; diverging silently here would poison everything
    // after the resume point — report the first mismatching epoch.
    for e in 0..at {
        let details = craqr_runlog::diff::diff_epoch(&log.epochs[e], &recorder.epochs()[e]);
        if !details.is_empty() {
            return Err(ReplayError::Diverged {
                epoch: Some(e as u64),
                details: details.join("\n"),
            });
        }
    }

    let trace = controller.map(AdaptiveController::into_trace);
    let responses_delivered = server.crowd().responses_delivered();
    let report = finalize_report(
        &spec,
        log.seed,
        &mut server,
        &qids,
        epochs,
        responses_delivered,
        trace.as_ref(),
        telemetry.as_mut(),
    );
    let fresh = recorder.finish(report.checksum(), trace.as_ref().map(AdaptiveTrace::checksum));
    // A resume of an unperturbed log re-converges on the sealed finals;
    // only verify them when the whole horizon was recorded (a truncated
    // log carries no seals — `RunLog::truncated` dropped them).
    verify_seals(log, &fresh)?;
    Ok(RunOutput { report, trace, log: Some(fresh), telemetry })
}

/// Verifies the original log's sealed final checksums (if any) against a
/// freshly sealed log.
fn verify_seals(original: &RunLog, fresh: &RunLog) -> Result<(), ReplayError> {
    if let (Some(recorded), Some(actual)) = (original.report_checksum, fresh.report_checksum) {
        if recorded != actual {
            return Err(ReplayError::ChecksumMismatch { what: "report", recorded, actual });
        }
    }
    if let (Some(recorded), Some(actual)) = (original.trace_checksum, fresh.trace_checksum) {
        if recorded != actual {
            return Err(ReplayError::ChecksumMismatch { what: "trace", recorded, actual });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::ScenarioRunner;

    fn spec_toml() -> String {
        r#"
name = "replay-unit"
seed = 19
epochs = 6

[grid]
size_km = 4.0
side = 4

[population]
size = 300
human_fraction = 0.0
placement = { kind = "uniform" }
mobility = { kind = "walk", sigma = 0.15 }

[[attributes]]
name = "temp"
field = { kind = "constant", value = 21.0 }

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"

[[shifts]]
kind = "participation"
epoch = 3
factor = 0.4

[adaptive]
warmup_epochs = 1
cooldown_epochs = 2

[runlog]
"#
        .to_string()
    }

    fn recorded() -> (RunOutput, ScenarioRunner) {
        let runner = ScenarioRunner::new(ScenarioSpec::from_toml(&spec_toml()).unwrap()).unwrap();
        let out = runner.run_full(ExecMode::Serial, 19).unwrap();
        assert!(out.log.is_some(), "[runlog] spec must record");
        (out, runner)
    }

    #[test]
    fn replay_reproduces_report_and_trace_in_both_modes() {
        let (live, _) = recorded();
        let log = live.log.as_ref().unwrap();
        for exec in [ExecMode::Serial, ExecMode::Sharded(3)] {
            let replayed = replay(log, exec).unwrap_or_else(|e| panic!("{exec:?}: {e}"));
            assert_eq!(
                replayed.report.canonical(),
                live.report.canonical(),
                "{exec:?}: replayed report differs"
            );
            assert_eq!(
                replayed.trace.as_ref().map(|t| t.canonical()),
                live.trace.as_ref().map(|t| t.canonical()),
                "{exec:?}: replayed trace differs"
            );
            assert_eq!(replayed.log.as_ref().unwrap().canonical(), log.canonical());
        }
    }

    #[test]
    fn replay_survives_a_disk_round_trip() {
        let (live, _) = recorded();
        let log = live.log.as_ref().unwrap();
        let reparsed = RunLog::parse(&log.canonical()).unwrap();
        let replayed = replay(&reparsed, ExecMode::Serial).unwrap();
        assert_eq!(replayed.report.checksum(), live.report.checksum());
    }

    #[test]
    fn tampered_log_is_caught_as_divergence() {
        let (live, _) = recorded();
        let mut log = live.log.clone().unwrap();
        // Claim one fewer response in some epoch with responses: replay
        // recomputes different downstream state and the report seal breaks
        // (or the re-recorded inputs differ — either way it must not pass).
        let e = log.epochs.iter().position(|e| !e.responses.is_empty()).expect("responses");
        log.epochs[e].responses.pop();
        let err = replay(&log, ExecMode::Serial).unwrap_err();
        assert!(
            matches!(err, ReplayError::ChecksumMismatch { .. } | ReplayError::Diverged { .. }),
            "{err}"
        );

        // A tampered dispatch record is caught by the structural layer:
        // the replayed handler recomputes `requested` from budget state.
        let mut log = live.log.clone().unwrap();
        log.epochs[0].requested += 1;
        let err = replay(&log, ExecMode::Serial).unwrap_err();
        assert!(matches!(err, ReplayError::Diverged { epoch: Some(0), .. }), "{err}");
    }

    #[test]
    fn resume_at_every_boundary_reconverges() {
        let (live, _) = recorded();
        let log = live.log.as_ref().unwrap();
        for k in 0..=log.epochs.len() {
            let resumed = resume(&log.truncated(k).unwrap(), ExecMode::Serial, k)
                .unwrap_or_else(|e| panic!("resume at {k}: {e}"));
            assert_eq!(
                resumed.report.checksum(),
                live.report.checksum(),
                "resume at {k}: report diverged"
            );
            assert_eq!(
                resumed.trace.as_ref().map(|t| t.checksum()),
                live.trace.as_ref().map(|t| t.checksum()),
                "resume at {k}: trace diverged"
            );
        }
    }

    #[test]
    fn resume_rejects_bad_boundaries_and_detects_prefix_divergence() {
        let (live, _) = recorded();
        let log = live.log.as_ref().unwrap();
        assert!(matches!(
            resume(&log.truncated(2).unwrap(), ExecMode::Serial, 5),
            Err(ReplayError::BadResumePoint { at: 5, recorded: 2 })
        ));

        // A corrupted prefix record is pinpointed to its epoch.
        let mut tampered = log.truncated(4).unwrap();
        tampered.epochs[1].sent += 7;
        let err = resume(&tampered, ExecMode::Serial, 4).unwrap_err();
        match err {
            ReplayError::Diverged { epoch: Some(1), ref details } => {
                assert!(details.contains("sent"), "{details}")
            }
            other => panic!("expected epoch-1 divergence, got {other}"),
        }
    }

    #[test]
    fn unsealed_partial_logs_replay_their_prefix() {
        let (live, _) = recorded();
        let cut = live.log.as_ref().unwrap().truncated(3).unwrap();
        let replayed = replay(&cut, ExecMode::Serial).unwrap();
        assert_eq!(replayed.report.epochs.len(), 3, "replay covers the recorded prefix");
        // The fresh log of the partial replay is sealed over the partial
        // report — parseable and replayable in turn.
        let again = replay(replayed.log.as_ref().unwrap(), ExecMode::Serial).unwrap();
        assert_eq!(again.report.checksum(), replayed.report.checksum());
    }
}
