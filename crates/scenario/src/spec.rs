//! The declarative scenario schema.
//!
//! A [`ScenarioSpec`] is the checked-in, reviewable description of one
//! evaluation workload: world geometry, crowd composition, error regime,
//! budget policy, the attributes with their ground-truth fields, and the
//! standing queries. Specs parse from TOML or JSON (see [`crate::value`]),
//! reject unknown fields (typos must not silently become defaults), and
//! serialize back losslessly — `parse(spec.to_toml()) == spec` holds for
//! every valid spec and is proptested.
//!
//! The schema is documented field-by-field in `scenarios/README.md`.

use crate::value::{
    parse_json, parse_toml, render_json, render_toml, ConfigValue, SyntaxError, Table,
};
use std::fmt;

/// Why a spec was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not valid TOML/JSON.
    Syntax(SyntaxError),
    /// A field the schema does not know (typo protection).
    UnknownField {
        /// Dotted path of the offending key.
        path: String,
    },
    /// A required field is absent.
    MissingField {
        /// Dotted path of the absent key.
        path: String,
    },
    /// A field holds the wrong type.
    TypeMismatch {
        /// Dotted path of the offending key.
        path: String,
        /// What the schema wanted.
        expected: &'static str,
        /// What the document provided.
        found: &'static str,
    },
    /// A field value violates its numeric/semantic constraint.
    OutOfRange {
        /// Dotted path of the offending key.
        path: String,
        /// The violated constraint.
        message: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax(e) => write!(f, "syntax error: {e}"),
            SpecError::UnknownField { path } => write!(f, "unknown field '{path}'"),
            SpecError::MissingField { path } => write!(f, "missing required field '{path}'"),
            SpecError::TypeMismatch { path, expected, found } => {
                write!(f, "field '{path}': expected {expected}, found {found}")
            }
            SpecError::OutOfRange { path, message } => write!(f, "field '{path}': {message}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<SyntaxError> for SpecError {
    fn from(e: SyntaxError) -> Self {
        SpecError::Syntax(e)
    }
}

/// World geometry: the square region `R` and the logical grid over it.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Region side length (km); the region is `[0, size_km)²`.
    pub size_km: f64,
    /// Cells per grid side (the paper's `√h`).
    pub side: u32,
}

/// Initial sensor placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// Uniform over the region.
    Uniform,
    /// The built-in two-hotspot city mixture.
    City,
    /// Explicit Gaussian hotspots `(cx, cy, weight, sigma)` over a uniform
    /// floor.
    Hotspots {
        /// Relative weight of the uniform floor.
        floor: f64,
        /// The hotspots.
        spots: Vec<(f64, f64, f64, f64)>,
    },
}

/// Sensor mobility model.
#[derive(Debug, Clone, PartialEq)]
pub enum MobilitySpec {
    /// Fixed installations.
    Stationary,
    /// Gaussian random walk.
    Walk {
        /// Per-√minute step σ (km).
        sigma: f64,
    },
    /// Random waypoint.
    Waypoint {
        /// Travel speed (km/min).
        speed: f64,
        /// Pause at each waypoint (minutes).
        pause: f64,
    },
    /// Gauss–Markov vehicular motion.
    GaussMarkov {
        /// Velocity memory in `[0, 1)`.
        alpha: f64,
        /// Mean speed (km/min).
        mean_speed: f64,
        /// Velocity noise σ (km/min).
        sigma: f64,
    },
}

/// Crowd composition.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSpec {
    /// Number of sensors `m`.
    pub size: u32,
    /// Fraction of sensors that are humans.
    pub human_fraction: f64,
    /// Initial placement.
    pub placement: PlacementSpec,
    /// Mobility model.
    pub mobility: MobilitySpec,
}

/// Planner/fabricator knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerSpec {
    /// Batch epoch duration (minutes).
    pub batch_minutes: f64,
    /// Flatten headroom (≥ 1).
    pub f_headroom: f64,
    /// Mobility sub-steps per epoch.
    pub mobility_substeps: u32,
    /// Enforce the Section IV minimum-query-area rule.
    pub enforce_min_area: bool,
    /// Per-cell topology shape: `"chain"` or `"star"`.
    pub shape: String,
}

impl Default for PlannerSpec {
    fn default() -> Self {
        Self {
            batch_minutes: 5.0,
            f_headroom: 1.0,
            mobility_substeps: 4,
            enforce_min_area: true,
            shape: "chain".into(),
        }
    }
}

/// Budget policy.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetSpec {
    /// Initial budget for a fresh (attribute, cell) pair (requests/epoch).
    pub initial: f64,
    /// `N_v` threshold (percent).
    pub nv_threshold: f64,
    /// Tuning step Δβ.
    pub delta: f64,
    /// Budget floor.
    pub min: f64,
    /// Budget cap.
    pub max: f64,
}

impl Default for BudgetSpec {
    fn default() -> Self {
        Self { initial: 20.0, nv_threshold: 10.0, delta: 2.0, min: 1.0, max: 200.0 }
    }
}

/// Error injection + mitigation regime.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorSpec {
    /// GPS noise σ (km).
    pub gps_sigma: f64,
    /// Human-judgment boolean flip probability.
    pub bool_flip_prob: f64,
    /// Sensor value noise σ.
    pub value_sigma: f64,
    /// Mitigation pipeline: `"standard"` or `"off"`.
    pub mitigation: String,
}

/// Per-epoch crowd churn.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// Per-sensor dropout/replacement probability applied before every
    /// epoch.
    pub probability: f64,
}

/// Ground-truth field behind an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldSpec {
    /// Smooth temperature surface (base, gradient, heat islands, diurnal
    /// cycle).
    Temperature {
        /// Baseline (°C).
        base: f64,
        /// North–south gradient (°C/km).
        y_gradient: f64,
        /// Heat islands `(cx, cy, amplitude, sigma)`.
        islands: Vec<(f64, f64, f64, f64)>,
        /// Diurnal amplitude (°C).
        diurnal_amplitude: f64,
        /// Diurnal period (minutes).
        diurnal_period: f64,
    },
    /// A rain band sweeping the region.
    Rain {
        /// Front position at `t = 0` (km).
        x_start: f64,
        /// Front speed (km/min).
        speed: f64,
        /// Band width (km).
        width: f64,
    },
    /// A constant float value.
    ConstantFloat {
        /// The value every observation reports.
        value: f64,
    },
    /// A constant boolean value.
    ConstantBool {
        /// The value every observation reports.
        value: bool,
    },
    /// A self-exciting burst intensity observed as a float field
    /// (`value = scale × λ(t, x, y)`); the cascade is generated
    /// deterministically from the scenario seed via [`craqr_mdpp::excite`].
    Burst {
        /// Background rate μ.
        mu: f64,
        /// Kernel jump α.
        alpha: f64,
        /// Temporal decay β (1/min).
        beta: f64,
        /// Spatial kernel width σ (km).
        sigma: f64,
        /// Cascade horizon (minutes).
        horizon: f64,
        /// Immigrant (seed) events.
        immigrants: u32,
        /// Offspring mean per event, in `[0, 1)`.
        branching_ratio: f64,
        /// Observation scale factor.
        scale: f64,
    },
}

/// One sensed attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributeSpec {
    /// Catalog name (what queries reference).
    pub name: String,
    /// Human-sensed (reluctant, slow) vs automatic.
    pub human: bool,
    /// Ground truth.
    pub field: FieldSpec,
}

/// One tenant sharing the crowd: a named owner with its own acquisition
/// budget pool. Declared as `[[tenants]]` blocks; queries reference
/// tenants by name (`tenant = "alice"`).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (what queries reference): `[a-z0-9_-]+`.
    pub name: String,
    /// Budget pool capacity (requests/epoch).
    pub pool: f64,
}

/// One standing acquisitional query.
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Declarative text, e.g. `ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5`.
    pub text: String,
    /// The owning tenant's name. Required when the spec declares
    /// `[[tenants]]`; forbidden otherwise (the back-compat single
    /// implicit tenant owns everything and is never named).
    pub tenant: Option<String>,
}

/// A scripted mid-run regime shift, applied to the crowd just before the
/// named epoch runs. These are the workloads the adaptive controller
/// exists for: the world changes, the innovation stream drifts, the plan
/// must follow.
#[derive(Debug, Clone, PartialEq)]
pub enum ShiftSpec {
    /// Scale every sensor's base response probability (clamped to
    /// `[0, 1]`): `factor > 1` is a participation surge (rate jump),
    /// `factor < 1` a collapse.
    Participation {
        /// Epoch before which the shift applies (0-based).
        epoch: u32,
        /// The scale factor.
        factor: f64,
    },
    /// Correlated dropout: sensors inside `rect` go permanently silent
    /// with probability `probability`.
    Dropout {
        /// Epoch before which the shift applies (0-based).
        epoch: u32,
        /// Per-sensor dropout probability.
        probability: f64,
        /// The affected region `(x0, y0, x1, y1)` (km).
        rect: (f64, f64, f64, f64),
    },
    /// Hotspot migration: each sensor relocates into `rect` with
    /// probability `probability`.
    Migrate {
        /// Epoch before which the shift applies (0-based).
        epoch: u32,
        /// Per-sensor migration probability.
        probability: f64,
        /// The destination region `(x0, y0, x1, y1)` (km).
        rect: (f64, f64, f64, f64),
    },
}

impl ShiftSpec {
    /// The epoch before which this shift applies.
    pub fn epoch(&self) -> u32 {
        match self {
            ShiftSpec::Participation { epoch, .. }
            | ShiftSpec::Dropout { epoch, .. }
            | ShiftSpec::Migrate { epoch, .. } => *epoch,
        }
    }
}

/// The `[adaptive]` block: the closed-loop controller's policy knobs
/// (mirrors [`craqr_adaptive::AdaptiveConfig`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSpec {
    /// `true`: replans are applied. `false`: observe-only — estimation,
    /// detection, and the trace still run, but the plan stays static (the
    /// golden-tested baseline mode).
    pub enabled: bool,
    /// Detector kind: `"cusum"` or `"page_hinkley"`.
    pub detector: String,
    /// Detector per-step slack/tolerance.
    pub slack: f64,
    /// Detector decision threshold.
    pub threshold: f64,
    /// Epochs before detection starts.
    pub warmup_epochs: u32,
    /// Minimum epochs between replans.
    pub cooldown_epochs: u32,
    /// SGD initial learning rate γ₀.
    pub gamma0: f64,
    /// SGD learning-rate decay horizon (batches).
    pub decay_batches: f64,
    /// SGD initial rate guess (/km²/min).
    pub initial_rate: f64,
    /// Budget pool (requests/epoch) water-filled on a replan; absent =
    /// re-distribute the live budgets.
    pub budget_pool: Option<f64>,
    /// Rebuild fired queries' chains on a replan.
    pub rebuild_chains: bool,
    /// Safety factor on the demand estimate.
    pub demand_headroom: f64,
}

impl Default for AdaptiveSpec {
    fn default() -> Self {
        let c = craqr_adaptive::AdaptiveConfig::default();
        Self {
            enabled: c.enabled,
            detector: c.detector.kind.to_string(),
            slack: c.detector.slack,
            threshold: c.detector.threshold,
            warmup_epochs: c.warmup_epochs,
            cooldown_epochs: c.cooldown_epochs,
            gamma0: c.estimator.gamma0,
            decay_batches: c.estimator.decay_batches,
            initial_rate: c.estimator.initial_rate,
            budget_pool: c.budget_pool,
            rebuild_chains: c.rebuild_chains,
            demand_headroom: c.demand_headroom,
        }
    }
}

impl AdaptiveSpec {
    /// The [`craqr_adaptive::AdaptiveConfig`] this spec describes.
    pub fn to_config(&self) -> Result<craqr_adaptive::AdaptiveConfig, SpecError> {
        let kind = match self.detector.as_str() {
            "cusum" => craqr_adaptive::DetectorKind::Cusum,
            "page_hinkley" => craqr_adaptive::DetectorKind::PageHinkley,
            other => {
                return Err(out_of_range(
                    "adaptive.detector",
                    format!("must be 'cusum' or 'page_hinkley', got '{other}'"),
                ))
            }
        };
        let config = craqr_adaptive::AdaptiveConfig {
            enabled: self.enabled,
            estimator: craqr_mdpp::SgdConfig {
                gamma0: self.gamma0,
                decay_batches: self.decay_batches,
                initial_rate: self.initial_rate,
            },
            detector: craqr_adaptive::DetectorConfig {
                kind,
                slack: self.slack,
                threshold: self.threshold,
            },
            warmup_epochs: self.warmup_epochs,
            cooldown_epochs: self.cooldown_epochs,
            budget_pool: self.budget_pool,
            rebuild_chains: self.rebuild_chains,
            demand_headroom: self.demand_headroom,
        };
        config.validate().map_err(|(field, message)| out_of_range(field, message))?;
        Ok(config)
    }
}

/// The `[runlog]` block: event-sourced recording of the run's epoch
/// inputs (see `craqr-runlog`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunlogSpec {
    /// `true`: `run_full` records every epoch's inputs and returns the
    /// [`craqr_runlog::RunLog`] alongside the report; the CLI
    /// blesses/checks a `<name>.runlog.txt` golden for the scenario.
    /// `false`: the block is declared but recording is switched off (a
    /// cheap toggle for experiments).
    pub record: bool,
}

impl Default for RunlogSpec {
    fn default() -> Self {
        Self { record: true }
    }
}

/// The `[telemetry]` block: event-derived metrics collection
/// (see `craqr-telemetry`).
///
/// Declaring the block makes the run collect deterministic event
/// counters into a metrics registry; with `report = true` (the default)
/// their canonical rendering joins the scenario report as a
/// checksummed `[telemetry]` section. Only **event-derived** metrics
/// ever reach the report — timing metrics (phase latencies, shard busy
/// time) live in the same registry but are excluded from every
/// canonical/checksummed surface, exactly like shard `busy_ns`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySpec {
    /// `true`: render the registry's event metrics as a `[telemetry]`
    /// report section (checksummed, golden-tested). `false`: collect
    /// (for `--metrics` export) but keep the report unchanged.
    pub report: bool,
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        Self { report: true }
    }
}

/// One crowd-side delivery fault window: a fault kind active over an
/// inclusive epoch range (`[[faults.crowd]]`).
#[derive(Debug, Clone, PartialEq)]
pub struct CrowdFaultSpec {
    /// Fault kind: `drop`, `delay`, or `duplicate`.
    pub kind: String,
    /// First epoch (inclusive) the fault is active.
    pub from_epoch: u32,
    /// Last epoch (inclusive) the fault is active.
    pub to_epoch: u32,
    /// Per-response fault probability.
    pub probability: f64,
    /// Deferral in minutes — `delay` only; must stay 0 for other kinds.
    pub minutes: f64,
}

/// Dispatch-side retry policy (`[faults.retry]`): per-(cell, attribute)
/// bounded re-request of response shortfalls, mirrored onto
/// [`craqr_core::RetryPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySpec {
    /// Shortfall threshold: retry when `responses < threshold × allowed`.
    pub threshold: f64,
    /// Multiplicative backoff per attempt, in `(0, 1]`.
    pub backoff: f64,
    /// Maximum retry attempts per chain before giving up.
    pub max_attempts: u32,
}

impl Default for RetrySpec {
    fn default() -> Self {
        let d = craqr_core::RetryPolicy::default();
        Self { threshold: d.shortfall_threshold, backoff: d.backoff, max_attempts: d.max_attempts }
    }
}

/// A declared process crash site (`[[faults.crash]]`): a named
/// [`craqr_core::CrashPoint`] at a specific epoch. Normal runs ignore
/// these; the chaos harness (`craqr-scenario chaos`) kills the run there
/// and then proves salvage + resume reproduce the uninterrupted result.
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    /// Crash point name (see [`craqr_core::CrashPoint::from_name`]).
    pub point: String,
    /// Epoch at which to crash.
    pub epoch: u32,
}

/// The `[faults]` block: crowd delivery faults, the dispatch retry
/// policy, and declared crash sites.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultsSpec {
    /// Crowd-side delivery fault windows.
    pub crowd: Vec<CrowdFaultSpec>,
    /// Dispatch-side retry policy (absent = no retries).
    pub retry: Option<RetrySpec>,
    /// Declared crash sites for the chaos harness.
    pub crash: Vec<CrashSpec>,
}

impl FaultsSpec {
    /// The [`craqr_sensing::CrowdFaults`] active at `epoch`: all windows
    /// covering the epoch merged into one setting (at most one window per
    /// kind can cover an epoch — validation rejects same-kind overlap).
    pub fn crowd_faults_at(&self, epoch: u32) -> craqr_sensing::CrowdFaults {
        let mut f = craqr_sensing::CrowdFaults::default();
        for w in &self.crowd {
            if epoch < w.from_epoch || epoch > w.to_epoch {
                continue;
            }
            match w.kind.as_str() {
                "drop" => f.drop_probability = w.probability,
                "delay" => {
                    f.delay_probability = w.probability;
                    f.delay_minutes = w.minutes;
                }
                "duplicate" => f.duplicate_probability = w.probability,
                other => unreachable!("validated fault kind '{other}'"),
            }
        }
        f
    }
}

/// A full declarative scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (also the golden file stem): `[a-z0-9_-]+`.
    pub name: String,
    /// Human-readable intent.
    pub description: String,
    /// Master seed (crowd, planner, error injection, bursts).
    pub seed: u64,
    /// Epochs to run.
    pub epochs: u32,
    /// World geometry.
    pub grid: GridSpec,
    /// Crowd composition.
    pub population: PopulationSpec,
    /// Planner knobs.
    pub planner: PlannerSpec,
    /// Budget policy.
    pub budget: BudgetSpec,
    /// Error regime (absent = clean world).
    pub errors: Option<ErrorSpec>,
    /// Per-epoch churn (absent = stable crowd).
    pub churn: Option<ChurnSpec>,
    /// Sensed attributes (≥ 1).
    pub attributes: Vec<AttributeSpec>,
    /// Tenants sharing the crowd (empty = the back-compat single-owner
    /// world: no admission control, no per-tenant charging, reports and
    /// logs byte-identical to the pre-tenant harness).
    pub tenants: Vec<TenantSpec>,
    /// Standing queries (≥ 1).
    pub queries: Vec<QuerySpec>,
    /// Scripted mid-run regime shifts (absent = stationary world).
    pub shifts: Vec<ShiftSpec>,
    /// Closed-loop adaptive acquisition (absent = static plan, no
    /// controller, no trace).
    pub adaptive: Option<AdaptiveSpec>,
    /// Event-sourced run logging (absent = nothing recorded).
    pub runlog: Option<RunlogSpec>,
    /// Fault injection: crowd delivery faults, dispatch retries, and
    /// declared crash sites (absent = fault-free run).
    pub faults: Option<FaultsSpec>,
    /// Event-derived metrics collection (absent = no registry, report
    /// unchanged).
    pub telemetry: Option<TelemetrySpec>,
}

// ---------------------------------------------------------------------------
// Reading: a table reader that tracks consumed keys (typo protection)
// ---------------------------------------------------------------------------

struct Reader<'a> {
    table: &'a Table,
    path: String,
    seen: Vec<String>,
}

impl<'a> Reader<'a> {
    fn new(table: &'a Table, path: impl Into<String>) -> Self {
        Self { table, path: path.into(), seen: Vec::new() }
    }

    fn at(&self, key: &str) -> String {
        if self.path.is_empty() {
            key.to_string()
        } else {
            format!("{}.{key}", self.path)
        }
    }

    fn take(&mut self, key: &str) -> Option<&'a ConfigValue> {
        self.seen.push(key.to_string());
        self.table.get(key)
    }

    fn req(&mut self, key: &str) -> Result<&'a ConfigValue, SpecError> {
        self.take(key).ok_or_else(|| SpecError::MissingField { path: self.at(key) })
    }

    fn req_str(&mut self, key: &str) -> Result<String, SpecError> {
        let path = self.at(key);
        match self.req(key)? {
            ConfigValue::Str(s) => Ok(s.clone()),
            other => Err(mismatch(&path, "string", other)),
        }
    }

    fn opt_str(&mut self, key: &str, default: &str) -> Result<String, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(default.to_string()),
            Some(ConfigValue::Str(s)) => Ok(s.clone()),
            Some(other) => Err(mismatch(&path, "string", other)),
        }
    }

    fn req_f64(&mut self, key: &str) -> Result<f64, SpecError> {
        let path = self.at(key);
        as_f64(self.req(key)?, &path)
    }

    fn opt_f64(&mut self, key: &str, default: f64) -> Result<f64, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(default),
            Some(v) => as_f64(v, &path),
        }
    }

    fn req_u32(&mut self, key: &str) -> Result<u32, SpecError> {
        let path = self.at(key);
        as_u32(self.req(key)?, &path)
    }

    fn opt_u32(&mut self, key: &str, default: u32) -> Result<u32, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(default),
            Some(v) => as_u32(v, &path),
        }
    }

    fn opt_bool(&mut self, key: &str, default: bool) -> Result<bool, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(default),
            Some(ConfigValue::Bool(b)) => Ok(*b),
            Some(other) => Err(mismatch(&path, "boolean", other)),
        }
    }

    fn req_table(&mut self, key: &str) -> Result<Reader<'a>, SpecError> {
        let path = self.at(key);
        match self.req(key)? {
            ConfigValue::Table(t) => Ok(Reader::new(t, path)),
            other => Err(mismatch(&path, "table", other)),
        }
    }

    fn opt_table(&mut self, key: &str) -> Result<Option<Reader<'a>>, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(None),
            Some(ConfigValue::Table(t)) => Ok(Some(Reader::new(t, path))),
            Some(other) => Err(mismatch(&path, "table", other)),
        }
    }

    fn req_table_array(&mut self, key: &str) -> Result<Vec<Reader<'a>>, SpecError> {
        let path = self.at(key);
        match self.req(key)? {
            ConfigValue::Array(items) => table_array(items, &path),
            other => Err(mismatch(&path, "array of tables", other)),
        }
    }

    /// An optional array of tables: absent parses as empty.
    fn opt_table_array(&mut self, key: &str) -> Result<Vec<Reader<'a>>, SpecError> {
        let path = self.at(key);
        match self.take(key) {
            None => Ok(Vec::new()),
            Some(ConfigValue::Array(items)) => table_array(items, &path),
            Some(other) => Err(mismatch(&path, "array of tables", other)),
        }
    }

    /// Reads an optional array of `[a, b, c, d]` float quadruples.
    fn opt_quads(
        &mut self,
        key: &str,
        default: Vec<(f64, f64, f64, f64)>,
    ) -> Result<Vec<(f64, f64, f64, f64)>, SpecError> {
        let path = self.at(key);
        let Some(v) = self.take(key) else { return Ok(default) };
        let ConfigValue::Array(items) = v else {
            return Err(mismatch(&path, "array", v));
        };
        items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let ipath = format!("{path}[{i}]");
                let ConfigValue::Array(quad) = item else {
                    return Err(mismatch(&ipath, "array of 4 numbers", item));
                };
                if quad.len() != 4 {
                    return Err(SpecError::OutOfRange {
                        path: ipath,
                        message: format!("needs exactly 4 numbers, got {}", quad.len()),
                    });
                }
                Ok((
                    as_f64(&quad[0], &ipath)?,
                    as_f64(&quad[1], &ipath)?,
                    as_f64(&quad[2], &ipath)?,
                    as_f64(&quad[3], &ipath)?,
                ))
            })
            .collect()
    }

    /// Errors on any key the schema did not consume.
    fn finish(self) -> Result<(), SpecError> {
        for key in self.table.keys() {
            if !self.seen.iter().any(|s| s == key) {
                return Err(SpecError::UnknownField { path: self.at(key) });
            }
        }
        Ok(())
    }
}

fn table_array<'a>(items: &'a [ConfigValue], path: &str) -> Result<Vec<Reader<'a>>, SpecError> {
    items
        .iter()
        .enumerate()
        .map(|(i, item)| match item {
            ConfigValue::Table(t) => Ok(Reader::new(t, format!("{path}[{i}]"))),
            other => Err(mismatch(&format!("{path}[{i}]"), "table", other)),
        })
        .collect()
}

fn mismatch(path: &str, expected: &'static str, found: &ConfigValue) -> SpecError {
    SpecError::TypeMismatch { path: path.to_string(), expected, found: found.type_name() }
}

fn as_f64(v: &ConfigValue, path: &str) -> Result<f64, SpecError> {
    match v {
        ConfigValue::Float(f) => Ok(*f),
        ConfigValue::Int(i) => Ok(*i as f64),
        other => Err(mismatch(path, "number", other)),
    }
}

fn as_u32(v: &ConfigValue, path: &str) -> Result<u32, SpecError> {
    match v {
        ConfigValue::Int(i) if *i >= 0 && *i <= u32::MAX as i64 => Ok(*i as u32),
        ConfigValue::Int(i) => Err(SpecError::OutOfRange {
            path: path.to_string(),
            message: format!("must fit in an unsigned 32-bit integer, got {i}"),
        }),
        other => Err(mismatch(path, "integer", other)),
    }
}

fn out_of_range(path: impl Into<String>, message: impl Into<String>) -> SpecError {
    SpecError::OutOfRange { path: path.into(), message: message.into() }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Parses a TOML document.
    pub fn from_toml(src: &str) -> Result<Self, SpecError> {
        Self::from_table(&parse_toml(src)?)
    }

    /// Parses a JSON document.
    pub fn from_json(src: &str) -> Result<Self, SpecError> {
        Self::from_table(&parse_json(src)?)
    }

    /// Parses either syntax, keyed on the (lowercased) file extension:
    /// `.json` → JSON, anything else → TOML.
    pub fn from_source(file_name: &str, src: &str) -> Result<Self, SpecError> {
        if file_name.to_ascii_lowercase().ends_with(".json") {
            Self::from_json(src)
        } else {
            Self::from_toml(src)
        }
    }

    /// Builds a spec from a parsed value tree, rejecting unknown fields and
    /// out-of-range values.
    pub fn from_table(table: &Table) -> Result<Self, SpecError> {
        let mut r = Reader::new(table, "");
        let name = r.req_str("name")?;
        let description = r.opt_str("description", "")?;
        let seed = match r.req("seed")? {
            ConfigValue::Int(i) if *i >= 0 => *i as u64,
            ConfigValue::Int(i) => {
                return Err(out_of_range("seed", format!("must be >= 0, got {i}")))
            }
            other => return Err(mismatch("seed", "integer", other)),
        };
        let epochs = r.req_u32("epochs")?;

        let mut grid_r = r.req_table("grid")?;
        let grid = GridSpec { size_km: grid_r.req_f64("size_km")?, side: grid_r.req_u32("side")? };
        grid_r.finish()?;

        let mut pop_r = r.req_table("population")?;
        let population = PopulationSpec {
            size: pop_r.req_u32("size")?,
            human_fraction: pop_r.opt_f64("human_fraction", 0.0)?,
            placement: {
                let mut p = pop_r.req_table("placement")?;
                let placement = parse_placement(&mut p)?;
                p.finish()?;
                placement
            },
            mobility: {
                let mut m = pop_r.req_table("mobility")?;
                let mobility = parse_mobility(&mut m)?;
                m.finish()?;
                mobility
            },
        };
        pop_r.finish()?;

        let planner = match r.opt_table("planner")? {
            None => PlannerSpec::default(),
            Some(mut p) => {
                let d = PlannerSpec::default();
                let planner = PlannerSpec {
                    batch_minutes: p.opt_f64("batch_minutes", d.batch_minutes)?,
                    f_headroom: p.opt_f64("f_headroom", d.f_headroom)?,
                    mobility_substeps: p.opt_u32("mobility_substeps", d.mobility_substeps)?,
                    enforce_min_area: p.opt_bool("enforce_min_area", d.enforce_min_area)?,
                    shape: p.opt_str("shape", &d.shape)?,
                };
                p.finish()?;
                planner
            }
        };

        let budget = match r.opt_table("budget")? {
            None => BudgetSpec::default(),
            Some(mut b) => {
                let d = BudgetSpec::default();
                let budget = BudgetSpec {
                    initial: b.opt_f64("initial", d.initial)?,
                    nv_threshold: b.opt_f64("nv_threshold", d.nv_threshold)?,
                    delta: b.opt_f64("delta", d.delta)?,
                    min: b.opt_f64("min", d.min)?,
                    max: b.opt_f64("max", d.max)?,
                };
                b.finish()?;
                budget
            }
        };

        let errors = match r.opt_table("errors")? {
            None => None,
            Some(mut e) => {
                let errors = ErrorSpec {
                    gps_sigma: e.opt_f64("gps_sigma", 0.0)?,
                    bool_flip_prob: e.opt_f64("bool_flip_prob", 0.0)?,
                    value_sigma: e.opt_f64("value_sigma", 0.0)?,
                    mitigation: e.opt_str("mitigation", "standard")?,
                };
                e.finish()?;
                Some(errors)
            }
        };

        let churn = match r.opt_table("churn")? {
            None => None,
            Some(mut c) => {
                let churn = ChurnSpec { probability: c.req_f64("probability")? };
                c.finish()?;
                Some(churn)
            }
        };

        let mut attributes = Vec::new();
        for mut a in r.req_table_array("attributes")? {
            let attr = AttributeSpec {
                name: a.req_str("name")?,
                human: a.opt_bool("human", false)?,
                field: {
                    let mut f = a.req_table("field")?;
                    let field = parse_field(&mut f)?;
                    f.finish()?;
                    field
                },
            };
            a.finish()?;
            attributes.push(attr);
        }

        let mut tenants = Vec::new();
        for mut t in r.opt_table_array("tenants")? {
            let tenant = TenantSpec { name: t.req_str("name")?, pool: t.req_f64("pool")? };
            t.finish()?;
            tenants.push(tenant);
        }

        let mut queries = Vec::new();
        for mut q in r.req_table_array("queries")? {
            let query = QuerySpec {
                text: q.req_str("text")?,
                tenant: match q.take("tenant") {
                    None => None,
                    Some(ConfigValue::Str(s)) => Some(s.clone()),
                    Some(other) => return Err(mismatch(&q.at("tenant"), "string", other)),
                },
            };
            q.finish()?;
            queries.push(query);
        }

        let mut shifts = Vec::new();
        for mut s in r.opt_table_array("shifts")? {
            let shift = parse_shift(&mut s)?;
            s.finish()?;
            shifts.push(shift);
        }

        let adaptive = match r.opt_table("adaptive")? {
            None => None,
            Some(mut a) => {
                let d = AdaptiveSpec::default();
                let adaptive = AdaptiveSpec {
                    enabled: a.opt_bool("enabled", d.enabled)?,
                    detector: a.opt_str("detector", &d.detector)?,
                    slack: a.opt_f64("slack", d.slack)?,
                    threshold: a.opt_f64("threshold", d.threshold)?,
                    warmup_epochs: a.opt_u32("warmup_epochs", d.warmup_epochs)?,
                    cooldown_epochs: a.opt_u32("cooldown_epochs", d.cooldown_epochs)?,
                    gamma0: a.opt_f64("gamma0", d.gamma0)?,
                    decay_batches: a.opt_f64("decay_batches", d.decay_batches)?,
                    initial_rate: a.opt_f64("initial_rate", d.initial_rate)?,
                    budget_pool: {
                        let path = a.at("budget_pool");
                        match a.take("budget_pool") {
                            None => None,
                            Some(v) => Some(as_f64(v, &path)?),
                        }
                    },
                    rebuild_chains: a.opt_bool("rebuild_chains", d.rebuild_chains)?,
                    demand_headroom: a.opt_f64("demand_headroom", d.demand_headroom)?,
                };
                a.finish()?;
                Some(adaptive)
            }
        };

        let runlog = match r.opt_table("runlog")? {
            None => None,
            Some(mut t) => {
                let d = RunlogSpec::default();
                let runlog = RunlogSpec { record: t.opt_bool("record", d.record)? };
                t.finish()?;
                Some(runlog)
            }
        };

        let telemetry = match r.opt_table("telemetry")? {
            None => None,
            Some(mut t) => {
                let d = TelemetrySpec::default();
                let telemetry = TelemetrySpec { report: t.opt_bool("report", d.report)? };
                t.finish()?;
                Some(telemetry)
            }
        };

        let faults = match r.opt_table("faults")? {
            None => None,
            Some(mut f) => {
                let mut crowd = Vec::new();
                for mut c in f.opt_table_array("crowd")? {
                    let fault = CrowdFaultSpec {
                        kind: c.req_str("kind")?,
                        from_epoch: c.opt_u32("from_epoch", 0)?,
                        to_epoch: c.opt_u32("to_epoch", epochs.saturating_sub(1))?,
                        probability: c.req_f64("probability")?,
                        minutes: c.opt_f64("minutes", 0.0)?,
                    };
                    c.finish()?;
                    crowd.push(fault);
                }
                let retry = match f.opt_table("retry")? {
                    None => None,
                    Some(mut rt) => {
                        let d = RetrySpec::default();
                        let retry = RetrySpec {
                            threshold: rt.opt_f64("threshold", d.threshold)?,
                            backoff: rt.opt_f64("backoff", d.backoff)?,
                            max_attempts: rt.opt_u32("max_attempts", d.max_attempts)?,
                        };
                        rt.finish()?;
                        Some(retry)
                    }
                };
                let mut crash = Vec::new();
                for mut cr in f.opt_table_array("crash")? {
                    let site =
                        CrashSpec { point: cr.req_str("point")?, epoch: cr.req_u32("epoch")? };
                    cr.finish()?;
                    crash.push(site);
                }
                f.finish()?;
                Some(FaultsSpec { crowd, retry, crash })
            }
        };

        r.finish()?;
        let spec = Self {
            name,
            description,
            seed,
            epochs,
            grid,
            population,
            planner,
            budget,
            errors,
            churn,
            attributes,
            tenants,
            queries,
            shifts,
            adaptive,
            runlog,
            faults,
            telemetry,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Semantic validation beyond types: ranges, uniqueness, and the
    /// constraints the runtime constructors would otherwise panic on.
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return Err(out_of_range(
                "name",
                format!("must match [a-z0-9_-]+ (it names the golden file), got '{}'", self.name),
            ));
        }
        if self.epochs == 0 {
            return Err(out_of_range("epochs", "must be >= 1"));
        }
        if self.seed > i64::MAX as u64 {
            return Err(out_of_range(
                "seed",
                format!(
                    "must fit in a signed 64-bit integer (TOML/JSON integer), got {}",
                    self.seed
                ),
            ));
        }
        if !(self.grid.size_km.is_finite() && self.grid.size_km > 0.0) {
            return Err(out_of_range(
                "grid.size_km",
                format!("must be > 0, got {}", self.grid.size_km),
            ));
        }
        if self.grid.side == 0 {
            return Err(out_of_range(
                "grid.side",
                "must be >= 1 (a zero-cell grid has nowhere to plan)",
            ));
        }

        let region = craqr_geom::Rect::with_size(self.grid.size_km, self.grid.size_km);
        let pop = self.population.to_config(&region)?;
        pop.validate().map_err(|(field, message)| out_of_range(field, message))?;
        match &self.population.mobility {
            MobilitySpec::Stationary => {}
            MobilitySpec::Walk { sigma } => {
                if !(sigma.is_finite() && *sigma >= 0.0) {
                    return Err(out_of_range(
                        "population.mobility.sigma",
                        format!("must be >= 0, got {sigma}"),
                    ));
                }
            }
            MobilitySpec::Waypoint { speed, pause } => {
                if !(speed.is_finite() && *speed > 0.0) {
                    return Err(out_of_range(
                        "population.mobility.speed",
                        format!("must be > 0, got {speed}"),
                    ));
                }
                if !(pause.is_finite() && *pause >= 0.0) {
                    return Err(out_of_range(
                        "population.mobility.pause",
                        format!("must be >= 0, got {pause}"),
                    ));
                }
            }
            MobilitySpec::GaussMarkov { alpha, mean_speed, sigma } => {
                if !(0.0..1.0).contains(alpha) {
                    return Err(out_of_range(
                        "population.mobility.alpha",
                        format!("must be in [0,1), got {alpha}"),
                    ));
                }
                if !(mean_speed.is_finite()
                    && *mean_speed >= 0.0
                    && sigma.is_finite()
                    && *sigma >= 0.0)
                {
                    return Err(out_of_range(
                        "population.mobility",
                        "speeds must be finite and >= 0",
                    ));
                }
            }
        }

        if !matches!(self.planner.shape.as_str(), "chain" | "star") {
            return Err(out_of_range(
                "planner.shape",
                format!("must be 'chain' or 'star', got '{}'", self.planner.shape),
            ));
        }
        if let Some(e) = &self.errors {
            if !matches!(e.mitigation.as_str(), "standard" | "off") {
                return Err(out_of_range(
                    "errors.mitigation",
                    format!("must be 'standard' or 'off', got '{}'", e.mitigation),
                ));
            }
        }
        // Planner/budget/error numerics: delegate to the core validators so
        // the spec and the server can never drift apart on what "valid"
        // means.
        let server_config = self.to_server_config(craqr_core::ExecMode::Serial)?;
        server_config.validate().map_err(|(field, message)| out_of_range(field, message))?;

        if let Some(c) = &self.churn {
            if !(0.0..=1.0).contains(&c.probability) {
                return Err(out_of_range(
                    "churn.probability",
                    format!("must be in [0,1], got {}", c.probability),
                ));
            }
        }

        if self.attributes.is_empty() {
            return Err(out_of_range("attributes", "at least one attribute is required"));
        }
        for (i, a) in self.attributes.iter().enumerate() {
            if a.name.is_empty() {
                return Err(out_of_range(format!("attributes[{i}].name"), "must be non-empty"));
            }
            if self.attributes[..i].iter().any(|b| b.name == a.name) {
                return Err(out_of_range(
                    format!("attributes[{i}].name"),
                    format!("duplicate attribute '{}'", a.name),
                ));
            }
            validate_field(&a.field, &format!("attributes[{i}].field"))?;
        }
        for (i, t) in self.tenants.iter().enumerate() {
            if t.name.is_empty()
                || !t
                    .name
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
            {
                return Err(out_of_range(
                    format!("tenants[{i}].name"),
                    format!("must match [a-z0-9_-]+, got '{}'", t.name),
                ));
            }
            if self.tenants[..i].iter().any(|other| other.name == t.name) {
                return Err(out_of_range(
                    format!("tenants[{i}].name"),
                    format!("duplicate tenant '{}'", t.name),
                ));
            }
            if !(t.pool.is_finite() && t.pool > 0.0) {
                return Err(out_of_range(
                    format!("tenants[{i}].pool"),
                    format!("must be finite and > 0 (requests/epoch), got {}", t.pool),
                ));
            }
        }

        if self.queries.is_empty() {
            return Err(out_of_range("queries", "at least one query is required"));
        }
        for (i, q) in self.queries.iter().enumerate() {
            if q.text.trim().is_empty() {
                return Err(out_of_range(format!("queries[{i}].text"), "must be non-empty"));
            }
            match (&q.tenant, self.tenants.is_empty()) {
                (None, true) => {}
                (Some(name), false) => {
                    if !self.tenants.iter().any(|t| &t.name == name) {
                        return Err(out_of_range(
                            format!("queries[{i}].tenant"),
                            format!("references undeclared tenant '{name}'"),
                        ));
                    }
                }
                (None, false) => {
                    return Err(out_of_range(
                        format!("queries[{i}].tenant"),
                        "required: this spec declares [[tenants]], so every query must name \
                         its owner",
                    ));
                }
                (Some(name), true) => {
                    return Err(out_of_range(
                        format!("queries[{i}].tenant"),
                        format!("references tenant '{name}' but the spec declares no [[tenants]]"),
                    ));
                }
            }
        }

        for (i, s) in self.shifts.iter().enumerate() {
            if s.epoch() >= self.epochs {
                return Err(out_of_range(
                    format!("shifts[{i}].epoch"),
                    format!(
                        "must be < epochs ({}), got {} (the shift would never apply)",
                        self.epochs,
                        s.epoch()
                    ),
                ));
            }
            let check_prob = |p: f64, path: String| {
                if (0.0..=1.0).contains(&p) {
                    Ok(())
                } else {
                    Err(out_of_range(path, format!("must be in [0,1], got {p}")))
                }
            };
            let check_rect = |rect: &(f64, f64, f64, f64), path: String| {
                let (x0, y0, x1, y1) = *rect;
                let finite = x0.is_finite() && y0.is_finite() && x1.is_finite() && y1.is_finite();
                if finite && x0 < x1 && y0 < y1 {
                    Ok(())
                } else {
                    Err(out_of_range(
                        path,
                        format!(
                            "must be a finite rectangle with x0 < x1 and y0 < y1, got {rect:?}"
                        ),
                    ))
                }
            };
            match s {
                ShiftSpec::Participation { factor, .. } => {
                    if !(factor.is_finite() && *factor >= 0.0) {
                        return Err(out_of_range(
                            format!("shifts[{i}].factor"),
                            format!("must be >= 0, got {factor}"),
                        ));
                    }
                }
                ShiftSpec::Dropout { probability, rect, .. } => {
                    check_prob(*probability, format!("shifts[{i}].probability"))?;
                    check_rect(rect, format!("shifts[{i}].rect"))?;
                    // A dropout region that misses the world entirely is a
                    // silent no-op shift — the golden would record a drift
                    // that never happened.
                    let size = self.grid.size_km;
                    if rect.2 <= 0.0 || rect.0 >= size || rect.3 <= 0.0 || rect.1 >= size {
                        return Err(out_of_range(
                            format!("shifts[{i}].rect"),
                            format!(
                                "must intersect the region [0,{size})² or the shift can never \
                                 silence a sensor, got {rect:?}"
                            ),
                        ));
                    }
                }
                ShiftSpec::Migrate { probability, rect, .. } => {
                    check_prob(*probability, format!("shifts[{i}].probability"))?;
                    check_rect(rect, format!("shifts[{i}].rect"))?;
                    // Migrants are placed uniformly in the target and never
                    // forced back: a target outside the region would
                    // teleport the crowd somewhere no request can reach.
                    let size = self.grid.size_km;
                    if rect.0 < 0.0 || rect.1 < 0.0 || rect.2 > size || rect.3 > size {
                        return Err(out_of_range(
                            format!("shifts[{i}].rect"),
                            format!(
                                "must lie inside the region [0,{size})² (migrants are placed \
                                 uniformly in the target), got {rect:?}"
                            ),
                        ));
                    }
                }
            }
        }
        if let Some(f) = &self.faults {
            for (i, w) in f.crowd.iter().enumerate() {
                if !matches!(w.kind.as_str(), "drop" | "delay" | "duplicate") {
                    return Err(out_of_range(
                        format!("faults.crowd[{i}].kind"),
                        format!("must be 'drop', 'delay', or 'duplicate', got '{}'", w.kind),
                    ));
                }
                if !(0.0..=1.0).contains(&w.probability) {
                    return Err(out_of_range(
                        format!("faults.crowd[{i}].probability"),
                        format!("must be in [0,1], got {}", w.probability),
                    ));
                }
                if w.from_epoch > w.to_epoch {
                    return Err(out_of_range(
                        format!("faults.crowd[{i}].from_epoch"),
                        format!(
                            "window is empty: from_epoch {} > to_epoch {}",
                            w.from_epoch, w.to_epoch
                        ),
                    ));
                }
                if w.to_epoch >= self.epochs {
                    return Err(out_of_range(
                        format!("faults.crowd[{i}].to_epoch"),
                        format!("must be < epochs ({}), got {}", self.epochs, w.to_epoch),
                    ));
                }
                if w.kind == "delay" {
                    if !(w.minutes.is_finite() && w.minutes > 0.0) {
                        return Err(out_of_range(
                            format!("faults.crowd[{i}].minutes"),
                            format!("must be finite and > 0 for a delay fault, got {}", w.minutes),
                        ));
                    }
                } else if w.minutes != 0.0 {
                    return Err(out_of_range(
                        format!("faults.crowd[{i}].minutes"),
                        format!("only meaningful for 'delay' faults, got {}", w.minutes),
                    ));
                }
                // Two same-kind windows covering one epoch would silently
                // shadow each other in crowd_faults_at — reject the overlap.
                for (j, other) in f.crowd[..i].iter().enumerate() {
                    if other.kind == w.kind
                        && w.from_epoch <= other.to_epoch
                        && other.from_epoch <= w.to_epoch
                    {
                        return Err(out_of_range(
                            format!("faults.crowd[{i}]"),
                            format!(
                                "'{}' window [{}, {}] overlaps faults.crowd[{j}]'s [{}, {}]",
                                w.kind, w.from_epoch, w.to_epoch, other.from_epoch, other.to_epoch
                            ),
                        ));
                    }
                }
            }
            // Retry numerics are validated by the ServerConfig delegation
            // above (the core RetryPolicy validator).
            for (i, c) in f.crash.iter().enumerate() {
                if craqr_core::CrashPoint::from_name(&c.point).is_none() {
                    return Err(out_of_range(
                        format!("faults.crash[{i}].point"),
                        format!(
                            "unknown crash point '{}'; valid: {}",
                            c.point,
                            craqr_core::CrashPoint::ALL
                                .iter()
                                .map(|p| p.name())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                    ));
                }
                if c.epoch >= self.epochs {
                    return Err(out_of_range(
                        format!("faults.crash[{i}].epoch"),
                        format!("must be < epochs ({}), got {}", self.epochs, c.epoch),
                    ));
                }
            }
        }
        if let Some(a) = &self.adaptive {
            // Delegates range checks to the controller's own validator so
            // spec and runtime can never disagree on what "valid" means.
            a.to_config()?;
            // On a multi-tenant server replans water-fill the declared
            // tenant pools; a flat budget_pool would be silently ignored,
            // so declaring both is a contradiction worth rejecting.
            if a.budget_pool.is_some() && !self.tenants.is_empty() {
                return Err(out_of_range(
                    "adaptive.budget_pool",
                    "incompatible with [[tenants]]: multi-tenant replans allocate from the \
                     declared per-tenant pools, so a flat pool would never be used",
                ));
            }
        }
        Ok(())
    }

    /// The [`craqr_core::ServerConfig`] this spec describes.
    pub fn to_server_config(
        &self,
        exec: craqr_core::ExecMode,
    ) -> Result<craqr_core::ServerConfig, SpecError> {
        use craqr_core::plan::TopologyShape;
        // The exec mode is caller-supplied rather than spec-declared, but
        // it rides through the same boundary: reject the degenerate shard
        // count here, with a proper error, instead of letting
        // `ExecMode::shards()` panic mid-epoch.
        if matches!(exec, craqr_core::ExecMode::Sharded(0)) {
            return Err(out_of_range("exec.shards", "Sharded(0) has no workers to run on"));
        }
        let shape = match self.planner.shape.as_str() {
            "star" => TopologyShape::Star,
            _ => TopologyShape::Chain,
        };
        let (error_model, mitigation) = match &self.errors {
            None => (craqr_core::ErrorModel::none(), craqr_core::Mitigation::standard()),
            Some(e) => {
                for (path, v) in
                    [("errors.gps_sigma", e.gps_sigma), ("errors.value_sigma", e.value_sigma)]
                {
                    if !(v.is_finite() && v >= 0.0) {
                        return Err(out_of_range(path, format!("must be >= 0, got {v}")));
                    }
                }
                if !(0.0..=1.0).contains(&e.bool_flip_prob) {
                    return Err(out_of_range(
                        "errors.bool_flip_prob",
                        format!("must be in [0,1], got {}", e.bool_flip_prob),
                    ));
                }
                let mitigation = match e.mitigation.as_str() {
                    "off" => craqr_core::Mitigation::off(),
                    _ => craqr_core::Mitigation::standard(),
                };
                (
                    craqr_core::ErrorModel::new(e.gps_sigma, e.bool_flip_prob, e.value_sigma),
                    mitigation,
                )
            }
        };
        Ok(craqr_core::ServerConfig {
            planner: craqr_core::PlannerConfig {
                grid_side: self.grid.side,
                batch_duration: self.planner.batch_minutes,
                f_headroom: self.planner.f_headroom,
                shape,
                seed: self.seed,
                enforce_min_area: self.planner.enforce_min_area,
                ..craqr_core::PlannerConfig::default()
            },
            tuner: craqr_core::BudgetTuner {
                nv_threshold: self.budget.nv_threshold,
                delta: self.budget.delta,
                min_budget: self.budget.min,
                max_budget: self.budget.max,
            },
            incentive: craqr_core::IncentivePolicy::default(),
            error_model,
            mitigation,
            initial_budget: self.budget.initial,
            mobility_substeps: self.planner.mobility_substeps,
            exec,
            retry: self.faults.as_ref().and_then(|f| f.retry.as_ref()).map(|r| {
                craqr_core::RetryPolicy {
                    shortfall_threshold: r.threshold,
                    backoff: r.backoff,
                    max_attempts: r.max_attempts,
                }
            }),
        })
    }
}

impl PopulationSpec {
    /// The [`craqr_sensing::PopulationConfig`] this spec describes, with
    /// `city` placement expanded over the concrete region.
    pub fn to_config(
        &self,
        region: &craqr_geom::Rect,
    ) -> Result<craqr_sensing::PopulationConfig, SpecError> {
        use craqr_sensing::{Mobility, Placement};
        let placement = match &self.placement {
            PlacementSpec::Uniform => Placement::Uniform,
            PlacementSpec::City => Placement::city(region),
            PlacementSpec::Hotspots { floor, spots } => {
                Placement::Hotspots { spots: spots.clone(), floor: *floor }
            }
        };
        let mobility = match &self.mobility {
            MobilitySpec::Stationary => Mobility::Stationary,
            MobilitySpec::Walk { sigma } => Mobility::RandomWalk { sigma: *sigma },
            MobilitySpec::Waypoint { speed, pause } => {
                if !(speed.is_finite() && *speed > 0.0) {
                    return Err(out_of_range(
                        "population.mobility.speed",
                        format!("must be > 0, got {speed}"),
                    ));
                }
                Mobility::RandomWaypoint {
                    speed: *speed,
                    pause: *pause,
                    target: None,
                    pause_left: 0.0,
                }
            }
            MobilitySpec::GaussMarkov { alpha, mean_speed, sigma } => {
                if !(0.0..1.0).contains(alpha) {
                    return Err(out_of_range(
                        "population.mobility.alpha",
                        format!("must be in [0,1), got {alpha}"),
                    ));
                }
                Mobility::GaussMarkov {
                    alpha: *alpha,
                    mean_speed: *mean_speed,
                    sigma: *sigma,
                    velocity: (0.0, 0.0),
                }
            }
        };
        Ok(craqr_sensing::PopulationConfig {
            size: self.size as usize,
            placement,
            mobility,
            human_fraction: self.human_fraction,
        })
    }
}

fn parse_placement(r: &mut Reader<'_>) -> Result<PlacementSpec, SpecError> {
    let kind = r.req_str("kind")?;
    match kind.as_str() {
        "uniform" => Ok(PlacementSpec::Uniform),
        "city" => Ok(PlacementSpec::City),
        "hotspots" => Ok(PlacementSpec::Hotspots {
            floor: r.opt_f64("floor", 1.0)?,
            spots: r.opt_quads("spots", Vec::new())?,
        }),
        other => Err(out_of_range(
            r.at("kind"),
            format!("must be 'uniform', 'city', or 'hotspots', got '{other}'"),
        )),
    }
}

fn parse_mobility(r: &mut Reader<'_>) -> Result<MobilitySpec, SpecError> {
    let kind = r.req_str("kind")?;
    match kind.as_str() {
        "stationary" => Ok(MobilitySpec::Stationary),
        "walk" => Ok(MobilitySpec::Walk { sigma: r.req_f64("sigma")? }),
        "waypoint" => Ok(MobilitySpec::Waypoint {
            speed: r.req_f64("speed")?,
            pause: r.opt_f64("pause", 0.0)?,
        }),
        "gauss_markov" => Ok(MobilitySpec::GaussMarkov {
            alpha: r.req_f64("alpha")?,
            mean_speed: r.req_f64("mean_speed")?,
            sigma: r.req_f64("sigma")?,
        }),
        other => Err(out_of_range(
            r.at("kind"),
            format!("must be 'stationary', 'walk', 'waypoint', or 'gauss_markov', got '{other}'"),
        )),
    }
}

/// Reads a required `[x0, y0, x1, y1]` rectangle.
fn req_rect(r: &mut Reader<'_>) -> Result<(f64, f64, f64, f64), SpecError> {
    let path = r.at("rect");
    let v = r.req("rect")?;
    let ConfigValue::Array(quad) = v else {
        return Err(mismatch(&path, "array of 4 numbers", v));
    };
    if quad.len() != 4 {
        return Err(SpecError::OutOfRange {
            path,
            message: format!("needs exactly 4 numbers (x0, y0, x1, y1), got {}", quad.len()),
        });
    }
    Ok((
        as_f64(&quad[0], &path)?,
        as_f64(&quad[1], &path)?,
        as_f64(&quad[2], &path)?,
        as_f64(&quad[3], &path)?,
    ))
}

fn parse_shift(r: &mut Reader<'_>) -> Result<ShiftSpec, SpecError> {
    let kind = r.req_str("kind")?;
    let epoch = r.req_u32("epoch")?;
    match kind.as_str() {
        "participation" => Ok(ShiftSpec::Participation { epoch, factor: r.req_f64("factor")? }),
        "dropout" => Ok(ShiftSpec::Dropout {
            epoch,
            probability: r.req_f64("probability")?,
            rect: req_rect(r)?,
        }),
        "migrate" => Ok(ShiftSpec::Migrate {
            epoch,
            probability: r.req_f64("probability")?,
            rect: req_rect(r)?,
        }),
        other => Err(out_of_range(
            r.at("kind"),
            format!("must be 'participation', 'dropout', or 'migrate', got '{other}'"),
        )),
    }
}

fn parse_field(r: &mut Reader<'_>) -> Result<FieldSpec, SpecError> {
    let kind = r.req_str("kind")?;
    match kind.as_str() {
        "temperature" => Ok(FieldSpec::Temperature {
            base: r.opt_f64("base", 20.0)?,
            y_gradient: r.opt_f64("y_gradient", 0.0)?,
            islands: r.opt_quads("islands", Vec::new())?,
            diurnal_amplitude: r.opt_f64("diurnal_amplitude", 0.0)?,
            diurnal_period: r.opt_f64("diurnal_period", 1440.0)?,
        }),
        "rain" => Ok(FieldSpec::Rain {
            x_start: r.req_f64("x_start")?,
            speed: r.opt_f64("speed", 0.0)?,
            width: r.req_f64("width")?,
        }),
        "constant" => match r.take("value") {
            Some(ConfigValue::Bool(b)) => Ok(FieldSpec::ConstantBool { value: *b }),
            Some(v) => Ok(FieldSpec::ConstantFloat { value: as_f64(v, &r.at("value"))? }),
            None => Err(SpecError::MissingField { path: r.at("value") }),
        },
        "burst" => Ok(FieldSpec::Burst {
            mu: r.opt_f64("mu", 0.0)?,
            alpha: r.req_f64("alpha")?,
            beta: r.req_f64("beta")?,
            sigma: r.req_f64("sigma")?,
            horizon: r.req_f64("horizon")?,
            immigrants: r.req_u32("immigrants")?,
            branching_ratio: r.opt_f64("branching_ratio", 0.0)?,
            scale: r.opt_f64("scale", 1.0)?,
        }),
        other => Err(out_of_range(
            r.at("kind"),
            format!("must be 'temperature', 'rain', 'constant', or 'burst', got '{other}'"),
        )),
    }
}

fn validate_field(field: &FieldSpec, path: &str) -> Result<(), SpecError> {
    match field {
        FieldSpec::Temperature { base, y_gradient, islands, diurnal_amplitude, diurnal_period } => {
            if !(base.is_finite() && y_gradient.is_finite() && diurnal_amplitude.is_finite()) {
                return Err(out_of_range(
                    format!("{path}.base"),
                    "base/y_gradient/diurnal_amplitude must be finite",
                ));
            }
            if !(diurnal_period.is_finite() && *diurnal_period > 0.0) {
                return Err(out_of_range(
                    format!("{path}.diurnal_period"),
                    format!("must be > 0, got {diurnal_period}"),
                ));
            }
            for (i, &(cx, cy, amplitude, sigma)) in islands.iter().enumerate() {
                if !(cx.is_finite() && cy.is_finite() && amplitude.is_finite()) {
                    return Err(out_of_range(
                        format!("{path}.islands[{i}]"),
                        "island centre/amplitude must be finite",
                    ));
                }
                if !(sigma.is_finite() && sigma > 0.0) {
                    return Err(out_of_range(
                        format!("{path}.islands[{i}]"),
                        format!("island sigma must be > 0, got {sigma}"),
                    ));
                }
            }
        }
        FieldSpec::Rain { x_start, speed, width } => {
            if !(x_start.is_finite() && speed.is_finite()) {
                return Err(out_of_range(
                    format!("{path}.x_start"),
                    "x_start/speed must be finite",
                ));
            }
            if !(width.is_finite() && *width > 0.0) {
                return Err(out_of_range(
                    format!("{path}.width"),
                    format!("must be > 0, got {width}"),
                ));
            }
        }
        FieldSpec::ConstantFloat { value } => {
            if !value.is_finite() {
                return Err(out_of_range(format!("{path}.value"), "must be finite"));
            }
        }
        FieldSpec::ConstantBool { .. } => {}
        FieldSpec::Burst { mu, alpha, beta, sigma, horizon, branching_ratio, scale, .. } => {
            if !(mu.is_finite() && *mu >= 0.0 && alpha.is_finite() && *alpha >= 0.0) {
                return Err(out_of_range(format!("{path}.mu"), "mu/alpha must be >= 0"));
            }
            if !(beta.is_finite() && *beta > 0.0) {
                return Err(out_of_range(
                    format!("{path}.beta"),
                    format!("must be > 0, got {beta}"),
                ));
            }
            if !(sigma.is_finite() && *sigma > 0.0) {
                return Err(out_of_range(
                    format!("{path}.sigma"),
                    format!("must be > 0, got {sigma}"),
                ));
            }
            if !(horizon.is_finite() && *horizon > 0.0) {
                return Err(out_of_range(
                    format!("{path}.horizon"),
                    format!("must be > 0, got {horizon}"),
                ));
            }
            if !(0.0..1.0).contains(branching_ratio) {
                return Err(out_of_range(
                    format!("{path}.branching_ratio"),
                    format!("must be in [0,1) (>= 1 is supercritical), got {branching_ratio}"),
                ));
            }
            if !scale.is_finite() {
                return Err(out_of_range(format!("{path}.scale"), "must be finite"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

impl ScenarioSpec {
    /// Serializes to the value tree [`ScenarioSpec::from_table`] accepts.
    /// All defaults are materialized, so `from_table(to_table(s)) == s`.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new();
        t.insert("name", ConfigValue::Str(self.name.clone()));
        t.insert("description", ConfigValue::Str(self.description.clone()));
        t.insert("seed", ConfigValue::Int(self.seed as i64));
        t.insert("epochs", ConfigValue::Int(self.epochs as i64));

        let mut grid = Table::new();
        grid.insert("size_km", ConfigValue::Float(self.grid.size_km));
        grid.insert("side", ConfigValue::Int(self.grid.side as i64));
        t.insert("grid", ConfigValue::Table(grid));

        let mut pop = Table::new();
        pop.insert("size", ConfigValue::Int(self.population.size as i64));
        pop.insert("human_fraction", ConfigValue::Float(self.population.human_fraction));
        pop.insert("placement", ConfigValue::Table(placement_table(&self.population.placement)));
        pop.insert("mobility", ConfigValue::Table(mobility_table(&self.population.mobility)));
        t.insert("population", ConfigValue::Table(pop));

        let mut planner = Table::new();
        planner.insert("batch_minutes", ConfigValue::Float(self.planner.batch_minutes));
        planner.insert("f_headroom", ConfigValue::Float(self.planner.f_headroom));
        planner
            .insert("mobility_substeps", ConfigValue::Int(self.planner.mobility_substeps as i64));
        planner.insert("enforce_min_area", ConfigValue::Bool(self.planner.enforce_min_area));
        planner.insert("shape", ConfigValue::Str(self.planner.shape.clone()));
        t.insert("planner", ConfigValue::Table(planner));

        let mut budget = Table::new();
        budget.insert("initial", ConfigValue::Float(self.budget.initial));
        budget.insert("nv_threshold", ConfigValue::Float(self.budget.nv_threshold));
        budget.insert("delta", ConfigValue::Float(self.budget.delta));
        budget.insert("min", ConfigValue::Float(self.budget.min));
        budget.insert("max", ConfigValue::Float(self.budget.max));
        t.insert("budget", ConfigValue::Table(budget));

        if let Some(e) = &self.errors {
            let mut errors = Table::new();
            errors.insert("gps_sigma", ConfigValue::Float(e.gps_sigma));
            errors.insert("bool_flip_prob", ConfigValue::Float(e.bool_flip_prob));
            errors.insert("value_sigma", ConfigValue::Float(e.value_sigma));
            errors.insert("mitigation", ConfigValue::Str(e.mitigation.clone()));
            t.insert("errors", ConfigValue::Table(errors));
        }
        if let Some(c) = &self.churn {
            let mut churn = Table::new();
            churn.insert("probability", ConfigValue::Float(c.probability));
            t.insert("churn", ConfigValue::Table(churn));
        }

        let attrs: Vec<ConfigValue> = self
            .attributes
            .iter()
            .map(|a| {
                let mut at = Table::new();
                at.insert("name", ConfigValue::Str(a.name.clone()));
                at.insert("human", ConfigValue::Bool(a.human));
                at.insert("field", ConfigValue::Table(field_table(&a.field)));
                ConfigValue::Table(at)
            })
            .collect();
        t.insert("attributes", ConfigValue::Array(attrs));

        if !self.tenants.is_empty() {
            let tenants: Vec<ConfigValue> = self
                .tenants
                .iter()
                .map(|tenant| {
                    let mut tt = Table::new();
                    tt.insert("name", ConfigValue::Str(tenant.name.clone()));
                    tt.insert("pool", ConfigValue::Float(tenant.pool));
                    ConfigValue::Table(tt)
                })
                .collect();
            t.insert("tenants", ConfigValue::Array(tenants));
        }

        let queries: Vec<ConfigValue> = self
            .queries
            .iter()
            .map(|q| {
                let mut qt = Table::new();
                qt.insert("text", ConfigValue::Str(q.text.clone()));
                if let Some(tenant) = &q.tenant {
                    qt.insert("tenant", ConfigValue::Str(tenant.clone()));
                }
                ConfigValue::Table(qt)
            })
            .collect();
        t.insert("queries", ConfigValue::Array(queries));

        if !self.shifts.is_empty() {
            let shifts: Vec<ConfigValue> =
                self.shifts.iter().map(|s| ConfigValue::Table(shift_table(s))).collect();
            t.insert("shifts", ConfigValue::Array(shifts));
        }
        if let Some(a) = &self.adaptive {
            let mut at = Table::new();
            at.insert("enabled", ConfigValue::Bool(a.enabled));
            at.insert("detector", ConfigValue::Str(a.detector.clone()));
            at.insert("slack", ConfigValue::Float(a.slack));
            at.insert("threshold", ConfigValue::Float(a.threshold));
            at.insert("warmup_epochs", ConfigValue::Int(a.warmup_epochs as i64));
            at.insert("cooldown_epochs", ConfigValue::Int(a.cooldown_epochs as i64));
            at.insert("gamma0", ConfigValue::Float(a.gamma0));
            at.insert("decay_batches", ConfigValue::Float(a.decay_batches));
            at.insert("initial_rate", ConfigValue::Float(a.initial_rate));
            if let Some(pool) = a.budget_pool {
                at.insert("budget_pool", ConfigValue::Float(pool));
            }
            at.insert("rebuild_chains", ConfigValue::Bool(a.rebuild_chains));
            at.insert("demand_headroom", ConfigValue::Float(a.demand_headroom));
            t.insert("adaptive", ConfigValue::Table(at));
        }
        if let Some(rl) = &self.runlog {
            let mut rt = Table::new();
            rt.insert("record", ConfigValue::Bool(rl.record));
            t.insert("runlog", ConfigValue::Table(rt));
        }
        if let Some(tm) = &self.telemetry {
            let mut tt = Table::new();
            tt.insert("report", ConfigValue::Bool(tm.report));
            t.insert("telemetry", ConfigValue::Table(tt));
        }
        if let Some(f) = &self.faults {
            let mut ft = Table::new();
            if !f.crowd.is_empty() {
                let crowd: Vec<ConfigValue> = f
                    .crowd
                    .iter()
                    .map(|w| {
                        let mut wt = Table::new();
                        wt.insert("kind", ConfigValue::Str(w.kind.clone()));
                        wt.insert("from_epoch", ConfigValue::Int(w.from_epoch as i64));
                        wt.insert("to_epoch", ConfigValue::Int(w.to_epoch as i64));
                        wt.insert("probability", ConfigValue::Float(w.probability));
                        if w.kind == "delay" {
                            wt.insert("minutes", ConfigValue::Float(w.minutes));
                        }
                        ConfigValue::Table(wt)
                    })
                    .collect();
                ft.insert("crowd", ConfigValue::Array(crowd));
            }
            if let Some(rt) = &f.retry {
                let mut rtt = Table::new();
                rtt.insert("threshold", ConfigValue::Float(rt.threshold));
                rtt.insert("backoff", ConfigValue::Float(rt.backoff));
                rtt.insert("max_attempts", ConfigValue::Int(rt.max_attempts as i64));
                ft.insert("retry", ConfigValue::Table(rtt));
            }
            if !f.crash.is_empty() {
                let crash: Vec<ConfigValue> = f
                    .crash
                    .iter()
                    .map(|c| {
                        let mut ct = Table::new();
                        ct.insert("point", ConfigValue::Str(c.point.clone()));
                        ct.insert("epoch", ConfigValue::Int(c.epoch as i64));
                        ConfigValue::Table(ct)
                    })
                    .collect();
                ft.insert("crash", ConfigValue::Array(crash));
            }
            t.insert("faults", ConfigValue::Table(ft));
        }
        t
    }

    /// Serializes to TOML; [`ScenarioSpec::from_toml`] inverts it exactly.
    pub fn to_toml(&self) -> String {
        render_toml(&self.to_table())
    }

    /// Serializes to JSON; [`ScenarioSpec::from_json`] inverts it exactly.
    pub fn to_json(&self) -> String {
        render_json(&self.to_table())
    }
}

fn quads_value(quads: &[(f64, f64, f64, f64)]) -> ConfigValue {
    ConfigValue::Array(
        quads
            .iter()
            .map(|&(a, b, c, d)| {
                ConfigValue::Array(vec![
                    ConfigValue::Float(a),
                    ConfigValue::Float(b),
                    ConfigValue::Float(c),
                    ConfigValue::Float(d),
                ])
            })
            .collect(),
    )
}

fn placement_table(p: &PlacementSpec) -> Table {
    let mut t = Table::new();
    match p {
        PlacementSpec::Uniform => t.insert("kind", ConfigValue::Str("uniform".into())),
        PlacementSpec::City => t.insert("kind", ConfigValue::Str("city".into())),
        PlacementSpec::Hotspots { floor, spots } => {
            t.insert("kind", ConfigValue::Str("hotspots".into()));
            t.insert("floor", ConfigValue::Float(*floor));
            t.insert("spots", quads_value(spots));
        }
    }
    t
}

fn mobility_table(m: &MobilitySpec) -> Table {
    let mut t = Table::new();
    match m {
        MobilitySpec::Stationary => t.insert("kind", ConfigValue::Str("stationary".into())),
        MobilitySpec::Walk { sigma } => {
            t.insert("kind", ConfigValue::Str("walk".into()));
            t.insert("sigma", ConfigValue::Float(*sigma));
        }
        MobilitySpec::Waypoint { speed, pause } => {
            t.insert("kind", ConfigValue::Str("waypoint".into()));
            t.insert("speed", ConfigValue::Float(*speed));
            t.insert("pause", ConfigValue::Float(*pause));
        }
        MobilitySpec::GaussMarkov { alpha, mean_speed, sigma } => {
            t.insert("kind", ConfigValue::Str("gauss_markov".into()));
            t.insert("alpha", ConfigValue::Float(*alpha));
            t.insert("mean_speed", ConfigValue::Float(*mean_speed));
            t.insert("sigma", ConfigValue::Float(*sigma));
        }
    }
    t
}

fn rect_value(rect: &(f64, f64, f64, f64)) -> ConfigValue {
    ConfigValue::Array(vec![
        ConfigValue::Float(rect.0),
        ConfigValue::Float(rect.1),
        ConfigValue::Float(rect.2),
        ConfigValue::Float(rect.3),
    ])
}

fn shift_table(s: &ShiftSpec) -> Table {
    let mut t = Table::new();
    match s {
        ShiftSpec::Participation { epoch, factor } => {
            t.insert("kind", ConfigValue::Str("participation".into()));
            t.insert("epoch", ConfigValue::Int(*epoch as i64));
            t.insert("factor", ConfigValue::Float(*factor));
        }
        ShiftSpec::Dropout { epoch, probability, rect } => {
            t.insert("kind", ConfigValue::Str("dropout".into()));
            t.insert("epoch", ConfigValue::Int(*epoch as i64));
            t.insert("probability", ConfigValue::Float(*probability));
            t.insert("rect", rect_value(rect));
        }
        ShiftSpec::Migrate { epoch, probability, rect } => {
            t.insert("kind", ConfigValue::Str("migrate".into()));
            t.insert("epoch", ConfigValue::Int(*epoch as i64));
            t.insert("probability", ConfigValue::Float(*probability));
            t.insert("rect", rect_value(rect));
        }
    }
    t
}

fn field_table(f: &FieldSpec) -> Table {
    let mut t = Table::new();
    match f {
        FieldSpec::Temperature { base, y_gradient, islands, diurnal_amplitude, diurnal_period } => {
            t.insert("kind", ConfigValue::Str("temperature".into()));
            t.insert("base", ConfigValue::Float(*base));
            t.insert("y_gradient", ConfigValue::Float(*y_gradient));
            t.insert("islands", quads_value(islands));
            t.insert("diurnal_amplitude", ConfigValue::Float(*diurnal_amplitude));
            t.insert("diurnal_period", ConfigValue::Float(*diurnal_period));
        }
        FieldSpec::Rain { x_start, speed, width } => {
            t.insert("kind", ConfigValue::Str("rain".into()));
            t.insert("x_start", ConfigValue::Float(*x_start));
            t.insert("speed", ConfigValue::Float(*speed));
            t.insert("width", ConfigValue::Float(*width));
        }
        FieldSpec::ConstantFloat { value } => {
            t.insert("kind", ConfigValue::Str("constant".into()));
            t.insert("value", ConfigValue::Float(*value));
        }
        FieldSpec::ConstantBool { value } => {
            t.insert("kind", ConfigValue::Str("constant".into()));
            t.insert("value", ConfigValue::Bool(*value));
        }
        FieldSpec::Burst {
            mu,
            alpha,
            beta,
            sigma,
            horizon,
            immigrants,
            branching_ratio,
            scale,
        } => {
            t.insert("kind", ConfigValue::Str("burst".into()));
            t.insert("mu", ConfigValue::Float(*mu));
            t.insert("alpha", ConfigValue::Float(*alpha));
            t.insert("beta", ConfigValue::Float(*beta));
            t.insert("sigma", ConfigValue::Float(*sigma));
            t.insert("horizon", ConfigValue::Float(*horizon));
            t.insert("immigrants", ConfigValue::Int(*immigrants as i64));
            t.insert("branching_ratio", ConfigValue::Float(*branching_ratio));
            t.insert("scale", ConfigValue::Float(*scale));
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn minimal_toml() -> &'static str {
        r#"
name = "mini"
seed = 7
epochs = 3

[grid]
size_km = 4.0
side = 4

[population]
size = 200
human_fraction = 0.25
placement = { kind = "uniform" }
mobility = { kind = "walk", sigma = 0.2 }

[[attributes]]
name = "temp"
field = { kind = "constant", value = 21.0 }

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"
"#
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        assert_eq!(s.name, "mini");
        assert_eq!(s.epochs, 3);
        assert_eq!(s.planner, PlannerSpec::default());
        assert_eq!(s.budget, BudgetSpec::default());
        assert!(s.errors.is_none() && s.churn.is_none());
        assert_eq!(s.attributes.len(), 1);
        assert!(!s.attributes[0].human);
        assert_eq!(s.attributes[0].field, FieldSpec::ConstantFloat { value: 21.0 });
    }

    #[test]
    fn unknown_fields_rejected_at_every_level() {
        let with_typo = minimal_toml().replace("human_fraction = 0.25", "human_fractoin = 0.25");
        let err = ScenarioSpec::from_toml(&with_typo).unwrap_err();
        assert_eq!(err, SpecError::UnknownField { path: "population.human_fractoin".into() });

        // A stray top-level key (prepended — appending would land inside the
        // trailing [[queries]] table).
        let extra_top = format!("bogus = 1\n{}", minimal_toml());
        assert!(matches!(
            ScenarioSpec::from_toml(&extra_top).unwrap_err(),
            SpecError::UnknownField { path } if path == "bogus"
        ));
        // And a stray key inside a [[queries]] element.
        let extra_query = format!("{}\nretries = 3\n", minimal_toml());
        assert!(matches!(
            ScenarioSpec::from_toml(&extra_query).unwrap_err(),
            SpecError::UnknownField { path } if path == "queries[0].retries"
        ));
    }

    #[test]
    fn zero_cell_grid_rejected() {
        let zero = minimal_toml().replace("side = 4", "side = 0");
        let err = ScenarioSpec::from_toml(&zero).unwrap_err();
        assert!(matches!(&err, SpecError::OutOfRange { path, .. } if path == "grid.side"), "{err}");
    }

    #[test]
    fn out_of_range_budget_rejected() {
        let bad = format!("{}\n[budget]\ninitial = -3.0\n", minimal_toml());
        let err = ScenarioSpec::from_toml(&bad).unwrap_err();
        assert!(
            matches!(&err, SpecError::OutOfRange { path, .. } if path == "budget.initial"),
            "{err}"
        );
        let inverted = format!("{}\n[budget]\nmin = 10.0\nmax = 5.0\n", minimal_toml());
        let err = ScenarioSpec::from_toml(&inverted).unwrap_err();
        assert!(
            matches!(&err, SpecError::OutOfRange { path, .. } if path == "budget.max"),
            "{err}"
        );
    }

    #[test]
    fn non_finite_field_knobs_rejected() {
        let mut s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        s.attributes[0].field = FieldSpec::Temperature {
            base: f64::NAN,
            y_gradient: 0.0,
            islands: vec![],
            diurnal_amplitude: 0.0,
            diurnal_period: 1440.0,
        };
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
        s.attributes[0].field = FieldSpec::Rain { x_start: f64::INFINITY, speed: 0.0, width: 1.0 };
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
        s.attributes[0].field = FieldSpec::Temperature {
            base: 20.0,
            y_gradient: 0.0,
            islands: vec![(f64::NAN, 0.0, 1.0, 1.0)],
            diurnal_amplitude: 0.0,
            diurnal_period: 1440.0,
        };
        assert!(matches!(s.validate(), Err(SpecError::OutOfRange { .. })));
    }

    #[test]
    fn runlog_block_is_strictly_parsed() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        assert!(s.runlog.is_none(), "no [runlog] block, no recording");

        let with = format!("{}\n[runlog]\n", minimal_toml());
        let s = ScenarioSpec::from_toml(&with).unwrap();
        assert_eq!(s.runlog, Some(RunlogSpec { record: true }), "record defaults to true");

        let off = format!("{}\n[runlog]\nrecord = false\n", minimal_toml());
        assert_eq!(
            ScenarioSpec::from_toml(&off).unwrap().runlog,
            Some(RunlogSpec { record: false })
        );

        let typo = format!("{}\n[runlog]\nrecrod = true\n", minimal_toml());
        assert!(matches!(
            ScenarioSpec::from_toml(&typo).unwrap_err(),
            SpecError::UnknownField { path } if path == "runlog.recrod"
        ));
    }

    #[test]
    fn telemetry_block_is_strictly_parsed_and_round_trips() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        assert!(s.telemetry.is_none(), "no [telemetry] block, no registry");

        let with = format!("{}\n[telemetry]\n", minimal_toml());
        let s = ScenarioSpec::from_toml(&with).unwrap();
        assert_eq!(s.telemetry, Some(TelemetrySpec { report: true }), "report defaults to true");

        let off = format!("{}\n[telemetry]\nreport = false\n", minimal_toml());
        let s = ScenarioSpec::from_toml(&off).unwrap();
        assert_eq!(s.telemetry, Some(TelemetrySpec { report: false }));

        // to_toml → from_toml keeps the block (embedded-spec replay
        // depends on this: a detached replay must see [telemetry] to
        // rebuild the registry and re-converge the report checksum).
        let back = ScenarioSpec::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back.telemetry, s.telemetry);

        let typo = format!("{}\n[telemetry]\nreprot = true\n", minimal_toml());
        assert!(matches!(
            ScenarioSpec::from_toml(&typo).unwrap_err(),
            SpecError::UnknownField { path } if path == "telemetry.reprot"
        ));
    }

    #[test]
    fn zero_shard_exec_rejected_at_the_spec_boundary() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        let err = s.to_server_config(craqr_core::ExecMode::Sharded(0)).unwrap_err();
        assert!(
            matches!(&err, SpecError::OutOfRange { path, .. } if path == "exec.shards"),
            "{err}"
        );
        assert!(s.to_server_config(craqr_core::ExecMode::Sharded(1)).is_ok());
    }

    fn faulty_toml() -> String {
        format!(
            "{}\n{}",
            minimal_toml(),
            r#"
[faults]

[[faults.crowd]]
kind = "drop"
from_epoch = 0
to_epoch = 1
probability = 0.25

[[faults.crowd]]
kind = "delay"
probability = 0.5
minutes = 3.0

[faults.retry]
threshold = 0.6
backoff = 0.5
max_attempts = 2

[[faults.crash]]
point = "post-drain"
epoch = 1
"#
        )
    }

    #[test]
    fn faults_block_parses_and_round_trips() {
        let s = ScenarioSpec::from_toml(&faulty_toml()).unwrap();
        let f = s.faults.as_ref().unwrap();
        assert_eq!(f.crowd.len(), 2);
        assert_eq!(f.crowd[0].kind, "drop");
        // Window defaults: the delay fault covers the whole run.
        assert_eq!((f.crowd[1].from_epoch, f.crowd[1].to_epoch), (0, 2));
        assert_eq!(f.retry, Some(RetrySpec { threshold: 0.6, backoff: 0.5, max_attempts: 2 }));
        assert_eq!(f.crash, vec![CrashSpec { point: "post-drain".into(), epoch: 1 }]);

        // The retry policy rides into the server config.
        let cfg = s.to_server_config(craqr_core::ExecMode::Serial).unwrap();
        assert_eq!(cfg.retry.map(|r| r.shortfall_threshold), Some(0.6));

        // Per-epoch merge: both faults at epoch 1, only the delay at 2.
        let at1 = f.crowd_faults_at(1);
        assert_eq!(
            (at1.drop_probability, at1.delay_probability, at1.delay_minutes),
            (0.25, 0.5, 3.0)
        );
        let at2 = f.crowd_faults_at(2);
        assert_eq!((at2.drop_probability, at2.delay_probability), (0.0, 0.5));

        // Lossless round-trip through both syntaxes.
        assert_eq!(ScenarioSpec::from_toml(&s.to_toml()).unwrap(), s);
        assert_eq!(ScenarioSpec::from_json(&s.to_json()).unwrap(), s);
    }

    #[test]
    fn faults_block_is_strictly_validated() {
        let reject = |mutation: &str, expected_path: &str| {
            let src = faulty_toml().replace("probability = 0.25", mutation);
            let err = ScenarioSpec::from_toml(&src).unwrap_err();
            assert!(
                matches!(&err, SpecError::OutOfRange { path, .. } if path == expected_path),
                "mutation '{mutation}': {err}"
            );
        };
        reject("probability = 1.5", "faults.crowd[0].probability");

        let bad_kind = faulty_toml().replace("kind = \"drop\"", "kind = \"mangle\"");
        assert!(matches!(
            ScenarioSpec::from_toml(&bad_kind).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.crowd[0].kind"
        ));
        // minutes on a non-delay fault is a contradiction, not an extra.
        let stray_minutes =
            faulty_toml().replace("probability = 0.25", "probability = 0.25\nminutes = 1.0");
        assert!(matches!(
            ScenarioSpec::from_toml(&stray_minutes).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.crowd[0].minutes"
        ));
        // A delay fault needs a positive deferral.
        let no_minutes = faulty_toml().replace("minutes = 3.0", "minutes = 0.0");
        assert!(matches!(
            ScenarioSpec::from_toml(&no_minutes).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.crowd[1].minutes"
        ));
        // Same-kind overlapping windows shadow each other — rejected.
        let overlap = faulty_toml().replace("kind = \"drop\"", "kind = \"delay\"\nminutes = 1.0");
        assert!(matches!(
            ScenarioSpec::from_toml(&overlap).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.crowd[1]"
        ));
        // Windows must land inside the run.
        let late = faulty_toml().replace("to_epoch = 1", "to_epoch = 7");
        assert!(matches!(
            ScenarioSpec::from_toml(&late).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.crowd[0].to_epoch"
        ));
        // Crash points are validated against the core's named seams.
        let bad_point = faulty_toml().replace("point = \"post-drain\"", "point = \"pre-coffee\"");
        let err = ScenarioSpec::from_toml(&bad_point).unwrap_err();
        assert!(
            matches!(&err, SpecError::OutOfRange { path, message }
                if path == "faults.crash[0].point" && message.contains("mid-log-append")),
            "{err}"
        );
        // Retry numerics delegate to the core validator.
        let bad_retry = faulty_toml().replace("backoff = 0.5", "backoff = 0.0");
        assert!(matches!(
            ScenarioSpec::from_toml(&bad_retry).unwrap_err(),
            SpecError::OutOfRange { path, .. } if path == "faults.retry.backoff"
        ));
        // Typos inside the block are caught at every level.
        let typo = faulty_toml().replace("threshold = 0.6", "treshold = 0.6");
        assert!(matches!(
            ScenarioSpec::from_toml(&typo).unwrap_err(),
            SpecError::UnknownField { path } if path == "faults.retry.treshold"
        ));
    }

    #[test]
    fn json_and_toml_agree() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        let via_json = ScenarioSpec::from_json(&s.to_json()).unwrap();
        let via_toml = ScenarioSpec::from_toml(&s.to_toml()).unwrap();
        assert_eq!(s, via_json);
        assert_eq!(s, via_toml);
    }

    #[test]
    fn from_source_keys_on_extension() {
        let s = ScenarioSpec::from_toml(minimal_toml()).unwrap();
        assert!(ScenarioSpec::from_source("x.json", &s.to_json()).is_ok());
        assert!(ScenarioSpec::from_source("x.toml", &s.to_toml()).is_ok());
        assert!(ScenarioSpec::from_source("x.json", &s.to_toml()).is_err());
    }
}
