//! Executing a spec: spec → crowd → server → [`ScenarioReport`]
//! (+ [`AdaptiveTrace`] when the spec closes the loop).

use crate::report::{
    AdaptiveSection, AdmissionRow, EpochRow, FaultSection, OperatorRow, QueryRow, RunTotals,
    ScenarioReport, TenantRow, TenantSection,
};
use crate::spec::{FieldSpec, ScenarioSpec, ShiftSpec, SpecError};
use crate::telemetry::RunTelemetry;
use craqr_adaptive::{AdaptiveController, AdaptiveTrace, TimedHook};
use craqr_core::budget::TuneOutcome;
use craqr_core::server::SubmitError;
use craqr_core::{
    ControlHook, CraqrServer, CrashPoint, EpochInputsRecord, EpochReport, EpochTap, ExecMode,
    PhaseTimer, QueryId,
};
use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::{IntensityModel, IntensitySummary, SelfExcitingIntensity};
use craqr_runlog::{RunLog, RunLogRecorder, ShiftEvent, StreamingRecorder};
use craqr_sensing::{fields::ConstantField, AttrValue, Crowd, CrowdConfig, Field};
use std::fmt;
use std::path::{Path, PathBuf};

/// Why a (valid) spec failed to run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunError {
    /// The spec itself is invalid.
    Spec(SpecError),
    /// A query failed to parse or plan against this spec's world.
    Query {
        /// Index into [`ScenarioSpec::queries`].
        index: usize,
        /// The offending text.
        text: String,
        /// The parser/planner complaint.
        message: String,
    },
    /// A streamed run log could not be persisted.
    Io {
        /// The log path that failed.
        path: PathBuf,
        /// The io error.
        message: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Spec(e) => write!(f, "invalid spec: {e}"),
            RunError::Query { index, text, message } => {
                write!(f, "query {index} ('{text}'): {message}")
            }
            RunError::Io { path, message } => write!(f, "{}: {message}", path.display()),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SpecError> for RunError {
    fn from(e: SpecError) -> Self {
        RunError::Spec(e)
    }
}

/// A ground-truth field backed by a (frozen) intensity model: observations
/// report `scale × λ(t, x, y)` — the scenario harness's burst phenomena.
struct IntensityField<I> {
    model: I,
    scale: f64,
}

impl<I: IntensityModel + Send + Sync> Field for IntensityField<I> {
    fn value_at(&self, p: &SpaceTimePoint) -> AttrValue {
        AttrValue::Float(self.scale * self.model.rate_at(p))
    }
}

/// Everything one scenario run produces: the canonical report, the
/// adaptive decision log (when the spec closes the loop), and the
/// event-sourced run log (when the spec — or the caller, via
/// [`ScenarioRunner::run_recorded`] — asks for one).
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutput {
    /// The canonical, checksummed report.
    pub report: ScenarioReport,
    /// The adaptive controller's decision log (`[adaptive]` specs only).
    pub trace: Option<AdaptiveTrace>,
    /// The event-sourced epoch log, sealed with the report/trace
    /// checksums (`[runlog]` specs and `run_recorded` only).
    pub log: Option<RunLog>,
    /// The metrics collector (`[telemetry]` specs and the
    /// `*_instrumented` entry points only) — render it with
    /// [`RunTelemetry::render_prometheus`] or aggregate across runs with
    /// [`RunTelemetry::absorb`].
    pub telemetry: Option<RunTelemetry>,
}

/// Runs [`ScenarioSpec`]s under any [`ExecMode`].
///
/// The runner is stateless between runs: every [`ScenarioRunner::run`]
/// rebuilds the crowd, the server, and the query plan from the spec, so
/// serial and sharded runs (and repeated runs) are completely independent
/// executions whose reports can be compared byte-for-byte.
pub struct ScenarioRunner {
    spec: ScenarioSpec,
}

impl ScenarioRunner {
    /// Validates the spec and wraps it in a runner.
    pub fn new(spec: ScenarioSpec) -> Result<Self, SpecError> {
        spec.validate()?;
        Ok(Self { spec })
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Runs the scenario under `exec` with the spec's own seed.
    pub fn run(&self, exec: ExecMode) -> Result<ScenarioReport, RunError> {
        self.run_with_seed(exec, self.spec.seed)
    }

    /// Runs the scenario under `exec` with an overridden seed — the CI
    /// determinism check exercises serial-vs-sharded equality across
    /// several seeds without needing per-seed spec files.
    pub fn run_with_seed(&self, exec: ExecMode, seed: u64) -> Result<ScenarioReport, RunError> {
        // Report-only callers skip run-log recording even for `[runlog]`
        // specs: a tap is a pure observer, so this changes nothing but
        // the work done.
        self.run_live(exec, seed, false, false, false).map(|out| out.report)
    }

    /// Runs the scenario on the **pipelined executor** — the staged
    /// epoch dataflow spread across four worker threads
    /// ([`craqr_core::EpochDriver::run_pipelined`]) — with the spec's
    /// own seed. Byte-identical to [`ScenarioRunner::run`]: pipelining
    /// is an execution strategy, never an output; goldens are always
    /// blessed from serial runs.
    pub fn run_pipelined(&self, exec: ExecMode) -> Result<ScenarioReport, RunError> {
        self.run_live(exec, self.spec.seed, false, false, true).map(|out| out.report)
    }

    /// [`ScenarioRunner::run_full`] on the pipelined executor — report,
    /// trace, and run log all byte-identical to the serial run's.
    pub fn run_full_pipelined(&self, exec: ExecMode, seed: u64) -> Result<RunOutput, RunError> {
        let record = self.spec.runlog.is_some_and(|r| r.record);
        self.run_live(exec, seed, record, false, true)
    }

    /// [`ScenarioRunner::run_recorded`] on the pipelined executor.
    pub fn run_recorded_pipelined(&self, exec: ExecMode, seed: u64) -> Result<RunOutput, RunError> {
        self.run_live(exec, seed, true, false, true)
    }

    /// Runs the scenario, also returning the adaptive controller's
    /// decision log when the spec has an `[adaptive]` block, and the
    /// event-sourced [`RunLog`] when it has a recording `[runlog]` block.
    /// The trace's checksum is embedded in the report (so the report
    /// golden pins the trace), and the log is sealed with both checksums
    /// (so a replay is self-verifying); the trace and log are
    /// golden-tested separately (`tests/goldens/<name>.trace.txt` /
    /// `<name>.runlog.txt`).
    pub fn run_full(&self, exec: ExecMode, seed: u64) -> Result<RunOutput, RunError> {
        let record = self.spec.runlog.is_some_and(|r| r.record);
        self.run_live(exec, seed, record, false, false)
    }

    /// [`ScenarioRunner::run_full`] with the clock-derived metric tier
    /// switched on: a [`RunTelemetry`] collector is always attached (even
    /// without a `[telemetry]` block), the epoch loop gets a
    /// [`PhaseTimer`], the engine accumulates per-node processing time,
    /// and the control hook is timed. Every checksummed artifact —
    /// report, trace, run log — is bit-identical to the untimed run (the
    /// timing tier is structurally excluded from canonical renderings).
    pub fn run_full_instrumented(&self, exec: ExecMode, seed: u64) -> Result<RunOutput, RunError> {
        let record = self.spec.runlog.is_some_and(|r| r.record);
        self.run_live(exec, seed, record, true, false)
    }

    /// Runs the scenario with run-log recording forced on, whether or not
    /// the spec declares `[runlog]` — the CLI `record` subcommand and the
    /// replay CI job use this to event-source any scenario.
    pub fn run_recorded(&self, exec: ExecMode, seed: u64) -> Result<RunOutput, RunError> {
        self.run_live(exec, seed, true, false, false)
    }

    /// [`ScenarioRunner::run_recorded`] with the timing tier switched on
    /// (see [`ScenarioRunner::run_full_instrumented`] for the contract) —
    /// the chaos CLI's `--metrics` mode instruments its reference runs
    /// this way.
    pub fn run_recorded_instrumented(
        &self,
        exec: ExecMode,
        seed: u64,
    ) -> Result<RunOutput, RunError> {
        self.run_live(exec, seed, true, true, false)
    }

    /// Runs the scenario with **crash-safe** recording: every sealed epoch
    /// block is appended and `fsync`ed to `log_path` as it closes
    /// ([`StreamingRecorder`]), and the sealed document atomically
    /// replaces the streamed prefix at the end. If the process dies
    /// mid-run, the file salvages ([`craqr_runlog::parse_salvage`]) to
    /// the last durable epoch boundary instead of losing the log.
    pub fn run_streamed(
        &self,
        exec: ExecMode,
        seed: u64,
        log_path: &Path,
    ) -> Result<RunOutput, RunError> {
        self.run_streamed_instrumented(exec, seed, log_path, false)
    }

    /// [`ScenarioRunner::run_streamed`] with the timing tier switched on
    /// (see [`ScenarioRunner::run_full_instrumented`] for the contract).
    pub fn run_streamed_instrumented(
        &self,
        exec: ExecMode,
        seed: u64,
        log_path: &Path,
        timing: bool,
    ) -> Result<RunOutput, RunError> {
        self.run_streamed_inner(exec, seed, log_path, timing, false)
    }

    /// [`ScenarioRunner::run_streamed`] on the pipelined executor: the
    /// render stage streams sealed epoch blocks while later epochs are
    /// mid-flight upstream, and the durable file is byte-identical to the
    /// serial streamed run's.
    pub fn run_streamed_pipelined(
        &self,
        exec: ExecMode,
        seed: u64,
        log_path: &Path,
    ) -> Result<RunOutput, RunError> {
        self.run_streamed_inner(exec, seed, log_path, false, true)
    }

    fn run_streamed_inner(
        &self,
        exec: ExecMode,
        seed: u64,
        log_path: &Path,
        timing: bool,
        pipelined: bool,
    ) -> Result<RunOutput, RunError> {
        let spec = &self.spec;
        let io_err = |e: &std::io::Error| RunError::Io {
            path: log_path.to_path_buf(),
            message: e.to_string(),
        };
        let (mut server, qids) = build_server(spec, seed, exec, false)?;
        let mut telemetry = make_collector(spec, timing);
        if timing {
            server.set_engine_timing(true);
        }
        if let Some(t) = &mut telemetry {
            t.observe_admissions(server.admissions());
        }
        let mut controller = match &spec.adaptive {
            Some(a) => Some(AdaptiveController::new(a.to_config()?)),
            None => None,
        };
        let mut rec = StreamingRecorder::new(log_path, &spec.name, seed, &spec.to_toml());
        rec.record_admissions(server.admissions());
        // Persist the header eagerly: even a crash before epoch 0 leaves a
        // salvageable file.
        rec.begin().map_err(|e| io_err(&e))?;

        // The wrapper is a pure pass-through when untimed, so it can wrap
        // unconditionally without perturbing uninstrumented runs.
        let mut hook =
            controller.as_mut().map(|c| TimedHook::new(c as &mut dyn ControlHook, timing));
        let mut tap = ShiftTap::new(&mut rec, spec_shift_schedule(spec), None);
        let outcome = drive(
            &mut server,
            spec,
            spec.epochs as u64,
            hook.as_mut().map(|h| h as &mut dyn ControlHook),
            Some(&mut tap),
            phase_timer(&mut telemetry, timing),
            None,
            pipelined,
        );
        drop(tap);
        // Appends happen on the driver's render side now, so stream
        // failures surface once at the end of the run.
        if let Some(err) = rec.last_error() {
            return Err(io_err(err));
        }
        let mut epochs = Vec::with_capacity(outcome.reports.len());
        for r in &outcome.reports {
            if let Some(t) = &mut telemetry {
                t.observe_epoch(r);
            }
            epochs.push(epoch_row(r));
        }
        if let (Some(t), Some(h)) = (&mut telemetry, &hook) {
            t.observe_hook(h.calls(), h.total_ns());
        }
        // `hook` borrows `controller`; release it before `into_trace` moves
        // the controller out.
        let _ = hook;

        let trace = controller.map(AdaptiveController::into_trace);
        let responses_delivered = server.crowd().responses_delivered();
        let report = finalize_report(
            spec,
            seed,
            &mut server,
            &qids,
            epochs,
            responses_delivered,
            trace.as_ref(),
            telemetry.as_mut(),
        );
        let log = rec
            .finish(report.checksum(), trace.as_ref().map(AdaptiveTrace::checksum))
            .map_err(|e| io_err(&e))?;
        Ok(RunOutput { report, trace, log: Some(log), telemetry })
    }

    /// Runs the scenario up to `at_epoch` and kills it at the named
    /// [`CrashPoint`], exactly as a process death there would: epochs
    /// before `at_epoch` stream durably to `log_path`, the crashed
    /// epoch's work is abandoned mid-flight (or, for `mid-log-append`,
    /// its log append is torn halfway through a `write(2)`), and nothing
    /// is sealed. Returns the number of epochs durable on disk — the
    /// boundary a salvage-and-resume must recover to.
    ///
    /// # Panics
    /// Panics when `at_epoch` is outside the spec's horizon.
    #[track_caller]
    pub fn run_to_crash(
        &self,
        exec: ExecMode,
        seed: u64,
        point: CrashPoint,
        at_epoch: u32,
        log_path: &Path,
    ) -> Result<usize, RunError> {
        self.run_to_crash_inner(exec, seed, point, at_epoch, log_path, false)
    }

    /// [`ScenarioRunner::run_to_crash`] on the pipelined executor: the
    /// process dies with all four stages mid-flight (the stage owning the
    /// crash point exits after its last permitted operation and its
    /// neighbours drain until their channels disconnect), and the durable
    /// prefix on disk is byte-identical to the serial crash's.
    ///
    /// # Panics
    /// Panics when `at_epoch` is outside the spec's horizon.
    #[track_caller]
    pub fn run_to_crash_pipelined(
        &self,
        exec: ExecMode,
        seed: u64,
        point: CrashPoint,
        at_epoch: u32,
        log_path: &Path,
    ) -> Result<usize, RunError> {
        self.run_to_crash_inner(exec, seed, point, at_epoch, log_path, true)
    }

    fn run_to_crash_inner(
        &self,
        exec: ExecMode,
        seed: u64,
        point: CrashPoint,
        at_epoch: u32,
        log_path: &Path,
        pipelined: bool,
    ) -> Result<usize, RunError> {
        let spec = &self.spec;
        assert!(
            at_epoch < spec.epochs,
            "crash epoch {at_epoch} outside the spec's {} epochs",
            spec.epochs
        );
        let (mut server, _qids) = build_server(spec, seed, exec, false)?;
        let mut controller = match &spec.adaptive {
            Some(a) => Some(AdaptiveController::new(a.to_config()?)),
            None => None,
        };
        let mut rec = StreamingRecorder::new(log_path, &spec.name, seed, &spec.to_toml());
        rec.record_admissions(server.admissions());
        rec.begin()
            .map_err(|e| RunError::Io { path: log_path.to_path_buf(), message: e.to_string() })?;

        let tear_at = (point == CrashPoint::MidLogAppend).then_some(at_epoch as u64);
        let mut tap = ShiftTap::new(&mut rec, spec_shift_schedule(spec), tear_at);
        let _ = drive(
            &mut server,
            spec,
            at_epoch as u64 + 1,
            controller.as_mut().map(|c| c as &mut dyn ControlHook),
            Some(&mut tap),
            None,
            Some((at_epoch as u64, point)),
            pipelined,
        );
        drop(tap);
        // The "process" dies here: no seal, no atomic swap. The file keeps
        // exactly the prefix whose `end` lines were synced.
        Ok(rec.epochs_streamed())
    }

    fn run_live(
        &self,
        exec: ExecMode,
        seed: u64,
        record: bool,
        timing: bool,
        pipelined: bool,
    ) -> Result<RunOutput, RunError> {
        let spec = &self.spec;
        let (mut server, qids) = build_server(spec, seed, exec, false)?;
        let mut telemetry = make_collector(spec, timing);
        if timing {
            server.set_engine_timing(true);
        }
        if let Some(t) = &mut telemetry {
            t.observe_admissions(server.admissions());
        }
        let mut controller = match &spec.adaptive {
            // The spec validated the block, so the config is sound.
            Some(a) => Some(AdaptiveController::new(a.to_config()?)),
            None => None,
        };
        let mut recorder = if record {
            let mut rec = RunLogRecorder::new(&spec.name, seed, &spec.to_toml());
            // Admission ran at submit time, inside build_server; the
            // decisions land in the log's checksummed header.
            rec.record_admissions(server.admissions());
            Some(rec)
        } else {
            None
        };

        // The wrapper is a pure pass-through when untimed, so it can wrap
        // unconditionally without perturbing uninstrumented runs.
        let mut hook =
            controller.as_mut().map(|c| TimedHook::new(c as &mut dyn ControlHook, timing));
        let mut tap = recorder
            .as_mut()
            .map(|rec| ShiftTap::new(rec as &mut dyn ShiftSink, spec_shift_schedule(spec), None));
        let outcome = drive(
            &mut server,
            spec,
            spec.epochs as u64,
            hook.as_mut().map(|h| h as &mut dyn ControlHook),
            tap.as_mut().map(|t| t as &mut dyn EpochTap),
            phase_timer(&mut telemetry, timing),
            None,
            pipelined,
        );
        drop(tap);
        let mut epochs = Vec::with_capacity(outcome.reports.len());
        for r in &outcome.reports {
            if let Some(t) = &mut telemetry {
                t.observe_epoch(r);
            }
            epochs.push(epoch_row(r));
        }
        if let (Some(t), Some(h)) = (&mut telemetry, &hook) {
            t.observe_hook(h.calls(), h.total_ns());
        }
        // `hook` borrows `controller`; release it before `into_trace` moves
        // the controller out.
        let _ = hook;

        let trace = controller.map(AdaptiveController::into_trace);
        let responses_delivered = server.crowd().responses_delivered();
        let report = finalize_report(
            spec,
            seed,
            &mut server,
            &qids,
            epochs,
            responses_delivered,
            trace.as_ref(),
            telemetry.as_mut(),
        );
        let log = recorder
            .map(|rec| rec.finish(report.checksum(), trace.as_ref().map(AdaptiveTrace::checksum)));
        Ok(RunOutput { report, trace, log, telemetry })
    }

    /// Builds a runner from a spec file (`.toml` or `.json`).
    pub fn from_file(path: &Path) -> Result<Self, BatchError> {
        let src = std::fs::read_to_string(path)
            .map_err(|e| BatchError::Io { path: path.to_path_buf(), message: e.to_string() })?;
        let spec = ScenarioSpec::from_source(&path.to_string_lossy(), &src)
            .map_err(|e| BatchError::Spec { path: path.to_path_buf(), error: e })?;
        ScenarioRunner::new(spec)
            .map_err(|e| BatchError::Spec { path: path.to_path_buf(), error: e })
    }

    /// Loads every spec file in `dir` (sorted by file name) and runs each
    /// under `exec` with its own seed — the library counterpart of
    /// `craqr-scenario --all` for callers that want whole-corpus reports
    /// without the CLI's golden/trace management. (The CLI shares only
    /// [`scenario_files`] with this, because it also handles seed
    /// overrides, cross-mode checks, and traces per file.)
    pub fn run_all(
        dir: &Path,
        exec: ExecMode,
    ) -> Result<Vec<(PathBuf, ScenarioReport)>, BatchError> {
        let mut out = Vec::new();
        for path in scenario_files(dir)? {
            let runner = Self::from_file(&path)?;
            let report =
                runner.run(exec).map_err(|e| BatchError::Run { path: path.clone(), error: e })?;
            out.push((path, report));
        }
        Ok(out)
    }
}

/// Every scenario spec file (`.toml`/`.json`) in `dir`, sorted by name.
pub fn scenario_files(dir: &Path) -> Result<Vec<PathBuf>, BatchError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|e| BatchError::Io { path: dir.to_path_buf(), message: e.to_string() })?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| matches!(p.extension().and_then(|e| e.to_str()), Some("toml") | Some("json")))
        .collect();
    files.sort();
    Ok(files)
}

/// Why a whole-corpus batch run failed.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchError {
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The io error.
        message: String,
    },
    /// A spec failed to parse or validate.
    Spec {
        /// The offending file.
        path: PathBuf,
        /// The schema complaint.
        error: SpecError,
    },
    /// A valid spec failed to run.
    Run {
        /// The offending file.
        path: PathBuf,
        /// The runner complaint.
        error: RunError,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::Io { path, message } => write!(f, "{}: {message}", path.display()),
            BatchError::Spec { path, error } => write!(f, "{}: {error}", path.display()),
            BatchError::Run { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for BatchError {}

/// The deterministic pre-epoch world updates every execution path —
/// live, streamed, crash-injected, and the resume prefix — must apply
/// identically: scripted shifts, churn, and the `[faults]` crowd-fault
/// windows active this epoch. Divergence here would break replay/resume
/// byte-equality, so there is exactly one copy. The function touches
/// only the crowd, which is what lets the pipelined executor run it on
/// the drain stage ([`craqr_core::EpochDriver::prologue`]); the shift
/// events are mirrored into run logs by [`ShiftTap`] on the render side.
pub(crate) fn epoch_prologue(spec: &ScenarioSpec, e: u32, crowd: &mut Crowd) {
    for shift in spec.shifts.iter().filter(|s| s.epoch() == e) {
        apply_shift(crowd, shift);
    }
    if let Some(churn) = &spec.churn {
        if churn.probability > 0.0 {
            crowd.churn(churn.probability);
        }
    }
    if let Some(f) = &spec.faults {
        // Set every epoch (not just on window edges) so a window's end
        // resets the crowd to fault-free; with no windows at all the
        // crowd is never touched and fault-free goldens stay identical.
        if !f.crowd.is_empty() {
            crowd.set_faults(f.crowd_faults_at(e));
        }
    }
}

/// Where shift events and tear-arming land: both run-log recorders, seen
/// uniformly by the [`ShiftTap`] adapter.
pub(crate) trait ShiftSink: EpochTap {
    /// Buffers a shift event onto the next epoch block appended.
    fn record_shift(&mut self, ev: ShiftEvent);
    /// Arms the injected torn append (meaningful for the streaming
    /// recorder only).
    fn arm_tear(&mut self);
}

impl ShiftSink for RunLogRecorder {
    fn record_shift(&mut self, ev: ShiftEvent) {
        RunLogRecorder::record_shift(self, ev);
    }
    fn arm_tear(&mut self) {}
}

impl ShiftSink for StreamingRecorder {
    fn record_shift(&mut self, ev: ShiftEvent) {
        StreamingRecorder::record_shift(self, ev);
    }
    fn arm_tear(&mut self) {
        self.tear_next_append();
    }
}

/// An [`EpochTap`] adapter owning the ordering contract between shift
/// events and epoch appends. The legacy loop recorded a shift the moment
/// the prologue applied it; under the staged driver the prologue runs on
/// the drain stage, epochs ahead of the log append, so the adapter
/// replays the deterministic shift schedule into the sink immediately
/// before the epoch it precedes is appended. The recorders buffer shifts
/// onto the *next* appended block either way, so the log bytes are
/// identical. It also arms the chaos harness's mid-append tear at
/// exactly the right block.
pub(crate) struct ShiftTap<'a> {
    sink: &'a mut dyn ShiftSink,
    shifts: Vec<Vec<ShiftEvent>>,
    tear_at: Option<u64>,
}

impl<'a> ShiftTap<'a> {
    pub(crate) fn new(
        sink: &'a mut dyn ShiftSink,
        shifts: Vec<Vec<ShiftEvent>>,
        tear_at: Option<u64>,
    ) -> Self {
        Self { sink, shifts, tear_at }
    }
}

impl EpochTap for ShiftTap<'_> {
    fn on_epoch(&mut self, record: &EpochInputsRecord<'_>) {
        let e = record.report.epoch;
        if let Some(events) = self.shifts.get(e as usize) {
            for ev in events {
                self.sink.record_shift(*ev);
            }
        }
        if self.tear_at == Some(e) {
            self.sink.arm_tear();
        }
        self.sink.on_epoch(record);
    }
}

/// The per-epoch shift events a spec scripts, indexed by epoch — the
/// schedule [`ShiftTap`] echoes into run logs.
pub(crate) fn spec_shift_schedule(spec: &ScenarioSpec) -> Vec<Vec<ShiftEvent>> {
    let mut schedule = vec![Vec::new(); spec.epochs as usize];
    for shift in &spec.shifts {
        if let Some(slot) = schedule.get_mut(shift.epoch() as usize) {
            slot.push(shift_event(shift));
        }
    }
    schedule
}

/// Builds and runs the [`craqr_core::EpochDriver`] every scenario entry
/// point goes through: the spec's prologue plus whatever hook, tap,
/// timer, and crash the flavor installs, on the serial or pipelined
/// executor.
#[allow(clippy::too_many_arguments)] // one call site per run flavor; a params struct would just rename the problem
pub(crate) fn drive(
    server: &mut CraqrServer,
    spec: &ScenarioSpec,
    epochs: u64,
    hook: Option<&mut dyn ControlHook>,
    tap: Option<&mut dyn EpochTap>,
    timer: Option<&mut dyn PhaseTimer>,
    crash: Option<(u64, CrashPoint)>,
    pipelined: bool,
) -> craqr_core::RunOutcome {
    let mut d = server.driver().prologue(|e, crowd| epoch_prologue(spec, e as u32, crowd));
    if let Some(h) = hook {
        d = d.hook(h);
    }
    if let Some(t) = tap {
        d = d.tap(t);
    }
    if let Some(t) = timer {
        d = d.timer(t);
    }
    if let Some((slot, point)) = crash {
        d = d.crash_at(slot, point);
    }
    if pipelined {
        d.run_pipelined(epochs)
    } else {
        d.run(epochs)
    }
}

/// Applies one scripted regime shift to the crowd.
pub(crate) fn apply_shift(crowd: &mut Crowd, shift: &ShiftSpec) {
    match shift {
        ShiftSpec::Participation { factor, .. } => crowd.scale_participation(*factor),
        ShiftSpec::Dropout { probability, rect, .. } => {
            crowd.drop_region(&Rect::new(rect.0, rect.1, rect.2, rect.3), *probability);
        }
        ShiftSpec::Migrate { probability, rect, .. } => {
            crowd.migrate(*probability, &Rect::new(rect.0, rect.1, rect.2, rect.3));
        }
    }
}

/// The run-log event describing one scripted shift.
pub(crate) fn shift_event(shift: &ShiftSpec) -> ShiftEvent {
    match *shift {
        ShiftSpec::Participation { factor, .. } => ShiftEvent::Participation { factor },
        ShiftSpec::Dropout { probability, rect, .. } => ShiftEvent::Dropout { probability, rect },
        ShiftSpec::Migrate { probability, rect, .. } => ShiftEvent::Migrate { probability, rect },
    }
}

/// Builds the server a spec describes. With `detached` the crowd is
/// constructed empty (zero sensors, same region/planner/seed): queries
/// plan identically — planning depends only on the catalog and grid — but
/// the world costs nothing and produces nothing, which is exactly what a
/// log replay needs.
///
/// Specs with `[[tenants]]` register each tenant's pool and submit every
/// query on its owner's behalf: admission control runs at this boundary,
/// and a rejection is a **recorded outcome**, not an error — the query's
/// slot comes back as `None`, the decision lands in
/// [`CraqrServer::admissions`], and the run proceeds with the admitted
/// queries (both reports and run logs carry the audit trail).
pub(crate) fn build_server(
    spec: &ScenarioSpec,
    seed: u64,
    exec: ExecMode,
    detached: bool,
) -> Result<(CraqrServer, Vec<Option<QueryId>>), RunError> {
    let region = Rect::with_size(spec.grid.size_km, spec.grid.size_km);
    let mut config = spec.to_server_config(exec)?;
    config.planner.seed = seed;

    let mut population = spec.population.to_config(&region)?;
    if detached {
        population.size = 0;
    }
    let crowd = Crowd::new(CrowdConfig { region, population, seed });
    let mut server = CraqrServer::new(crowd, config);

    for (index, attr) in spec.attributes.iter().enumerate() {
        let field = build_field(&attr.field, &region, seed, index as u64);
        server.register_attribute(&attr.name, attr.human, field);
    }

    let mut tenant_ids = std::collections::HashMap::new();
    for t in &spec.tenants {
        tenant_ids.insert(t.name.as_str(), server.register_tenant(&t.name, t.pool));
    }

    let mut qids: Vec<Option<QueryId>> = Vec::with_capacity(spec.queries.len());
    for (index, q) in spec.queries.iter().enumerate() {
        let result = match &q.tenant {
            // The spec validated the reference, so the lookup is sound.
            Some(name) => server.submit_for(tenant_ids[name.as_str()], &q.text),
            None => server.submit(&q.text),
        };
        match result {
            Ok(qid) => qids.push(Some(qid)),
            Err(SubmitError::Rejected(_)) => qids.push(None),
            Err(e) => {
                return Err(RunError::Query {
                    index,
                    text: q.text.clone(),
                    message: match e {
                        SubmitError::Parse(p) => format!("parse error: {p}"),
                        SubmitError::Plan(p) => format!("plan error: {p}"),
                        other => other.to_string(),
                    },
                })
            }
        }
    }
    Ok((server, qids))
}

/// The run's metrics collector, if anything asked for one: a declared
/// `[telemetry]` block collects the event tier; `timing` additionally
/// (or alone, without the block) collects the clock tier for `--metrics`
/// exports.
pub(crate) fn make_collector(spec: &ScenarioSpec, timing: bool) -> Option<RunTelemetry> {
    (spec.telemetry.is_some() || timing).then(|| RunTelemetry::new(timing))
}

/// The [`PhaseTimer`] to install on the epoch loop: only a timing
/// collector listens; event-only collectors leave the loop clock-free.
pub(crate) fn phase_timer(
    telemetry: &mut Option<RunTelemetry>,
    timing: bool,
) -> Option<&mut dyn PhaseTimer> {
    if !timing {
        return None;
    }
    telemetry.as_mut().map(|t| t as &mut dyn PhaseTimer)
}

/// Reduces one epoch report to its deterministic counters.
pub(crate) fn epoch_row(r: &EpochReport) -> EpochRow {
    let (mut incr, mut decr, mut exh) = (0usize, 0usize, 0usize);
    for t in &r.tuning {
        match t.outcome {
            TuneOutcome::Increased => incr += 1,
            TuneOutcome::Decreased => decr += 1,
            TuneOutcome::Exhausted => exh += 1,
        }
    }
    EpochRow {
        epoch: r.epoch,
        requested: r.dispatch.requested,
        sent: r.dispatch.sent,
        responses: r.responses,
        rejected: r.mitigation_rejected,
        ingested: r.ingested,
        routed: r.exec.routed,
        dropped: r.exec.dropped,
        delivered: r.delivered.iter().map(|(_, n)| n).sum(),
        tune_increased: incr,
        tune_decreased: decr,
        tune_exhausted: exh,
        throttled: r.dispatch.throttled,
        stale_actions: r.stale_actions,
        faults: r.faults,
    }
}

/// Builds the canonical report from a finished run. `responses_delivered`
/// is passed in rather than read off the crowd because a detached replay
/// has no crowd counter — it sums the log instead (the two agree for live
/// runs: every matured response is drained by some epoch).
#[allow(clippy::too_many_arguments)] // one call site per run flavor; a params struct would just rename the problem
pub(crate) fn finalize_report(
    spec: &ScenarioSpec,
    seed: u64,
    server: &mut CraqrServer,
    qids: &[Option<QueryId>],
    epochs: Vec<EpochRow>,
    responses_delivered: u64,
    trace: Option<&AdaptiveTrace>,
    telemetry: Option<&mut RunTelemetry>,
) -> ScenarioReport {
    let region = Rect::with_size(spec.grid.size_km, spec.grid.size_km);
    let minutes = server.now();
    let window = SpaceTimeWindow::new(region, 0.0, minutes.max(f64::MIN_POSITIVE));
    let mut queries = Vec::with_capacity(qids.len());
    // `index` is the spec's query index; admission-rejected queries keep
    // their slot (they appear in the [admissions] audit, not [queries]).
    for (index, qid) in qids.iter().enumerate() {
        let Some(qid) = qid else { continue };
        let plan = server.fabricator().query_plan(*qid).expect("standing query");
        let requested_rate = plan.query.rate;
        let area = plan.footprint.area();
        let stream = server.take_output(*qid);
        let points: Vec<SpaceTimePoint> = stream.iter().map(|t| t.point).collect();
        let intensity = IntensitySummary::from_points(&points, &window, spec.grid.side);
        queries.push(QueryRow {
            index,
            text: spec.queries[index].text.clone(),
            requested_rate,
            area,
            delivered: stream.len(),
            achieved_rate: stream.len() as f64 / (area * minutes),
            intensity,
        });
    }

    let operators = server
        .fabricator()
        .chain_metrics()
        .by_kind()
        .into_iter()
        .map(|(kind, m)| OperatorRow {
            kind,
            tuples_in: m.tuples_in,
            tuples_out: m.tuples_out,
            batches: m.batches,
        })
        .collect();

    let final_budget: f64 = server
        .fabricator()
        .demands()
        .iter()
        .filter_map(|(cell, attr, _)| server.handler().budget_of(*cell, *attr))
        .sum();
    let (requested, sent) = server.handler().totals();
    let totals = RunTotals {
        requested,
        sent,
        responses: responses_delivered,
        exhausted_events: server.handler().exhausted_events(),
        final_budget,
        dropped_unmaterialized: server.fabricator().dropped_unmaterialized(),
        chains: server.fabricator().materialized_chains(),
        minutes,
        throttled: epochs.iter().map(|e| e.throttled).sum(),
        stale_actions: epochs.iter().map(|e| e.stale_actions).sum(),
    };

    // Fault/retry accounting renders only for specs that armed the fault
    // layer; every source is replay-stable (epoch fault deltas ride the
    // run log, retry counters are deterministic functions of the
    // response stream), so the section survives detached replay.
    let faults = spec.faults.as_ref().map(|_| FaultSection {
        dropped: epochs.iter().map(|e| e.faults.dropped).sum(),
        delayed: epochs.iter().map(|e| e.faults.delayed).sum(),
        duplicated: epochs.iter().map(|e| e.faults.duplicated).sum(),
        retries_requested: server.handler().retries_requested(),
        retry_attempts: server.handler().retry_attempts(),
    });

    // The collector's whole-run counters land here so every execution
    // path (live, streamed, replayed, resumed) finalizes identically.
    let telemetry = telemetry.map(|t| {
        t.finalize(server.handler(), &server.fabricator().chain_metrics(), trace);
        t.section()
    });
    // The section joins the report only when the spec asked for it;
    // `--metrics`-only collectors keep the report untouched.
    let telemetry = if spec.telemetry.is_some_and(|t| t.report) { telemetry } else { None };

    let adaptive = trace.map(AdaptiveSection::from);
    let tenants = server.tenants().map(|registry| TenantSection {
        rows: registry
            .summaries()
            .into_iter()
            .map(|s| TenantRow {
                tenant: s.tenant.0,
                name: s.name,
                capacity: s.capacity,
                admitted: s.admitted,
                rejected: s.rejected,
                committed: s.committed,
                charged: s.charged_total,
                peak_epoch_charge: s.peak_epoch_charge,
            })
            .collect(),
        admissions: registry
            .decisions()
            .iter()
            .map(|d| AdmissionRow {
                submission: d.submission,
                tenant: d.tenant.0,
                demand: d.estimated_demand,
                committed: d.committed_before,
                capacity: d.capacity,
                admitted: d.admitted,
            })
            .collect(),
    });
    ScenarioReport {
        name: spec.name.clone(),
        seed,
        epochs,
        queries,
        operators,
        totals,
        adaptive,
        tenants,
        faults,
        telemetry,
    }
}

/// Materializes a [`FieldSpec`] into a ground-truth field. Burst fields
/// derive their cascade from a sub-stream of the scenario seed keyed by
/// the attribute's position in the spec, so two burst attributes (or two
/// seeds) never share event histories.
fn build_field(spec: &FieldSpec, region: &Rect, seed: u64, attr_index: u64) -> Box<dyn Field> {
    match spec {
        FieldSpec::Temperature { base, y_gradient, islands, diurnal_amplitude, diurnal_period } => {
            Box::new(craqr_sensing::TemperatureField {
                base: *base,
                y_gradient: *y_gradient,
                islands: islands.clone(),
                diurnal_amplitude: *diurnal_amplitude,
                diurnal_period: *diurnal_period,
            })
        }
        FieldSpec::Rain { x_start, speed, width } => {
            Box::new(craqr_sensing::RainFront::new(*x_start, *speed, *width))
        }
        FieldSpec::ConstantFloat { value } => Box::new(ConstantField(AttrValue::Float(*value))),
        FieldSpec::ConstantBool { value } => Box::new(ConstantField(AttrValue::Bool(*value))),
        FieldSpec::Burst {
            mu,
            alpha,
            beta,
            sigma,
            horizon,
            immigrants,
            branching_ratio,
            scale,
        } => {
            // attr_index 0 keeps the pre-existing stream (0xB5E7), so
            // single-burst goldens are unaffected by the keying.
            let mut rng = craqr_stats::sub_rng(seed, 0xB5E7_u64.wrapping_add(attr_index));
            let model = SelfExcitingIntensity::cascade(
                *mu,
                *alpha,
                *beta,
                *sigma,
                *region,
                *horizon,
                *immigrants as usize,
                *branching_ratio,
                &mut rng,
            );
            Box::new(IntensityField { model, scale: *scale })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64) -> ScenarioSpec {
        ScenarioSpec::from_toml(&format!(
            r#"
name = "runner-unit"
seed = {seed}
epochs = 4

[grid]
size_km = 4.0
side = 4

[population]
size = 300
human_fraction = 0.2
placement = {{ kind = "city" }}
mobility = {{ kind = "waypoint", speed = 0.08, pause = 5.0 }}

[[attributes]]
name = "temp"
field = {{ kind = "temperature", base = 20.0, y_gradient = -0.1, islands = [[2.0, 2.0, 4.0, 1.0]], diurnal_amplitude = 5.0, diurnal_period = 1440.0 }}

[[queries]]
text = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"
"#
        ))
        .unwrap()
    }

    #[test]
    fn serial_and_sharded_reports_are_identical() {
        let runner = ScenarioRunner::new(spec(11)).unwrap();
        let serial = runner.run(ExecMode::Serial).unwrap();
        let sharded = runner.run(ExecMode::Sharded(3)).unwrap();
        assert_eq!(serial, sharded);
        assert_eq!(serial.canonical(), sharded.canonical());
        assert!(serial.epochs.len() == 4);
        assert!(serial.totals.sent > 0, "the loop must do work");
    }

    #[test]
    fn seed_override_changes_the_world() {
        let runner = ScenarioRunner::new(spec(11)).unwrap();
        let a = runner.run_with_seed(ExecMode::Serial, 1).unwrap();
        let b = runner.run_with_seed(ExecMode::Serial, 2).unwrap();
        assert_ne!(a.checksum(), b.checksum());
        assert_eq!(a.seed, 1);
    }

    #[test]
    fn burst_attributes_get_independent_cascades() {
        let burst = FieldSpec::Burst {
            mu: 0.2,
            alpha: 3.0,
            beta: 0.15,
            sigma: 0.4,
            horizon: 50.0,
            immigrants: 6,
            branching_ratio: 0.6,
            scale: 1.0,
        };
        let region = Rect::with_size(4.0, 4.0);
        let a = build_field(&burst, &region, 7, 0);
        let b = build_field(&burst, &region, 7, 1);
        // Same params, same seed, different attribute slots: the cascades
        // must differ somewhere.
        let differs = (0..64).any(|i| {
            let p = SpaceTimePoint::new(
                (i as f64 * 0.77).rem_euclid(50.0),
                (i as f64 * 0.31).rem_euclid(4.0),
                (i as f64 * 0.53).rem_euclid(4.0),
            );
            a.value_at(&p) != b.value_at(&p)
        });
        assert!(differs, "two burst attributes shared one event history");
    }

    #[test]
    fn bad_query_reports_its_index() {
        let mut s = spec(5);
        s.queries[0].text = "ACQUIRE fog FROM RECT(0,0,1,1) RATE 1".into();
        let runner = ScenarioRunner::new(s).unwrap();
        let err = runner.run(ExecMode::Serial).unwrap_err();
        assert!(matches!(err, RunError::Query { index: 0, .. }), "{err}");
    }

    fn faulty_spec(seed: u64) -> ScenarioSpec {
        let mut s = spec(seed);
        let toml = format!(
            "{}\n[runlog]\n\n[faults]\n\n[[faults.crowd]]\nkind = \"drop\"\nfrom_epoch = 1\n\
             to_epoch = 2\nprobability = 0.4\n\n[[faults.crowd]]\nkind = \"duplicate\"\n\
             probability = 0.3\n\n[faults.retry]\nthreshold = 0.9\nbackoff = 0.5\n\
             max_attempts = 2\n",
            s.to_toml()
        );
        s = ScenarioSpec::from_toml(&toml).unwrap();
        s
    }

    #[test]
    fn crowd_faults_and_retry_are_mode_deterministic() {
        let runner = ScenarioRunner::new(faulty_spec(13)).unwrap();
        let serial = runner.run_full(ExecMode::Serial, 13).unwrap();
        let sharded = runner.run_full(ExecMode::Sharded(3), 13).unwrap();
        assert_eq!(serial.report.canonical(), sharded.report.canonical());
        assert_eq!(serial.log, sharded.log, "fault-injected logs must be mode-independent");

        // The faults actually bite: a fault-free twin diverges.
        let mut clean = faulty_spec(13);
        clean.faults = None;
        let clean_run = ScenarioRunner::new(clean).unwrap().run_full(ExecMode::Serial, 13).unwrap();
        assert_ne!(clean_run.report.checksum(), serial.report.checksum());
    }

    #[test]
    fn faulty_logs_replay_and_resume_everywhere() {
        let runner = ScenarioRunner::new(faulty_spec(17)).unwrap();
        let live = runner.run_full(ExecMode::Serial, 17).unwrap();
        let log = live.log.as_ref().unwrap();
        // Replay drives a detached crowd (faults never fire there — the
        // recorded responses are already post-fault), sharded or not.
        let replayed = crate::replay::replay(log, ExecMode::Sharded(2)).unwrap();
        assert_eq!(replayed.report.checksum(), live.report.checksum());
        // Resume rebuilds the live prefix fault-for-fault.
        for k in [0, 2, log.epochs.len()] {
            let resumed =
                crate::replay::resume(&log.truncated(k).unwrap(), ExecMode::Serial, k).unwrap();
            assert_eq!(resumed.report.checksum(), live.report.checksum(), "resume at {k}");
        }
    }

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("craqr-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn streamed_run_seals_the_same_log_as_the_in_memory_recorder() {
        let dir = tempdir("streamed");
        let path = dir.join("run.runlog.txt");
        let runner = ScenarioRunner::new(spec(23)).unwrap();
        let streamed = runner.run_streamed(ExecMode::Serial, 23, &path).unwrap();
        let recorded = runner.run_recorded(ExecMode::Serial, 23).unwrap();
        assert_eq!(streamed.report, recorded.report);
        assert_eq!(streamed.log, recorded.log, "streaming must not change what is recorded");
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, streamed.log.unwrap().canonical(), "sealed file is canonical");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_salvage_resume_reproduces_the_uninterrupted_run() {
        let dir = tempdir("crash");
        let runner = ScenarioRunner::new(faulty_spec(29)).unwrap();
        let uninterrupted = runner.run_full(ExecMode::Serial, 29).unwrap();
        for point in CrashPoint::ALL {
            let path = dir.join(format!("crash-{point}.runlog.txt"));
            let durable = runner.run_to_crash(ExecMode::Serial, 29, point, 2, &path).unwrap();
            assert_eq!(durable, 2, "{point}: epochs 0 and 1 must be durable");
            let bytes = std::fs::read_to_string(&path).unwrap();
            let salvage = craqr_runlog::parse_salvage(&bytes).unwrap();
            assert_eq!(salvage.log.epochs.len(), 2, "{point}");
            // mid-log-append leaves real torn bytes; the in-loop points
            // die between appends, so their tail tears cleanly at 0 bytes.
            let torn = salvage.torn.expect("a crashed stream is unsealed");
            if point == CrashPoint::MidLogAppend {
                assert!(torn.discarded_bytes > 0, "half-written block must be discarded");
            } else {
                assert_eq!(torn.discarded_bytes, 0, "{point}");
            }
            let resumed = crate::replay::resume(&salvage.log, ExecMode::Serial, 2).unwrap();
            assert_eq!(
                resumed.report.checksum(),
                uninterrupted.report.checksum(),
                "{point}: resume after salvage must re-converge"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_all_discovers_and_runs_a_directory() {
        let dir = std::env::temp_dir().join(format!("craqr-run-all-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (file, seed) in [("b_second.toml", 2), ("a_first.toml", 1)] {
            let mut s = spec(seed);
            s.name = file.trim_end_matches(".toml").replace('.', "_");
            std::fs::write(dir.join(file), s.to_toml()).unwrap();
        }
        std::fs::write(dir.join("notes.txt"), "ignored: not a spec").unwrap();

        let reports = ScenarioRunner::run_all(&dir, ExecMode::Sharded(2)).unwrap();
        assert_eq!(reports.len(), 2, "exactly the .toml files run");
        // Sorted by file name, each under its own seed.
        assert_eq!(reports[0].1.name, "a_first");
        assert_eq!(reports[0].1.seed, 1);
        assert_eq!(reports[1].1.name, "b_second");
        assert_eq!(reports[1].1.seed, 2);
        assert!(reports.iter().all(|(_, r)| r.totals.sent > 0));

        // A broken spec surfaces as a path-carrying error.
        std::fs::write(dir.join("c_broken.toml"), "name = 3").unwrap();
        let err = ScenarioRunner::run_all(&dir, ExecMode::Serial).unwrap_err();
        assert!(
            matches!(err, BatchError::Spec { ref path, .. } if path.ends_with("c_broken.toml")),
            "{err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
