//! # craqr-scenario — the declarative scenario harness.
//!
//! The paper's evaluation sweeps many workload regimes — thinning rates,
//! budget levels, churn, spatial granularity. This crate turns those
//! regimes into *checked-in artifacts*: a [`ScenarioSpec`] describes one
//! complete workload declaratively (`.toml`/`.json` files under
//! `scenarios/`), a [`ScenarioRunner`] executes it under any
//! [`craqr_core::ExecMode`], and the resulting [`ScenarioReport`] renders
//! to a canonical, byte-stable golden text (committed under
//! `tests/goldens/`, asserted by `tests/scenario_goldens.rs`).
//!
//! Three properties make the harness a durable regression surface:
//!
//! 1. **Determinism** — a report depends only on `(spec, seed)`; serial
//!    and sharded execution produce byte-identical canonical reports.
//! 2. **Typo rejection** — specs refuse unknown fields and out-of-range
//!    values with precise dotted-path errors, so a misspelled knob can
//!    never silently run the wrong workload.
//! 3. **Lossless round-trips** — `parse(spec.to_toml()) == spec` and
//!    `parse(spec.to_json()) == spec` for every valid spec (proptested),
//!    so tooling can rewrite specs mechanically.
//!
//! ```
//! use craqr_scenario::{ScenarioRunner, ScenarioSpec};
//! use craqr_core::ExecMode;
//!
//! let spec = ScenarioSpec::from_toml(r#"
//! name = "doc"
//! seed = 7
//! epochs = 2
//!
//! [grid]
//! size_km = 4.0
//! side = 4
//!
//! [population]
//! size = 200
//! placement = { kind = "uniform" }
//! mobility = { kind = "walk", sigma = 0.2 }
//!
//! [[attributes]]
//! name = "temp"
//! field = { kind = "constant", value = 21.0 }
//!
//! [[queries]]
//! text = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"
//! "#).unwrap();
//!
//! let runner = ScenarioRunner::new(spec).unwrap();
//! let serial = runner.run(ExecMode::Serial).unwrap();
//! let sharded = runner.run(ExecMode::Sharded(4)).unwrap();
//! assert_eq!(serial.canonical(), sharded.canonical());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod replay;
pub mod report;
pub mod spec;
pub mod telemetry;
pub mod value;

mod runner;

pub use craqr_adaptive::AdaptiveTrace;
pub use craqr_runlog::RunLog;
pub use replay::{
    replay, replay_instrumented, replay_pipelined, resume, resume_pipelined, ReplayError,
};
pub use report::{
    fnv1a64, AdaptiveSection, AdmissionRow, EpochRow, FaultSection, OperatorRow, QueryRow,
    RunTotals, ScenarioReport, TelemetrySection, TenantRow, TenantSection,
};
pub use runner::{scenario_files, BatchError, RunError, RunOutput, ScenarioRunner};
pub use spec::{
    AdaptiveSpec, AttributeSpec, BudgetSpec, ChurnSpec, CrashSpec, CrowdFaultSpec, ErrorSpec,
    FaultsSpec, FieldSpec, GridSpec, MobilitySpec, PlacementSpec, PlannerSpec, PopulationSpec,
    QuerySpec, RetrySpec, RunlogSpec, ScenarioSpec, ShiftSpec, SpecError, TelemetrySpec,
    TenantSpec,
};
pub use telemetry::RunTelemetry;
