//! The run-level metrics collector: one [`Registry`] fed from the epoch
//! loop's deterministic event stream, plus — when timing is switched on —
//! the clock-derived tier (phase latencies, shard busy time, operator
//! processing time, control-hook time).
//!
//! # The two tiers
//!
//! Every metric the collector records carries a
//! [`craqr_telemetry::Determinism`] tag:
//!
//! - **Event metrics** are computed from [`EpochReport`] fields, handler
//!   counters, and the adaptive trace — all of which are bit-identical
//!   for a fixed seed across hosts, [`craqr_core::ExecMode`]s, and
//!   live-vs-replayed runs (faults ride through
//!   [`craqr_core::ReplayInputs::faults`]; crowd-side counters are never
//!   used). Their canonical rendering joins the scenario report as the
//!   checksummed `[telemetry]` section.
//! - **Timing metrics** are read from thread-CPU clocks and are excluded
//!   from every checksummed surface ([`Registry::canonical_events`]
//!   skips them structurally), exactly like shard `busy_ns`. They exist
//!   for the Prometheus export only.
//!
//! Collection is byte-inert: a run with a collector produces the same
//! reports, traces, and run logs as a run without one, and a run with
//! timing on produces the same checksummed artifacts as one with timing
//! off (the golden-stability test in `tests/` pins this for every
//! committed golden).

use crate::report::TelemetrySection;
use craqr_core::tenant::AdmissionDecision;
use craqr_core::{EpochPhase, EpochReport, PhaseTimer, RequestResponseHandler};
use craqr_telemetry::{Determinism, Registry, PHASE_SECONDS_BOUNDS};

/// One scenario run's metrics registry plus its collection policy.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    registry: Registry,
    timing: bool,
}

const E: Determinism = Determinism::Event;
const T: Determinism = Determinism::Timing;

impl RunTelemetry {
    /// A fresh collector. With `timing = false` only event metrics are
    /// recorded and no code path reads a clock.
    pub fn new(timing: bool) -> Self {
        Self { registry: Registry::new(), timing }
    }

    /// Whether this collector records the clock-derived tier.
    pub fn timing(&self) -> bool {
        self.timing
    }

    /// The underlying registry (for rendering and tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records the admission audit trail (called once, after
    /// `build_server` ran admission control).
    pub fn observe_admissions(&mut self, decisions: &[AdmissionDecision]) {
        for d in decisions {
            let verdict = if d.admitted { "admitted" } else { "rejected" };
            self.registry.inc(
                "craqr_admission_verdicts_total",
                "Admission-control verdicts by outcome.",
                E,
                &[("verdict", verdict)],
                1,
            );
        }
    }

    /// Folds one finished epoch's deterministic counters into the
    /// registry (and, when timing is on, the per-shard busy breakdown the
    /// executor already measured).
    pub fn observe_epoch(&mut self, r: &EpochReport) {
        let req = "craqr_requests_total";
        let req_help = "Acquisition requests by dispatch outcome.";
        self.registry.inc(req, req_help, E, &[("kind", "requested")], r.dispatch.requested);
        self.registry.inc(req, req_help, E, &[("kind", "sent")], r.dispatch.sent);
        self.registry.inc(req, req_help, E, &[("kind", "throttled")], r.dispatch.throttled);

        let resp = "craqr_responses_total";
        let resp_help = "Crowd responses by pipeline outcome.";
        self.registry.inc(resp, resp_help, E, &[("outcome", "drained")], r.responses as u64);
        self.registry.inc(
            resp,
            resp_help,
            E,
            &[("outcome", "rejected")],
            r.mitigation_rejected as u64,
        );

        let tup = "craqr_tuples_total";
        let tup_help = "Tuples by pipeline stage.";
        self.registry.inc(tup, tup_help, E, &[("stage", "ingested")], r.ingested as u64);
        self.registry.inc(tup, tup_help, E, &[("stage", "routed")], r.exec.routed as u64);
        self.registry.inc(tup, tup_help, E, &[("stage", "dropped")], r.exec.dropped as u64);
        let delivered: usize = r.delivered.iter().map(|(_, n)| n).sum();
        self.registry.inc(tup, tup_help, E, &[("stage", "delivered")], delivered as u64);

        let tune = "craqr_tuning_events_total";
        let tune_help = "Budget-tuning events by outcome.";
        for t in &r.tuning {
            let outcome = match t.outcome {
                craqr_core::budget::TuneOutcome::Increased => "increased",
                craqr_core::budget::TuneOutcome::Decreased => "decreased",
                craqr_core::budget::TuneOutcome::Exhausted => "exhausted",
            };
            self.registry.inc(tune, tune_help, E, &[("outcome", outcome)], 1);
        }

        self.registry.inc(
            "craqr_stale_actions_total",
            "Control actions dropped because their chain was retired.",
            E,
            &[],
            r.stale_actions,
        );

        let flt = "craqr_fault_responses_total";
        let flt_help = "Crowd responses perturbed by injected faults.";
        self.registry.inc(flt, flt_help, E, &[("kind", "dropped")], r.faults.dropped);
        self.registry.inc(flt, flt_help, E, &[("kind", "delayed")], r.faults.delayed);
        self.registry.inc(flt, flt_help, E, &[("kind", "duplicated")], r.faults.duplicated);

        for (tenant, charge) in &r.tenant_charges {
            self.registry.gauge_add(
                "craqr_tenant_charged_total",
                "Requests charged against each tenant's pool.",
                E,
                &[("tenant", &tenant.0.to_string())],
                *charge,
            );
        }

        if self.timing {
            // The executor measured per-shard thread-CPU time whether or
            // not anyone listens; fold it in without new clock reads.
            for shard in &r.exec.shards {
                self.registry.observe(
                    "craqr_shard_busy_seconds",
                    "Per-shard per-epoch processing time (thread CPU).",
                    T,
                    &[("shard", &shard.shard.to_string())],
                    PHASE_SECONDS_BOUNDS,
                    shard.busy_ns as f64 / 1e9,
                );
            }
            self.registry.gauge_add(
                "craqr_ingest_work_seconds_total",
                "Total processing work across shards (thread CPU).",
                T,
                &[],
                r.exec.work_ns() as f64 / 1e9,
            );
            self.registry.gauge_add(
                "craqr_ingest_critical_path_seconds_total",
                "Sum of per-epoch busiest-shard times (thread CPU).",
                T,
                &[],
                r.exec.critical_path_ns() as f64 / 1e9,
            );
        }
    }

    /// Records the control hook's accumulated time (from
    /// [`craqr_adaptive::TimedHook`]); a no-op unless timing is on.
    pub fn observe_hook(&mut self, calls: u64, total_ns: u64) {
        if !self.timing {
            return;
        }
        self.registry.inc(
            "craqr_control_hook_calls_total",
            "Control-hook invocations observed by the timing wrapper.",
            T,
            &[],
            calls,
        );
        self.registry.gauge_add(
            "craqr_control_hook_seconds_total",
            "Thread-CPU time spent inside the control hook.",
            T,
            &[],
            total_ns as f64 / 1e9,
        );
    }

    /// Folds in whole-run counters available only at the end: handler
    /// retry/exhaustion totals, adaptive drift/replan counts, and (when
    /// timing) the per-operator-kind processing time the engine clock
    /// accumulated.
    pub fn finalize(
        &mut self,
        handler: &RequestResponseHandler,
        chain_metrics: &craqr_engine::TopologyMetrics,
        trace: Option<&craqr_adaptive::AdaptiveTrace>,
    ) {
        let rty = "craqr_retries_total";
        let rty_help = "Retry-path activity (shortfall feedback).";
        self.registry.inc(rty, rty_help, E, &[("kind", "requests")], handler.retries_requested());
        self.registry.inc(rty, rty_help, E, &[("kind", "attempts")], handler.retry_attempts());
        self.registry.inc(
            "craqr_budget_exhausted_total",
            "Budget-exhaustion events over the run.",
            E,
            &[],
            handler.exhausted_events(),
        );
        if let Some(trace) = trace {
            let s = trace.summary();
            let ad = "craqr_adaptive_events_total";
            let ad_help = "Adaptive-controller events by kind.";
            self.registry.inc(ad, ad_help, E, &[("kind", "observations")], s.observations as u64);
            self.registry.inc(ad, ad_help, E, &[("kind", "drift")], s.drift_events as u64);
            self.registry.inc(ad, ad_help, E, &[("kind", "replans")], s.replans as u64);
        }
        if self.timing {
            for (kind, m) in chain_metrics.by_kind() {
                self.registry.gauge_add(
                    "craqr_operator_busy_seconds_total",
                    "Per-operator-kind processing time (thread CPU).",
                    T,
                    &[("kind", &kind)],
                    m.busy_ns as f64 / 1e9,
                );
            }
        }
    }

    /// Merges another collector's registry into this one (used by the
    /// chaos CLI to aggregate per-scenario registries; commutative).
    pub fn absorb(&mut self, other: &RunTelemetry) {
        self.registry.absorb(other.registry());
    }

    /// The checksummable report section: event metrics only.
    pub fn section(&self) -> TelemetrySection {
        TelemetrySection {
            events: self.registry.canonical_events(),
            events_checksum: self.registry.events_checksum(),
        }
    }

    /// The full Prometheus exposition (both tiers).
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

impl PhaseTimer for RunTelemetry {
    fn observe(&mut self, phase: EpochPhase, nanos: u64) {
        debug_assert!(self.timing, "a PhaseTimer is only installed on timing collectors");
        self.registry.observe(
            "craqr_phase_seconds",
            "Per-epoch phase latency (thread CPU).",
            T,
            &[("phase", phase.name())],
            PHASE_SECONDS_BOUNDS,
            nanos as f64 / 1e9,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section_ignores_timing_tier_entirely() {
        let mut event_only = RunTelemetry::new(false);
        let mut timed = RunTelemetry::new(true);
        let r = EpochReport {
            epoch: 0,
            now: 1.0,
            dispatch: craqr_core::handler::DispatchStats { requested: 10, sent: 8, throttled: 2 },
            responses: 7,
            mitigation_rejected: 1,
            ingested: 6,
            exec: craqr_core::IngestReport {
                routed: 6,
                dropped: 0,
                shards: vec![craqr_core::ShardIngest {
                    shard: 0,
                    chains: 2,
                    tuples: 6,
                    busy_ns: 12345,
                }],
            },
            delivered: vec![],
            tuning: vec![],
            tenant_charges: vec![],
            stale_actions: 1,
            faults: craqr_core::FaultDeltas { dropped: 1, delayed: 0, duplicated: 0 },
        };
        event_only.observe_epoch(&r);
        timed.observe_epoch(&r);
        PhaseTimer::observe(&mut timed, EpochPhase::Ingest, 5_000);
        timed.observe_hook(1, 999);

        // Identical checksummable sections: the timing tier never leaks.
        assert_eq!(event_only.section(), timed.section());
        assert_eq!(
            event_only.registry().counter_value("craqr_requests_total", &[("kind", "sent")]),
            8
        );
        // The timing tier exists in the Prometheus render only.
        assert!(timed.render_prometheus().contains("craqr_phase_seconds_bucket"));
        assert!(!timed.section().events.contains("craqr_phase_seconds"));
    }

    #[test]
    fn absorb_aggregates_collectors() {
        let mut a = RunTelemetry::new(false);
        let mut b = RunTelemetry::new(false);
        a.registry.inc("craqr_requests_total", "h", E, &[("kind", "sent")], 3);
        b.registry.inc("craqr_requests_total", "h", E, &[("kind", "sent")], 4);
        a.absorb(&b);
        assert_eq!(a.registry().counter_value("craqr_requests_total", &[("kind", "sent")]), 7);
    }
}
