//! The self-contained configuration value model behind scenario specs.
//!
//! The workspace builds offline against a no-op `serde` stand-in (see
//! `vendor/serde`), so declarative specs cannot lean on `toml`/
//! `serde_json`. This module supplies the missing substrate: a small
//! [`ConfigValue`] tree, a parser for the TOML subset scenario specs use
//! (tables, arrays of tables, inline tables, arrays, strings, numbers,
//! booleans, comments), a standard JSON parser, and deterministic
//! renderers for both syntaxes. Every renderer/parser pair round-trips
//! exactly (floats print in shortest-roundtrip form), which the spec
//! proptests assert.

use std::fmt;

/// A parsed configuration value.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigValue {
    /// A string.
    Str(String),
    /// An integer (TOML integer / JSON number without fraction or exponent).
    Int(i64),
    /// A float.
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// An ordered list.
    Array(Vec<ConfigValue>),
    /// A key-ordered table.
    Table(Table),
}

impl ConfigValue {
    /// This value's type name, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            ConfigValue::Str(_) => "string",
            ConfigValue::Int(_) => "integer",
            ConfigValue::Float(_) => "float",
            ConfigValue::Bool(_) => "boolean",
            ConfigValue::Array(_) => "array",
            ConfigValue::Table(_) => "table",
        }
    }
}

/// An insertion-ordered table with unique keys.
///
/// Rendering preserves insertion order, but equality is *key-based*
/// (order-insensitive) — the TOML renderer hoists scalar keys above
/// sections, and two tables that map the same keys to the same values are
/// the same configuration.
#[derive(Debug, Clone, Default)]
pub struct Table {
    entries: Vec<(String, ConfigValue)>,
}

impl PartialEq for Table {
    fn eq(&self, other: &Self) -> bool {
        self.entries.len() == other.entries.len()
            && self.entries.iter().all(|(k, v)| other.get(k) == Some(v))
    }
}

impl Table {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a key, replacing any previous value under it.
    pub fn insert(&mut self, key: impl Into<String>, value: ConfigValue) {
        let key = key.into();
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key, value)),
        }
    }

    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&ConfigValue> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable lookup.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut ConfigValue> {
        self.entries.iter_mut().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The entries in insertion order.
    pub fn entries(&self) -> &[(String, ConfigValue)] {
        &self.entries
    }

    /// All keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A syntax error with its 1-based line.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntaxError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SyntaxError {}

// ---------------------------------------------------------------------------
// Shared cursor
// ---------------------------------------------------------------------------

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self { src: src.as_bytes(), pos: 0 }
    }

    fn line(&self) -> usize {
        1 + self.src[..self.pos].iter().filter(|b| **b == b'\n').count()
    }

    fn err(&self, message: impl Into<String>) -> SyntaxError {
        SyntaxError { line: self.line(), message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.peek() == Some(b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skips spaces/tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    /// Skips whitespace including newlines, plus `#` comments when asked.
    fn skip_ws(&mut self, comments: bool) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') => {
                    self.pos += 1;
                }
                Some(b'#') if comments => {
                    while !matches!(self.peek(), None | Some(b'\n')) {
                        self.pos += 1;
                    }
                }
                _ => return,
            }
        }
    }

    fn parse_quoted_string(&mut self) -> Result<String, SyntaxError> {
        if !self.eat(b'"') {
            return Err(self.err("expected '\"'"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'/') => out.push('/'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
                            let d = (d as char)
                                .to_digit(16)
                                .ok_or_else(|| self.err("bad hex digit in \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?,
                        );
                    }
                    other => {
                        return Err(
                            self.err(format!("unsupported escape {:?}", other.map(char::from)))
                        )
                    }
                },
                Some(b'\n') => return Err(self.err("newline inside string")),
                Some(b) => {
                    // Re-decode UTF-8 continuation bytes verbatim.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    self.pos = start + width;
                    let chunk = std::str::from_utf8(&self.src[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<ConfigValue, SyntaxError> {
        let start = self.pos;
        if matches!(self.peek(), Some(b'+') | Some(b'-')) {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' | b'_' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let text: String = std::str::from_utf8(&self.src[start..self.pos])
            .expect("ascii digits")
            .chars()
            .filter(|c| *c != '_')
            .collect();
        if text.is_empty() || text == "+" || text == "-" {
            return Err(self.err("expected a number"));
        }
        if is_float {
            let v: f64 = text.parse().map_err(|e| self.err(format!("bad float '{text}': {e}")))?;
            if !v.is_finite() {
                return Err(self.err(format!("non-finite float '{text}'")));
            }
            Ok(ConfigValue::Float(v))
        } else {
            let v: i64 =
                text.parse().map_err(|e| self.err(format!("bad integer '{text}': {e}")))?;
            Ok(ConfigValue::Int(v))
        }
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

// ---------------------------------------------------------------------------
// TOML (subset)
// ---------------------------------------------------------------------------

/// Parses the TOML subset scenario specs use.
///
/// Supported: `key = value` pairs, `[table.path]` headers, `[[array of
/// tables]]` headers, bare and quoted keys, strings with escapes, integers,
/// floats, booleans, (multiline) arrays, inline tables, and `#` comments.
/// Not supported (rejected with an error): dotted keys, dates, multiline
/// strings.
pub fn parse_toml(src: &str) -> Result<Table, SyntaxError> {
    let mut cur = Cursor::new(src);
    let mut root = Table::new();
    // Path of the table currently receiving keys; empty = root.
    let mut current: Vec<String> = Vec::new();
    loop {
        cur.skip_ws(true);
        let Some(b) = cur.peek() else { break };
        if b == b'[' {
            cur.bump();
            let array_of_tables = cur.eat(b'[');
            let path = parse_key_path(&mut cur)?;
            if !cur.eat(b']') || (array_of_tables && !cur.eat(b']')) {
                return Err(cur.err("unterminated table header"));
            }
            if array_of_tables {
                push_array_table(&mut root, &path, &cur)?;
            } else {
                ensure_table(&mut root, &path, &cur)?;
            }
            current = path;
        } else {
            let key = parse_key(&mut cur)?;
            cur.skip_inline_ws();
            if !cur.eat(b'=') {
                return Err(cur.err(format!("expected '=' after key '{key}'")));
            }
            cur.skip_ws(true);
            let value = parse_toml_value(&mut cur)?;
            let table = navigate(&mut root, &current, &cur)?;
            if table.get(&key).is_some() {
                return Err(cur.err(format!("duplicate key '{key}'")));
            }
            table.insert(key, value);
        }
    }
    Ok(root)
}

fn parse_key(cur: &mut Cursor<'_>) -> Result<String, SyntaxError> {
    cur.skip_inline_ws();
    if cur.peek() == Some(b'"') {
        return cur.parse_quoted_string();
    }
    let start = cur.pos;
    while matches!(cur.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
        cur.pos += 1;
    }
    if cur.pos == start {
        return Err(cur.err("expected a key"));
    }
    Ok(std::str::from_utf8(&cur.src[start..cur.pos]).expect("ascii key").to_string())
}

fn parse_key_path(cur: &mut Cursor<'_>) -> Result<Vec<String>, SyntaxError> {
    let mut path = vec![parse_key(cur)?];
    cur.skip_inline_ws();
    while cur.eat(b'.') {
        path.push(parse_key(cur)?);
        cur.skip_inline_ws();
    }
    Ok(path)
}

fn navigate<'t>(
    root: &'t mut Table,
    path: &[String],
    cur: &Cursor<'_>,
) -> Result<&'t mut Table, SyntaxError> {
    let mut t = root;
    for part in path {
        let next = t.get_mut(part).ok_or_else(|| cur.err(format!("missing table '{part}'")))?;
        t = match next {
            ConfigValue::Table(t) => t,
            // `[[x]]` keys: new pairs land in the latest element.
            ConfigValue::Array(items) => match items.last_mut() {
                Some(ConfigValue::Table(t)) => t,
                _ => return Err(cur.err(format!("'{part}' is not a table array"))),
            },
            other => {
                return Err(cur.err(format!("'{part}' is a {}, not a table", other.type_name())))
            }
        };
    }
    Ok(t)
}

fn ensure_table(root: &mut Table, path: &[String], cur: &Cursor<'_>) -> Result<(), SyntaxError> {
    let (last, parents) = path.split_last().expect("non-empty header path");
    let mut t = root;
    for part in parents {
        if t.get(part).is_none() {
            t.insert(part.clone(), ConfigValue::Table(Table::new()));
        }
        t = match t.get_mut(part).expect("just ensured") {
            ConfigValue::Table(t) => t,
            ConfigValue::Array(items) => match items.last_mut() {
                Some(ConfigValue::Table(t)) => t,
                _ => return Err(cur.err(format!("'{part}' is not a table array"))),
            },
            other => {
                return Err(cur.err(format!("'{part}' is a {}, not a table", other.type_name())))
            }
        };
    }
    match t.get(last) {
        None => {
            t.insert(last.clone(), ConfigValue::Table(Table::new()));
            Ok(())
        }
        Some(ConfigValue::Table(_)) => Ok(()),
        Some(other) => {
            Err(cur.err(format!("'{last}' redefined as table (was {})", other.type_name())))
        }
    }
}

fn push_array_table(
    root: &mut Table,
    path: &[String],
    cur: &Cursor<'_>,
) -> Result<(), SyntaxError> {
    let (last, parents) = path.split_last().expect("non-empty header path");
    let t = if parents.is_empty() { root } else { navigate(root, parents, cur)? };
    match t.get_mut(last) {
        None => {
            t.insert(last.clone(), ConfigValue::Array(vec![ConfigValue::Table(Table::new())]));
            Ok(())
        }
        Some(ConfigValue::Array(items)) => {
            items.push(ConfigValue::Table(Table::new()));
            Ok(())
        }
        Some(other) => {
            Err(cur.err(format!("'{last}' redefined as table array (was {})", other.type_name())))
        }
    }
}

fn parse_toml_value(cur: &mut Cursor<'_>) -> Result<ConfigValue, SyntaxError> {
    match cur.peek() {
        Some(b'"') => Ok(ConfigValue::Str(cur.parse_quoted_string()?)),
        Some(b'[') => {
            cur.bump();
            let mut items = Vec::new();
            loop {
                cur.skip_ws(true);
                if cur.eat(b']') {
                    break;
                }
                items.push(parse_toml_value(cur)?);
                cur.skip_ws(true);
                if !cur.eat(b',') && cur.peek() != Some(b']') {
                    return Err(cur.err("expected ',' or ']' in array"));
                }
            }
            Ok(ConfigValue::Array(items))
        }
        Some(b'{') => {
            cur.bump();
            let mut table = Table::new();
            cur.skip_inline_ws();
            if cur.eat(b'}') {
                return Ok(ConfigValue::Table(table));
            }
            loop {
                let key = parse_key(cur)?;
                cur.skip_inline_ws();
                if !cur.eat(b'=') {
                    return Err(cur.err(format!("expected '=' after inline key '{key}'")));
                }
                cur.skip_inline_ws();
                let value = parse_toml_value(cur)?;
                if table.get(&key).is_some() {
                    return Err(cur.err(format!("duplicate inline key '{key}'")));
                }
                table.insert(key, value);
                cur.skip_inline_ws();
                if cur.eat(b'}') {
                    return Ok(ConfigValue::Table(table));
                }
                if !cur.eat(b',') {
                    return Err(cur.err("expected ',' or '}' in inline table"));
                }
                cur.skip_inline_ws();
            }
        }
        Some(b't') | Some(b'f') => {
            for (word, v) in [("true", true), ("false", false)] {
                if cur.src[cur.pos..].starts_with(word.as_bytes()) {
                    cur.pos += word.len();
                    return Ok(ConfigValue::Bool(v));
                }
            }
            Err(cur.err("expected a boolean"))
        }
        _ => cur.parse_number(),
    }
}

/// Renders a table as TOML: scalars and scalar arrays first, then nested
/// tables as `[path]` sections and table arrays as `[[path]]` sections.
/// Tables nested *inside* values render inline. The output re-parses to an
/// identical [`Table`].
pub fn render_toml(table: &Table) -> String {
    let mut out = String::new();
    render_toml_section(table, "", &mut out);
    out
}

fn is_table_array(v: &ConfigValue) -> bool {
    matches!(v, ConfigValue::Array(items)
        if !items.is_empty() && items.iter().all(|i| matches!(i, ConfigValue::Table(_))))
}

fn render_toml_section(table: &Table, path: &str, out: &mut String) {
    use fmt::Write;
    for (k, v) in table.entries() {
        match v {
            ConfigValue::Table(_) => {}
            _ if is_table_array(v) => {}
            _ => {
                let _ = writeln!(out, "{} = {}", toml_key(k), render_inline(v));
            }
        }
    }
    for (k, v) in table.entries() {
        let sub_path =
            if path.is_empty() { toml_key(k) } else { format!("{path}.{}", toml_key(k)) };
        match v {
            ConfigValue::Table(t) => {
                let _ = writeln!(out, "\n[{sub_path}]");
                render_toml_section(t, &sub_path, out);
            }
            ConfigValue::Array(items) if is_table_array(v) => {
                for item in items {
                    let ConfigValue::Table(t) = item else { unreachable!() };
                    let _ = writeln!(out, "\n[[{sub_path}]]");
                    render_toml_section(t, &sub_path, out);
                }
            }
            _ => {}
        }
    }
}

fn toml_key(k: &str) -> String {
    if !k.is_empty() && k.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-') {
        k.to_string()
    } else {
        quote(k)
    }
}

fn render_inline(v: &ConfigValue) -> String {
    match v {
        ConfigValue::Str(s) => quote(s),
        ConfigValue::Int(i) => i.to_string(),
        ConfigValue::Float(f) => format_float(*f),
        ConfigValue::Bool(b) => b.to_string(),
        ConfigValue::Array(items) => {
            let body: Vec<String> = items.iter().map(render_inline).collect();
            format!("[{}]", body.join(", "))
        }
        ConfigValue::Table(t) => {
            let body: Vec<String> = t
                .entries()
                .iter()
                .map(|(k, v)| format!("{} = {}", toml_key(k), render_inline(v)))
                .collect();
            format!("{{ {} }}", body.join(", "))
        }
    }
}

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

/// Parses a JSON document whose top level is an object.
pub fn parse_json(src: &str) -> Result<Table, SyntaxError> {
    let mut cur = Cursor::new(src);
    cur.skip_ws(false);
    let value = parse_json_value(&mut cur)?;
    cur.skip_ws(false);
    if cur.peek().is_some() {
        return Err(cur.err("trailing characters after JSON document"));
    }
    match value {
        ConfigValue::Table(t) => Ok(t),
        other => Err(SyntaxError {
            line: 1,
            message: format!("top level must be an object, found {}", other.type_name()),
        }),
    }
}

fn parse_json_value(cur: &mut Cursor<'_>) -> Result<ConfigValue, SyntaxError> {
    cur.skip_ws(false);
    match cur.peek() {
        Some(b'"') => Ok(ConfigValue::Str(cur.parse_quoted_string()?)),
        Some(b'{') => {
            cur.bump();
            let mut table = Table::new();
            cur.skip_ws(false);
            if cur.eat(b'}') {
                return Ok(ConfigValue::Table(table));
            }
            loop {
                cur.skip_ws(false);
                let key = cur.parse_quoted_string()?;
                cur.skip_ws(false);
                if !cur.eat(b':') {
                    return Err(cur.err(format!("expected ':' after key {}", quote(&key))));
                }
                let value = parse_json_value(cur)?;
                if table.get(&key).is_some() {
                    return Err(cur.err(format!("duplicate key {}", quote(&key))));
                }
                table.insert(key, value);
                cur.skip_ws(false);
                if cur.eat(b'}') {
                    return Ok(ConfigValue::Table(table));
                }
                if !cur.eat(b',') {
                    return Err(cur.err("expected ',' or '}' in object"));
                }
            }
        }
        Some(b'[') => {
            cur.bump();
            let mut items = Vec::new();
            cur.skip_ws(false);
            if cur.eat(b']') {
                return Ok(ConfigValue::Array(items));
            }
            loop {
                items.push(parse_json_value(cur)?);
                cur.skip_ws(false);
                if cur.eat(b']') {
                    return Ok(ConfigValue::Array(items));
                }
                if !cur.eat(b',') {
                    return Err(cur.err("expected ',' or ']' in array"));
                }
            }
        }
        Some(b't') | Some(b'f') => {
            for (word, v) in [("true", true), ("false", false)] {
                if cur.src[cur.pos..].starts_with(word.as_bytes()) {
                    cur.pos += word.len();
                    return Ok(ConfigValue::Bool(v));
                }
            }
            Err(cur.err("expected a boolean"))
        }
        Some(b'n') => {
            if cur.src[cur.pos..].starts_with(b"null") {
                Err(cur.err("null is not a scenario value (omit the key instead)"))
            } else {
                Err(cur.err("expected a value"))
            }
        }
        _ => cur.parse_number(),
    }
}

/// Renders a table as pretty-printed JSON (2-space indent, key order
/// preserved). The output re-parses to an identical [`Table`].
pub fn render_json(table: &Table) -> String {
    let mut out = String::new();
    render_json_value(&ConfigValue::Table(table.clone()), 0, &mut out);
    out.push('\n');
    out
}

fn render_json_value(v: &ConfigValue, indent: usize, out: &mut String) {
    use fmt::Write;
    let pad = "  ".repeat(indent);
    match v {
        ConfigValue::Str(s) => out.push_str(&quote(s)),
        ConfigValue::Int(i) => {
            let _ = write!(out, "{i}");
        }
        ConfigValue::Float(f) => out.push_str(&format_float(*f)),
        ConfigValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ConfigValue::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                render_json_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}]");
        }
        ConfigValue::Table(t) => {
            if t.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in t.entries().iter().enumerate() {
                let _ = write!(out, "{pad}  {}: ", quote(k));
                render_json_value(v, indent + 1, out);
                out.push_str(if i + 1 < t.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
        }
    }
}

// ---------------------------------------------------------------------------
// Shared formatting
// ---------------------------------------------------------------------------

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float so it parses back bit-identically *and* still reads as
/// a float (`1` becomes `1.0`) — the workspace-shared helper, re-exported
/// here because it is part of this codec's public contract (the run-log
/// codec uses the same one, so the two can never drift).
pub use craqr_stats::format_float;

#[cfg(test)]
mod tests {
    use super::*;

    fn int(i: i64) -> ConfigValue {
        ConfigValue::Int(i)
    }

    #[test]
    fn toml_tables_arrays_and_scalars_parse() {
        let src = r#"
# top comment
name = "demo"
seed = 42
rate = 0.5
flag = true

[grid]
side = 4          # trailing comment
size_km = 4.0

[[attributes]]
name = "temp"
spots = [[1.0, 2.0], [3.0, 4.0]]

[[attributes]]
name = "rain"
field = { kind = "rain", width = 1.5 }
"#;
        let t = parse_toml(src).unwrap();
        assert_eq!(t.get("name"), Some(&ConfigValue::Str("demo".into())));
        assert_eq!(t.get("seed"), Some(&int(42)));
        assert_eq!(t.get("rate"), Some(&ConfigValue::Float(0.5)));
        assert_eq!(t.get("flag"), Some(&ConfigValue::Bool(true)));
        let ConfigValue::Table(grid) = t.get("grid").unwrap() else { panic!("grid") };
        assert_eq!(grid.get("side"), Some(&int(4)));
        let ConfigValue::Array(attrs) = t.get("attributes").unwrap() else { panic!("attrs") };
        assert_eq!(attrs.len(), 2);
        let ConfigValue::Table(rain) = &attrs[1] else { panic!("rain table") };
        let ConfigValue::Table(field) = rain.get("field").unwrap() else { panic!("field") };
        assert_eq!(field.get("width"), Some(&ConfigValue::Float(1.5)));
    }

    #[test]
    fn toml_rejects_duplicates_and_garbage() {
        assert!(parse_toml("a = 1\na = 2").unwrap_err().message.contains("duplicate"));
        assert!(parse_toml("a == 1").is_err());
        assert!(parse_toml("[t\na = 1").is_err());
        assert!(parse_toml("a = [1, 2").is_err());
        assert!(parse_toml("a = \"unterminated").is_err());
        let err = parse_toml("ok = 1\nbad = @").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn json_parses_and_rejects() {
        let t = parse_json(r#"{"a": 1, "b": [1.5, true, "x"], "c": {"d": -2}}"#).unwrap();
        assert_eq!(t.get("a"), Some(&int(1)));
        let ConfigValue::Array(b) = t.get("b").unwrap() else { panic!() };
        assert_eq!(b[0], ConfigValue::Float(1.5));
        assert!(parse_json("[1]").unwrap_err().message.contains("top level"));
        assert!(parse_json(r#"{"a": null}"#).unwrap_err().message.contains("null"));
        assert!(parse_json(r#"{"a": 1,}"#).is_err());
        assert!(parse_json(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn renderers_round_trip() {
        let mut inner = Table::new();
        inner.insert("kind", ConfigValue::Str("hotspots".into()));
        inner.insert("floor", ConfigValue::Float(1.0));
        let mut row = Table::new();
        row.insert("name", ConfigValue::Str("q\"uoted\\".into()));
        row.insert("rate", ConfigValue::Float(0.25));
        let mut t = Table::new();
        t.insert("name", ConfigValue::Str("round trip".into()));
        t.insert("seed", int(7));
        t.insert("huge", int(i64::MAX));
        t.insert("tiny", ConfigValue::Float(1e-9));
        t.insert("flag", ConfigValue::Bool(false));
        t.insert("placement", ConfigValue::Table(inner));
        t.insert(
            "spots",
            ConfigValue::Array(vec![ConfigValue::Float(1.5), ConfigValue::Float(-2.0)]),
        );
        t.insert("queries", ConfigValue::Array(vec![ConfigValue::Table(row)]));

        let toml = render_toml(&t);
        assert_eq!(parse_toml(&toml).unwrap(), t, "TOML round trip\n{toml}");
        let json = render_json(&t);
        assert_eq!(parse_json(&json).unwrap(), t, "JSON round trip\n{json}");
    }

    #[test]
    fn float_formatting_keeps_floats_floats() {
        assert_eq!(format_float(1.0), "1.0");
        assert_eq!(format_float(0.5), "0.5");
        // Rust's shortest-roundtrip Display never uses exponent notation;
        // the long decimal still parses back to the same bits.
        assert_eq!(format_float(1e-9).parse::<f64>().unwrap(), 1e-9);
        assert_eq!(parse_toml("x = 1.0").unwrap().get("x"), Some(&ConfigValue::Float(1.0)));
    }
}
