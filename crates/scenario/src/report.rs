//! Golden scenario reports.
//!
//! A [`ScenarioReport`] is the deterministic observable footprint of one
//! scenario run: per-epoch loop statistics, per-query delivery and
//! empirical intensity summaries, operator-kind acceptance/thinning
//! totals, and whole-run budget accounting. Its
//! [`canonical`](ScenarioReport::canonical) rendering is byte-stable — identical for
//! [`craqr_core::ExecMode::Serial`] and any `Sharded(n)` under the same
//! seed — and ends in an FNV-1a checksum line, so golden files under
//! `tests/goldens/` diff cleanly and CI can compare runs by checksum
//! alone.
//!
//! Anything host- or schedule-dependent (wall/CPU time, shard busy-times,
//! worker counts) is deliberately **excluded** from the canonical body.

use crate::value::format_float;
use craqr_core::FaultDeltas;
use craqr_mdpp::IntensitySummary;
pub use craqr_stats::fnv1a64;

/// One epoch of the Fig. 1 loop, reduced to its deterministic counters.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Requests the handler attempted.
    pub requested: u64,
    /// Requests actually sent.
    pub sent: u64,
    /// Responses drained from the crowd.
    pub responses: usize,
    /// Responses rejected by mitigation.
    pub rejected: usize,
    /// Well-formed tuples ingested.
    pub ingested: usize,
    /// Tuples routed to materialized chains.
    pub routed: usize,
    /// Tuples dropped at the map phase.
    pub dropped: usize,
    /// Tuples delivered across all queries.
    pub delivered: usize,
    /// Budget-tuning increase events.
    pub tune_increased: usize,
    /// Budget-tuning decrease events.
    pub tune_decreased: usize,
    /// Budget-exhaustion events.
    pub tune_exhausted: usize,
    /// Requests withheld by pool throttling (`requested - sent` due to
    /// tenant budget caps). Carried for run-level totals and telemetry;
    /// **not** rendered in the per-epoch line (the line format is part of
    /// the golden contract and `requested`/`sent` already imply it).
    pub throttled: u64,
    /// Control actions dropped as stale (targeted a retired chain).
    /// Carried for run-level totals; not rendered per-epoch.
    pub stale_actions: u64,
    /// Crowd-fault activity this epoch (all zero without a `[faults]`
    /// layer). Carried for the `[faults]` section; not rendered per-epoch.
    pub faults: FaultDeltas,
}

/// One standing query's whole-run outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRow {
    /// Query index (submission order).
    pub index: usize,
    /// The declarative text.
    pub text: String,
    /// Requested rate λ (/km²/min).
    pub requested_rate: f64,
    /// Query footprint area (km²).
    pub area: f64,
    /// Tuples delivered over the run.
    pub delivered: usize,
    /// Achieved rate (delivered / (area × minutes)).
    pub achieved_rate: f64,
    /// Empirical intensity summary of the delivered stream over the run
    /// window on the scenario grid.
    pub intensity: IntensitySummary,
}

/// Acceptance/thinning totals for one operator kind (aggregated over every
/// chain via [`craqr_engine::TopologyMetrics::by_kind`]).
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorRow {
    /// Operator kind (name prefix before the parameter list).
    pub kind: String,
    /// Tuples in.
    pub tuples_in: u64,
    /// Tuples out.
    pub tuples_out: u64,
    /// Batches processed.
    pub batches: u64,
}

/// Whole-run accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTotals {
    /// Requests attempted.
    pub requested: u64,
    /// Requests sent.
    pub sent: u64,
    /// Responses delivered by the crowd.
    pub responses: u64,
    /// Budget-exhaustion events ("accept the feasible rate or pay more").
    pub exhausted_events: u64,
    /// Sum of final per-chain budgets (requests/epoch).
    pub final_budget: f64,
    /// Tuples dropped at the map phase over the run.
    pub dropped_unmaterialized: u64,
    /// Materialized (cell, attribute) chains at the end of the run.
    pub chains: usize,
    /// Simulated minutes elapsed.
    pub minutes: f64,
    /// Requests withheld by pool throttling over the run (sum of
    /// [`EpochRow::throttled`]).
    pub throttled: u64,
    /// Stale control actions dropped over the run (sum of
    /// [`EpochRow::stale_actions`]).
    pub stale_actions: u64,
}

/// Roll-up of an adaptive controller run, pinned into the report so the
/// report checksum also pins the full [`craqr_adaptive::AdaptiveTrace`]
/// (whose own canonical text is golden-tested separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdaptiveSection {
    /// `true`: replans were applied; `false`: observe-only baseline.
    pub active: bool,
    /// The trace roll-up (observation/drift/replan counts + checksum).
    pub summary: craqr_adaptive::TraceSummary,
}

impl From<&craqr_adaptive::AdaptiveTrace> for AdaptiveSection {
    fn from(t: &craqr_adaptive::AdaptiveTrace) -> Self {
        Self { active: t.enabled, summary: t.summary() }
    }
}

/// One tenant's whole-run accounting row.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantRow {
    /// The tenant (dense registration-order id).
    pub tenant: u32,
    /// The tenant's declared name.
    pub name: String,
    /// Budget pool capacity (requests/epoch).
    pub capacity: f64,
    /// Queries admitted.
    pub admitted: u32,
    /// Queries rejected at admission.
    pub rejected: u32,
    /// Committed estimated demand (requests/epoch).
    pub committed: f64,
    /// Requests charged over the whole run.
    pub charged: f64,
    /// Largest single-epoch charge — the conservation witness, always
    /// `≤ capacity`.
    pub peak_epoch_charge: f64,
}

/// One admission decision, for the report's audit trail.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionRow {
    /// Submission order (counts rejections too).
    pub submission: u32,
    /// The submitting tenant.
    pub tenant: u32,
    /// Estimated demand (requests/epoch).
    pub demand: f64,
    /// Demand committed before this check.
    pub committed: f64,
    /// The tenant's pool capacity.
    pub capacity: f64,
    /// The verdict.
    pub admitted: bool,
}

/// The multi-tenant accounting section: one row per tenant plus the full
/// admission audit trail. Only present — and only rendered — for specs
/// that declare `[[tenants]]`, so single-owner goldens stay byte-stable.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSection {
    /// Per-tenant rows, ascending by tenant id.
    pub rows: Vec<TenantRow>,
    /// Every admission decision, in submission order.
    pub admissions: Vec<AdmissionRow>,
}

/// Whole-run fault-injection and retry accounting. Only present — and
/// only rendered — for specs that declare a `[faults]` block, so
/// fault-free goldens don't carry a noisy all-zero section.
///
/// Event-derived and deterministic (the fault RNG is seeded; retries are
/// a deterministic function of dispatch outcomes), so the section is
/// checksummed like everything else in the report body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultSection {
    /// Responses dropped by injected faults over the run.
    pub dropped: u64,
    /// Responses delayed (re-queued to mature later) over the run.
    pub delayed: u64,
    /// Responses duplicated over the run.
    pub duplicated: u64,
    /// Extra requests dispatched by the retry path over the run
    /// ([`craqr_core::RequestResponseHandler::retries_requested`]).
    pub retries_requested: u64,
    /// Shortfall events that scheduled a retry over the run
    /// ([`craqr_core::RequestResponseHandler::retry_attempts`]).
    pub retry_attempts: u64,
}

/// The event-derived metrics registry snapshot, pinned into the report.
///
/// `events` is [`craqr_telemetry::Registry::canonical_events`] — the
/// timing families are structurally excluded, so this section (and the
/// report checksum over it) is byte-identical whether or not the run
/// sampled any clocks. Present only for specs that declare
/// `[telemetry]` with `report = true`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetrySection {
    /// Canonical event-metric lines (one `event name{labels} value` per
    /// series, name-then-label ordered).
    pub events: String,
    /// FNV-1a checksum of `events` (also recomputable via
    /// `Registry::events_checksum`).
    pub events_checksum: u64,
}

/// The full deterministic report of one scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Seed the run used (spec seed unless overridden).
    pub seed: u64,
    /// Per-epoch rows.
    pub epochs: Vec<EpochRow>,
    /// Per-query rows.
    pub queries: Vec<QueryRow>,
    /// Operator-kind totals, sorted by kind.
    pub operators: Vec<OperatorRow>,
    /// Whole-run accounting.
    pub totals: RunTotals,
    /// Adaptive-controller roll-up (absent when the spec has no
    /// `[adaptive]` block; the section — and therefore the golden — only
    /// exists for closed-loop runs).
    pub adaptive: Option<AdaptiveSection>,
    /// Multi-tenant accounting (absent when the spec declares no
    /// `[[tenants]]`; single-owner reports stay byte-stable).
    pub tenants: Option<TenantSection>,
    /// Fault-injection/retry accounting (absent when the spec has no
    /// `[faults]` block; fault-free reports stay byte-stable).
    pub faults: Option<FaultSection>,
    /// Event-metric registry snapshot (absent without a `[telemetry]`
    /// block requesting `report = true`).
    pub telemetry: Option<TelemetrySection>,
}

impl ScenarioReport {
    /// The canonical golden text: byte-stable across hosts and
    /// [`craqr_core::ExecMode`]s, ending in a `checksum:` line over
    /// everything before it.
    pub fn canonical(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "# craqr scenario report v1");
        let _ = writeln!(s, "scenario: {}", self.name);
        let _ = writeln!(s, "seed: {}", self.seed);
        let _ = writeln!(s, "epochs: {}", self.epochs.len());
        let _ = writeln!(s, "\n[epochs]");
        for e in &self.epochs {
            let _ = writeln!(
                s,
                "e={} requested={} sent={} responses={} rejected={} ingested={} routed={} \
                 dropped={} delivered={} tune+={} tune-={} tune!={}",
                e.epoch,
                e.requested,
                e.sent,
                e.responses,
                e.rejected,
                e.ingested,
                e.routed,
                e.dropped,
                e.delivered,
                e.tune_increased,
                e.tune_decreased,
                e.tune_exhausted,
            );
        }
        let _ = writeln!(s, "\n[queries]");
        for q in &self.queries {
            let _ = writeln!(
                s,
                "q={} text={:?} rate-requested={} area={} delivered={} rate-achieved={}",
                q.index,
                q.text,
                format_float(q.requested_rate),
                format_float(q.area),
                q.delivered,
                format_float(q.achieved_rate),
            );
            let i = &q.intensity;
            let _ = writeln!(
                s,
                "  intensity count={} mean={} min-cell={} max-cell={} cell-cv={}",
                i.count,
                format_float(i.mean_rate),
                format_float(i.min_cell_rate),
                format_float(i.max_cell_rate),
                format_float(i.cell_cv),
            );
        }
        let _ = writeln!(s, "\n[operators]");
        for o in &self.operators {
            let _ = writeln!(
                s,
                "{} in={} out={} batches={}",
                o.kind, o.tuples_in, o.tuples_out, o.batches
            );
        }
        if let Some(a) = &self.adaptive {
            let _ = writeln!(s, "\n[adaptive]");
            let _ = writeln!(
                s,
                "mode={} observations={} drift-events={} replans={} first-replan={} \
                 trace-checksum={:#018x}",
                if a.active { "active" } else { "observe" },
                a.summary.observations,
                a.summary.drift_events,
                a.summary.replans,
                a.summary.first_replan_epoch.map_or("-".to_string(), |e| e.to_string()),
                a.summary.trace_checksum,
            );
        }
        if let Some(tenants) = &self.tenants {
            let _ = writeln!(s, "\n[tenants]");
            for row in &tenants.rows {
                let _ = writeln!(
                    s,
                    "t={} name={} capacity={} admitted={} rejected={} committed={} charged={} \
                     peak-epoch={}",
                    row.tenant,
                    row.name,
                    format_float(row.capacity),
                    row.admitted,
                    row.rejected,
                    format_float(row.committed),
                    format_float(row.charged),
                    format_float(row.peak_epoch_charge),
                );
            }
            let _ = writeln!(s, "\n[admissions]");
            for a in &tenants.admissions {
                let _ = writeln!(
                    s,
                    "sub={} tenant={} demand={} committed={} capacity={} verdict={}",
                    a.submission,
                    a.tenant,
                    format_float(a.demand),
                    format_float(a.committed),
                    format_float(a.capacity),
                    if a.admitted { "admitted" } else { "rejected" },
                );
            }
        }
        if let Some(f) = &self.faults {
            let _ = writeln!(s, "\n[faults]");
            let _ = writeln!(
                s,
                "dropped={} delayed={} duplicated={} retries-requested={} retry-attempts={}",
                f.dropped, f.delayed, f.duplicated, f.retries_requested, f.retry_attempts,
            );
        }
        let t = &self.totals;
        let _ = writeln!(s, "\n[totals]");
        let _ = writeln!(
            s,
            "requested={} sent={} responses={} exhausted={} final-budget={} \
             dropped-unmaterialized={} chains={} minutes={} throttled={} stale-actions={}",
            t.requested,
            t.sent,
            t.responses,
            t.exhausted_events,
            format_float(t.final_budget),
            t.dropped_unmaterialized,
            t.chains,
            format_float(t.minutes),
            t.throttled,
            t.stale_actions,
        );
        if let Some(tm) = &self.telemetry {
            let _ = writeln!(s, "\n[telemetry]");
            let _ = write!(s, "{}", tm.events);
            let _ = writeln!(s, "events-checksum: {:#018x}", tm.events_checksum);
        }
        let _ = writeln!(s, "\nchecksum: {:#018x}", fnv1a64(s.as_bytes()));
        s
    }

    /// The report's content checksum (the value on the canonical text's
    /// final line).
    pub fn checksum(&self) -> u64 {
        let canon = self.canonical();
        // Everything before the blank line introducing the checksum line is
        // exactly what the checksum hashed.
        let body = canon.rsplit_once("\nchecksum:").expect("canonical ends in checksum").0;
        fnv1a64(body.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::{Rect, SpaceTimeWindow};

    fn report() -> ScenarioReport {
        let window = SpaceTimeWindow::new(Rect::with_size(4.0, 4.0), 0.0, 10.0);
        ScenarioReport {
            name: "unit".into(),
            seed: 7,
            epochs: vec![EpochRow {
                epoch: 0,
                requested: 10,
                sent: 9,
                responses: 8,
                rejected: 1,
                ingested: 7,
                routed: 6,
                dropped: 1,
                delivered: 5,
                tune_increased: 1,
                tune_decreased: 0,
                tune_exhausted: 0,
                throttled: 1,
                stale_actions: 0,
                faults: FaultDeltas::default(),
            }],
            queries: vec![QueryRow {
                index: 0,
                text: "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5".into(),
                requested_rate: 0.5,
                area: 4.0,
                delivered: 5,
                achieved_rate: 0.125,
                intensity: IntensitySummary::from_points(&[], &window, 4),
            }],
            operators: vec![OperatorRow {
                kind: "F".into(),
                tuples_in: 7,
                tuples_out: 6,
                batches: 1,
            }],
            totals: RunTotals {
                requested: 10,
                sent: 9,
                responses: 8,
                exhausted_events: 0,
                final_budget: 22.0,
                dropped_unmaterialized: 1,
                chains: 4,
                minutes: 5.0,
                throttled: 1,
                stale_actions: 0,
            },
            adaptive: None,
            tenants: None,
            faults: None,
            telemetry: None,
        }
    }

    #[test]
    fn canonical_is_stable_and_checksummed() {
        let r = report();
        let a = r.canonical();
        let b = r.canonical();
        assert_eq!(a, b);
        let line = a.lines().last().unwrap();
        assert!(line.starts_with("checksum: 0x"), "{line}");
        assert!(a.ends_with(&format!("checksum: {:#018x}\n", r.checksum())));
    }

    #[test]
    fn checksum_changes_with_content() {
        let a = report();
        let mut b = report();
        b.epochs[0].delivered += 1;
        assert_ne!(a.checksum(), b.checksum());
        assert_ne!(a.canonical(), b.canonical());
    }

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a test vectors (the shared craqr_stats helper —
        // re-exported here because golden checksums are part of this
        // crate's contract).
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn tenant_section_renders_only_when_present() {
        let plain = report();
        assert!(!plain.canonical().contains("[tenants]"), "single-owner reports stay byte-stable");
        let mut tenanted = report();
        tenanted.tenants = Some(TenantSection {
            rows: vec![TenantRow {
                tenant: 0,
                name: "alice".into(),
                capacity: 40.0,
                admitted: 1,
                rejected: 1,
                committed: 10.0,
                charged: 55.0,
                peak_epoch_charge: 12.5,
            }],
            admissions: vec![AdmissionRow {
                submission: 1,
                tenant: 0,
                demand: 99.0,
                committed: 10.0,
                capacity: 40.0,
                admitted: false,
            }],
        });
        let canon = tenanted.canonical();
        assert!(canon.contains("[tenants]"), "{canon}");
        assert!(canon.contains("t=0 name=alice capacity=40"), "{canon}");
        assert!(canon.contains("[admissions]"), "{canon}");
        assert!(canon.contains("verdict=rejected"), "{canon}");
        assert_ne!(plain.checksum(), tenanted.checksum());
    }

    #[test]
    fn fault_section_renders_only_when_present() {
        let plain = report();
        assert!(!plain.canonical().contains("[faults]"), "fault-free reports stay byte-stable");
        let mut faulty = report();
        faulty.faults = Some(FaultSection {
            dropped: 3,
            delayed: 2,
            duplicated: 1,
            retries_requested: 4,
            retry_attempts: 9,
        });
        let canon = faulty.canonical();
        assert!(canon.contains("[faults]"), "{canon}");
        assert!(
            canon.contains("dropped=3 delayed=2 duplicated=1 retries-requested=4 retry-attempts=9"),
            "{canon}"
        );
        assert_ne!(plain.checksum(), faulty.checksum());
    }

    #[test]
    fn totals_line_carries_throttled_and_stale_actions() {
        let canon = report().canonical();
        assert!(canon.contains("throttled=1 stale-actions=0"), "{canon}");
    }

    #[test]
    fn telemetry_section_renders_only_when_present() {
        let plain = report();
        assert!(!plain.canonical().contains("[telemetry]"));
        let events = "event craqr_requests_total{kind=\"sent\"} 9\n".to_string();
        let mut instrumented = report();
        instrumented.telemetry =
            Some(TelemetrySection { events_checksum: fnv1a64(events.as_bytes()), events });
        let canon = instrumented.canonical();
        assert!(canon.contains("[telemetry]"), "{canon}");
        assert!(canon.contains("event craqr_requests_total{kind=\"sent\"} 9"), "{canon}");
        assert!(canon.contains("events-checksum: 0x"), "{canon}");
        assert_ne!(plain.checksum(), instrumented.checksum());
    }

    #[test]
    fn adaptive_section_renders_only_when_present() {
        let plain = report();
        assert!(!plain.canonical().contains("[adaptive]"));
        let mut adaptive = report();
        adaptive.adaptive = Some(AdaptiveSection {
            active: true,
            summary: craqr_adaptive::TraceSummary {
                observations: 10,
                drift_events: 2,
                replans: 1,
                first_replan_epoch: Some(7),
                trace_checksum: 0xDEAD,
            },
        });
        let canon = adaptive.canonical();
        assert!(canon.contains("[adaptive]"), "{canon}");
        assert!(canon.contains("mode=active"), "{canon}");
        assert!(canon.contains("first-replan=7"), "{canon}");
        assert_ne!(plain.checksum(), adaptive.checksum());
    }
}
