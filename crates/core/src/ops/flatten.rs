//! The `F` (flatten) operator — Section IV-B.1.

use crate::ops::report::FlattenReport;
use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_geom::{Grid, Rect, SpaceTimePoint, SpaceTimeWindow};
use craqr_mdpp::fit::{fit_mle, FitConfig, SgdConfig, SgdEstimator};
use craqr_mdpp::intensity::{IntensityModel, LinearIntensity, PiecewiseConstantIntensity};
use craqr_stats::sub_rng;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// How the flatten operator estimates the conditional intensity `λ̃(·; θ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorMode {
    /// Fit θ by maximum likelihood on every batch (ref. \[12\]); the paper's
    /// default batch behaviour.
    BatchMle,
    /// Maintain θ across batches with online stochastic gradient descent
    /// (ref. \[13\]); the paper's sliding-window variant.
    Sgd(SgdConfig),
    /// Nonparametric per-batch estimate: bin the cell into `bins × bins`
    /// sub-cells and use the empirical rate of each bin as `λ̃` — the
    /// classic histogram intensity estimator. Makes no linearity
    /// assumption, so it also flattens multi-modal (hotspot) skew that
    /// Eq. (1) cannot represent; the price is coarse resolution on sparse
    /// batches.
    Histogram {
        /// Sub-cells per side (≥ 1).
        bins: u32,
    },
}

/// The per-batch fitted intensity, whichever family produced it.
enum FittedModel {
    Linear(LinearIntensity),
    Piecewise(PiecewiseConstantIntensity),
}

impl FittedModel {
    fn rate_at(&self, p: &SpaceTimePoint) -> f64 {
        match self {
            FittedModel::Linear(m) => m.rate_at(p),
            FittedModel::Piecewise(m) => m.rate_at(p),
        }
    }
}

/// Configuration of a [`FlattenOp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlattenConfig {
    /// The operator's spatial extent `R*` (a grid cell in CrAQR).
    pub cell: Rect,
    /// Duration of one batch (minutes). Batches are aligned to multiples of
    /// this duration on the stream clock.
    pub batch_duration: f64,
    /// The desired homogeneous output rate `λ̄` (tuples / km² / min).
    pub target_rate: f64,
    /// Intensity estimation mode.
    pub mode: EstimatorMode,
    /// RNG seed for the Bernoulli retention draws.
    pub seed: u64,
}

/// The flatten operator `F`: converts an inhomogeneous MDPP `P̃⟨j⟩(λ̃, R*)`
/// into an approximately homogeneous `P⟨j⟩(λ̄, R*)`.
///
/// Per batch of `n` tuples it:
///
/// 1. estimates θ of Eq. (1) (batch MLE or online SGD),
/// 2. computes each tuple's *retaining probability* — Eq. (3):
///    `pᵢ = λ̄ / (λ̃(pᵢ; θ) · λ_c)` with `λ_c = Σᵢ λ̃(pᵢ; θ)⁻¹`,
///    where `λ̄` is expressed as the target *count* for the batch
///    (`target_rate × batch volume`), so that `Σᵢ pᵢ = λ̄` exactly when no
///    violation occurs,
/// 3. labels tuples with `pᵢ > 1` as *rate violations*, clamps them to 1,
///    and reports the percent rate violation `N_v` on its
///    [`FlattenReport`],
/// 4. forwards each tuple iff an independent Bernoulli(`pᵢ`) draw succeeds.
///
/// Retention is inversely proportional to the local intensity — "more
/// tuples are retained in areas of low rate and less tuples are retained in
/// areas of high rate" — which is what homogenizes the output.
pub struct FlattenOp {
    name: String,
    cell: Rect,
    batch_duration: f64,
    target_rate: f64,
    mode: EstimatorMode,
    sgd: Option<SgdEstimator>,
    rng: StdRng,
    report: Arc<FlattenReport>,
}

impl FlattenOp {
    /// Creates a flatten operator and its telemetry handle.
    ///
    /// # Panics
    /// Panics on non-positive `target_rate` or `batch_duration`.
    #[track_caller]
    pub fn new(config: FlattenConfig) -> (Self, Arc<FlattenReport>) {
        assert!(config.target_rate > 0.0, "target rate must be > 0");
        assert!(config.batch_duration > 0.0, "batch duration must be > 0");
        let report = FlattenReport::new(0.3);
        let sgd = match config.mode {
            EstimatorMode::BatchMle => None,
            EstimatorMode::Histogram { bins } => {
                assert!(bins > 0, "histogram estimator needs at least one bin");
                None
            }
            EstimatorMode::Sgd(cfg) => {
                let reference = SpaceTimeWindow::new(config.cell, 0.0, config.batch_duration);
                Some(SgdEstimator::new(&reference, cfg))
            }
        };
        (
            Self {
                name: format!("F(λ̄={:.3})", config.target_rate),
                cell: config.cell,
                batch_duration: config.batch_duration,
                target_rate: config.target_rate,
                mode: config.mode,
                sgd,
                rng: sub_rng(config.seed, 0xF1A7),
                report: Arc::clone(&report),
            },
            report,
        )
    }

    /// The current target rate λ̄.
    #[inline]
    pub fn target_rate(&self) -> f64 {
        self.target_rate
    }

    /// Retargets the operator — used by the planner when a new query raises
    /// the cell's maximum requested rate ("if needed, the output rate of
    /// the F-operator is changed", Section V).
    ///
    /// # Panics
    /// Panics on a non-positive rate.
    #[track_caller]
    pub fn set_target_rate(&mut self, rate: f64) {
        assert!(rate > 0.0, "target rate must be > 0");
        self.target_rate = rate;
        self.name = format!("F(λ̄={rate:.3})");
    }

    /// The operator's spatial extent `R*`.
    #[inline]
    pub fn cell(&self) -> Rect {
        self.cell
    }

    /// The batch window implied by a batch's earliest timestamp: aligned to
    /// multiples of `batch_duration`, widened if the batch spills over.
    fn batch_window(&self, batch: &[CrowdTuple]) -> SpaceTimeWindow {
        let min_t = batch.iter().map(|t| t.point.t).fold(f64::INFINITY, f64::min);
        let max_t = batch.iter().map(|t| t.point.t).fold(f64::NEG_INFINITY, f64::max);
        let t0 = (min_t / self.batch_duration).floor() * self.batch_duration;
        let mut t1 = t0 + self.batch_duration;
        if max_t >= t1 {
            t1 = max_t + 1e-9;
        }
        SpaceTimeWindow::new(self.cell, t0, t1)
    }

    /// Estimates the intensity for this batch according to the mode.
    ///
    /// Estimation happens in *batch-local time* (`t − window.t0`): the SGD
    /// estimator is anchored to a reference window starting at 0, and
    /// shifting keeps its scaled time feature in `[−1, 1]` no matter how
    /// long the stream has been running. The returned model must therefore
    /// be evaluated at batch-local coordinates too.
    fn estimate(
        &mut self,
        batch: &[CrowdTuple],
        window: &SpaceTimeWindow,
    ) -> (FittedModel, SpaceTimeWindow) {
        let local_window = SpaceTimeWindow::new(self.cell, 0.0, window.duration());
        let points: Vec<_> = batch
            .iter()
            .map(|t| {
                let mut p = t.point;
                p.t -= window.t0;
                p
            })
            .collect();
        let model = match (&self.mode, self.sgd.as_mut()) {
            (EstimatorMode::BatchMle, _) => {
                FittedModel::Linear(fit_mle(&points, &local_window, FitConfig::default()).intensity)
            }
            (EstimatorMode::Histogram { bins }, _) => {
                FittedModel::Piecewise(histogram_intensity(&points, &local_window, *bins))
            }
            (EstimatorMode::Sgd(_), Some(sgd)) => {
                sgd.observe_batch(&points, &local_window);
                FittedModel::Linear(sgd.estimate())
            }
            (EstimatorMode::Sgd(_), None) => unreachable!("sgd mode always has an estimator"),
        };
        (model, local_window)
    }
}

/// The histogram intensity estimate: empirical rate per `bins × bins`
/// sub-cell, with add-half smoothing so empty bins keep a small positive
/// rate (a zero-rate bin would make Eq. (3)'s retaining probability blow
/// up for any stray point that lands there next).
fn histogram_intensity(
    points: &[SpaceTimePoint],
    window: &SpaceTimeWindow,
    bins: u32,
) -> PiecewiseConstantIntensity {
    let grid = Grid::new(window.rect, bins);
    let mut counts = vec![0.5f64; (bins * bins) as usize];
    for p in points {
        if let Some(cell) = grid.cell_of(p.x, p.y) {
            counts[(cell.r * bins + cell.q) as usize] += 1.0;
        }
    }
    let bin_volume = grid.cell_area() * window.duration();
    let rates: Vec<f64> = counts.into_iter().map(|c| c / bin_volume).collect();
    PiecewiseConstantIntensity::new(grid, rates)
}

impl Operator<CrowdTuple> for FlattenOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, _port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        if batch.is_empty() {
            // An empty batch with a positive target is a total violation:
            // there is nothing to fabricate the requested rate from.
            self.report.record_batch(100.0, 0, 0);
            return;
        }
        let window = self.batch_window(batch);
        let (model, _local_window) = self.estimate(batch, &window);

        // Eq. (3), evaluated in batch-local time to match the estimate.
        // Intensities are floored to avoid division blow-ups where the
        // fitted plane grazes zero inside the window.
        let rates: Vec<f64> = batch
            .iter()
            .map(|t| {
                let mut p = t.point;
                p.t -= window.t0;
                model.rate_at(&p).max(1e-9)
            })
            .collect();
        let lambda_c: f64 = rates.iter().map(|r| 1.0 / r).sum();
        let target_count = self.target_rate * window.volume();

        let mut violations = 0usize;
        let mut kept = 0usize;
        for (tuple, &rate) in batch.iter().zip(&rates) {
            let mut p = target_count / (rate * lambda_c);
            if p > 1.0 {
                violations += 1;
                p = 1.0;
            }
            if self.rng.gen::<f64>() < p {
                kept += 1;
                out.emit(OutputPort(0), *tuple);
            }
        }
        let nv = 100.0 * violations as f64 / batch.len() as f64;
        self.report.record_batch(nv, batch.len(), kept);
    }
}

// The stochastic assertions below (χ² homogeneity at α = 0.001, CV-ratio
// margins) are tuned to the workspace's vendored xoshiro-backed `rand`
// stand-in. Swapping in crates.io `rand` (ChaCha `StdRng`) changes every
// sample stream; a spurious margin failure after that swap means re-picking
// the sampler seeds here, not an estimator regression.
#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_mdpp::diagnostics::homogeneity_report;
    use craqr_mdpp::process::{HomogeneousMdpp, InhomogeneousMdpp};
    use craqr_sensing::{AttrValue, AttributeId, SensorId};
    use craqr_stats::seeded_rng;

    fn cell() -> Rect {
        Rect::with_size(10.0, 10.0)
    }

    fn tuples_from_points(points: &[SpaceTimePoint]) -> Vec<CrowdTuple> {
        points
            .iter()
            .enumerate()
            .map(|(i, p)| CrowdTuple {
                id: i as u64,
                attr: AttributeId(0),
                point: *p,
                value: AttrValue::Bool(true),
                sensor: SensorId(0),
            })
            .collect()
    }

    fn config(target_rate: f64) -> FlattenConfig {
        FlattenConfig {
            cell: cell(),
            batch_duration: 10.0,
            target_rate,
            mode: EstimatorMode::BatchMle,
            seed: 99,
        }
    }

    fn run_batch(op: &mut FlattenOp, batch: &[CrowdTuple]) -> Vec<CrowdTuple> {
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), batch, &mut em);
        em.into_buffers().remove(0)
    }

    #[test]
    fn uniform_input_keeps_expected_fraction() {
        // Homogeneous input at rate 2.0, target 0.5: keep ~25%.
        let (mut op, report) = FlattenOp::new(config(0.5));
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        let pts = HomogeneousMdpp::new(2.0, cell()).sample(&w, &mut seeded_rng(1));
        let batch = tuples_from_points(&pts);
        let out = run_batch(&mut op, &batch);
        let target = 0.5 * w.volume();
        let got = out.len() as f64;
        assert!((got - target).abs() < 0.15 * target, "kept {got}, want ~{target}");
        assert!(report.last_nv() < 5.0, "N_v {}", report.last_nv());
    }

    #[test]
    fn flatten_homogenizes_skewed_input() {
        let (mut op, _report) = FlattenOp::new(config(0.6));
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        // Strong x-gradient input.
        let truth = LinearIntensity::new([0.3, 0.0, 0.7, 0.0]);
        let pts = InhomogeneousMdpp::new(truth, cell()).sample(&w, &mut seeded_rng(23));
        let input = tuples_from_points(&pts);
        let in_report = homogeneity_report(&pts, &w, 4, 2);
        assert!(!in_report.is_homogeneous(0.001), "input must be skewed");

        let out = run_batch(&mut op, &input);
        let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
        let out_report = homogeneity_report(&out_points, &w, 4, 2);
        assert!(
            out_report.is_homogeneous(0.001),
            "output should be approximately homogeneous: chi p={} dispersion={}",
            out_report.chi_square.p_value,
            out_report.dispersion.index,
        );
        // CV drops substantially.
        assert!(out_report.count_cv < in_report.count_cv * 0.7);
    }

    #[test]
    fn starved_batch_reports_violations() {
        // Target 1.0/km²·min over 10 min × 100 km² = 1000 tuples wanted;
        // provide only a trickle.
        let (mut op, report) = FlattenOp::new(config(1.0));
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        let pts = HomogeneousMdpp::new(0.05, cell()).sample(&w, &mut seeded_rng(3));
        let batch = tuples_from_points(&pts);
        let out = run_batch(&mut op, &batch);
        // Everything is kept (p clamps to 1), and N_v is near total.
        assert_eq!(out.len(), batch.len());
        assert!(report.last_nv() > 90.0, "N_v {}", report.last_nv());
    }

    #[test]
    fn empty_batch_is_total_violation() {
        let (mut op, report) = FlattenOp::new(config(1.0));
        let out = run_batch(&mut op, &[]);
        assert!(out.is_empty());
        assert_eq!(report.last_nv(), 100.0);
        assert_eq!(report.batches(), 1);
    }

    #[test]
    fn retarget_changes_kept_volume() {
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        let pts = HomogeneousMdpp::new(2.0, cell()).sample(&w, &mut seeded_rng(4));
        let batch = tuples_from_points(&pts);

        let (mut op, _) = FlattenOp::new(config(0.2));
        let low = run_batch(&mut op, &batch).len();
        op.set_target_rate(1.0);
        assert_eq!(op.target_rate(), 1.0);
        let high = run_batch(&mut op, &batch).len();
        assert!(high > low * 3, "low {low} high {high}");
    }

    #[test]
    fn sgd_mode_learns_across_batches() {
        let cfg = FlattenConfig { mode: EstimatorMode::Sgd(SgdConfig::default()), ..config(0.5) };
        let (mut op, report) = FlattenOp::new(cfg);
        let truth = LinearIntensity::new([0.5, 0.0, 0.5, 0.0]);
        let process = InhomogeneousMdpp::new(truth, cell());
        let mut rng = seeded_rng(5);
        let mut last_out = Vec::new();
        for b in 0..80 {
            let w = SpaceTimeWindow::new(cell(), b as f64 * 10.0, (b + 1) as f64 * 10.0);
            let pts = process.sample(&w, &mut rng);
            last_out = run_batch(&mut op, &tuples_from_points(&pts));
        }
        assert_eq!(report.batches(), 80);
        // After convergence, the last batch's output should be near target
        // count and roughly balanced across the x gradient.
        let target = 0.5 * 10.0 * 100.0;
        let got = last_out.len() as f64;
        assert!((got - target).abs() < 0.3 * target, "kept {got} want ~{target}");
        let low_half = last_out.iter().filter(|t| t.point.x < 5.0).count() as f64;
        let ratio = low_half / last_out.len() as f64;
        assert!((ratio - 0.5).abs() < 0.12, "balance {ratio}");
    }

    #[test]
    fn histogram_mode_flattens_linear_skew() {
        let cfg = FlattenConfig { mode: EstimatorMode::Histogram { bins: 4 }, ..config(0.6) };
        let (mut op, _) = FlattenOp::new(cfg);
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        let truth = LinearIntensity::new([0.3, 0.0, 0.7, 0.0]);
        let pts = InhomogeneousMdpp::new(truth, cell()).sample(&w, &mut seeded_rng(23));
        let out = run_batch(&mut op, &tuples_from_points(&pts));
        let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
        let rep = homogeneity_report(&out_points, &w, 4, 2);
        assert!(rep.is_homogeneous(0.001), "chi p={}", rep.chi_square.p_value);
        assert!((rep.empirical_rate - 0.6).abs() < 0.12, "rate {}", rep.empirical_rate);
    }

    #[test]
    fn histogram_mode_flattens_hotspot_skew_where_linear_cannot() {
        use craqr_mdpp::intensity::{Bump, GaussianBumpIntensity};
        // A central hotspot: not representable by Eq. (1)'s plane.
        let truth = GaussianBumpIntensity::new(
            0.3,
            vec![Bump { cx: 5.0, cy: 5.0, amplitude: 8.0, sigma: 1.2 }],
        );
        let w = SpaceTimeWindow::new(cell(), 0.0, 10.0);
        let pts = InhomogeneousMdpp::new(truth, cell()).sample(&w, &mut seeded_rng(23));
        let batch = tuples_from_points(&pts);

        let run_mode = |mode: EstimatorMode, seed: u64| {
            let (mut op, _) = FlattenOp::new(FlattenConfig { mode, seed, ..config(0.4) });
            let out = run_batch(&mut op, &batch);
            let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
            homogeneity_report(&out_points, &w, 4, 2)
        };
        let hist = run_mode(EstimatorMode::Histogram { bins: 5 }, 1);
        let mle = run_mode(EstimatorMode::BatchMle, 1);
        // The histogram estimator must flatten the bump; the plane fit is
        // structurally blind to it (a symmetric bump has no gradient).
        assert!(
            hist.count_cv < mle.count_cv * 0.75,
            "hist CV {} vs mle CV {}",
            hist.count_cv,
            mle.count_cv
        );
        assert!(hist.is_homogeneous(0.001), "hist chi p={}", hist.chi_square.p_value);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_mode_rejects_zero_bins() {
        let cfg = FlattenConfig { mode: EstimatorMode::Histogram { bins: 0 }, ..config(0.5) };
        let _ = FlattenOp::new(cfg);
    }

    #[test]
    fn batch_window_alignment() {
        let (op, _) = FlattenOp::new(config(1.0));
        let batch = tuples_from_points(&[
            SpaceTimePoint::new(23.0, 1.0, 1.0),
            SpaceTimePoint::new(27.5, 2.0, 2.0),
        ]);
        let w = op.batch_window(&batch);
        assert_eq!(w.t0, 20.0);
        assert_eq!(w.t1, 30.0);
    }

    #[test]
    fn spilled_batch_window_widens() {
        let (op, _) = FlattenOp::new(config(1.0));
        let batch = tuples_from_points(&[
            SpaceTimePoint::new(21.0, 1.0, 1.0),
            SpaceTimePoint::new(34.0, 2.0, 2.0),
        ]);
        let w = op.batch_window(&batch);
        assert_eq!(w.t0, 20.0);
        assert!(w.t1 > 34.0);
    }
}
