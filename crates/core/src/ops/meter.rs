//! The rate-meter operator — observability for fabricated streams.

use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_geom::Rect;

/// An identity operator that measures the empirical spatio-temporal rate of
/// the stream flowing through it (tuples / km² / min over the observed time
/// span). CrAQR's contract is probabilistic — "ensures (at least in a
/// probabilistic sense) that these queries are answered satisfactorily" —
/// and the meter is how that contract is audited, both in tests and in the
/// experiment harness.
pub struct RateMeterOp {
    name: String,
    region: Rect,
    count: u64,
    first_t: Option<f64>,
    last_t: Option<f64>,
}

impl RateMeterOp {
    /// Creates a meter for a stream living on `region`.
    pub fn new(name: impl Into<String>, region: Rect) -> Self {
        Self { name: name.into(), region, count: 0, first_t: None, last_t: None }
    }

    /// Tuples observed.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Observed time span `(first, last)`, `None` before any tuple.
    pub fn time_span(&self) -> Option<(f64, f64)> {
        Some((self.first_t?, self.last_t?))
    }

    /// Empirical rate over the observed span; `None` until the span is
    /// non-degenerate.
    pub fn observed_rate(&self) -> Option<f64> {
        let (a, b) = self.time_span()?;
        let dt = b - a;
        if dt <= 0.0 {
            return None;
        }
        Some(self.count as f64 / (self.region.area() * dt))
    }

    /// Empirical rate against an externally known observation duration
    /// (e.g. "the stream ran for 120 minutes"), which is unbiased even for
    /// sparse streams.
    pub fn rate_over(&self, duration: f64) -> f64 {
        assert!(duration > 0.0, "duration must be > 0");
        self.count as f64 / (self.region.area() * duration)
    }
}

impl Operator<CrowdTuple> for RateMeterOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, _port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        for t in batch {
            self.count += 1;
            let time = t.point.t;
            if self.first_t.is_none_or(|f| time < f) {
                self.first_t = Some(time);
            }
            if self.last_t.is_none_or(|l| time > l) {
                self.last_t = Some(time);
            }
        }
        out.emit_batch(OutputPort(0), batch.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};

    fn tuple(t: f64) -> CrowdTuple {
        CrowdTuple {
            id: 0,
            attr: AttributeId(0),
            point: SpaceTimePoint::new(t, 0.5, 0.5),
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        }
    }

    #[test]
    fn meters_rate_and_forwards() {
        let mut op = RateMeterOp::new("meter", Rect::with_size(2.0, 5.0));
        let batch: Vec<CrowdTuple> = (0..100).map(|i| tuple(i as f64 * 0.1)).collect();
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &batch, &mut em);
        assert_eq!(em.into_buffers()[0].len(), 100);
        assert_eq!(op.count(), 100);
        let (a, b) = op.time_span().unwrap();
        assert_eq!(a, 0.0);
        assert!((b - 9.9).abs() < 1e-12);
        // 100 tuples over 10 km² and 9.9 minutes.
        let rate = op.observed_rate().unwrap();
        assert!((rate - 100.0 / (10.0 * 9.9)).abs() < 1e-9);
        // Against a known duration of 10 minutes:
        assert!((op.rate_over(10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_meter_has_no_rate() {
        let op = RateMeterOp::new("meter", Rect::with_size(1.0, 1.0));
        assert!(op.observed_rate().is_none());
        assert!(op.time_span().is_none());
        assert_eq!(op.rate_over(5.0), 0.0);
    }

    #[test]
    fn single_tuple_has_degenerate_span() {
        let mut op = RateMeterOp::new("meter", Rect::with_size(1.0, 1.0));
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &[tuple(3.0)], &mut em);
        assert!(op.observed_rate().is_none(), "zero-length span has no rate");
        assert_eq!(op.time_span(), Some((3.0, 3.0)));
    }
}
