//! The `U` (union) operator — Section IV-B.1.

use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_geom::{Rect, Region};

/// The union operator `U`: merges `P⟨j⟩(λ, R*₁)` and `P⟨j⟩(λ, R*₂)` into
/// `P⟨j⟩(λ, R*₃)` with `R*₃ = R*₁ ∪ R*₂`.
///
/// The paper requires the binary operands to be "adjacent and with a common
/// side of equal length" so that the output region is again a rectangle;
/// [`UnionOp::binary`] enforces exactly that. The paper also notes the
/// operator "can be easily extended to union multiple MDPPs at once":
/// [`UnionOp::nary`] accepts any set of pairwise-disjoint rectangles (the
/// per-cell pieces of a query footprint, which may form an L-shape) and
/// exposes whether the strict rectangular precondition happened to hold.
///
/// Execution is trivial — tuples from every input port are forwarded to the
/// single output port; because the inputs live on disjoint regions, the
/// merged stream has the same rate λ on the union region (superposition of
/// independent Poisson processes).
pub struct UnionOp {
    name: String,
    inputs: Vec<Rect>,
    output: Region,
}

impl UnionOp {
    /// The paper's binary form.
    ///
    /// # Panics
    /// Panics unless the two rectangles share a full common side.
    #[track_caller]
    pub fn binary(r1: Rect, r2: Rect) -> Self {
        let merged = r1.union_adjacent(&r2).unwrap_or_else(|| {
            panic!("U requires adjacent rectangles with a common side: {r1} and {r2}")
        });
        Self { name: "U".to_string(), inputs: vec![r1, r2], output: Region::from_rect(merged) }
    }

    /// The k-ary extension over pairwise-disjoint rectangles.
    ///
    /// # Panics
    /// Panics when `inputs` is empty or the rectangles overlap.
    #[track_caller]
    pub fn nary(inputs: Vec<Rect>) -> Self {
        assert!(!inputs.is_empty(), "union needs at least one input");
        let output = Region::from_disjoint(inputs.clone());
        Self { name: format!("U(x{})", inputs.len()), inputs, output }
    }

    /// The input regions, in input-port order.
    #[inline]
    pub fn inputs(&self) -> &[Rect] {
        &self.inputs
    }

    /// The merged output region.
    #[inline]
    pub fn output_region(&self) -> &Region {
        &self.output
    }

    /// `true` when the merged region is a single rectangle — the paper's
    /// strict precondition held across all inputs.
    pub fn is_rectangular(&self) -> bool {
        self.output.part_count() == 1
    }

    /// Number of input ports.
    pub fn input_ports(&self) -> usize {
        self.inputs.len()
    }
}

impl Operator<CrowdTuple> for UnionOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        debug_assert!(
            (port.0 as usize) < self.inputs.len(),
            "tuple arrived on undeclared port {port:?}"
        );
        // In debug builds, verify the routing contract: tuples on port i
        // belong to input region i.
        #[cfg(debug_assertions)]
        if let Some(region) = self.inputs.get(port.0 as usize) {
            for t in batch {
                debug_assert!(
                    region.contains(t.point.x, t.point.y),
                    "tuple at ({}, {}) outside port-{} region {region}",
                    t.point.x,
                    t.point.y,
                    port.0
                );
            }
        }
        out.emit_batch(OutputPort(0), batch.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};

    fn tuple_at(x: f64, y: f64) -> CrowdTuple {
        CrowdTuple {
            id: 0,
            attr: AttributeId(0),
            point: SpaceTimePoint::new(0.0, x, y),
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        }
    }

    #[test]
    fn binary_union_merges_adjacent_rects() {
        let op = UnionOp::binary(Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0));
        assert!(op.is_rectangular());
        assert!(op.output_region().parts()[0].approx_eq(&Rect::new(0.0, 0.0, 2.0, 1.0)));
        assert_eq!(op.input_ports(), 2);
    }

    #[test]
    #[should_panic(expected = "adjacent rectangles")]
    fn binary_union_rejects_non_adjacent() {
        let _ = UnionOp::binary(Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(5.0, 0.0, 6.0, 1.0));
    }

    #[test]
    fn nary_union_accepts_l_shape() {
        let op = UnionOp::nary(vec![Rect::new(0.0, 0.0, 2.0, 1.0), Rect::new(0.0, 1.0, 1.0, 2.0)]);
        assert!(!op.is_rectangular());
        assert!((op.output_region().area() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn forwards_tuples_from_all_ports() {
        let mut op = UnionOp::binary(Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0));
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &[tuple_at(0.5, 0.5)], &mut em);
        op.process(InputPort(1), &[tuple_at(1.5, 0.5), tuple_at(1.9, 0.9)], &mut em);
        assert_eq!(em.into_buffers()[0].len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside port")]
    #[cfg(debug_assertions)]
    fn misrouted_tuple_caught_in_debug() {
        let mut op = UnionOp::binary(Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0));
        let mut em = Emitter::new(op.output_ports());
        // Tuple from region 1 arriving on port 0.
        op.process(InputPort(0), &[tuple_at(1.5, 0.5)], &mut em);
    }
}
