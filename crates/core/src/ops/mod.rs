//! The PMAT (point-process transformation) operators — Section IV-B.
//!
//! "PMAT are algebraic operators that are used for manipulating point
//! processes … All PMAT operators are probabilistic and approximate with
//! provable expected behaviour; thus dramatically simplifying their
//! implementation."
//!
//! Each operator here implements [`craqr_engine::Operator`] over
//! [`crate::CrowdTuple`] and carries its own provable-expectation contract,
//! verified by unit tests (exact counting identities) and statistical tests
//! (seeded, generous significance levels):
//!
//! | Op | Published? | Contract |
//! |----|-----------|----------|
//! | [`FlattenOp`] (`F`)   | yes | inhomogeneous `P̃(λ̃, R*)` → approximately homogeneous `P(λ̄, R*)`; reports percent rate violation `N_v` |
//! | [`ThinOp`] (`T`)      | yes | `P(λ1, R*)` → `P(λ2, R*)`, `λ2 ≤ λ1`, by Bernoulli(λ2/λ1) |
//! | [`PartitionOp`] (`P`) | yes | routes `P(λ, R*)` into `P(λ, R*ₖ)` on disjoint sub-regions |
//! | [`UnionOp`] (`U`)     | yes | merges `P(λ, R*₁), P(λ, R*₂)` into `P(λ, R*₁ ∪ R*₂)`; binary form requires a full common side |
//! | [`SuperposeOp`] (`S`) | "many more operators" | merges processes on the *same* region; rates add |
//! | [`RateMeterOp`]       | "many more operators" | identity that measures the stream's empirical rate |

mod flatten;
mod meter;
mod partition;
mod report;
mod superpose;
mod thin;
mod union;

pub use flatten::{EstimatorMode, FlattenConfig, FlattenOp};
pub use meter::RateMeterOp;
pub use partition::PartitionOp;
pub use report::FlattenReport;
pub use superpose::SuperposeOp;
pub use thin::ThinOp;
pub use union::UnionOp;
