//! The `S` (superpose) operator — one of the paper's unpublished extras.

use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_geom::Rect;

/// The superposition operator `S`: merges `k` independent MDPPs defined on
/// the *same* region into one process whose rate is the sum of the input
/// rates (`P(λ₁, R*) ⊕ P(λ₂, R*) = P(λ₁+λ₂, R*)` — the superposition
/// theorem for Poisson processes).
///
/// This is the dual of [`crate::ops::ThinOp`] (which lowers rates) and the
/// same-region counterpart of [`crate::ops::UnionOp`] (which merges across
/// disjoint regions). The paper mentions having "researched many more
/// operators than presented"; superposition is the natural member of that
/// family and is exercised by the tree-topology experiments where multiple
/// attribute sub-streams re-join.
pub struct SuperposeOp {
    name: String,
    region: Rect,
    input_ports: usize,
    input_rates: Vec<f64>,
}

impl SuperposeOp {
    /// Creates a superposition of `input_rates.len()` streams on `region`.
    ///
    /// # Panics
    /// Panics when no input rate is given or any rate is negative.
    #[track_caller]
    pub fn new(region: Rect, input_rates: Vec<f64>) -> Self {
        assert!(!input_rates.is_empty(), "superpose needs at least one input");
        assert!(input_rates.iter().all(|r| *r >= 0.0), "rates must be >= 0");
        Self {
            name: format!("S(x{})", input_rates.len()),
            region,
            input_ports: input_rates.len(),
            input_rates,
        }
    }

    /// The output rate `Σ λᵢ`.
    pub fn output_rate(&self) -> f64 {
        self.input_rates.iter().sum()
    }

    /// The shared region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Number of input ports.
    #[inline]
    pub fn input_ports(&self) -> usize {
        self.input_ports
    }
}

impl Operator<CrowdTuple> for SuperposeOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn process(&mut self, port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        debug_assert!((port.0 as usize) < self.input_ports, "undeclared port {port:?}");
        out.emit_batch(OutputPort(0), batch.iter().copied());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};

    fn tuple(id: u64) -> CrowdTuple {
        CrowdTuple {
            id,
            attr: AttributeId(0),
            point: SpaceTimePoint::new(0.0, 0.5, 0.5),
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        }
    }

    #[test]
    fn output_rate_is_sum_of_inputs() {
        let op = SuperposeOp::new(Rect::with_size(1.0, 1.0), vec![1.0, 2.5, 0.5]);
        assert!((op.output_rate() - 4.0).abs() < 1e-12);
        assert_eq!(op.input_ports(), 3);
    }

    #[test]
    fn merges_streams_from_all_ports() {
        let mut op = SuperposeOp::new(Rect::with_size(1.0, 1.0), vec![1.0, 1.0]);
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), &[tuple(1), tuple(2)], &mut em);
        op.process(InputPort(1), &[tuple(3)], &mut em);
        let out = em.into_buffers().remove(0);
        assert_eq!(out.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_superpose_rejected() {
        let _ = SuperposeOp::new(Rect::with_size(1.0, 1.0), vec![]);
    }
}
