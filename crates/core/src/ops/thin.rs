//! The `T` (thin) operator — Section IV-B.1.

use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_stats::sub_rng;
use rand::rngs::StdRng;
use rand::Rng;

/// The thinning operator `T`: converts `P⟨j⟩(λ1, R*)` into `P⟨j⟩(λ2, R*)`
/// with `λ2 ≤ λ1` by an independent Bernoulli(`λ2/λ1`) coin per tuple.
///
/// Thinning a Poisson process by iid coins yields a Poisson process of the
/// scaled rate (the paper's "it can be shown" step is the classic thinning
/// theorem, Daley & Vere-Jones \[11\]); the operator therefore needs *no*
/// estimation at all — just the two rates.
///
/// The paper's insertion rules re-rate thinning operators when the chain is
/// spliced (a `T` inserted upstream changes this operator's input rate), so
/// both rates are mutable through [`ThinOp::set_input_rate`] /
/// [`ThinOp::set_output_rate`].
pub struct ThinOp {
    name: String,
    input_rate: f64,
    output_rate: f64,
    rng: StdRng,
    seen: u64,
    kept: u64,
}

impl ThinOp {
    /// Creates a thinning operator `λ1 → λ2`.
    ///
    /// # Panics
    /// Panics unless `0 < λ2 ≤ λ1`. (The paper states `λ2 < λ1` strictly;
    /// equality is permitted so the planner can keep a uniform chain shape
    /// while a query rides at exactly the flatten rate — the coin is then
    /// always heads and the operator is a free pass-through.)
    #[track_caller]
    pub fn new(input_rate: f64, output_rate: f64, seed: u64) -> Self {
        assert!(output_rate > 0.0, "output rate must be > 0");
        assert!(
            output_rate <= input_rate,
            "thinning cannot raise the rate: λ2={output_rate} > λ1={input_rate}"
        );
        Self {
            name: format!("T({input_rate:.3}→{output_rate:.3})"),
            input_rate,
            output_rate,
            rng: sub_rng(seed, 0x7417),
            seen: 0,
            kept: 0,
        }
    }

    /// The retention probability `p = λ2/λ1`.
    #[inline]
    pub fn probability(&self) -> f64 {
        self.output_rate / self.input_rate
    }

    /// Input rate λ1.
    #[inline]
    pub fn input_rate(&self) -> f64 {
        self.input_rate
    }

    /// Output rate λ2.
    #[inline]
    pub fn output_rate(&self) -> f64 {
        self.output_rate
    }

    /// Re-rates the input side (chain splice upstream).
    ///
    /// # Panics
    /// Panics when the new input rate drops below the output rate.
    #[track_caller]
    pub fn set_input_rate(&mut self, rate: f64) {
        assert!(rate >= self.output_rate, "input rate {rate} below output {}", self.output_rate);
        self.input_rate = rate;
        self.name = format!("T({:.3}→{:.3})", self.input_rate, self.output_rate);
    }

    /// Re-rates the output side.
    ///
    /// # Panics
    /// Panics unless `0 < rate ≤ input_rate`.
    #[track_caller]
    pub fn set_output_rate(&mut self, rate: f64) {
        assert!(rate > 0.0 && rate <= self.input_rate, "bad output rate {rate}");
        self.output_rate = rate;
        self.name = format!("T({:.3}→{:.3})", self.input_rate, self.output_rate);
    }

    /// `(tuples seen, tuples kept)` since creation.
    pub fn totals(&self) -> (u64, u64) {
        (self.seen, self.kept)
    }
}

impl Operator<CrowdTuple> for ThinOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, _port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        let p = self.probability();
        self.seen += batch.len() as u64;
        if p >= 1.0 {
            self.kept += batch.len() as u64;
            out.emit_batch(OutputPort(0), batch.iter().copied());
            return;
        }
        for tuple in batch {
            if self.rng.gen::<f64>() < p {
                self.kept += 1;
                out.emit(OutputPort(0), *tuple);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::{Rect, SpaceTimePoint, SpaceTimeWindow};
    use craqr_mdpp::diagnostics::homogeneity_report;
    use craqr_mdpp::process::HomogeneousMdpp;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};
    use craqr_stats::seeded_rng;

    fn tuples(n: usize) -> Vec<CrowdTuple> {
        (0..n)
            .map(|i| CrowdTuple {
                id: i as u64,
                attr: AttributeId(0),
                point: SpaceTimePoint::new(i as f64, 0.5, 0.5),
                value: AttrValue::Bool(true),
                sensor: SensorId(0),
            })
            .collect()
    }

    fn run(op: &mut ThinOp, batch: &[CrowdTuple]) -> Vec<CrowdTuple> {
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), batch, &mut em);
        em.into_buffers().remove(0)
    }

    #[test]
    fn keeps_expected_fraction() {
        let mut op = ThinOp::new(4.0, 1.0, 7);
        assert!((op.probability() - 0.25).abs() < 1e-12);
        let out = run(&mut op, &tuples(40_000));
        let frac = out.len() as f64 / 40_000.0;
        assert!((frac - 0.25).abs() < 0.01, "kept fraction {frac}");
        let (seen, kept) = op.totals();
        assert_eq!(seen, 40_000);
        assert_eq!(kept as usize, out.len());
    }

    #[test]
    fn equal_rates_pass_everything() {
        let mut op = ThinOp::new(2.0, 2.0, 7);
        let input = tuples(1_000);
        let out = run(&mut op, &input);
        assert_eq!(out.len(), 1_000);
    }

    #[test]
    #[should_panic(expected = "cannot raise the rate")]
    fn rate_increase_rejected() {
        let _ = ThinOp::new(1.0, 2.0, 7);
    }

    #[test]
    fn rerating_updates_probability_and_name() {
        let mut op = ThinOp::new(4.0, 1.0, 7);
        op.set_input_rate(2.0);
        assert!((op.probability() - 0.5).abs() < 1e-12);
        assert!(op.name().contains("2.000"), "{}", op.name());
        op.set_output_rate(2.0);
        assert!((op.probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "below output")]
    fn input_rate_below_output_rejected() {
        let mut op = ThinOp::new(4.0, 1.0, 7);
        op.set_input_rate(0.5);
    }

    #[test]
    fn thinned_poisson_stays_poisson() {
        // Sample a homogeneous process at rate 4, thin to 1, and verify the
        // output still passes the homogeneity report at rate ≈ 1.
        let region = Rect::with_size(10.0, 10.0);
        let w = SpaceTimeWindow::new(region, 0.0, 30.0);
        let pts = HomogeneousMdpp::new(4.0, region).sample(&w, &mut seeded_rng(9));
        let batch: Vec<CrowdTuple> = pts
            .iter()
            .enumerate()
            .map(|(i, p)| CrowdTuple {
                id: i as u64,
                attr: AttributeId(0),
                point: *p,
                value: AttrValue::Bool(true),
                sensor: SensorId(0),
            })
            .collect();
        let mut op = ThinOp::new(4.0, 1.0, 11);
        let out = run(&mut op, &batch);
        let out_points: Vec<_> = out.iter().map(|t| t.point).collect();
        let rep = homogeneity_report(&out_points, &w, 4, 3);
        assert!(rep.is_homogeneous(0.001), "chi p={}", rep.chi_square.p_value);
        assert!((rep.empirical_rate - 1.0).abs() < 0.1, "rate {}", rep.empirical_rate);
        let ks = rep.temporal_ks.unwrap();
        assert!(ks.accepts(0.001), "KS p={}", ks.p_value);
    }

    #[test]
    fn deterministic_under_seed() {
        let out1 = run(&mut ThinOp::new(2.0, 1.0, 42), &tuples(100));
        let out2 = run(&mut ThinOp::new(2.0, 1.0, 42), &tuples(100));
        assert_eq!(out1.len(), out2.len());
        assert!(out1.iter().zip(&out2).all(|(a, b)| a.id == b.id));
    }
}
