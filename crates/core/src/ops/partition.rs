//! The `P` (partition) operator — Section IV-B.1.

use crate::tuple::CrowdTuple;
use craqr_engine::{Emitter, InputPort, Operator, OutputPort};
use craqr_geom::Rect;

/// The partition operator `P`: splits `P⟨j⟩(λ, R*)` into processes of the
/// *same* rate on disjoint sub-regions `R*₁, …, R*ₖ` by routing each tuple
/// to the output port of the region containing it.
///
/// The paper defines the binary form and notes it "can be easily extended
/// to partition processes into multiple regions"; this is the k-ary
/// extension (port `i` carries region `i`). Tuples falling in none of the
/// sub-regions are dropped and counted — the planner uses a single-region
/// partition to carve a query's partial overlap out of a grid cell (the
/// `Q⟨2⟩₃` case of Fig. 2), where dropping the remainder is the intent.
pub struct PartitionOp {
    name: String,
    regions: Vec<Rect>,
    dropped: u64,
}

impl PartitionOp {
    /// Creates a partition over pairwise-disjoint sub-regions.
    ///
    /// # Panics
    /// Panics when `regions` is empty or any two regions overlap
    /// (`R*₁ ∩ R*₂ = ∅` is the paper's stated precondition).
    #[track_caller]
    pub fn new(regions: Vec<Rect>) -> Self {
        assert!(!regions.is_empty(), "partition needs at least one region");
        for (i, a) in regions.iter().enumerate() {
            for b in &regions[i + 1..] {
                assert!(!a.intersects(b), "partition regions overlap: {a} and {b}");
            }
        }
        Self { name: format!("P(x{})", regions.len()), regions, dropped: 0 }
    }

    /// The paper's binary form.
    #[track_caller]
    pub fn binary(r1: Rect, r2: Rect) -> Self {
        Self::new(vec![r1, r2])
    }

    /// The sub-regions, in output-port order.
    #[inline]
    pub fn regions(&self) -> &[Rect] {
        &self.regions
    }

    /// Tuples dropped because they matched no sub-region.
    #[inline]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Operator<CrowdTuple> for PartitionOp {
    fn name(&self) -> &str {
        &self.name
    }

    fn output_ports(&self) -> usize {
        self.regions.len()
    }

    fn process(&mut self, _port: InputPort, batch: &[CrowdTuple], out: &mut Emitter<CrowdTuple>) {
        'tuples: for tuple in batch {
            for (i, region) in self.regions.iter().enumerate() {
                if region.contains(tuple.point.x, tuple.point.y) {
                    out.emit(OutputPort(i as u16), *tuple);
                    continue 'tuples;
                }
            }
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};

    fn tuple_at(x: f64, y: f64) -> CrowdTuple {
        CrowdTuple {
            id: 0,
            attr: AttributeId(0),
            point: SpaceTimePoint::new(0.0, x, y),
            value: AttrValue::Bool(true),
            sensor: SensorId(0),
        }
    }

    fn run(op: &mut PartitionOp, batch: &[CrowdTuple]) -> Vec<Vec<CrowdTuple>> {
        let mut em = Emitter::new(op.output_ports());
        op.process(InputPort(0), batch, &mut em);
        em.into_buffers()
    }

    #[test]
    fn routes_tuples_to_owning_region() {
        let mut op =
            PartitionOp::binary(Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(1.0, 0.0, 2.0, 1.0));
        let batch = vec![tuple_at(0.5, 0.5), tuple_at(1.5, 0.5), tuple_at(0.2, 0.9)];
        let out = run(&mut op, &batch);
        assert_eq!(out[0].len(), 2);
        assert_eq!(out[1].len(), 1);
        assert_eq!(op.dropped(), 0);
    }

    #[test]
    fn drops_tuples_outside_all_regions() {
        let mut op = PartitionOp::new(vec![Rect::new(0.0, 0.0, 1.0, 1.0)]);
        let out = run(&mut op, &[tuple_at(0.5, 0.5), tuple_at(5.0, 5.0)]);
        assert_eq!(out[0].len(), 1);
        assert_eq!(op.dropped(), 1);
    }

    #[test]
    fn kary_partition_covers_all_ports() {
        let regions: Vec<Rect> =
            (0..4).map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0)).collect();
        let mut op = PartitionOp::new(regions);
        assert_eq!(op.output_ports(), 4);
        let batch: Vec<CrowdTuple> = (0..4).map(|i| tuple_at(i as f64 + 0.5, 0.5)).collect();
        let out = run(&mut op, &batch);
        for (i, port) in out.iter().enumerate() {
            assert_eq!(port.len(), 1, "port {i}");
        }
    }

    #[test]
    fn rate_preservation_within_region() {
        // Partitioning must not drop or duplicate tuples inside the regions.
        let mut op =
            PartitionOp::binary(Rect::new(0.0, 0.0, 1.0, 2.0), Rect::new(1.0, 0.0, 2.0, 2.0));
        let batch: Vec<CrowdTuple> =
            (0..1000).map(|i| tuple_at((i % 20) as f64 * 0.1, (i % 7) as f64 * 0.25)).collect();
        let out = run(&mut op, &batch);
        assert_eq!(out[0].len() + out[1].len() + op.dropped() as usize, 1000);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_regions_rejected() {
        let _ = PartitionOp::binary(Rect::new(0.0, 0.0, 2.0, 2.0), Rect::new(1.0, 1.0, 3.0, 3.0));
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_partition_rejected() {
        let _ = PartitionOp::new(vec![]);
    }
}
