//! Shared flatten telemetry.

use craqr_stats::Ewma;
use parking_lot::Mutex;
use std::sync::Arc;

/// Telemetry a [`super::FlattenOp`] publishes after every batch; the budget
/// tuner (Section V "Budget Tuning") subscribes to it.
///
/// `N_v` is the paper's *percent rate violation*: the percentage of tuples
/// in a batch whose retaining probability exceeded 1 — evidence the batch
/// did not contain enough raw tuples to fabricate the requested rate.
#[derive(Debug)]
pub struct FlattenReport {
    inner: Mutex<ReportInner>,
}

#[derive(Debug)]
struct ReportInner {
    last_nv: f64,
    smoothed_nv: Ewma,
    batches: u64,
    tuples_seen: u64,
    tuples_kept: u64,
}

impl FlattenReport {
    /// A fresh report handle with EWMA smoothing factor `alpha`.
    pub fn new(alpha: f64) -> Arc<Self> {
        Arc::new(Self {
            inner: Mutex::new(ReportInner {
                last_nv: 0.0,
                smoothed_nv: Ewma::new(alpha),
                batches: 0,
                tuples_seen: 0,
                tuples_kept: 0,
            }),
        })
    }

    /// Records an epoch with no input at all — a total (100%) violation.
    pub(crate) fn record_starved_batch(&self) {
        self.record_batch(100.0, 0, 0);
    }

    pub(crate) fn record_batch(&self, nv_percent: f64, seen: usize, kept: usize) {
        let mut inner = self.inner.lock();
        inner.last_nv = nv_percent;
        inner.smoothed_nv.push(nv_percent);
        inner.batches += 1;
        inner.tuples_seen += seen as u64;
        inner.tuples_kept += kept as u64;
    }

    /// `N_v` of the most recent batch (percent, 0–100).
    pub fn last_nv(&self) -> f64 {
        self.inner.lock().last_nv
    }

    /// EWMA-smoothed `N_v` (percent), `None` before the first batch.
    pub fn smoothed_nv(&self) -> Option<f64> {
        self.inner.lock().smoothed_nv.value()
    }

    /// Batches observed.
    pub fn batches(&self) -> u64 {
        self.inner.lock().batches
    }

    /// `(tuples seen, tuples kept)` since creation.
    pub fn totals(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.tuples_seen, inner.tuples_kept)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_tracks_batches() {
        let r = FlattenReport::new(0.5);
        assert_eq!(r.batches(), 0);
        assert_eq!(r.smoothed_nv(), None);
        r.record_batch(10.0, 100, 60);
        r.record_batch(20.0, 50, 30);
        assert_eq!(r.batches(), 2);
        assert_eq!(r.last_nv(), 20.0);
        assert_eq!(r.smoothed_nv(), Some(15.0));
        assert_eq!(r.totals(), (150, 90));
    }
}
