//! The per-(cell, attribute) operator chain — the paper's hashmap value.
//!
//! Section V's insertion rules, verbatim, and how this module realizes
//! them:
//!
//! 1. *"The first operator is always the F-operator"* — every chain owns
//!    exactly one [`FlattenOp`] at its head; it is created with the chain
//!    and dies with it.
//! 2. *"The T-operators are added such that the rates of all the existing
//!    T-operators remain sorted in a descending order and the highest rate
//!    T-operator is closest to the F-operator"* — [`AttrChain::taps`] is
//!    kept sorted descending by rate and wired `F → T → T → …`.
//! 3. *"Two T-operators cannot be consecutively placed unless there is a
//!    branching point between them, otherwise these operators can be
//!    combined to form a single T-operator"* — a tap exists only while it
//!    has consumers (every tap *is* a branching point); the moment deletion
//!    empties a tap, the tap's `T` is removed and its neighbours splice,
//!    which is exactly the merge (the spliced `T`'s retention probability
//!    becomes the product of the two it replaces).
//! 4. *"If needed, the output rate of the F-operator is changed to a value
//!    greater than the output rate of the first T-operator"* —
//!    [`AttrChain::retarget_f`] runs on every insert/delete.
//! 5. *"If required the P-operators are added after the T-operators"* — a
//!    consumer whose query only partially overlaps the cell routes through
//!    a single-region [`PartitionOp`].

use crate::ops::{EstimatorMode, FlattenConfig, FlattenOp, FlattenReport, PartitionOp, ThinOp};
use crate::query::QueryId;
use crate::tuple::CrowdTuple;
use craqr_engine::{InputPort, NodeId, OutputPort, SinkId, Target, Topology};
use craqr_geom::Rect;
use std::sync::Arc;

/// Shape of the per-cell topology — the Section VI "alternative topologies"
/// ablation knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyShape {
    /// The paper's chain: `F → T₁ → T₂ → …`, each `T` thinning the previous
    /// tap's output, so low-rate queries reuse the thinning work of
    /// high-rate ones.
    Chain,
    /// A star (depth-1 tree): every `T` thins the `F` output directly.
    /// Simpler rewiring, but every tap processes the full flattened stream.
    Star,
}

/// One rate level of the chain with its consumers.
#[derive(Debug)]
pub(crate) struct RateTap {
    /// The tap's homogeneous output rate.
    pub rate: f64,
    /// The `T` operator producing this rate.
    pub thin: NodeId,
    /// Queries consuming at this rate.
    pub consumers: Vec<QueryTap>,
}

/// One query's attachment to a tap.
#[derive(Debug)]
pub(crate) struct QueryTap {
    /// The consuming query.
    pub query: QueryId,
    /// A `P`-operator carving the partial overlap, when the query does not
    /// cover the whole cell.
    pub partition: Option<NodeId>,
    /// The per-(query, cell) output sink.
    pub sink: SinkId,
    /// The query's footprint inside this cell.
    pub overlap: Rect,
}

/// Relative tolerance for "same rate" when sharing a tap.
const RATE_EQ_TOL: f64 = 1e-9;

fn rates_equal(a: f64, b: f64) -> bool {
    (a - b).abs() <= RATE_EQ_TOL * a.abs().max(b.abs()).max(1.0)
}

/// The execution chain for one (grid cell, attribute) pair.
pub struct AttrChain {
    topo: Topology<CrowdTuple>,
    f_node: NodeId,
    f_report: Arc<FlattenReport>,
    /// Current F target rate λ̄ (= headroom × max tap rate).
    f_rate: f64,
    taps: Vec<RateTap>,
    cell_rect: Rect,
    headroom: f64,
    shape: TopologyShape,
    seed: u64,
    salt: u64,
}

impl AttrChain {
    /// Creates a chain whose `F` head flattens to `initial_rate × headroom`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cell_rect: Rect,
        batch_duration: f64,
        initial_rate: f64,
        headroom: f64,
        estimator: EstimatorMode,
        shape: TopologyShape,
        seed: u64,
    ) -> Self {
        assert!(headroom >= 1.0, "F headroom must be >= 1, got {headroom}");
        let mut topo = Topology::new();
        let f_rate = initial_rate * headroom;
        let (f_op, f_report) = FlattenOp::new(FlattenConfig {
            cell: cell_rect,
            batch_duration,
            target_rate: f_rate,
            mode: estimator,
            seed,
        });
        let f_node = topo.add_operator(Box::new(f_op));
        Self {
            topo,
            f_node,
            f_report,
            f_rate,
            taps: Vec::new(),
            cell_rect,
            headroom,
            shape,
            seed,
            salt: 0,
        }
    }

    fn next_seed(&mut self) -> u64 {
        self.salt += 1;
        self.seed.wrapping_add(self.salt.wrapping_mul(0x9E37_79B9))
    }

    /// Installs (or removes) the per-node processing-time clock on this
    /// chain's topology (see [`craqr_engine::Topology::set_clock`]). With
    /// no clock the engine performs zero clock reads.
    pub(crate) fn set_clock(&mut self, clock: Option<fn() -> u64>) {
        self.topo.set_clock(clock);
    }

    /// The chain's flatten telemetry (budget tuning reads `N_v` here).
    pub fn flatten_report(&self) -> Arc<FlattenReport> {
        Arc::clone(&self.f_report)
    }

    /// Per-node execution counters of this chain's topology — the report
    /// hook scenario/metrics consumers aggregate across chains (see
    /// [`craqr_engine::TopologyMetrics::absorb`]).
    pub fn metrics(&self) -> craqr_engine::TopologyMetrics {
        self.topo.metrics()
    }

    /// Current F target rate λ̄.
    pub fn f_rate(&self) -> f64 {
        self.f_rate
    }

    /// The tap rates, descending — for tests and explain output.
    pub fn tap_rates(&self) -> Vec<f64> {
        self.taps.iter().map(|t| t.rate).collect()
    }

    /// Number of distinct consumers across taps.
    pub fn consumer_count(&self) -> usize {
        self.taps.iter().map(|t| t.consumers.len()).sum()
    }

    /// `true` when no query consumes from this chain.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }

    /// Operator-node count (F + T's + P's), for plan-size assertions.
    pub fn node_count(&self) -> usize {
        self.topo.node_count()
    }

    /// The queries consuming from this chain.
    pub fn query_ids(&self) -> Vec<QueryId> {
        let mut ids: Vec<QueryId> =
            self.taps.iter().flat_map(|t| t.consumers.iter().map(|c| c.query)).collect();
        ids.sort();
        ids.dedup();
        ids
    }

    fn thin_mut(&mut self, node: NodeId) -> &mut ThinOp {
        self.topo
            .operator_mut(node)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<ThinOp>())
            .expect("tap node is a ThinOp")
    }

    fn flatten_mut(&mut self) -> &mut FlattenOp {
        self.topo
            .operator_mut(self.f_node)
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<FlattenOp>())
            .expect("head node is a FlattenOp")
    }

    /// The upstream node feeding tap position `pos`.
    fn upstream_node(&self, pos: usize) -> NodeId {
        match self.shape {
            TopologyShape::Star => self.f_node,
            TopologyShape::Chain => {
                if pos == 0 {
                    self.f_node
                } else {
                    self.taps[pos - 1].thin
                }
            }
        }
    }

    /// The input rate seen by tap position `pos`.
    fn upstream_rate(&self, pos: usize) -> f64 {
        match self.shape {
            TopologyShape::Star => self.f_rate,
            TopologyShape::Chain => {
                if pos == 0 {
                    self.f_rate
                } else {
                    self.taps[pos - 1].rate
                }
            }
        }
    }

    /// Rule 4: keep `λ̄ = headroom × max tap rate`, updating the first tap's
    /// input rate accordingly.
    fn retarget_f(&mut self) {
        let Some(max_rate) = self.taps.first().map(|t| t.rate) else {
            return;
        };
        let new_rate = max_rate * self.headroom;
        if rates_equal(new_rate, self.f_rate) {
            return;
        }
        // Raising: fix F first so tap inputs never exceed it. Lowering:
        // fix taps first. Simplest safe order: raise F, fix taps, lower F.
        if new_rate > self.f_rate {
            self.f_rate = new_rate;
            self.flatten_mut().set_target_rate(new_rate);
            self.refresh_tap_inputs();
        } else {
            self.f_rate = new_rate;
            self.refresh_tap_inputs();
            self.flatten_mut().set_target_rate(new_rate);
        }
    }

    /// Re-derives every tap's input rate from its upstream (idempotent).
    fn refresh_tap_inputs(&mut self) {
        for pos in 0..self.taps.len() {
            let rate = self.upstream_rate(pos);
            let node = self.taps[pos].thin;
            self.thin_mut(node).set_input_rate(rate);
        }
    }

    /// Inserts a consumer for `query` at `rate` over `overlap` (`full` when
    /// the query covers the entire cell). Returns the consumer's sink.
    pub(crate) fn insert_consumer(
        &mut self,
        query: QueryId,
        rate: f64,
        overlap: Rect,
        full: bool,
    ) -> SinkId {
        assert!(rate > 0.0, "consumer rate must be > 0");
        // Locate or create the tap.
        let pos = match self.taps.iter().position(|t| rates_equal(t.rate, rate)) {
            Some(pos) => pos,
            None => {
                let pos = self.taps.iter().position(|t| t.rate < rate).unwrap_or(self.taps.len());
                self.splice_tap(pos, rate);
                pos
            }
        };

        // Build the consumer: optional P-operator, then a sink.
        let sink = self.topo.add_sink();
        let partition = if full {
            self.topo.connect(self.taps[pos].thin, OutputPort(0), Target::Sink(sink));
            None
        } else {
            assert!(
                self.cell_rect.contains_rect(&overlap),
                "overlap {overlap} escapes cell {}",
                self.cell_rect
            );
            let p = self.topo.add_operator(Box::new(PartitionOp::new(vec![overlap])));
            self.topo.connect(self.taps[pos].thin, OutputPort(0), Target::Node(p, InputPort(0)));
            self.topo.connect(p, OutputPort(0), Target::Sink(sink));
            Some(p)
        };
        self.taps[pos].consumers.push(QueryTap { query, partition, sink, overlap });

        // Rule 4 after the dust settles.
        self.retarget_f();
        self.assert_invariants();
        sink
    }

    /// Creates a `T` at tap position `pos` with output `rate` and splices it
    /// into the chain (rules 2 and 3).
    fn splice_tap(&mut self, pos: usize, rate: f64) {
        // Provisional F raise so a new top tap can legally splice in.
        let raised = rate * self.headroom;
        if raised > self.f_rate {
            self.f_rate = raised;
            self.flatten_mut().set_target_rate(raised);
        }
        let upstream_rate = self.upstream_rate(pos).max(rate);
        let seed = self.next_seed();
        let thin = self.topo.add_operator(Box::new(ThinOp::new(upstream_rate, rate, seed)));

        match self.shape {
            TopologyShape::Star => {
                self.topo.connect(self.f_node, OutputPort(0), Target::Node(thin, InputPort(0)));
                self.taps.insert(pos, RateTap { rate, thin, consumers: Vec::new() });
            }
            TopologyShape::Chain => {
                let upstream = self.upstream_node(pos);
                // Detach upstream from the tap that used to follow it.
                if let Some(next) = self.taps.get(pos) {
                    let next_thin = next.thin;
                    self.topo.disconnect(
                        upstream,
                        OutputPort(0),
                        Target::Node(next_thin, InputPort(0)),
                    );
                    self.topo.connect(thin, OutputPort(0), Target::Node(next_thin, InputPort(0)));
                }
                self.topo.connect(upstream, OutputPort(0), Target::Node(thin, InputPort(0)));
                self.taps.insert(pos, RateTap { rate, thin, consumers: Vec::new() });
                self.refresh_tap_inputs();
            }
        }
    }

    /// Deletes `query`'s consumer; returns its drained sink contents.
    /// Implements the right-to-left deletion of Section V: stream, then
    /// `P`, then — when the tap's branching point disappears — the `T`
    /// itself, merging its neighbours.
    pub(crate) fn delete_consumer(&mut self, query: QueryId) -> Option<Vec<CrowdTuple>> {
        let (pos, cidx) = self.taps.iter().enumerate().find_map(|(pos, tap)| {
            tap.consumers.iter().position(|c| c.query == query).map(|cidx| (pos, cidx))
        })?;
        let consumer = self.taps[pos].consumers.swap_remove(cidx);
        let leftovers = self.topo.remove_sink(consumer.sink);
        if let Some(p) = consumer.partition {
            self.topo.remove_node(p);
        } else {
            // Direct thin→sink edge died with the sink removal.
        }

        // Rule 3: a tap without consumers is no longer a branching point —
        // remove its T and merge the neighbours.
        if self.taps[pos].consumers.is_empty() {
            let tap = self.taps.remove(pos);
            match self.shape {
                TopologyShape::Star => {
                    self.topo.remove_node(tap.thin);
                }
                TopologyShape::Chain => {
                    // After removal, position `pos` holds the tap that used
                    // to follow the removed one (if any).
                    let downstream: Option<NodeId> = self.taps.get(pos).map(|t| t.thin);
                    self.topo.remove_node(tap.thin);
                    if let Some(down) = downstream {
                        let upstream = if pos == 0 { self.f_node } else { self.taps[pos - 1].thin };
                        self.topo.connect(
                            upstream,
                            OutputPort(0),
                            Target::Node(down, InputPort(0)),
                        );
                    }
                    self.refresh_tap_inputs();
                }
            }
        }
        self.retarget_f();
        self.assert_invariants();
        Some(leftovers)
    }

    /// Pushes one ingestion batch through the chain.
    pub(crate) fn process_batch(&mut self, batch: Vec<CrowdTuple>) {
        self.topo.push(self.f_node, batch);
    }

    /// Records an epoch in which this chain received *no* tuples at all.
    ///
    /// The engine never invokes operators on empty batches, so without this
    /// a totally starved cell would leave its last `N_v` frozen and the
    /// budget tuner would act on stale telemetry. Total starvation is the
    /// strongest possible violation: 100%.
    pub(crate) fn record_starved_epoch(&mut self) {
        self.flatten_report().record_starved_batch();
    }

    /// Drains the per-cell output of `query`.
    pub(crate) fn drain_query(&mut self, query: QueryId) -> Vec<CrowdTuple> {
        let mut out = Vec::new();
        let sinks: Vec<SinkId> = self
            .taps
            .iter()
            .flat_map(|t| t.consumers.iter().filter(|c| c.query == query).map(|c| c.sink))
            .collect();
        for sink in sinks {
            out.extend(self.topo.drain_sink(sink));
        }
        out
    }

    /// Total tuples processed by every operator in this chain (the work
    /// measure of the sharing experiments).
    pub fn tuples_processed(&self) -> u64 {
        self.topo.metrics().total_tuples_processed()
    }

    /// A one-line diagram: `F(λ̄=…) → T(a→b)[consumers…] → …`.
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "F(λ̄={:.3})", self.f_rate);
        for tap in &self.taps {
            let _ = write!(s, " → T(→{:.3})", tap.rate);
            let mut marks: Vec<String> = tap
                .consumers
                .iter()
                .map(|c| {
                    if c.partition.is_some() {
                        format!("{}⋉P", c.query)
                    } else {
                        format!("{}", c.query)
                    }
                })
                .collect();
            marks.sort();
            let _ = write!(s, "[{}]", marks.join(","));
        }
        if let TopologyShape::Star = self.shape {
            s.push_str(" (star)");
        }
        s
    }

    /// Graphviz rendering of the chain's dataflow graph.
    pub fn to_dot(&self, name: &str) -> String {
        self.topo.to_dot(name)
    }

    /// Structural invariants (rules 1–4), checked after every mutation in
    /// debug and test builds.
    pub fn assert_invariants(&self) {
        // Rule 2: strictly descending tap rates.
        for pair in self.taps.windows(2) {
            assert!(
                pair[0].rate > pair[1].rate && !rates_equal(pair[0].rate, pair[1].rate),
                "tap rates not strictly descending: {:?}",
                self.tap_rates()
            );
        }
        // Rule 3: every tap is a branching point (has consumers), and every
        // consumer's footprint stays inside the cell.
        for tap in &self.taps {
            assert!(!tap.consumers.is_empty(), "tap without consumers at rate {}", tap.rate);
            for c in &tap.consumers {
                assert!(
                    self.cell_rect.contains_rect(&c.overlap),
                    "consumer {} overlap {} escapes cell {}",
                    c.query,
                    c.overlap,
                    self.cell_rect
                );
            }
        }
        // Rule 4: F rate covers the first tap.
        if let Some(first) = self.taps.first() {
            assert!(
                self.f_rate >= first.rate * (1.0 - RATE_EQ_TOL),
                "F rate {} below first tap {}",
                self.f_rate,
                first.rate
            );
        }
        // Wiring: chain taps form a path; star taps hang off F.
        for (pos, tap) in self.taps.iter().enumerate() {
            let upstream = self.upstream_node(pos);
            assert!(
                self.topo
                    .targets(upstream, OutputPort(0))
                    .contains(&Target::Node(tap.thin, InputPort(0))),
                "tap {pos} not wired to its upstream"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, AttributeId, SensorId};

    fn cell() -> Rect {
        Rect::with_size(1.0, 1.0)
    }

    fn chain(initial_rate: f64) -> AttrChain {
        AttrChain::new(
            cell(),
            10.0,
            initial_rate,
            1.0,
            EstimatorMode::BatchMle,
            TopologyShape::Chain,
            7,
        )
    }

    fn batch(n: usize, t0: f64) -> Vec<CrowdTuple> {
        (0..n)
            .map(|i| CrowdTuple {
                id: i as u64,
                attr: AttributeId(0),
                point: SpaceTimePoint::new(
                    t0 + (i as f64 / n as f64) * 10.0,
                    (i as f64 * 0.618) % 1.0,
                    (i as f64 * 0.382) % 1.0,
                ),
                value: AttrValue::Bool(true),
                sensor: SensorId(0),
            })
            .collect()
    }

    #[test]
    fn inserting_consumers_keeps_taps_sorted_descending() {
        let mut c = chain(1.0);
        c.insert_consumer(QueryId(1), 2.0, cell(), true);
        c.insert_consumer(QueryId(2), 8.0, cell(), true);
        c.insert_consumer(QueryId(3), 4.0, cell(), true);
        assert_eq!(c.tap_rates(), vec![8.0, 4.0, 2.0]);
        assert_eq!(c.consumer_count(), 3);
        // Rule 4: F covers the highest tap.
        assert!(c.f_rate() >= 8.0);
    }

    #[test]
    fn equal_rate_queries_share_one_tap() {
        let mut c = chain(5.0);
        c.insert_consumer(QueryId(1), 5.0, cell(), true);
        c.insert_consumer(QueryId(2), 5.0, cell(), true);
        assert_eq!(c.tap_rates(), vec![5.0]);
        assert_eq!(c.consumer_count(), 2);
        // One F and one T; two sinks but no P.
        assert_eq!(c.node_count(), 2);
    }

    #[test]
    fn partial_overlap_gets_partition_operator() {
        let mut c = chain(5.0);
        let half = Rect::new(0.0, 0.0, 0.5, 1.0);
        c.insert_consumer(QueryId(1), 5.0, half, false);
        // F + T + P = 3 nodes.
        assert_eq!(c.node_count(), 3);
        assert!(c.explain().contains("⋉P"), "{}", c.explain());
    }

    #[test]
    fn deleting_last_consumer_of_tap_merges_thins() {
        let mut c = chain(1.0);
        c.insert_consumer(QueryId(1), 8.0, cell(), true);
        c.insert_consumer(QueryId(2), 4.0, cell(), true);
        c.insert_consumer(QueryId(3), 2.0, cell(), true);
        assert_eq!(c.tap_rates(), vec![8.0, 4.0, 2.0]);
        // Remove the middle tap's only consumer: T(8→4) and T(4→2) must
        // merge into T(8→2).
        c.delete_consumer(QueryId(2)).expect("consumer existed");
        assert_eq!(c.tap_rates(), vec![8.0, 2.0]);
        assert_eq!(c.consumer_count(), 2);
    }

    #[test]
    fn deleting_top_tap_lowers_f_rate() {
        let mut c = chain(1.0);
        c.insert_consumer(QueryId(1), 8.0, cell(), true);
        c.insert_consumer(QueryId(2), 2.0, cell(), true);
        assert!(c.f_rate() >= 8.0);
        c.delete_consumer(QueryId(1));
        assert_eq!(c.tap_rates(), vec![2.0]);
        assert!((c.f_rate() - 2.0).abs() < 1e-9, "F retargets down to {}", c.f_rate());
    }

    #[test]
    fn deleting_all_consumers_empties_chain() {
        let mut c = chain(3.0);
        c.insert_consumer(QueryId(1), 3.0, cell(), true);
        assert!(!c.is_empty());
        c.delete_consumer(QueryId(1));
        assert!(c.is_empty());
        assert_eq!(c.node_count(), 1, "only F remains");
    }

    #[test]
    fn delete_unknown_query_is_none() {
        let mut c = chain(3.0);
        assert!(c.delete_consumer(QueryId(9)).is_none());
    }

    #[test]
    fn processing_delivers_rate_ordered_subsets() {
        let mut c = chain(1.0);
        c.insert_consumer(QueryId(1), 4.0, cell(), true);
        c.insert_consumer(QueryId(2), 1.0, cell(), true);
        // Push a healthy batch: 10 minutes over 1 km² at implied high rate.
        for e in 0..5 {
            c.process_batch(batch(2_000, e as f64 * 10.0));
        }
        let q1: Vec<_> = c.drain_query(QueryId(1));
        let q2: Vec<_> = c.drain_query(QueryId(2));
        // Q1 wants 4/km²·min * 50 min = 200 expected; Q2 wants 50.
        let got1 = q1.len() as f64;
        let got2 = q2.len() as f64;
        assert!((got1 - 200.0).abs() < 60.0, "q1 got {got1}");
        assert!((got2 - 50.0).abs() < 25.0, "q2 got {got2}");
        // The thinning chain means q2 ⊆ q1 as id sets.
        let ids1: std::collections::HashSet<u64> = q1.iter().map(|t| t.id).collect();
        assert!(q2.iter().all(|t| ids1.contains(&t.id)), "chain subset property");
    }

    #[test]
    fn star_shape_taps_hang_off_f() {
        let mut c =
            AttrChain::new(cell(), 10.0, 1.0, 1.0, EstimatorMode::BatchMle, TopologyShape::Star, 7);
        c.insert_consumer(QueryId(1), 4.0, cell(), true);
        c.insert_consumer(QueryId(2), 1.0, cell(), true);
        c.assert_invariants();
        assert!(c.explain().contains("star"));
        // Star: outputs are NOT nested subsets (independent coins), but
        // rates must still be honoured.
        for e in 0..5 {
            c.process_batch(batch(2_000, e as f64 * 10.0));
        }
        let got1 = c.drain_query(QueryId(1)).len() as f64;
        let got2 = c.drain_query(QueryId(2)).len() as f64;
        assert!((got1 - 200.0).abs() < 60.0, "q1 got {got1}");
        assert!((got2 - 50.0).abs() < 25.0, "q2 got {got2}");
        // Star deletion leaves the other tap untouched.
        c.delete_consumer(QueryId(1));
        assert_eq!(c.tap_rates(), vec![1.0]);
    }

    #[test]
    fn explain_renders_chain() {
        let mut c = chain(1.0);
        c.insert_consumer(QueryId(1), 2.0, cell(), true);
        c.insert_consumer(QueryId(2), 1.0, Rect::new(0.0, 0.0, 0.5, 1.0), false);
        let s = c.explain();
        assert!(s.starts_with("F(λ̄=2.000)"), "{s}");
        assert!(s.contains("T(→2.000)[Q1]"), "{s}");
        assert!(s.contains("T(→1.000)[Q2⋉P]"), "{s}");
    }

    #[test]
    fn headroom_scales_f_target() {
        let mut c = AttrChain::new(
            cell(),
            10.0,
            1.0,
            1.5,
            EstimatorMode::BatchMle,
            TopologyShape::Chain,
            7,
        );
        c.insert_consumer(QueryId(1), 4.0, cell(), true);
        assert!((c.f_rate() - 6.0).abs() < 1e-9, "1.5 × 4 = 6, got {}", c.f_rate());
    }
}
