//! The crowdsensed stream fabricator — "the most important component"
//! (Section IV-B), with the map/process/merge phases of Fig. 2.

use super::chain::AttrChain;
use super::PlannerConfig;
use crate::exec::{shard_of, ExecMode, IngestReport, ShardIngest};
use crate::ops::FlattenReport;
use crate::query::{AcquisitionQuery, QueryId};
use crate::tuple::CrowdTuple;
use crate::UnionOp;
use craqr_engine::{Emitter, InputPort, Operator};
use craqr_geom::{CellId, Grid, Rect, Region};
use craqr_sensing::AttributeId;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Planning rejection.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanError {
    /// The query region does not intersect `R`.
    OutsideRegion(Rect),
    /// The query region is smaller than one grid cell — "a single-attribute
    /// query should be on a region with area at least `area(R(q,r))`"
    /// (Section IV).
    TooSmall {
        /// The offending query area (km²).
        query_area: f64,
        /// The minimum allowed area (one cell, km²).
        min_area: f64,
    },
    /// No standing query with this id.
    UnknownQuery(QueryId),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::OutsideRegion(r) => write!(f, "query region {r} lies outside R"),
            PlanError::TooSmall { query_area, min_area } => {
                write!(f, "query area {query_area} km² below the cell minimum {min_area} km²")
            }
            PlanError::UnknownQuery(q) => write!(f, "no standing query {q}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// One shard's work list: each chain paired with its routed batch
/// (`None` = the chain starved this epoch).
type ShardJob<'a> = Vec<(&'a mut AttrChain, Option<Vec<CrowdTuple>>)>;

/// A standing query's placement: which cells it taps and how its per-cell
/// pieces merge back together.
#[derive(Debug)]
pub struct QueryPlan {
    /// The query itself.
    pub query: AcquisitionQuery,
    /// `(cell, overlap, covers-whole-cell)` for every touched cell.
    pub cells: Vec<(CellId, Rect, bool)>,
    /// The query footprint clipped to `R`, canonicalized.
    pub footprint: Region,
}

/// The fabricator: the grid hashmap of per-cell execution topologies plus
/// per-query merge stages.
///
/// - **map** ([`Fabricator::ingest_batch`]): each arriving tuple is routed
///   to its grid cell's key; unmaterialized cells (no standing query there)
///   drop their tuples unprocessed — the grid is "entirely logical".
/// - **process**: the per-(cell, attribute) [`AttrChain`]s push tuples
///   through `F → T … → (P) →` sinks.
/// - **merge** ([`Fabricator::collect_output`]): a per-query `U`-operator
///   reassembles the per-cell streams into the final MCDS, time-ordered.
pub struct Fabricator {
    grid: Grid,
    config: PlannerConfig,
    cells: HashMap<CellId, HashMap<AttributeId, AttrChain>>,
    queries: HashMap<QueryId, QueryPlan>,
    merges: HashMap<QueryId, UnionOp>,
    next_query: u64,
    dropped_unmaterialized: u64,
    /// Cached per-chain tenant ownership, a pure function of the standing
    /// queries — invalidated on insert/delete (chain rebuilds keep the
    /// consumer set, so they leave it valid) and rebuilt lazily so the
    /// epoch loop does not re-derive it every epoch.
    tenant_shares: Option<crate::handler::ChainShares>,
    /// Per-node processing-time clock handed to every chain topology
    /// (existing and future). `None` (default): the engine never reads a
    /// clock and `NodeMetrics::busy_ns` stays zero.
    engine_clock: Option<fn() -> u64>,
    /// Operator counters of chains that no longer exist — accumulated when
    /// a chain is rebuilt ([`Fabricator::rebuild_chain`]) or dematerialized
    /// (last consumer deleted), so [`Fabricator::chain_metrics`] reports
    /// the fleet's whole history. Without this, a rebuild on the final
    /// epoch would erase every operator counter from the run's report.
    retired_metrics: craqr_engine::TopologyMetrics,
}

impl Fabricator {
    /// Creates a fabricator over region `R`.
    pub fn new(region: Rect, config: PlannerConfig) -> Self {
        Self {
            grid: Grid::new(region, config.grid_side),
            config,
            cells: HashMap::new(),
            queries: HashMap::new(),
            merges: HashMap::new(),
            next_query: 0,
            dropped_unmaterialized: 0,
            tenant_shares: None,
            engine_clock: None,
            retired_metrics: craqr_engine::TopologyMetrics::default(),
        }
    }

    /// Installs (or removes) the per-node processing-time clock on every
    /// materialized chain, and remembers it for chains materialized
    /// later. Timing-only observability: `busy_ns` is excluded from
    /// metric equality, so this never changes any deterministic artifact.
    pub fn set_engine_clock(&mut self, clock: Option<fn() -> u64>) {
        self.engine_clock = clock;
        // craqr-lint: allow(R2): installs the same clock on every chain; no output depends on visit order
        for chains in self.cells.values_mut() {
            for chain in chains.values_mut() {
                chain.set_clock(clock);
            }
        }
    }

    /// The logical grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The root-seed derivation for one (cell, attribute) chain — the
    /// single definition both query insertion and chain rebuilds use, so
    /// a rebuilt chain provably restarts the RNG streams a fresh insert
    /// would create.
    fn chain_seed(&self, cell: CellId, attr: AttributeId) -> u64 {
        self.config
            .seed
            .wrapping_add((cell.q as u64) << 32 | cell.r as u64)
            .wrapping_add((attr.0 as u64) << 16)
    }

    /// The planner configuration.
    pub fn config(&self) -> &PlannerConfig {
        &self.config
    }

    /// Inserts a standing query (Section V "Query Insertions"), returning
    /// its id.
    pub fn insert_query(&mut self, query: AcquisitionQuery) -> Result<QueryId, PlanError> {
        self.insert_query_parts(query, &[query.region])
    }

    /// Inserts a standing query whose footprint is a union of disjoint
    /// rectangles — the shape of the paper's `R1` in Fig. 2, which covers
    /// an L of three grid cells.
    ///
    /// `query.region` is treated as the nominal region (for display); the
    /// effective footprint is `parts`. Each grid cell may be touched by at
    /// most one part (grid-aligned footprints always satisfy this).
    ///
    /// # Panics
    /// Panics when parts overlap each other or when two parts touch the
    /// same grid cell.
    pub fn insert_query_parts(
        &mut self,
        query: AcquisitionQuery,
        parts: &[Rect],
    ) -> Result<QueryId, PlanError> {
        // Disjointness check (panics on overlap — a planner-usage bug).
        let footprint_check = Region::from_disjoint(parts.to_vec());

        let mut overlaps = Vec::new();
        for part in parts {
            overlaps.extend(self.grid.cells_overlapping(part));
        }
        if overlaps.is_empty() {
            return Err(PlanError::OutsideRegion(query.region));
        }
        {
            let mut cells_seen: Vec<CellId> = overlaps.iter().map(|o| o.cell).collect();
            cells_seen.sort();
            let before = cells_seen.len();
            cells_seen.dedup();
            assert_eq!(before, cells_seen.len(), "query parts share a grid cell");
        }
        let clipped_area: f64 = overlaps.iter().map(|o| o.overlap.area()).sum();
        if self.config.enforce_min_area && clipped_area + 1e-9 < self.grid.cell_area() {
            return Err(PlanError::TooSmall {
                query_area: footprint_check.area(),
                min_area: self.grid.cell_area(),
            });
        }
        let qid = QueryId(self.next_query);
        self.next_query += 1;

        let mut cells = Vec::with_capacity(overlaps.len());
        let mut parts = Vec::with_capacity(overlaps.len());
        let engine_clock = self.engine_clock;
        for o in &overlaps {
            let cell_rect = self.grid.cell_rect(o.cell);
            let chain_seed = self.chain_seed(o.cell, query.attr);
            // "If the key is absent, it is created and a F-operator is
            // added to it."
            let chain =
                self.cells.entry(o.cell).or_default().entry(query.attr).or_insert_with(|| {
                    let mut chain = AttrChain::new(
                        cell_rect,
                        self.config.batch_duration,
                        query.rate,
                        self.config.f_headroom,
                        self.config.estimator,
                        self.config.shape,
                        chain_seed,
                    );
                    chain.set_clock(engine_clock);
                    chain
                });
            chain.insert_consumer(qid, query.rate, o.overlap, o.full);
            cells.push((o.cell, o.overlap, o.full));
            parts.push(o.overlap);
        }

        let footprint = Region::from_disjoint(parts.clone());
        self.merges.insert(qid, UnionOp::nary(parts));
        self.queries.insert(qid, QueryPlan { query, cells, footprint });
        self.tenant_shares = None;
        Ok(qid)
    }

    /// Deletes a standing query (Section V "Query Deletions"). Returns the
    /// tuples still buffered in its sinks.
    pub fn delete_query(&mut self, qid: QueryId) -> Result<Vec<CrowdTuple>, PlanError> {
        let plan = self.queries.remove(&qid).ok_or(PlanError::UnknownQuery(qid))?;
        self.merges.remove(&qid);
        self.tenant_shares = None;
        let mut leftovers = Vec::new();
        for (cell, _, _) in &plan.cells {
            let Some(attr_chains) = self.cells.get_mut(cell) else { continue };
            if let Some(chain) = attr_chains.get_mut(&plan.query.attr) {
                if let Some(buf) = chain.delete_consumer(qid) {
                    leftovers.extend(buf);
                }
                // "…until all the streams and the key in the hashmap are
                // deleted."
                if chain.is_empty() {
                    self.retired_metrics.absorb(&chain.metrics());
                    attr_chains.remove(&plan.query.attr);
                }
            }
            if attr_chains.is_empty() {
                self.cells.remove(cell);
            }
        }
        Ok(leftovers)
    }

    /// Tears one (cell, attribute) chain down and rebuilds it from its
    /// standing consumers — the adaptive controller's actuator after a
    /// confirmed regime shift. The fresh chain restarts its flatten
    /// estimator, `N_v` telemetry, and thinning RNG streams from the same
    /// seed derivation query insertion uses, so a rebuild is deterministic
    /// and (like every chain mutation) identical across [`ExecMode`]s.
    ///
    /// Consumers re-attach in ascending [`QueryId`] order. Tuples still
    /// buffered in the old chain's sinks are returned per query so the
    /// caller can deliver rather than lose them (the server appends them
    /// to its per-query outputs). Returns `None` when no such chain is
    /// materialized.
    pub fn rebuild_chain(
        &mut self,
        cell: CellId,
        attr: AttributeId,
    ) -> Option<Vec<(QueryId, Vec<CrowdTuple>)>> {
        self.cells.get(&cell)?.get(&attr)?;
        // The standing consumers of this chain, ascending by query id.
        let mut consumers: Vec<(QueryId, f64, Rect, bool)> = Vec::new();
        // craqr-lint: allow(R2): collected into a Vec and sorted by query id on the next line
        let mut plans: Vec<(&QueryId, &QueryPlan)> = self.queries.iter().collect();
        plans.sort_by_key(|(qid, _)| **qid);
        for (qid, plan) in plans {
            if plan.query.attr != attr {
                continue;
            }
            if let Some((_, overlap, full)) = plan.cells.iter().find(|(c, _, _)| *c == cell) {
                consumers.push((*qid, plan.query.rate, *overlap, *full));
            }
        }
        let old = self.cells.get_mut(&cell).expect("checked").remove(&attr).expect("checked");
        // The chain's flatten estimator and RNG streams restart (that is
        // the point of a rebuild), but its processed-work history joins
        // the retired aggregate: operator counters are fleet-cumulative.
        self.retired_metrics.absorb(&old.metrics());
        let mut leftovers = Vec::new();
        {
            let mut old = old;
            for (qid, _, _, _) in &consumers {
                let buf = old.drain_query(*qid);
                if !buf.is_empty() {
                    leftovers.push((*qid, buf));
                }
            }
        }
        let cell_rect = self.grid.cell_rect(cell);
        let initial_rate =
            consumers.iter().map(|(_, r, _, _)| *r).fold(f64::MIN_POSITIVE, f64::max);
        let mut chain = AttrChain::new(
            cell_rect,
            self.config.batch_duration,
            initial_rate,
            self.config.f_headroom,
            self.config.estimator,
            self.config.shape,
            self.chain_seed(cell, attr),
        );
        chain.set_clock(self.engine_clock);
        for (qid, rate, overlap, full) in &consumers {
            chain.insert_consumer(*qid, *rate, *overlap, *full);
        }
        self.cells.get_mut(&cell).expect("checked").insert(attr, chain);
        Some(leftovers)
    }

    /// The standing query plans.
    pub fn query_plan(&self, qid: QueryId) -> Option<&QueryPlan> {
        self.queries.get(&qid)
    }

    /// Ids of all standing queries, ascending.
    pub fn query_ids(&self) -> Vec<QueryId> {
        // craqr-lint: allow(R2): collected into a Vec and sorted on the next line
        let mut ids: Vec<QueryId> = self.queries.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Number of materialized (cell, attribute) chains.
    pub fn materialized_chains(&self) -> usize {
        // craqr-lint: allow(R2): sums usize lengths; integer addition is order-independent
        self.cells.values().map(HashMap::len).sum()
    }

    /// Number of materialized cells (hashmap keys).
    pub fn materialized_cells(&self) -> usize {
        self.cells.len()
    }

    /// Tuples dropped at the map phase because their cell had no standing
    /// query.
    pub fn dropped_unmaterialized(&self) -> u64 {
        self.dropped_unmaterialized
    }

    /// The flatten telemetry of every chain:
    /// `(cell, attribute, report, current λ̄)`.
    pub fn flatten_reports(&self) -> Vec<(CellId, AttributeId, Arc<FlattenReport>, f64)> {
        let mut out = Vec::with_capacity(self.materialized_chains());
        // craqr-lint: allow(R2): rows are sorted by (cell, attribute) before returning
        for (cell, attr_chains) in &self.cells {
            for (attr, chain) in attr_chains {
                out.push((*cell, *attr, chain.flatten_report(), chain.f_rate()));
            }
        }
        out.sort_by_key(|(c, a, _, _)| (*c, *a));
        out
    }

    /// Current demand per materialized chain: `(cell, attr, λ̄)` — what the
    /// request/response handler must feed.
    pub fn demands(&self) -> Vec<(CellId, AttributeId, f64)> {
        self.flatten_reports().into_iter().map(|(c, a, _, r)| (c, a, r)).collect()
    }

    /// Ensures the tenant-share cache reflects the current query set.
    /// Call before [`Fabricator::tenant_shares`]; a no-op while the cache
    /// is warm (the query set only changes on insert/delete, not per
    /// epoch).
    pub fn refresh_tenant_shares(&mut self) {
        if self.tenant_shares.is_none() {
            self.tenant_shares = Some(self.compute_tenant_shares());
        }
    }

    /// Per-chain tenant ownership: for every materialized (cell,
    /// attribute) chain, the tenants whose standing queries consume it,
    /// with each tenant's share of the chain's cost — the tenant's summed
    /// consumer rates over the chain's total consumer rates. Shares are
    /// ascending by [`crate::tenant::TenantId`] and sum to 1 per chain;
    /// the whole map is a deterministic function of the standing queries,
    /// so tenant charging inherits the executor determinism contract.
    ///
    /// # Panics
    /// Panics when the cache is cold — run
    /// [`Fabricator::refresh_tenant_shares`] first (the split exists so
    /// the epoch loop can hold this borrow immutably alongside others).
    #[track_caller]
    pub fn tenant_shares(&self) -> &crate::handler::ChainShares {
        self.tenant_shares.as_ref().expect("refresh_tenant_shares() before tenant_shares()")
    }

    fn compute_tenant_shares(&self) -> crate::handler::ChainShares {
        use std::collections::BTreeMap;
        let mut rates: BTreeMap<(CellId, AttributeId), BTreeMap<_, f64>> = BTreeMap::new();
        // Accumulate ascending by query id: the per-tenant rate sums are
        // floating-point, and float addition is not associative — hash
        // order must never pick the summation order of a checksummed value.
        for qid in self.query_ids() {
            let plan = &self.queries[&qid];
            for (cell, _, _) in &plan.cells {
                *rates
                    .entry((*cell, plan.query.attr))
                    .or_default()
                    .entry(plan.query.tenant)
                    .or_insert(0.0) += plan.query.rate;
            }
        }
        rates
            .into_iter()
            .map(|(key, by_tenant)| {
                let total: f64 = by_tenant.values().sum();
                let shares = by_tenant
                    .into_iter()
                    .map(|(tenant, rate)| (tenant, if total > 0.0 { rate / total } else { 0.0 }))
                    .collect();
                (key, shares)
            })
            .collect()
    }

    /// **map + process**: routes one ingestion batch to the per-cell
    /// chains and runs them serially, in sorted key order.
    pub fn ingest_batch(&mut self, tuples: &[CrowdTuple]) {
        self.ingest_batch_mode(tuples, ExecMode::Serial);
    }

    /// **map + process** with per-cell parallelism over `threads` shards.
    ///
    /// Kept as a convenience alias for
    /// `ingest_batch_mode(…, ExecMode::Sharded(threads))`.
    ///
    /// # Panics
    /// Panics when `threads == 0`.
    #[track_caller]
    pub fn ingest_batch_parallel(&mut self, tuples: &[CrowdTuple], threads: usize) {
        assert!(threads > 0, "need at least one thread");
        self.ingest_batch_mode(tuples, ExecMode::Sharded(threads));
    }

    /// **map + process** under an explicit [`ExecMode`].
    ///
    /// The map phase (tuple → chain routing) always runs on the calling
    /// thread. Under [`ExecMode::Sharded`] the process phase partitions
    /// the sorted chain list round-robin into shards and runs each shard
    /// on a scoped worker thread. Chains share nothing (their RNG streams,
    /// estimators, and sinks are all chain-local, seeded from the planner's
    /// root seed), so the result is **bit-identical** to
    /// [`ExecMode::Serial`] regardless of scheduling — see the determinism
    /// contract on [`crate::exec`].
    ///
    /// Materialized chains that received nothing this batch record a
    /// starvation epoch so their `N_v` telemetry never goes stale.
    ///
    /// # Panics
    /// Panics on `Sharded(0)`.
    #[track_caller]
    pub fn ingest_batch_mode(&mut self, tuples: &[CrowdTuple], mode: ExecMode) -> IngestReport {
        let shards = mode.shards();
        // map: group by (cell, attr). Tuples in unmaterialized cells drop.
        let mut groups: HashMap<(CellId, AttributeId), Vec<CrowdTuple>> = HashMap::new();
        let mut dropped_now = 0usize;
        for t in tuples {
            match self.grid.cell_of(t.point.x, t.point.y) {
                Some(cell)
                    if self.cells.get(&cell).is_some_and(|chains| chains.contains_key(&t.attr)) =>
                {
                    groups.entry((cell, t.attr)).or_default().push(*t);
                }
                _ => dropped_now += 1,
            }
        }
        self.dropped_unmaterialized += dropped_now as u64;

        // Sorted chain list: the canonical execution order. Workers only
        // ever see disjoint sub-lists of it.
        let mut jobs: Vec<((CellId, AttributeId), &mut AttrChain)> = self
            // craqr-lint: allow(R2): collected into `jobs` and sorted by key before any chain runs
            .cells
            .iter_mut()
            .flat_map(|(c, chains)| chains.iter_mut().map(|(a, chain)| ((*c, *a), chain)))
            .collect();
        jobs.sort_by_key(|(key, _)| *key);
        if jobs.is_empty() {
            return IngestReport::merge(dropped_now, Vec::new());
        }

        // Deterministic round-robin shard assignment over sorted keys.
        let mut shard_jobs: Vec<ShardJob<'_>> = (0..shards).map(|_| Vec::new()).collect();
        for (idx, (key, chain)) in jobs.into_iter().enumerate() {
            shard_jobs[shard_of(idx, shards)].push((chain, groups.remove(&key)));
        }

        let run_shard = |shard_list: &mut ShardJob<'_>| {
            let mut stat_tuples = 0usize;
            for (chain, batch) in shard_list.iter_mut() {
                match batch.take() {
                    Some(b) => {
                        stat_tuples += b.len();
                        chain.process_batch(b);
                    }
                    None => chain.record_starved_epoch(),
                }
            }
            stat_tuples
        };

        let timed_run = |list: &mut ShardJob<'_>, shard: usize| {
            let chains = list.len();
            // craqr-lint: allow(R1): busy_ns is timing-tier telemetry, excluded from metric equality and every canonical artifact
            let started = crate::exec::thread_busy_ns();
            let tuples = run_shard(list);
            // craqr-lint: allow(R1): same busy_ns span end; never reaches a checksum
            let busy_ns = crate::exec::thread_busy_ns().saturating_sub(started);
            ShardIngest { shard, chains, tuples, busy_ns }
        };

        let stats: Vec<ShardIngest> = match mode {
            ExecMode::Serial => {
                let mut list = shard_jobs.pop().expect("one shard");
                vec![timed_run(&mut list, 0)]
            }
            ExecMode::Sharded(_) => std::thread::scope(|scope| {
                let handles: Vec<_> = shard_jobs
                    .into_iter()
                    .enumerate()
                    .map(|(shard, mut list)| {
                        let run = &timed_run;
                        scope.spawn(move || run(&mut list, shard))
                    })
                    .collect();
                // Joining in spawn order keeps the merged stats ascending.
                handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
            }),
        };
        IngestReport::merge(dropped_now, stats)
    }

    /// **merge**: drains a query's per-cell sinks through its `U`-operator
    /// and returns the fabricated MCDS slice, time-ordered.
    pub fn collect_output(&mut self, qid: QueryId) -> Result<Vec<CrowdTuple>, PlanError> {
        let plan = self.queries.get(&qid).ok_or(PlanError::UnknownQuery(qid))?;
        let attr = plan.query.attr;
        let footprint = plan.cells.clone();
        let merge = self.merges.get_mut(&qid).expect("merge exists with plan");
        let mut emitter = Emitter::new(merge.output_ports());
        for (port, (cell, _, _)) in footprint.iter().enumerate() {
            let Some(chain) = self.cells.get_mut(cell).and_then(|c| c.get_mut(&attr)) else {
                continue;
            };
            let piece = chain.drain_query(qid);
            if !piece.is_empty() {
                merge.process(InputPort(port as u16), &piece, &mut emitter);
            }
        }
        let mut out = emitter.into_buffers().remove(0);
        out.sort_by(|a, b| a.point.t.total_cmp(&b.point.t));
        Ok(out)
    }

    /// Total tuples processed across every chain (the work measure of the
    /// multi-query sharing experiments).
    pub fn tuples_processed(&self) -> u64 {
        // craqr-lint: allow(R2): sums u64 counters; integer addition is order-independent
        self.cells.values().flat_map(HashMap::values).map(AttrChain::tuples_processed).sum()
    }

    /// Fleet-wide operator metrics: every chain's topology counters folded
    /// into one [`craqr_engine::TopologyMetrics`] snapshot, chains visited
    /// in sorted `(cell, attribute)` order so the aggregate is
    /// deterministic. Includes the history of retired chains (rebuilt or
    /// dematerialized) — the aggregate is cumulative over the fabricator's
    /// whole life, never reset by churn or adaptive rebuilds. Scenario
    /// reports compress this further with
    /// [`craqr_engine::TopologyMetrics::by_kind`].
    pub fn chain_metrics(&self) -> craqr_engine::TopologyMetrics {
        let mut keys: Vec<(CellId, AttributeId)> =
            // craqr-lint: allow(R2): keys are collected and sorted on the next line
            self.cells.iter().flat_map(|(c, chains)| chains.keys().map(|a| (*c, *a))).collect();
        keys.sort();
        let mut agg = self.retired_metrics.clone();
        for (cell, attr) in keys {
            agg.absorb(&self.cells[&cell][&attr].metrics());
        }
        agg
    }

    /// Renders every materialized chain, sorted by cell then attribute —
    /// the textual form of Fig. 2(b).
    pub fn explain(&self) -> String {
        use std::fmt::Write;
        let mut keys: Vec<(CellId, AttributeId)> =
            // craqr-lint: allow(R2): keys are collected and sorted on the next line
            self.cells.iter().flat_map(|(c, chains)| chains.keys().map(|a| (*c, *a))).collect();
        keys.sort();
        let mut s = String::new();
        for (cell, attr) in keys {
            let chain = &self.cells[&cell][&attr];
            let _ = writeln!(s, "R{cell} {attr}: {}", chain.explain());
        }
        s
    }

    /// Access to one chain (for tests and experiments).
    pub fn chain(&self, cell: CellId, attr: AttributeId) -> Option<&AttrChain> {
        self.cells.get(&cell).and_then(|c| c.get(&attr))
    }

    /// Graphviz rendering of every materialized chain, one `digraph` per
    /// (cell, attribute).
    pub fn explain_dot(&self) -> String {
        let mut keys: Vec<(CellId, AttributeId)> =
            // craqr-lint: allow(R2): keys are collected and sorted on the next line
            self.cells.iter().flat_map(|(c, chains)| chains.keys().map(|a| (*c, *a))).collect();
        keys.sort();
        keys.iter()
            .map(|(cell, attr)| {
                self.cells[cell][attr]
                    .to_dot(&format!("cell_{}_{}_attr_{}", cell.q, cell.r, attr.0))
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttrValue, SensorId};

    fn region() -> Rect {
        Rect::with_size(4.0, 4.0)
    }

    fn fab() -> Fabricator {
        Fabricator::new(region(), PlannerConfig { grid_side: 4, ..Default::default() })
    }

    fn query(attr: u16, rect: Rect, rate: f64) -> AcquisitionQuery {
        AcquisitionQuery::new(AttributeId(attr), rect, rate)
    }

    fn tuples(attr: u16, n: usize, t0: f64, rect: Rect) -> Vec<CrowdTuple> {
        (0..n)
            .map(|i| {
                let fx = ((i as f64 * 0.754_877).fract() * rect.width()) + rect.x0;
                let fy = ((i as f64 * 0.569_84).fract() * rect.height()) + rect.y0;
                CrowdTuple {
                    id: i as u64,
                    attr: AttributeId(attr),
                    point: SpaceTimePoint::new(t0 + (i as f64 / n as f64) * 5.0, fx, fy),
                    value: AttrValue::Float(1.0),
                    sensor: SensorId(0),
                }
            })
            .collect()
    }

    #[test]
    fn only_touched_cells_materialize() {
        let mut f = fab();
        // One-cell query: exactly one chain materializes out of 16 cells.
        let qid = f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 2.0)).unwrap();
        assert_eq!(f.materialized_cells(), 1);
        assert_eq!(f.materialized_chains(), 1);
        let plan = f.query_plan(qid).unwrap();
        assert_eq!(plan.cells.len(), 1);
        assert!(plan.cells[0].2, "query covers the whole cell");
    }

    #[test]
    fn query_spanning_cells_materializes_each() {
        let mut f = fab();
        let qid = f.insert_query(query(0, Rect::new(0.0, 0.0, 2.0, 2.0), 1.0)).unwrap();
        assert_eq!(f.materialized_cells(), 4);
        let plan = f.query_plan(qid).unwrap();
        assert_eq!(plan.cells.len(), 4);
        assert!(plan.cells.iter().all(|(_, _, full)| *full));
        assert!((plan.footprint.area() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap_is_recorded() {
        let mut f = fab();
        // Query offset by half a cell: 4 cells touched, all partial.
        let qid = f.insert_query(query(0, Rect::new(0.5, 0.5, 1.5, 1.5), 1.0)).unwrap();
        let plan = f.query_plan(qid).unwrap();
        assert_eq!(plan.cells.len(), 4);
        assert!(plan.cells.iter().all(|(_, _, full)| !*full));
    }

    #[test]
    fn rejects_query_outside_region() {
        let mut f = fab();
        let err = f.insert_query(query(0, Rect::new(10.0, 10.0, 12.0, 12.0), 1.0)).unwrap_err();
        assert!(matches!(err, PlanError::OutsideRegion(_)));
    }

    #[test]
    fn rejects_query_below_cell_area() {
        let mut f = fab();
        let err = f.insert_query(query(0, Rect::new(0.0, 0.0, 0.5, 0.5), 1.0)).unwrap_err();
        assert!(matches!(err, PlanError::TooSmall { .. }));
    }

    #[test]
    fn same_attr_queries_share_chains() {
        let mut f = fab();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 4.0)).unwrap();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 2.0)).unwrap();
        // Same cell, same attribute: one chain with two taps.
        assert_eq!(f.materialized_chains(), 1);
        let chain = f.chain(CellId::new(0, 0), AttributeId(0)).unwrap();
        assert_eq!(chain.tap_rates(), vec![4.0, 2.0]);
    }

    #[test]
    fn different_attrs_get_separate_chains() {
        let mut f = fab();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 1.0)).unwrap();
        f.insert_query(query(1, Rect::new(0.0, 0.0, 1.0, 1.0), 1.0)).unwrap();
        assert_eq!(f.materialized_cells(), 1);
        assert_eq!(f.materialized_chains(), 2);
    }

    #[test]
    fn deletion_dematerializes_empty_cells() {
        let mut f = fab();
        let q1 = f.insert_query(query(0, Rect::new(0.0, 0.0, 2.0, 1.0), 2.0)).unwrap();
        let q2 = f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 1.0)).unwrap();
        assert_eq!(f.materialized_cells(), 2);
        f.delete_query(q1).unwrap();
        // Cell (1,0) only served q1: its key must be gone.
        assert_eq!(f.materialized_cells(), 1);
        assert!(f.chain(CellId::new(1, 0), AttributeId(0)).is_none());
        f.delete_query(q2).unwrap();
        assert_eq!(f.materialized_cells(), 0);
        assert_eq!(f.materialized_chains(), 0);
    }

    #[test]
    fn delete_unknown_query_errors() {
        let mut f = fab();
        assert!(matches!(f.delete_query(QueryId(9)), Err(PlanError::UnknownQuery(_))));
    }

    #[test]
    fn map_phase_drops_unmaterialized_tuples() {
        let mut f = fab();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 1.0)).unwrap();
        // Tuples in a far cell and with an unknown attribute.
        let far = tuples(0, 50, 0.0, Rect::new(3.0, 3.0, 4.0, 4.0));
        let wrong_attr = tuples(9, 50, 0.0, Rect::new(0.0, 0.0, 1.0, 1.0));
        f.ingest_batch(&far);
        f.ingest_batch(&wrong_attr);
        assert_eq!(f.dropped_unmaterialized(), 100);
    }

    #[test]
    fn end_to_end_fabrication_delivers_rated_stream() {
        let mut f = fab();
        let qid = f.insert_query(query(0, Rect::new(0.0, 0.0, 2.0, 2.0), 1.0)).unwrap();
        // Feed 12 epochs of abundant raw tuples over the query footprint.
        for e in 0..12 {
            let batch = tuples(0, 2_000, e as f64 * 5.0, Rect::new(0.0, 0.0, 2.0, 2.0));
            f.ingest_batch(&batch);
        }
        let out = f.collect_output(qid).unwrap();
        // Requested: 1 /km²/min × 4 km² × 60 min = 240 tuples.
        let got = out.len() as f64;
        assert!((got - 240.0).abs() < 75.0, "delivered {got}, want ≈240");
        // Time-ordered and inside the footprint.
        for pair in out.windows(2) {
            assert!(pair[0].point.t <= pair[1].point.t);
        }
        let plan = f.query_plan(qid).unwrap();
        for t in &out {
            assert!(plan.footprint.contains(t.point.x, t.point.y));
        }
    }

    #[test]
    fn partial_overlap_output_respects_footprint() {
        let mut f = fab();
        let foot = Rect::new(0.5, 0.5, 1.5, 1.5);
        let qid = f.insert_query(query(0, foot, 1.0)).unwrap();
        for e in 0..8 {
            // Feed the whole 2x2 block so the P-operators must carve.
            let batch = tuples(0, 2_000, e as f64 * 5.0, Rect::new(0.0, 0.0, 2.0, 2.0));
            f.ingest_batch(&batch);
        }
        let out = f.collect_output(qid).unwrap();
        assert!(!out.is_empty());
        for t in &out {
            assert!(
                foot.contains(t.point.x, t.point.y),
                "tuple at ({}, {}) escaped footprint",
                t.point.x,
                t.point.y
            );
        }
    }

    #[test]
    fn parallel_ingest_matches_serial_exactly() {
        let build = || {
            let mut f = fab();
            let q = f.insert_query(query(0, Rect::new(0.0, 0.0, 4.0, 4.0), 0.5)).unwrap();
            (f, q)
        };
        let (mut serial, qs) = build();
        let (mut parallel, qp) = build();
        for e in 0..6 {
            let batch = tuples(0, 3_000, e as f64 * 5.0, Rect::new(0.0, 0.0, 4.0, 4.0));
            serial.ingest_batch(&batch);
            parallel.ingest_batch_parallel(&batch, 4);
        }
        let out_s = serial.collect_output(qs).unwrap();
        let out_p = parallel.collect_output(qp).unwrap();
        assert_eq!(out_s.len(), out_p.len());
        let ids_s: Vec<u64> = out_s.iter().map(|t| t.id).collect();
        let ids_p: Vec<u64> = out_p.iter().map(|t| t.id).collect();
        assert_eq!(ids_s, ids_p, "chains are deterministic regardless of scheduling");
    }

    #[test]
    fn parallel_ingest_records_starvation_too() {
        let mut f = fab();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 1.0)).unwrap();
        f.ingest_batch_parallel(&[], 2);
        let reports = f.flatten_reports();
        assert_eq!(reports[0].2.batches(), 1);
        assert_eq!(reports[0].2.last_nv(), 100.0);
    }

    #[test]
    fn rebuild_chain_restarts_telemetry_and_keeps_consumers() {
        let mut f = fab();
        let q1 = f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 4.0)).unwrap();
        let q2 = f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 2.0)).unwrap();
        let cell = CellId::new(0, 0);
        for e in 0..4 {
            f.ingest_batch(&tuples(0, 500, e as f64 * 5.0, Rect::new(0.0, 0.0, 1.0, 1.0)));
        }
        assert!(f.chain(cell, AttributeId(0)).unwrap().flatten_report().batches() > 0);
        // Leave something in the sinks so the rebuild has leftovers.
        let leftovers = f.rebuild_chain(cell, AttributeId(0)).expect("chain exists");
        assert!(leftovers.iter().any(|(_, buf)| !buf.is_empty()), "buffered output preserved");
        assert!(leftovers.windows(2).all(|w| w[0].0 < w[1].0), "leftovers ascend by query");
        let chain = f.chain(cell, AttributeId(0)).expect("chain rebuilt");
        assert_eq!(chain.tap_rates(), vec![4.0, 2.0], "consumers re-attached");
        assert_eq!(chain.query_ids(), vec![q1, q2]);
        assert_eq!(chain.flatten_report().batches(), 0, "telemetry restarted");
        // Rebuilding twice from the same state is deterministic.
        let a = f.rebuild_chain(cell, AttributeId(0)).unwrap();
        assert!(a.iter().all(|(_, buf)| buf.is_empty()), "sinks already drained");
        assert!(f.rebuild_chain(CellId::new(3, 3), AttributeId(0)).is_none(), "unmaterialized");
    }

    #[test]
    fn explain_lists_materialized_chains() {
        let mut f = fab();
        f.insert_query(query(0, Rect::new(0.0, 0.0, 1.0, 1.0), 2.0)).unwrap();
        f.insert_query(query(1, Rect::new(1.0, 0.0, 2.0, 1.0), 3.0)).unwrap();
        let s = f.explain();
        assert!(s.contains("R(0,0) A<0>: F"), "{s}");
        assert!(s.contains("R(1,0) A<1>: F"), "{s}");
    }

    #[test]
    fn collect_from_unknown_query_errors() {
        let mut f = fab();
        assert!(matches!(f.collect_output(QueryId(3)), Err(PlanError::UnknownQuery(_))));
    }
}
