//! Query planning and stream fabrication — Section V.

mod chain;
mod fabricator;

pub use chain::{AttrChain, TopologyShape};
pub use fabricator::{Fabricator, PlanError, QueryPlan};

use crate::ops::EstimatorMode;

/// Planner/fabricator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Cells per grid side (the paper's `√h`).
    pub grid_side: u32,
    /// Batch epoch duration (minutes); the `F` operators and the server
    /// share this clock.
    pub batch_duration: f64,
    /// `F` target = `f_headroom × max tap rate` (rule 4 of Section V says
    /// "greater than"; 1.0 means "equal", larger values give the flatten
    /// stage slack at the cost of more raw tuples).
    pub f_headroom: f64,
    /// Per-cell topology shape (Section VI "alternative topologies").
    pub shape: TopologyShape,
    /// Intensity-estimation mode for the `F` operators.
    pub estimator: EstimatorMode,
    /// Master seed for all operator randomness.
    pub seed: u64,
    /// Enforce the Section IV minimum-query-area rule ("a single-attribute
    /// query should be on a region with area at least `area(R(q,r))`").
    /// The paper's own Fig. 2 example bends the rule (its `R3` sits inside
    /// a single cell behind a `P`-operator), so it is a knob.
    pub enforce_min_area: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            grid_side: 4,
            batch_duration: 5.0,
            f_headroom: 1.0,
            shape: TopologyShape::Chain,
            estimator: EstimatorMode::BatchMle,
            seed: 0xC7A9,
            enforce_min_area: true,
        }
    }
}
