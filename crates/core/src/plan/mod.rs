//! Query planning and stream fabrication — Section V.

mod chain;
mod fabricator;

pub use chain::{AttrChain, TopologyShape};
pub use fabricator::{Fabricator, PlanError, QueryPlan};

use crate::ops::EstimatorMode;

/// Planner/fabricator configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerConfig {
    /// Cells per grid side (the paper's `√h`).
    pub grid_side: u32,
    /// Batch epoch duration (minutes); the `F` operators and the server
    /// share this clock.
    pub batch_duration: f64,
    /// `F` target = `f_headroom × max tap rate` (rule 4 of Section V says
    /// "greater than"; 1.0 means "equal", larger values give the flatten
    /// stage slack at the cost of more raw tuples).
    pub f_headroom: f64,
    /// Per-cell topology shape (Section VI "alternative topologies").
    pub shape: TopologyShape,
    /// Intensity-estimation mode for the `F` operators.
    pub estimator: EstimatorMode,
    /// Master seed for all operator randomness.
    pub seed: u64,
    /// Enforce the Section IV minimum-query-area rule ("a single-attribute
    /// query should be on a region with area at least `area(R(q,r))`").
    /// The paper's own Fig. 2 example bends the rule (its `R3` sits inside
    /// a single cell behind a `P`-operator), so it is a knob.
    pub enforce_min_area: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            grid_side: 4,
            batch_duration: 5.0,
            f_headroom: 1.0,
            shape: TopologyShape::Chain,
            estimator: EstimatorMode::BatchMle,
            seed: 0xC7A9,
            enforce_min_area: true,
        }
    }
}

impl PlannerConfig {
    /// Checks the knobs a declarative spec can set, returning the first
    /// violated constraint as `(field, requirement)`. Construction-time
    /// panics guard programmatic misuse; this is the *data-driven* path
    /// (scenario specs, config files) where a parse error beats a panic.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        if self.grid_side == 0 {
            return Err((
                "grid.side",
                "must be >= 1 (a zero-cell grid has nowhere to plan)".into(),
            ));
        }
        if !(self.batch_duration.is_finite() && self.batch_duration > 0.0) {
            return Err((
                "planner.batch_minutes",
                format!("must be > 0, got {}", self.batch_duration),
            ));
        }
        if !(self.f_headroom.is_finite() && self.f_headroom >= 1.0) {
            return Err(("planner.f_headroom", format!("must be >= 1, got {}", self.f_headroom)));
        }
        Ok(())
    }
}
