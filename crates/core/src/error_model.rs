//! Error injection and mitigation — the last Section VI extension.
//!
//! "Errors can be introduced by sampling constraints, GPS errors, sensors
//! inaccuracies, or errors in human judgment. In the future, we will
//! explore methods for mitigating the effect of such errors on query
//! accuracy." This module implements both halves: an [`ErrorModel`] that
//! corrupts responses the way the paper enumerates, and a [`Mitigation`]
//! pipeline that repairs or rejects corrupted tuples at ingestion.

use craqr_geom::Rect;
use craqr_sensing::{AttrValue, SensorResponse};
use craqr_stats::dist::Normal;
use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Stochastic corruption applied to sensor responses in flight.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorModel {
    /// GPS position noise σ (km) on both axes.
    pub gps_sigma: f64,
    /// Probability a human-sensed boolean is flipped (judgment error).
    pub bool_flip_prob: f64,
    /// Additive Gaussian noise σ on real-valued observations (sensor
    /// inaccuracy).
    pub value_sigma: f64,
}

impl ErrorModel {
    /// A noise-free model (identity).
    pub fn none() -> Self {
        Self { gps_sigma: 0.0, bool_flip_prob: 0.0, value_sigma: 0.0 }
    }

    /// Creates an error model.
    ///
    /// # Panics
    /// Panics on negative sigmas or a flip probability outside `[0, 1]`.
    #[track_caller]
    pub fn new(gps_sigma: f64, bool_flip_prob: f64, value_sigma: f64) -> Self {
        assert!(gps_sigma >= 0.0 && value_sigma >= 0.0, "sigmas must be >= 0");
        assert!((0.0..=1.0).contains(&bool_flip_prob), "flip probability must be in [0,1]");
        Self { gps_sigma, bool_flip_prob, value_sigma }
    }

    /// Corrupts one response in place.
    pub fn corrupt<R: Rng + ?Sized>(&self, response: &mut SensorResponse, rng: &mut R) {
        if self.gps_sigma > 0.0 {
            let noise = Normal::new(0.0, self.gps_sigma);
            response.measurement.point.x += noise.sample(rng);
            response.measurement.point.y += noise.sample(rng);
        }
        match &mut response.measurement.value {
            AttrValue::Bool(b) => {
                if self.bool_flip_prob > 0.0 && rng.gen::<f64>() < self.bool_flip_prob {
                    *b = !*b;
                }
            }
            AttrValue::Float(v) => {
                if self.value_sigma > 0.0 {
                    *v += Normal::new(0.0, self.value_sigma).sample(rng);
                }
            }
        }
    }

    /// Corrupts a whole batch.
    pub fn corrupt_batch(&self, responses: &mut [SensorResponse], rng: &mut StdRng) {
        for r in responses {
            self.corrupt(r, rng);
        }
    }
}

/// Ingestion-side mitigation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mitigation {
    /// Reject tuples whose (possibly GPS-corrupted) position falls outside
    /// the region `R` — they cannot be assigned to any grid cell anyway.
    pub reject_outside: bool,
    /// Clamp positions within `snap_distance` km of the region boundary
    /// back inside instead of rejecting them (small GPS excursions near the
    /// border are almost surely legitimate observations).
    pub snap_distance: f64,
    /// Reject real-valued observations farther than `outlier_sigmas` sample
    /// standard deviations from the batch median (sensor glitches).
    pub outlier_sigmas: f64,
}

impl Mitigation {
    /// No mitigation (identity filter).
    pub fn off() -> Self {
        Self { reject_outside: false, snap_distance: 0.0, outlier_sigmas: f64::INFINITY }
    }

    /// A sane default: snap 100 m excursions, reject the rest, 5σ outliers.
    pub fn standard() -> Self {
        Self { reject_outside: true, snap_distance: 0.1, outlier_sigmas: 5.0 }
    }

    /// Filters/repairs a batch against the region, returning survivors and
    /// the number rejected.
    pub fn apply(
        &self,
        mut responses: Vec<SensorResponse>,
        region: &Rect,
    ) -> (Vec<SensorResponse>, usize) {
        let before = responses.len();

        // Spatial repair/rejection.
        if self.reject_outside || self.snap_distance > 0.0 {
            responses.retain_mut(|r| {
                let p = &mut r.measurement.point;
                if region.contains(p.x, p.y) {
                    return true;
                }
                // Snap near-boundary excursions back inside.
                let sx = p.x.clamp(region.x0, region.x1 - f64::EPSILON * region.x1.abs().max(1.0));
                let sy = p.y.clamp(region.y0, region.y1 - f64::EPSILON * region.y1.abs().max(1.0));
                let dist = ((p.x - sx).powi(2) + (p.y - sy).powi(2)).sqrt();
                if dist <= self.snap_distance {
                    p.x = sx;
                    p.y = sy;
                    true
                } else {
                    !self.reject_outside
                }
            });
        }

        // Value-outlier rejection on real observations. Scale is estimated
        // robustly (median absolute deviation): a sample standard deviation
        // would be inflated by the very outliers we are hunting, masking
        // them.
        if self.outlier_sigmas.is_finite() {
            let floats: Vec<f64> =
                responses.iter().filter_map(|r| r.measurement.value.as_float()).collect();
            if floats.len() >= 8 {
                let mut sorted = floats.clone();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                let median = sorted[sorted.len() / 2];
                let mut deviations: Vec<f64> = floats.iter().map(|v| (v - median).abs()).collect();
                deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
                // 1.4826 × MAD estimates σ for Gaussian data.
                let robust_sd = 1.4826 * deviations[deviations.len() / 2];
                // MAD of 0 (over half the values identical) gives no scale
                // to judge by; fall back to the classical deviation then.
                let scale = if robust_sd > 0.0 {
                    robust_sd
                } else {
                    let mean = floats.iter().sum::<f64>() / floats.len() as f64;
                    (floats.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
                        / (floats.len() - 1) as f64)
                        .sqrt()
                };
                if scale > 0.0 {
                    let limit = self.outlier_sigmas * scale;
                    responses.retain(|r| match r.measurement.value.as_float() {
                        Some(v) => (v - median).abs() <= limit,
                        None => true,
                    });
                }
            }
        }

        let rejected = before - responses.len();
        (responses, rejected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::SpaceTimePoint;
    use craqr_sensing::{AttributeId, Measurement, SensorId};
    use craqr_stats::seeded_rng;

    fn response(x: f64, y: f64, value: AttrValue) -> SensorResponse {
        SensorResponse {
            sensor: SensorId(0),
            measurement: Measurement {
                attr: AttributeId(0),
                point: SpaceTimePoint::new(0.0, x, y),
                value,
            },
            issued_at: 0.0,
        }
    }

    #[test]
    fn none_model_is_identity() {
        let m = ErrorModel::none();
        let mut r = response(1.0, 2.0, AttrValue::Float(3.0));
        let before = r;
        m.corrupt(&mut r, &mut seeded_rng(1));
        assert_eq!(r, before);
    }

    #[test]
    fn gps_noise_perturbs_positions() {
        let m = ErrorModel::new(0.5, 0.0, 0.0);
        let mut rng = seeded_rng(2);
        let mut displacement = 0.0;
        for _ in 0..1000 {
            let mut r = response(5.0, 5.0, AttrValue::Bool(true));
            m.corrupt(&mut r, &mut rng);
            let p = r.measurement.point;
            displacement += ((p.x - 5.0).powi(2) + (p.y - 5.0).powi(2)).sqrt();
        }
        let mean_disp = displacement / 1000.0;
        // Rayleigh mean = σ√(π/2) ≈ 0.627 for σ = 0.5.
        assert!((mean_disp - 0.627).abs() < 0.06, "mean displacement {mean_disp}");
    }

    #[test]
    fn bool_flips_at_configured_rate() {
        let m = ErrorModel::new(0.0, 0.2, 0.0);
        let mut rng = seeded_rng(3);
        let flipped = (0..20_000)
            .filter(|_| {
                let mut r = response(0.0, 0.0, AttrValue::Bool(true));
                m.corrupt(&mut r, &mut rng);
                r.measurement.value == AttrValue::Bool(false)
            })
            .count();
        let frac = flipped as f64 / 20_000.0;
        assert!((frac - 0.2).abs() < 0.02, "flip fraction {frac}");
    }

    #[test]
    fn float_noise_has_configured_sd() {
        let m = ErrorModel::new(0.0, 0.0, 2.0);
        let mut rng = seeded_rng(4);
        let mut acc = craqr_stats::OnlineMoments::new();
        for _ in 0..50_000 {
            let mut r = response(0.0, 0.0, AttrValue::Float(10.0));
            m.corrupt(&mut r, &mut rng);
            acc.push(r.measurement.value.as_float().unwrap());
        }
        assert!((acc.mean() - 10.0).abs() < 0.05);
        assert!((acc.sd() - 2.0).abs() < 0.05);
    }

    #[test]
    fn mitigation_snaps_near_boundary() {
        let region = Rect::with_size(10.0, 10.0);
        let mit = Mitigation::standard();
        let batch = vec![response(10.05, 5.0, AttrValue::Bool(true))];
        let (kept, rejected) = mit.apply(batch, &region);
        assert_eq!(rejected, 0);
        assert!(region.contains(kept[0].measurement.point.x, kept[0].measurement.point.y));
    }

    #[test]
    fn mitigation_rejects_far_outside() {
        let region = Rect::with_size(10.0, 10.0);
        let mit = Mitigation::standard();
        let batch = vec![
            response(5.0, 5.0, AttrValue::Bool(true)),
            response(25.0, 5.0, AttrValue::Bool(true)),
        ];
        let (kept, rejected) = mit.apply(batch, &region);
        assert_eq!(kept.len(), 1);
        assert_eq!(rejected, 1);
    }

    #[test]
    fn mitigation_off_keeps_everything() {
        let region = Rect::with_size(10.0, 10.0);
        let mit = Mitigation::off();
        let batch = vec![response(99.0, 99.0, AttrValue::Float(1e6))];
        let (kept, rejected) = mit.apply(batch, &region);
        assert_eq!(kept.len(), 1);
        assert_eq!(rejected, 0);
    }

    #[test]
    fn outlier_filter_drops_glitches() {
        let region = Rect::with_size(10.0, 10.0);
        let mit = Mitigation::standard();
        let mut batch: Vec<SensorResponse> = (0..20)
            .map(|i| response(5.0, 5.0, AttrValue::Float(20.0 + (i % 5) as f64 * 0.1)))
            .collect();
        batch.push(response(5.0, 5.0, AttrValue::Float(500.0)));
        let (kept, rejected) = mit.apply(batch, &region);
        assert_eq!(rejected, 1);
        assert!(kept.iter().all(|r| r.measurement.value.as_float().unwrap() < 100.0));
    }

    #[test]
    fn outlier_filter_ignores_booleans() {
        let region = Rect::with_size(10.0, 10.0);
        let mit = Mitigation::standard();
        let batch: Vec<SensorResponse> =
            (0..20).map(|_| response(5.0, 5.0, AttrValue::Bool(true))).collect();
        let (kept, rejected) = mit.apply(batch, &region);
        assert_eq!(kept.len(), 20);
        assert_eq!(rejected, 0);
    }
}
