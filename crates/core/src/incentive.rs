//! Incentive escalation — the first Section VI extension.
//!
//! "Currently, if there are significant rate violations then the
//! request/response handler … increases its rate of sending acquisition
//! requests. Another alternative is to offer more incentive to the mobile
//! sensors to respond."

use crate::budget::TuneOutcome;
use serde::{Deserialize, Serialize};

/// A per-(attribute, cell) incentive escalation policy.
///
/// The incentive starts at `base`; every epoch whose budget tuning ends in
/// [`TuneOutcome::Exhausted`] (budget capped yet violations persist) raises
/// it by `step` up to `max`; every satisfied epoch decays it towards `base`
/// by the same step. This spends incentive *only when requests alone cannot
/// buy the rate* — the paper's intended division of labour between the two
/// knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IncentivePolicy {
    /// Baseline incentive attached to every request.
    pub base: f64,
    /// Escalation step per exhausted epoch.
    pub step: f64,
    /// Hard cap ("pay more" has a limit too).
    pub max: f64,
}

impl Default for IncentivePolicy {
    fn default() -> Self {
        Self { base: 0.0, step: 0.5, max: 5.0 }
    }
}

/// Mutable escalation state for one (attribute, cell).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct IncentiveState {
    current: f64,
    initialized: bool,
}

impl IncentiveState {
    /// The incentive to attach to the next batch of requests.
    pub fn current(&self, policy: &IncentivePolicy) -> f64 {
        if self.initialized {
            self.current
        } else {
            policy.base
        }
    }

    /// Updates the incentive from this epoch's budget-tuning outcome.
    pub fn update(&mut self, policy: &IncentivePolicy, outcome: TuneOutcome) {
        let cur = self.current(policy);
        self.current = match outcome {
            TuneOutcome::Exhausted => (cur + policy.step).min(policy.max),
            TuneOutcome::Decreased => (cur - policy.step).max(policy.base),
            TuneOutcome::Increased => cur,
        };
        self.initialized = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_base() {
        let p = IncentivePolicy { base: 0.25, ..Default::default() };
        let s = IncentiveState::default();
        assert_eq!(s.current(&p), 0.25);
    }

    #[test]
    fn escalates_only_when_exhausted() {
        let p = IncentivePolicy::default();
        let mut s = IncentiveState::default();
        s.update(&p, TuneOutcome::Increased);
        assert_eq!(s.current(&p), 0.0, "budget still has headroom: no incentive");
        s.update(&p, TuneOutcome::Exhausted);
        assert_eq!(s.current(&p), 0.5);
        s.update(&p, TuneOutcome::Exhausted);
        assert_eq!(s.current(&p), 1.0);
    }

    #[test]
    fn caps_at_max() {
        let p = IncentivePolicy { step: 3.0, max: 5.0, ..Default::default() };
        let mut s = IncentiveState::default();
        s.update(&p, TuneOutcome::Exhausted);
        s.update(&p, TuneOutcome::Exhausted);
        assert_eq!(s.current(&p), 5.0);
    }

    #[test]
    fn decays_towards_base_when_satisfied() {
        let p = IncentivePolicy::default();
        let mut s = IncentiveState::default();
        s.update(&p, TuneOutcome::Exhausted);
        s.update(&p, TuneOutcome::Exhausted);
        assert_eq!(s.current(&p), 1.0);
        s.update(&p, TuneOutcome::Decreased);
        assert_eq!(s.current(&p), 0.5);
        s.update(&p, TuneOutcome::Decreased);
        s.update(&p, TuneOutcome::Decreased);
        assert_eq!(s.current(&p), 0.0, "never below base");
    }
}
