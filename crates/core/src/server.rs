//! The CrAQR server: the full Fig. 1 loop over a simulated crowd.

use crate::budget::BudgetTuner;
use crate::error_model::{ErrorModel, Mitigation};
use crate::exec::{fast_monotonic_ns, ExecMode, IngestReport};
use crate::handler::{DispatchStats, RequestResponseHandler, TuneEvent};
use crate::incentive::IncentivePolicy;
use crate::plan::{Fabricator, PlanError, PlannerConfig};
use crate::query::{parse_query, AcquisitionQuery, AttributeCatalog, ParseError, QueryId};
use crate::tenant::{AdmissionDecision, BudgetPool, TenantId, TenantRegistry};
use crate::tuple::{CrowdTuple, TupleIdGen};
use craqr_sensing::{AttributeId, Crowd, Field, SensorResponse};
use craqr_stats::sub_rng;
use rand::rngs::StdRng;
use std::collections::HashMap;
use std::fmt;

/// Server configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Planner/fabricator knobs (grid side, batch duration, shape, …).
    pub planner: PlannerConfig,
    /// Budget tuning policy.
    pub tuner: BudgetTuner,
    /// Incentive escalation policy (Section VI).
    pub incentive: IncentivePolicy,
    /// Error injection applied to responses in flight (Section VI).
    pub error_model: ErrorModel,
    /// Ingestion-side mitigation (Section VI).
    pub mitigation: Mitigation,
    /// Budget for a freshly materialized (attribute, cell) pair
    /// (requests/epoch).
    pub initial_budget: f64,
    /// Crowd mobility sub-steps per epoch (finer = smoother trajectories).
    pub mobility_substeps: u32,
    /// How the per-cell process phase executes. [`ExecMode::Serial`] is
    /// the reference implementation; [`ExecMode::Sharded`] runs the
    /// chains on a worker pool with **bit-identical** results under the
    /// same root seed (see [`crate::exec`] for the contract).
    pub exec: ExecMode,
    /// Bounded retry/backoff for chains whose dispatch yields too few
    /// responses (crowd drop/delay faults). `None` — the default — is
    /// bit-identical to a retry-free build.
    pub retry: Option<crate::handler::RetryPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            planner: PlannerConfig::default(),
            tuner: BudgetTuner::default(),
            incentive: IncentivePolicy::default(),
            error_model: ErrorModel::none(),
            mitigation: Mitigation::standard(),
            initial_budget: 20.0,
            mobility_substeps: 4,
            exec: ExecMode::Serial,
            retry: None,
        }
    }
}

impl ServerConfig {
    /// Checks every knob a declarative spec can set, returning the first
    /// violated constraint as `(field, requirement)` — the data-driven
    /// counterpart of the constructors' panics, used by the scenario
    /// harness to reject bad specs with an error instead of aborting.
    pub fn validate(&self) -> Result<(), (&'static str, String)> {
        self.planner.validate()?;
        if !(self.initial_budget.is_finite() && self.initial_budget >= 0.0) {
            return Err(("budget.initial", format!("must be >= 0, got {}", self.initial_budget)));
        }
        if self.mobility_substeps == 0 {
            return Err(("planner.mobility_substeps", "must be >= 1".into()));
        }
        if matches!(self.exec, ExecMode::Sharded(0)) {
            return Err(("exec.shards", "Sharded(0) has no workers to run on".into()));
        }
        let t = &self.tuner;
        if !(t.nv_threshold.is_finite() && (0.0..=100.0).contains(&t.nv_threshold)) {
            return Err((
                "budget.nv_threshold",
                format!("must be in [0,100], got {}", t.nv_threshold),
            ));
        }
        if !(t.delta.is_finite() && t.delta >= 0.0) {
            return Err(("budget.delta", format!("must be >= 0, got {}", t.delta)));
        }
        if !(t.min_budget.is_finite() && t.min_budget >= 0.0) {
            return Err(("budget.min", format!("must be >= 0, got {}", t.min_budget)));
        }
        if !(t.max_budget.is_finite() && t.max_budget >= t.min_budget) {
            return Err((
                "budget.max",
                format!("must be >= budget.min ({}), got {}", t.min_budget, t.max_budget),
            ));
        }
        let e = &self.error_model;
        let sigma_ok = |s: f64| s.is_finite() && s >= 0.0;
        if !sigma_ok(e.gps_sigma) || !sigma_ok(e.value_sigma) {
            return Err(("errors.sigma", "gps/value sigmas must be finite and >= 0".into()));
        }
        if !(0.0..=1.0).contains(&e.bool_flip_prob) {
            return Err((
                "errors.bool_flip_prob",
                format!("must be in [0,1], got {}", e.bool_flip_prob),
            ));
        }
        if let Some(r) = &self.retry {
            r.validate()?;
        }
        Ok(())
    }
}

/// Query submission failure.
#[derive(Debug, Clone, PartialEq)]
pub enum SubmitError {
    /// The query text did not parse.
    Parse(ParseError),
    /// The parsed query could not be planned.
    Plan(PlanError),
    /// The query names a tenant the server never registered.
    UnknownTenant(TenantId),
    /// Admission control rejected the query: its owning tenant's budget
    /// pool cannot cover the estimated demand. The structured decision
    /// carries the full arithmetic for the audit trail.
    Rejected(AdmissionDecision),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Parse(e) => write!(f, "parse error: {e}"),
            SubmitError::Plan(e) => write!(f, "plan error: {e}"),
            SubmitError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            SubmitError::Rejected(d) => write!(f, "admission rejected: {d}"),
        }
    }
}

impl std::error::Error for SubmitError {}

impl From<ParseError> for SubmitError {
    fn from(e: ParseError) -> Self {
        SubmitError::Parse(e)
    }
}

impl From<PlanError> for SubmitError {
    fn from(e: PlanError) -> Self {
        SubmitError::Plan(e)
    }
}

/// Crowd-fault activity during one epoch: how many matured responses the
/// fault layer dropped, delayed, or duplicated while this epoch's crowd
/// steps ran ([`craqr_sensing::CrowdFaults`]).
///
/// Event-derived and deterministic (the fault RNG is seeded), so the
/// counts are safe to checksum, record in run logs, and surface in
/// reports. A detached replay cannot recompute them (there is no crowd),
/// so the recorded values ride through [`ReplayInputs::faults`] instead —
/// the same echo pattern run logs use for world shifts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultDeltas {
    /// Responses dropped (lost forever).
    pub dropped: u64,
    /// Responses re-queued to mature later.
    pub delayed: u64,
    /// Responses delivered twice.
    pub duplicated: u64,
}

impl FaultDeltas {
    /// True when no fault fired.
    pub fn is_zero(&self) -> bool {
        *self == FaultDeltas::default()
    }
}

/// What happened during one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: u64,
    /// Simulation time at the end of the epoch (minutes).
    pub now: f64,
    /// Request dispatch statistics.
    pub dispatch: DispatchStats,
    /// Responses received from the crowd this epoch.
    pub responses: usize,
    /// Responses rejected by mitigation.
    pub mitigation_rejected: usize,
    /// Well-formed tuples ingested into the fabricator.
    pub ingested: usize,
    /// Map + process outcome, with the per-shard breakdown under
    /// [`ExecMode::Sharded`] (a single shard entry under serial).
    pub exec: IngestReport,
    /// Per-query tuples delivered this epoch.
    pub delivered: Vec<(QueryId, usize)>,
    /// Budget tuning events.
    pub tuning: Vec<TuneEvent>,
    /// Requests charged per tenant this epoch, ascending by [`TenantId`]
    /// (empty in single-owner servers). Every entry satisfies
    /// `charge ≤ pool capacity` — dispatch throttles rather than
    /// overdraws.
    pub tenant_charges: Vec<(TenantId, f64)>,
    /// Control actions that targeted a retired chain and were dropped as
    /// signalled no-ops (a replan racing a chain retirement).
    pub stale_actions: u64,
    /// Crowd-fault activity observed this epoch (all zero when no
    /// `[faults]` layer is armed).
    pub faults: FaultDeltas,
}

/// One standing query's plan, as a [`ControlHook`] sees it: the
/// replanning-relevant slice of [`crate::plan::QueryPlan`], snapshotted
/// by value so the observation can cross a stage boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlanView {
    /// The standing query's id.
    pub qid: QueryId,
    /// The acquired attribute.
    pub attr: AttributeId,
    /// The owning tenant.
    pub tenant: TenantId,
    /// The requested rate (tuples /km²/min).
    pub rate: f64,
    /// The footprint's bounding box (a degenerate footprint falls back
    /// to its first cell's rect).
    pub bbox: craqr_geom::Rect,
    /// The footprint's area (km²).
    pub area: f64,
    /// The materialized cells, each with the area of its overlap with
    /// the footprint (km²), in plan order.
    pub cells: Vec<(craqr_geom::CellId, f64)>,
}

/// The planner's standing state, snapshotted for a [`ControlHook`].
#[derive(Debug, Clone, PartialEq)]
pub struct PlanView {
    /// Epoch length (minutes).
    pub batch_duration: f64,
    /// The acquisition grid.
    pub grid: craqr_geom::Grid,
    /// Every standing query's plan, ascending by [`QueryId`].
    pub queries: Vec<QueryPlanView>,
    /// Per-chain demand (requests/epoch), exactly what dispatch draws
    /// from ([`Fabricator::demands`]).
    pub demands: Vec<(craqr_geom::CellId, AttributeId, f64)>,
}

/// The handler's budget state, snapshotted for a [`ControlHook`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetView {
    budgets: HashMap<(craqr_geom::CellId, AttributeId), f64>,
    /// The budget tuning policy in force.
    pub tuner: BudgetTuner,
}

impl BudgetView {
    /// The acquisition budget of one chain (requests/epoch), if its
    /// budget entry is live — the snapshot of
    /// [`RequestResponseHandler::budget_of`].
    pub fn of(&self, cell: craqr_geom::CellId, attr: AttributeId) -> Option<f64> {
        self.budgets.get(&(cell, attr)).copied()
    }
}

/// What a [`ControlHook`] gets to see after each epoch: the epoch's
/// report, the tuples it delivered per query, and value snapshots of the
/// planner/handler state. Everything here is a deterministic function of
/// `(config, seed, epoch)` — identical under [`ExecMode::Serial`], any
/// `Sharded(n)`, and the pipelined executor — so hooks that compute only
/// from this view inherit the executor's determinism contract for free.
///
/// The observation is **owned** (no borrows into the server): the
/// pipelined executor materializes it on the ingest stage and ships it
/// over a channel to the control stage, and the serial driver builds the
/// identical value in place. It is only constructed when a hook is
/// installed, so hookless runs pay nothing for the snapshotting.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochObservation {
    /// The epoch's loop statistics.
    pub report: EpochReport,
    /// Tuples delivered this epoch per query, ascending by [`QueryId`].
    /// (They are *about to be* appended to the per-query output buffers;
    /// the hook sees them first.)
    pub delivered: Vec<(QueryId, Vec<CrowdTuple>)>,
    /// The planner: standing query plans, demands, grid.
    pub plan: PlanView,
    /// The handler's budget state and tuning policy.
    pub budgets: BudgetView,
    /// Per-tenant summaries, when this server is multi-tenant —
    /// replanning policies use them to respect per-tenant pool
    /// boundaries.
    pub tenants: Option<Vec<crate::tenant::TenantSummary>>,
    /// Simulation time at the start of the epoch (minutes).
    pub epoch_start: f64,
    /// Simulation time at the end of the epoch (minutes).
    pub epoch_end: f64,
}

impl EpochObservation {
    /// Snapshots the observation a hook sees for one finished epoch.
    /// Called identically by the serial and pipelined drivers, right
    /// after the epoch's report is assembled, so the two executors hand
    /// hooks bit-identical views.
    pub(crate) fn capture(
        report: &EpochReport,
        fresh: &[(QueryId, Vec<CrowdTuple>)],
        fabricator: &Fabricator,
        handler: &RequestResponseHandler,
        tenants: Option<&TenantRegistry>,
        epoch_start: f64,
        epoch_end: f64,
    ) -> Self {
        let grid = fabricator.grid();
        let queries = fabricator
            .query_ids()
            .into_iter()
            .map(|qid| {
                let plan = fabricator.query_plan(qid).expect("standing query");
                let bbox = plan
                    .footprint
                    .bounding_box()
                    .unwrap_or_else(|| grid.cell_rect(plan.cells[0].0));
                QueryPlanView {
                    qid,
                    attr: plan.query.attr,
                    tenant: plan.query.tenant,
                    rate: plan.query.rate,
                    bbox,
                    area: plan.footprint.area(),
                    cells: plan.cells.iter().map(|(c, overlap, _)| (*c, overlap.area())).collect(),
                }
            })
            .collect();
        EpochObservation {
            report: report.clone(),
            delivered: fresh.to_vec(),
            plan: PlanView {
                batch_duration: fabricator.config().batch_duration,
                grid: grid.clone(),
                queries,
                demands: fabricator.demands(),
            },
            budgets: BudgetView { budgets: handler.budget_snapshot(), tuner: *handler.tuner() },
            tenants: tenants.map(|t| t.summaries()),
            epoch_start,
            epoch_end,
        }
    }
}

/// An actuation a [`ControlHook`] injects back into the planner after
/// observing an epoch. Actions are applied on the epoch-loop thread, in
/// the order returned, *after* the epoch's own budget tuning — a replan
/// therefore overrides the `N_v` tuner for that epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum ControlAction {
    /// Overwrite one chain's acquisition budget (requests/epoch).
    SetBudget {
        /// Which cell.
        cell: craqr_geom::CellId,
        /// Which attribute.
        attr: AttributeId,
        /// The new budget (requests per epoch).
        requests_per_epoch: f64,
    },
    /// Tear the chain down and rebuild it from its standing consumers,
    /// restarting its flatten estimator and telemetry
    /// ([`Fabricator::rebuild_chain`]). Tuples buffered in the old sinks
    /// are delivered, not lost.
    RebuildChain {
        /// Which cell.
        cell: craqr_geom::CellId,
        /// Which attribute.
        attr: AttributeId,
    },
}

/// The observation/actuation seam on the epoch loop.
///
/// The server owns the loop; a hook owns a *policy*. After every epoch the
/// server hands the hook an [`EpochObservation`] and applies whatever
/// [`ControlAction`]s come back. The adaptive acquisition controller
/// (`craqr-adaptive`) is the canonical implementation: online intensity
/// estimation → drift detection → budget replanning — but the seam is
/// policy-agnostic (rate limiters, SLO guards, and chaos injectors fit
/// the same shape).
///
/// Determinism: a hook driven only by its observations is replayed
/// identically across [`ExecMode`]s and reruns; hooks must not consult
/// wall clocks, ambient RNGs, or other out-of-band state if they want
/// their decisions golden-testable.
///
/// `Send` is a supertrait because the pipelined executor runs the hook on
/// a dedicated control-stage worker thread; every useful hook is plain
/// data, so the bound costs nothing.
pub trait ControlHook: Send {
    /// Observes a finished epoch; returns the actions to apply before the
    /// next one.
    fn on_epoch(&mut self, obs: &EpochObservation) -> Vec<ControlAction>;
}

/// Everything one epoch consumed from outside the server, plus what the
/// control seam injected back — the unit of record for an event-sourced
/// run log. Handed to an [`EpochTap`] after the epoch completes.
///
/// `responses` are the crowd responses exactly as drained — **before**
/// error injection, mitigation, and id assignment — because that is the
/// seam where the outside world ends: everything downstream (corruption
/// included) is a deterministic function of `(config, seed, responses)`.
pub struct EpochInputsRecord<'a> {
    /// The epoch's loop statistics.
    pub report: &'a EpochReport,
    /// Crowd responses as drained this epoch, pre-error-injection.
    pub responses: &'a [SensorResponse],
    /// [`ControlAction`]s the hook injected this epoch, in application
    /// order (empty when no hook ran or the hook stayed silent).
    pub actions: &'a [ControlAction],
}

/// The recording seam on the epoch loop — the read-only sibling of
/// [`ControlHook`].
///
/// Where a hook closes a *control* loop (observe → actuate), a tap is a
/// pure observer of the epoch's **inputs**: drained responses, dispatch
/// outcome, injected actions. `craqr-runlog`'s recorder is the canonical
/// implementation — it appends each record to an event-sourced log from
/// which the run can later be replayed (crowd detached), resumed, or
/// diffed. Taps run after the hook's actions are applied and must not
/// mutate anything; a silent tap leaves the run bit-identical to an
/// untapped one.
///
/// `Send` is a supertrait because the pipelined executor runs the tap on
/// the trailing render-stage worker thread.
pub trait EpochTap: Send {
    /// Observes one finished epoch's inputs.
    fn on_epoch(&mut self, record: &EpochInputsRecord<'_>);
}

/// A named abandonment point inside the epoch loop — the process-fault
/// half of the fault-injection story (the crowd-fault half lives in
/// [`craqr_sensing::CrowdFaults`]).
///
/// A crash-armed [`crate::EpochDriver`] runs an epoch up to the named
/// point and then abandons it, exactly as a `kill -9` at that instant
/// would: state mutated before the point stays mutated, nothing after it
/// runs, and the recording tap never observes the epoch. Because every
/// durability boundary in the system is the *epoch* (a run log only
/// persists an epoch once its tap fired and the streamed block synced),
/// all four points leave the same recoverable artifact: a log whose last
/// durable epoch is the one before the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// After dispatch drew budgets, charged tenants, and sent requests —
    /// the crowd heard the server, but no response was drained.
    PostDispatch,
    /// After the crowd advanced and its matured responses were drained,
    /// before error injection or ingestion touched them.
    PostDrain,
    /// After the control hook observed the epoch and its actions were
    /// applied, an instant before the recording tap fires.
    PostControl,
    /// Not a point in the server loop at all: the epoch completes (tap
    /// included) and the *log writer* dies midway through appending the
    /// epoch block. A crash-armed driver runs the epoch normally for
    /// this point and stops after it; the tear itself belongs to the log
    /// writer (`craqr_runlog::StreamingRecorder::tear_next_append`).
    MidLogAppend,
}

impl CrashPoint {
    /// All crash points, in loop order — the chaos tier's kill matrix.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::PostDispatch,
        CrashPoint::PostDrain,
        CrashPoint::PostControl,
        CrashPoint::MidLogAppend,
    ];

    /// The spec-facing name (`[[faults.crash]] point = "…"`).
    pub fn name(&self) -> &'static str {
        match self {
            CrashPoint::PostDispatch => "post-dispatch",
            CrashPoint::PostDrain => "post-drain",
            CrashPoint::PostControl => "post-control",
            CrashPoint::MidLogAppend => "mid-log-append",
        }
    }

    /// Parses a spec-facing name back to the point.
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == name)
    }
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The recorded crowd-side inputs of one epoch, fed back into
/// [`crate::EpochDriver::step_replayed`] (or a whole-horizon
/// [`crate::EpochDriver::run_replayed`]) to re-drive the loop without a
/// live crowd.
pub struct ReplayInputs<'a> {
    /// Requests the crowd actually received at dispatch (the crowd-side
    /// outcome the detached server cannot recompute).
    pub sent: u64,
    /// The responses drained this epoch, pre-error-injection, exactly as
    /// a tap recorded them.
    pub responses: &'a [SensorResponse],
    /// The fault activity the live run recorded for this epoch. A
    /// detached server has no crowd to recompute it from, so the replayed
    /// epoch's report echoes these values verbatim (zero for logs
    /// recorded without faults).
    pub faults: FaultDeltas,
}

/// The CrAQR server: accepts declarative acquisitional queries, drives the
/// request/response handler against a (simulated) mobile crowd, fabricates
/// the requested streams through per-cell PMAT topologies, and adapts
/// budgets/incentives from flatten telemetry.
pub struct CraqrServer {
    // Fields are crate-visible so `crate::driver` can borrow-split the
    // server into the crowd half (drain stage) and the planner half
    // (ingest stage) without interior mutability.
    pub(crate) crowd: Crowd,
    pub(crate) fabricator: Fabricator,
    pub(crate) handler: RequestResponseHandler,
    catalog: AttributeCatalog,
    pub(crate) idgen: TupleIdGen,
    pub(crate) error_rng: StdRng,
    pub(crate) config: ServerConfig,
    pub(crate) outputs: HashMap<QueryId, Vec<CrowdTuple>>,
    pub(crate) tenants: Option<TenantRegistry>,
    /// What each admitted query actually committed against its tenant's
    /// pool — recorded at admission so deletion releases exactly that
    /// (never populated for queries submitted before the first tenant
    /// registration: they were never admission-checked, so deleting them
    /// must not refund capacity nobody committed).
    committed_demands: HashMap<QueryId, (TenantId, f64)>,
    pub(crate) epoch: u64,
}

impl CraqrServer {
    /// Creates a server over an existing crowd.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`ServerConfig::validate`])
    /// — a bad knob (`Sharded(0)`, inverted budget bounds, …) is rejected
    /// here, before any epoch runs, instead of deep inside the loop.
    #[track_caller]
    pub fn new(crowd: Crowd, config: ServerConfig) -> Self {
        if let Err((field, message)) = config.validate() {
            panic!("invalid server config: {field}: {message}");
        }
        let region = crowd.region();
        let mut handler =
            RequestResponseHandler::new(config.tuner, config.incentive, config.initial_budget);
        handler.set_retry_policy(config.retry);
        Self {
            fabricator: Fabricator::new(region, config.planner),
            handler,
            catalog: AttributeCatalog::new(),
            idgen: TupleIdGen::new(),
            error_rng: sub_rng(config.planner.seed, 0xE44),
            config,
            outputs: HashMap::new(),
            tenants: None,
            committed_demands: HashMap::new(),
            epoch: 0,
            crowd,
        }
    }

    /// Registers a tenant with a budget pool of `capacity` requests per
    /// epoch, returning its id (registration order, dense from 0). The
    /// first registration switches the server into multi-tenant mode:
    /// from then on every submission runs admission control and every
    /// dispatch charges the owning tenants, throttling at pool
    /// exhaustion. A server with no registered tenants behaves exactly
    /// like the single-owner original.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive capacity (see
    /// [`BudgetPool::new`]).
    #[track_caller]
    pub fn register_tenant(&mut self, name: &str, capacity: f64) -> TenantId {
        self.tenants
            .get_or_insert_with(TenantRegistry::new)
            .register(name, BudgetPool::new(capacity))
    }

    /// The tenant registry, when this server is multi-tenant.
    pub fn tenants(&self) -> Option<&TenantRegistry> {
        self.tenants.as_ref()
    }

    /// Every admission decision so far, in submission order (empty in
    /// single-owner servers).
    pub fn admissions(&self) -> &[AdmissionDecision] {
        self.tenants.as_ref().map_or(&[], |t| t.decisions())
    }

    /// Registers an attribute with its ground-truth field.
    pub fn register_attribute(
        &mut self,
        name: &str,
        human_sensed: bool,
        field: Box<dyn Field>,
    ) -> AttributeId {
        let id = self.catalog.register(name, human_sensed);
        self.crowd.register_field(id, field);
        id
    }

    /// Submits a declarative query (`ACQUIRE … FROM RECT(…) RATE …`)
    /// owned by the implicit default tenant. On a multi-tenant server
    /// that is [`TenantId::DEFAULT`] — the first registered tenant — and
    /// the submission runs admission control against its pool.
    pub fn submit(&mut self, text: &str) -> Result<QueryId, SubmitError> {
        let query = parse_query(text, &self.catalog)?;
        self.submit_query(query)
    }

    /// Submits a declarative query on behalf of `tenant`: admission
    /// control first (the tenant's pool must cover the query's estimated
    /// demand), then planning. A rejection is returned as
    /// [`SubmitError::Rejected`] carrying the structured
    /// [`AdmissionDecision`], which is also appended to
    /// [`CraqrServer::admissions`] for the audit trail.
    pub fn submit_for(&mut self, tenant: TenantId, text: &str) -> Result<QueryId, SubmitError> {
        let query = parse_query(text, &self.catalog)?;
        self.submit_query(query.owned_by(tenant))
    }

    /// A query's estimated steady-state demand (requests/epoch): the
    /// tuples per epoch the requested rate implies over the footprint
    /// clipped to the world — `rate × clip(region ∩ R).area × epoch
    /// minutes`. The admission controller checks this against the pool;
    /// deleting the query releases exactly the same amount.
    pub fn estimated_demand(&self, query: &AcquisitionQuery) -> f64 {
        self.config.planner.batch_duration
            * query.rate
            * self
                .fabricator
                .grid()
                .region()
                .intersection(&query.region)
                .map_or(0.0, |clip| clip.area())
    }

    /// Submits a typed query, running admission control when the server
    /// is multi-tenant.
    pub fn submit_query(&mut self, query: AcquisitionQuery) -> Result<QueryId, SubmitError> {
        let demand = self.estimated_demand(&query);
        let admitted = if let Some(registry) = &mut self.tenants {
            if !registry.contains(query.tenant) {
                return Err(SubmitError::UnknownTenant(query.tenant));
            }
            let decision = registry.admit(query.tenant, demand);
            if !decision.admitted {
                return Err(SubmitError::Rejected(decision));
            }
            true
        } else {
            // A single-owner server has exactly one valid owner. Accepting
            // an arbitrary id here would plant it on the plan; if tenants
            // were registered later, charging would silently skip the
            // unknown owner and the adaptive allocator would panic on it.
            if query.tenant != TenantId::DEFAULT {
                return Err(SubmitError::UnknownTenant(query.tenant));
            }
            false
        };
        match self.fabricator.insert_query(query) {
            Ok(qid) => {
                self.outputs.entry(qid).or_default();
                if admitted {
                    self.committed_demands.insert(qid, (query.tenant, demand));
                }
                Ok(qid)
            }
            Err(e) => {
                // Admission committed the demand; planning refused the
                // query, so release the pool again.
                if let Some(registry) = &mut self.tenants {
                    registry.rollback_last_admission();
                }
                Err(SubmitError::Plan(e))
            }
        }
    }

    /// Deletes a standing query, returning any tuples still buffered for
    /// it. A query that committed demand at admission releases exactly
    /// that amount back to its tenant's pool; queries that never passed
    /// admission (submitted before the first tenant registration)
    /// release nothing — they committed nothing.
    pub fn delete_query(&mut self, qid: QueryId) -> Result<Vec<CrowdTuple>, PlanError> {
        let mut leftovers = self.fabricator.delete_query(qid)?;
        if let Some((tenant, demand)) = self.committed_demands.remove(&qid) {
            if let Some(registry) = &mut self.tenants {
                registry.release(tenant, demand);
            }
        }
        if let Some(mut buffered) = self.outputs.remove(&qid) {
            leftovers.append(&mut buffered);
        }
        Ok(leftovers)
    }

    /// Runs one epoch of the Fig. 1 loop:
    /// dispatch → crowd advances → responses → errors/mitigation →
    /// ingestion (map) → per-cell processing → per-query merge → budget
    /// tuning.
    pub fn run_epoch(&mut self) -> EpochReport {
        self.run_epoch_with(None)
    }

    /// Runs one epoch with an optional [`ControlHook`] observing the
    /// result and injecting [`ControlAction`]s before the next epoch —
    /// the closed-loop variant of [`CraqrServer::run_epoch`].
    ///
    /// Every other seam combination (tap, timer, crash injection,
    /// replay, multi-epoch horizons, the pipelined executor) lives on the
    /// builder-style [`crate::EpochDriver`] — see
    /// [`CraqrServer::driver`].
    pub fn run_epoch_with(&mut self, hook: Option<&mut dyn ControlHook>) -> EpochReport {
        let mut driver = self.driver();
        if let Some(hook) = hook {
            driver = driver.hook(hook);
        }
        driver.step()
    }

    /// Starts building an epoch driver over this server — the one entry
    /// point for every seamed or multi-epoch execution (see
    /// [`crate::EpochDriver`]).
    pub fn driver(&mut self) -> crate::driver::EpochDriver<'_> {
        crate::driver::EpochDriver::new(self)
    }

    /// Takes everything fabricated for a query so far.
    pub fn take_output(&mut self, qid: QueryId) -> Vec<CrowdTuple> {
        self.outputs.get_mut(&qid).map(std::mem::take).unwrap_or_default()
    }

    /// Peeks at the number of buffered tuples for a query.
    pub fn buffered_len(&self, qid: QueryId) -> usize {
        self.outputs.get(&qid).map_or(0, Vec::len)
    }

    /// Simulation time (minutes).
    pub fn now(&self) -> f64 {
        self.crowd.now()
    }

    /// The attribute catalog.
    pub fn catalog(&self) -> &AttributeCatalog {
        &self.catalog
    }

    /// The fabricator (plans, chains, telemetry).
    pub fn fabricator(&self) -> &Fabricator {
        &self.fabricator
    }

    /// Switches per-operator processing-time accumulation on or off:
    /// every chain topology (existing and future) gets a nanosecond
    /// clock, and `NodeMetrics::busy_ns` starts accruing. The clock is
    /// the cheap vDSO monotonic reader ([`fast_monotonic_ns`]) — it fires
    /// twice per operator batch, where a thread-CPU syscall would cost
    /// more than many operators' processing itself. Timing-only —
    /// `busy_ns` is excluded from metric equality and from every
    /// checksummed artifact, so toggling this never changes reports,
    /// traces, or run logs. Off (the default) performs zero clock reads.
    pub fn set_engine_timing(&mut self, on: bool) {
        // craqr-lint: allow(R1): constructs the injected engine clock seam; busy_ns is excluded from metric equality
        self.fabricator.set_engine_clock(on.then_some(fast_monotonic_ns as fn() -> u64));
    }

    /// The request/response handler (budgets, incentives).
    pub fn handler(&self) -> &RequestResponseHandler {
        &self.handler
    }

    /// The crowd (sensor world).
    pub fn crowd(&self) -> &Crowd {
        &self.crowd
    }

    /// Mutable access to the crowd, for mid-run world changes (churn,
    /// participation collapse) in experiments and failure-injection tests.
    pub fn crowd_mut(&mut self) -> &mut Crowd {
        &mut self.crowd
    }

    /// Epochs run so far.
    pub fn epochs(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use craqr_geom::Rect;
    use craqr_sensing::{
        fields::ConstantField, AttrValue, CrowdConfig, Mobility, Placement, PopulationConfig,
        RainFront,
    };

    fn crowd(size: usize) -> Crowd {
        Crowd::new(CrowdConfig {
            region: Rect::with_size(4.0, 4.0),
            population: PopulationConfig {
                size,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.2 },
                human_fraction: 0.0,
            },
            seed: 11,
        })
    }

    fn server(size: usize) -> CraqrServer {
        let mut s = CraqrServer::new(crowd(size), ServerConfig::default());
        s.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
        s.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(21.0))));
        s
    }

    #[test]
    fn submit_parses_and_plans() {
        let mut s = server(200);
        let qid = s.submit("ACQUIRE rain FROM RECT(0,0,1,1) RATE 2").unwrap();
        assert_eq!(s.fabricator().query_ids(), vec![qid]);
        assert_eq!(s.fabricator().materialized_cells(), 1);
    }

    #[test]
    fn submit_rejects_unknown_attribute() {
        let mut s = server(10);
        let err = s.submit("ACQUIRE fog FROM RECT(0,0,1,1) RATE 2").unwrap_err();
        assert!(matches!(err, SubmitError::Parse(ParseError::UnknownAttribute(_))));
    }

    #[test]
    fn submit_rejects_unplannable_query() {
        let mut s = server(10);
        let err = s.submit("ACQUIRE rain FROM RECT(0,0,0.5,0.5) RATE 2").unwrap_err();
        assert!(matches!(err, SubmitError::Plan(PlanError::TooSmall { .. })));
    }

    #[test]
    fn epochs_deliver_tuples_and_advance_time() {
        let mut s = server(600);
        let qid = s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
        let mut total = 0;
        for _ in 0..12 {
            let report = s.run_epoch();
            total += report.delivered.iter().map(|(_, n)| n).sum::<usize>();
            assert!(report.dispatch.requested > 0);
        }
        assert_eq!(s.epochs(), 12);
        assert!((s.now() - 60.0).abs() < 1e-9);
        assert!(total > 0, "no tuples delivered");
        let out = s.take_output(qid);
        assert_eq!(out.len(), total);
        assert_eq!(s.buffered_len(qid), 0);
        // Values come from the registered field.
        assert!(out.iter().all(|t| t.value == AttrValue::Float(21.0)));
    }

    #[test]
    fn budgets_react_to_starvation() {
        // A tiny crowd cannot satisfy an aggressive rate: budgets must rise.
        let mut s = server(30);
        s.submit("ACQUIRE temp FROM RECT(0,0,1,1) RATE 5").unwrap();
        let cell = craqr_geom::CellId::new(0, 0);
        let attr = s.catalog().lookup("temp").unwrap();
        let mut before = None;
        for _ in 0..10 {
            s.run_epoch();
            let b = s.handler().budget_of(cell, attr);
            if before.is_none() {
                before = b;
            }
        }
        let after = s.handler().budget_of(cell, attr).unwrap();
        assert!(
            after > before.unwrap(),
            "budget should grow under violations: {before:?} → {after}"
        );
    }

    #[test]
    fn deleting_query_stops_requests() {
        let mut s = server(300);
        let qid = s.submit("ACQUIRE rain FROM RECT(0,0,1,1) RATE 1").unwrap();
        s.run_epoch();
        s.delete_query(qid).unwrap();
        let report = s.run_epoch();
        assert_eq!(report.dispatch.requested, 0, "no demand should remain");
        assert_eq!(s.fabricator().materialized_cells(), 0);
    }

    #[test]
    fn control_hook_observes_and_actuates() {
        struct Clamp {
            seen: usize,
            delivered: usize,
        }
        impl ControlHook for Clamp {
            fn on_epoch(&mut self, obs: &EpochObservation) -> Vec<ControlAction> {
                self.seen += 1;
                self.delivered += obs.delivered.iter().map(|(_, t)| t.len()).sum::<usize>();
                assert!(obs.epoch_end > obs.epoch_start);
                // Pin every materialized chain's budget to 3 req/epoch and
                // rebuild it — the strongest possible intervention.
                obs.plan
                    .demands
                    .iter()
                    .flat_map(|&(cell, attr, _)| {
                        [
                            ControlAction::SetBudget { cell, attr, requests_per_epoch: 3.0 },
                            ControlAction::RebuildChain { cell, attr },
                        ]
                    })
                    .collect()
            }
        }
        let mut s = server(400);
        let qid = s.submit("ACQUIRE temp FROM RECT(0,0,1,1) RATE 1").unwrap();
        let mut hook = Clamp { seen: 0, delivered: 0 };
        s.run_epoch_with(Some(&mut hook));
        let cell = craqr_geom::CellId::new(0, 0);
        let attr = s.catalog().lookup("temp").unwrap();
        assert_eq!(s.handler().budget_of(cell, attr), Some(3.0), "hook set the budget");
        assert_eq!(s.fabricator().chain(cell, attr).unwrap().flatten_report().batches(), 0);
        // The pinned budget drives the next epoch's dispatch.
        let r = s.run_epoch_with(Some(&mut hook));
        assert_eq!(r.dispatch.requested, 3);
        assert_eq!(hook.seen, 2);
        // Nothing delivered was lost across rebuilds.
        for _ in 0..6 {
            s.run_epoch_with(Some(&mut hook));
        }
        let buffered = s.take_output(qid).len();
        assert_eq!(hook.delivered, buffered, "hook-observed tuples and buffered output must agree");
    }

    #[test]
    fn hookless_and_noop_hook_runs_are_identical() {
        struct Noop;
        impl ControlHook for Noop {
            fn on_epoch(&mut self, _obs: &EpochObservation) -> Vec<ControlAction> {
                Vec::new()
            }
        }
        let run = |use_hook: bool| {
            let mut s = server(300);
            let qid = s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
            let mut hook = Noop;
            for _ in 0..6 {
                if use_hook {
                    s.run_epoch_with(Some(&mut hook));
                } else {
                    s.run_epoch();
                }
            }
            s.take_output(qid).iter().map(|t| t.id).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "a silent hook must not perturb the loop");
    }

    /// A tap that clones everything it sees — the in-memory skeleton of
    /// the `craqr-runlog` recorder.
    #[derive(Default)]
    struct CollectTap {
        epochs: Vec<(u64, Vec<craqr_sensing::SensorResponse>, Vec<ControlAction>)>,
    }
    impl EpochTap for CollectTap {
        fn on_epoch(&mut self, record: &EpochInputsRecord<'_>) {
            self.epochs.push((
                record.report.dispatch.sent,
                record.responses.to_vec(),
                record.actions.to_vec(),
            ));
        }
    }

    #[test]
    fn tapped_run_is_identical_to_untapped() {
        let run = |tap: Option<&mut CollectTap>| {
            let mut s = server(300);
            let qid = s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
            let mut tap = tap;
            for _ in 0..6 {
                match tap.as_deref_mut() {
                    Some(t) => s.driver().tap(t).step(),
                    None => s.run_epoch(),
                };
            }
            s.take_output(qid).iter().map(|t| t.id).collect::<Vec<_>>()
        };
        let mut tap = CollectTap::default();
        assert_eq!(run(None), run(Some(&mut tap)), "a tap must not perturb the loop");
        assert_eq!(tap.epochs.len(), 6);
        assert!(tap.epochs.iter().any(|(_, r, _)| !r.is_empty()), "tap saw no responses");
    }

    #[test]
    fn replayed_epochs_reproduce_the_live_run_without_a_crowd() {
        // Live run, tapped: collect each epoch's crowd-side inputs.
        let mut live = server(400);
        let qid = live.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.8").unwrap();
        let mut tap = CollectTap::default();
        let mut live_reports = Vec::new();
        for _ in 0..8 {
            live_reports.push(live.driver().tap(&mut tap).step());
        }
        let live_out: Vec<u64> = live.take_output(qid).iter().map(|t| t.id).collect();

        // Replay into a server over a *detached* (zero-sensor) crowd.
        let detached = Crowd::new(CrowdConfig {
            region: Rect::with_size(4.0, 4.0),
            population: PopulationConfig {
                size: 0,
                placement: Placement::Uniform,
                mobility: Mobility::RandomWalk { sigma: 0.2 },
                human_fraction: 0.0,
            },
            seed: 11,
        });
        let mut replayed = CraqrServer::new(detached, ServerConfig::default());
        replayed.register_attribute("rain", true, Box::new(RainFront::new(2.0, 0.0, 2.0)));
        replayed.register_attribute("temp", false, Box::new(ConstantField(AttrValue::Float(21.0))));
        let rqid = replayed.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.8").unwrap();
        assert_eq!(qid, rqid, "query planning must not depend on the crowd");

        for (live_report, (sent, responses, _)) in live_reports.iter().zip(&tap.epochs) {
            let r = replayed.driver().step_replayed(ReplayInputs {
                sent: *sent,
                responses,
                faults: FaultDeltas::default(),
            });
            assert_eq!(r.epoch, live_report.epoch);
            assert_eq!(r.dispatch, live_report.dispatch, "epoch {}", r.epoch);
            assert_eq!(r.responses, live_report.responses, "epoch {}", r.epoch);
            assert_eq!(r.ingested, live_report.ingested, "epoch {}", r.epoch);
            assert_eq!(r.delivered, live_report.delivered, "epoch {}", r.epoch);
            assert_eq!(r.tuning, live_report.tuning, "epoch {}", r.epoch);
            assert_eq!(r.exec.routed, live_report.exec.routed, "epoch {}", r.epoch);
            assert!((r.now - live_report.now).abs() == 0.0, "replay clock drifted");
        }
        let replay_out: Vec<u64> = replayed.take_output(qid).iter().map(|t| t.id).collect();
        assert_eq!(live_out, replay_out, "replayed tuple stream differs from live");
        // The handler state converged identically too.
        let cell = craqr_geom::CellId::new(0, 0);
        let attr = live.catalog().lookup("temp").unwrap();
        assert_eq!(
            live.handler().budget_of(cell, attr),
            replayed.handler().budget_of(cell, attr),
            "budget state diverged under replay"
        );
    }

    #[test]
    fn admission_rejects_what_the_pool_cannot_cover() {
        let mut s = server(100);
        let alice = s.register_tenant("alice", 50.0);
        let bob = s.register_tenant("bob", 4.0);
        // 0.5 /km²/min × 4 km² × 5 min = 10 requests/epoch estimated.
        let q = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5";
        let qid = s.submit_for(alice, q).expect("alice's pool covers 10");
        // Bob's 4-request pool cannot: structured rejection, no plan.
        let err = s.submit_for(bob, q).unwrap_err();
        let SubmitError::Rejected(decision) = err else { panic!("want Rejected, got {err}") };
        assert_eq!(decision.tenant, bob);
        assert!(!decision.admitted);
        assert_eq!(decision.capacity, 4.0);
        assert!((decision.estimated_demand - 10.0).abs() < 1e-9);
        assert_eq!(s.fabricator().query_ids(), vec![qid], "rejected query never planned");
        // Both decisions are in the audit log, in submission order.
        let log = s.admissions();
        assert_eq!(log.len(), 2);
        assert!(log[0].admitted && !log[1].admitted);
        // Unknown tenants are rejected before admission arithmetic runs.
        assert!(matches!(
            s.submit_for(TenantId(9), q),
            Err(SubmitError::UnknownTenant(TenantId(9)))
        ));
    }

    #[test]
    fn deleting_a_query_releases_its_committed_demand() {
        let mut s = server(50);
        let t = s.register_tenant("solo", 12.0);
        let q = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"; // 10 req/epoch
        let qid = s.submit_for(t, q).unwrap();
        assert!(matches!(s.submit_for(t, q), Err(SubmitError::Rejected(_))), "pool full");
        s.delete_query(qid).unwrap();
        assert!(s.submit_for(t, q).is_ok(), "deletion released the commitment");
    }

    #[test]
    fn deleting_a_pre_registration_query_refunds_nothing() {
        // Regression: a query submitted before the first register_tenant
        // call never passed admission and committed nothing — deleting it
        // must not release phantom capacity (which would let the pool
        // over-admit past its cap).
        let mut s = server(50);
        let q_early = "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5"; // est. 10
                                                                  // Before any registration only the implicit default owner exists;
                                                                  // a made-up tenant id is rejected, not silently planted.
        assert!(matches!(
            s.submit_for(TenantId(3), q_early),
            Err(SubmitError::UnknownTenant(TenantId(3)))
        ));
        let early = s.submit(q_early).unwrap();
        let t = s.register_tenant("late", 10.0);
        assert_eq!(t, TenantId::DEFAULT, "the early query aliases tenant 0 by id");
        let admitted = s.submit_for(t, "ACQUIRE temp FROM RECT(2,2,4,4) RATE 0.4").unwrap(); // 8
                                                                                             // Deleting the never-admitted query must not zero the ledger…
        s.delete_query(early).unwrap();
        // …so a demand-10 query still cannot fit next to the committed 8.
        assert!(
            matches!(s.submit_for(t, q_early), Err(SubmitError::Rejected(_))),
            "phantom refund let the pool over-admit"
        );
        // Deleting the genuinely admitted query does release its 8.
        s.delete_query(admitted).unwrap();
        assert!(s.submit_for(t, q_early).is_ok());
    }

    #[test]
    fn tenant_charges_are_conserved_every_epoch() {
        // A deliberately tiny pool against a default 20-request initial
        // budget: dispatch must throttle, and the per-epoch charge can
        // never exceed the pool capacity.
        let mut s = server(400);
        let t = s.register_tenant("capped", 11.0);
        s.submit_for(t, "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap();
        let mut throttled_total = 0u64;
        for _ in 0..10 {
            let r = s.run_epoch();
            assert_eq!(r.tenant_charges.len(), 1);
            let (tenant, charge) = r.tenant_charges[0];
            assert_eq!(tenant, t);
            assert!(charge <= 11.0 + 1e-9, "epoch {} overdrew the pool: {charge} > 11", r.epoch);
            throttled_total += r.dispatch.throttled;
        }
        assert!(throttled_total > 0, "the tiny pool never throttled anything");
        let summary = &s.tenants().unwrap().summaries()[0];
        assert!(summary.peak_epoch_charge <= 11.0 + 1e-9);
        assert!(summary.charged_total > 0.0);
    }

    #[test]
    fn ample_single_tenant_run_matches_the_untenanted_run() {
        // Tenancy with an effectively unconstrained pool is observability
        // only: the delivered stream must be bit-identical to the
        // single-owner server.
        let run = |tenanted: bool| {
            let mut s = server(300);
            let qid = if tenanted {
                let t = s.register_tenant("ample", 1e9);
                s.submit_for(t, "ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap()
            } else {
                s.submit("ACQUIRE temp FROM RECT(0,0,2,2) RATE 0.5").unwrap()
            };
            for _ in 0..6 {
                let r = s.run_epoch();
                assert_eq!(r.dispatch.throttled, 0);
            }
            s.take_output(qid).iter().map(|t| t.id).collect::<Vec<_>>()
        };
        assert_eq!(run(false), run(true), "an ample pool must not perturb the loop");
    }

    #[test]
    fn stale_set_budget_after_chain_retirement_is_a_signalled_noop() {
        // Regression: a replan racing a chain retirement. The hook emits
        // SetBudget/RebuildChain for a chain whose last query was deleted
        // this epoch — the actuation must not insert a phantom budget
        // entry, and the epoch report must surface the stale actions.
        struct ReplanRetired {
            target: Option<(craqr_geom::CellId, AttributeId)>,
        }
        impl ControlHook for ReplanRetired {
            fn on_epoch(&mut self, _obs: &EpochObservation) -> Vec<ControlAction> {
                match self.target {
                    Some((cell, attr)) => vec![
                        ControlAction::SetBudget { cell, attr, requests_per_epoch: 50.0 },
                        ControlAction::RebuildChain { cell, attr },
                    ],
                    None => Vec::new(),
                }
            }
        }
        let mut s = server(200);
        let qid = s.submit("ACQUIRE temp FROM RECT(0,0,1,1) RATE 1").unwrap();
        let cell = craqr_geom::CellId::new(0, 0);
        let attr = s.catalog().lookup("temp").unwrap();
        let mut hook = ReplanRetired { target: None };
        s.run_epoch_with(Some(&mut hook));
        assert!(s.handler().budget_of(cell, attr).is_some(), "chain live, budget live");

        // Retire the chain, then let the (now stale) replan fire.
        s.delete_query(qid).unwrap();
        hook.target = Some((cell, attr));
        let report = s.run_epoch_with(Some(&mut hook));
        assert_eq!(report.stale_actions, 2, "both stale actuations surfaced");
        assert_eq!(
            s.handler().budget_of(cell, attr),
            None,
            "stale SetBudget must not materialize a phantom budget entry"
        );
        // A live chain still actuates with nothing reported stale.
        let q2 = s.submit("ACQUIRE temp FROM RECT(0,0,1,1) RATE 1").unwrap();
        let r = s.run_epoch_with(Some(&mut hook));
        assert_eq!(r.stale_actions, 0);
        assert_eq!(s.handler().budget_of(cell, attr), Some(50.0));
        s.delete_query(q2).unwrap();
    }

    #[test]
    #[should_panic(expected = "exec.shards")]
    fn zero_shard_config_is_rejected_at_construction() {
        let config = ServerConfig { exec: ExecMode::Sharded(0), ..ServerConfig::default() };
        let _ = CraqrServer::new(crowd(10), config);
    }

    #[test]
    fn rain_values_match_ground_truth_geometry() {
        let mut s = server(500);
        let qid = s.submit("ACQUIRE rain FROM RECT(0,0,4,4) RATE 0.3").unwrap();
        for _ in 0..8 {
            s.run_epoch();
        }
        let out = s.take_output(qid);
        assert!(!out.is_empty());
        for t in &out {
            // RainFront(2.0, 0, 2.0): raining iff x ∈ [0, 2).
            let expected = t.point.x < 2.0;
            assert_eq!(t.value, AttrValue::Bool(expected), "at x={}", t.point.x);
        }
    }
}
